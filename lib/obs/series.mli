(** In-memory time series filled by the probe sampler.

    A series is bound to one {!Metrics} registry. Each {!sample} walks
    the registry's gauges in registration order and appends one
    [(t_ns, gauge index, value)] row per gauge, so the row stream is a
    deterministic function of the simulation alone — independent of
    job count or domain placement. Gauges registered after a tick
    simply start appearing at the next tick. *)

type t

val create : Metrics.t -> t

val metrics : t -> Metrics.t

val sample : t -> now_ns:int -> unit
(** Append one row per currently registered gauge, stamped [now_ns]. *)

val length : t -> int
(** Rows appended so far. *)

val get : t -> int -> int * int * float
(** [get t i] is row [i] as [(t_ns, gauge_index, value)]; the gauge
    index refers to {!Metrics.gauges} order. *)
