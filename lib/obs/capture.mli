(** Immutable end-of-run snapshot of a simulation's observability data.

    A capture decouples the renderers (CSV/JSON sinks, which run on the
    collecting domain after all simulations finish) from the live
    registry, which dies with its simulation. Everything inside is
    plain data in deterministic order: gauge metadata and samples in
    registration/sampling order, histogram dumps in registration
    order, events in emission order. *)

type hist = {
  h_meta : Metrics.meta;
  lo : float;
  hi : float;
  bucket_counts : int array;  (** [buckets + 1] entries, last = overflow *)
  bucket_bounds : (float * float) array;  (** bounds per bucket *)
}

type t = {
  gauges : Metrics.meta array;  (** column metadata, registration order *)
  samples : (int * int * float) array;
      (** [(t_ns, gauge index, value)] rows in sampling order *)
  hists : hist array;
  events : Metrics.event array;
}

val of_series : Series.t -> t
(** Snapshot the series' registry and rows. Call once, after the
    simulation has finished. *)

val is_empty : t -> bool

val events_jsonl : t -> string
(** Render [events] as one JSON object per line:
    [{"t_ns":..,"kind":"..","conn":..,"subflow":..,"k":"v",..}].
    [conn]/[subflow] are omitted when negative; [info] pairs become
    top-level string fields. Returns [""] when there are no events. *)
