type hist = {
  h_meta : Metrics.meta;
  lo : float;
  hi : float;
  bucket_counts : int array;
  bucket_bounds : (float * float) array;
}

type t = {
  gauges : Metrics.meta array;
  samples : (int * int * float) array;
  hists : hist array;
  events : Metrics.event array;
}

let of_series s =
  let m = Series.metrics s in
  let gauges = Array.map fst (Metrics.gauges m) in
  let samples = Array.init (Series.length s) (fun i -> Series.get s i) in
  let hists =
    Array.map
      (fun (h_meta, h) ->
        let counts = Sim_stats.Histogram.bucket_counts h in
        let bounds =
          Array.init (Array.length counts) (fun i ->
              Sim_stats.Histogram.bucket_bounds h i)
        in
        let lo = fst bounds.(0) in
        let hi = fst bounds.(Array.length bounds - 1) in
        { h_meta; lo; hi; bucket_counts = counts; bucket_bounds = bounds })
      (Metrics.hist_dump m)
  in
  { gauges; samples; hists; events = Metrics.events m }

let is_empty t =
  Array.length t.samples = 0
  && Array.length t.events = 0
  && Array.length t.hists = 0

(* Hand-rolled JSON: the repo has no JSON dependency and the event
   stream only needs objects of scalars. *)
let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let events_jsonl t =
  if Array.length t.events = 0 then ""
  else begin
    let buf = Buffer.create 1024 in
    Array.iter
      (fun (e : Metrics.event) ->
        Buffer.add_string buf (Printf.sprintf "{\"t_ns\":%d,\"kind\":" e.t_ns);
        add_json_string buf e.kind;
        if e.conn >= 0 then
          Buffer.add_string buf (Printf.sprintf ",\"conn\":%d" e.conn);
        if e.subflow >= 0 then
          Buffer.add_string buf (Printf.sprintf ",\"subflow\":%d" e.subflow);
        List.iter
          (fun (k, v) ->
            Buffer.add_char buf ',';
            add_json_string buf k;
            Buffer.add_char buf ':';
            add_json_string buf v)
          e.info;
        Buffer.add_string buf "}\n")
      t.events;
    Buffer.contents buf
  end
