(* Columnar row store for sampled gauge values: three parallel
   grow-by-doubling arrays, no per-row boxing. The gauge array is a
   cached snapshot of the registry, refreshed only when the
   registration count changes (connections appearing mid-run). *)

type t = {
  m : Metrics.t;
  mutable insts : (Metrics.meta * (unit -> float)) array;
  mutable t_ns : int array;
  mutable idx : int array;
  mutable v : float array;
  mutable n : int;
}

let create m =
  {
    m;
    insts = Metrics.gauges m;
    t_ns = Array.make 64 0;
    idx = Array.make 64 0;
    v = Array.make 64 0.;
    n = 0;
  }

let metrics t = t.m

let ensure t extra =
  let need = t.n + extra in
  if need > Array.length t.t_ns then begin
    let cap = ref (max 64 (Array.length t.t_ns)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let grow_i a =
      let b = Array.make !cap 0 in
      Array.blit a 0 b 0 t.n;
      b
    in
    let grow_f a =
      let b = Array.make !cap 0. in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.t_ns <- grow_i t.t_ns;
    t.idx <- grow_i t.idx;
    t.v <- grow_f t.v
  end

let sample t ~now_ns =
  if Array.length t.insts <> Metrics.gauge_count t.m then
    t.insts <- Metrics.gauges t.m;
  let k = Array.length t.insts in
  ensure t k;
  for i = 0 to k - 1 do
    let _, read = t.insts.(i) in
    let j = t.n + i in
    t.t_ns.(j) <- now_ns;
    t.idx.(j) <- i;
    t.v.(j) <- read ()
  done;
  t.n <- t.n + k

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Series.get";
  (t.t_ns.(i), t.idx.(i), t.v.(i))
