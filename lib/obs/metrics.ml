(* Per-simulation metrics registry. All state lives inside [t] (one
   per Sim_ctx, hence one per scheduler/simulation): nothing at module
   level, so probed simulations stay independent under the
   domain-parallel runner (simlint D001).

   Instruments are kept in reverse registration order as lists —
   registration is a construction-time event, never a hot path — and
   snapshotted into forward arrays for the sampler and the capture. *)

type meta = { component : string; id : string; name : string; units : string }

type event = {
  t_ns : int;
  kind : string;
  conn : int;
  subflow : int;
  info : (string * string) list;
}

type t = {
  mutable on : bool;
  mutable conns : int list option;
  mutable clock_ns : unit -> int;
  mutable gauges_rev : (meta * (unit -> float)) list;
  mutable n_gauges : int;
  mutable hists_rev : (meta * Sim_stats.Histogram.t) list;
  mutable events_rev : event list;
  mutable n_events : int;
  (* Conn-filter diagnostics: did any [want_conn] query ever match
     while a filter was set? Lets the scenario layer reject a --probe
     CONN list that matches nothing under the selected model instead
     of silently rendering empty artifacts. *)
  mutable filter_matched : bool;
  mutable components_rev : string list;
}

let create () =
  {
    on = false;
    conns = None;
    clock_ns = (fun () -> 0);
    gauges_rev = [];
    n_gauges = 0;
    hists_rev = [];
    events_rev = [];
    n_events = 0;
    filter_matched = false;
    components_rev = [];
  }

let enable t ?conns ~clock_ns () =
  t.on <- true;
  t.conns <- conns;
  t.clock_ns <- clock_ns

let active t = t.on

let want_conn t conn =
  t.on
  &&
  match t.conns with
  | None -> true
  | Some cs ->
    let hit = List.mem conn cs in
    if hit then t.filter_matched <- true;
    hit

let conn_filter t = if t.on then t.conns else None
let conn_filter_matched t = t.filter_matched

let note_component t component =
  if t.on && not (List.mem component t.components_rev) then
    t.components_rev <- component :: t.components_rev

let components t = List.rev t.components_rev

let now_ns t = t.clock_ns ()

let register t ~component ~id ~name ~units read =
  if t.on then begin
    note_component t component;
    t.gauges_rev <- ({ component; id; name; units }, read) :: t.gauges_rev;
    t.n_gauges <- t.n_gauges + 1
  end

let histogram t ~component ~id ~name ~units ~lo ~hi ~buckets =
  if not t.on then None
  else begin
    note_component t component;
    let h = Sim_stats.Histogram.create ~lo ~hi ~buckets in
    t.hists_rev <- ({ component; id; name; units }, h) :: t.hists_rev;
    Some h
  end

let emit t ~kind ?(conn = -1) ?(subflow = -1) ?(info = []) () =
  if t.on && (conn < 0 || want_conn t conn) then begin
    t.events_rev <-
      { t_ns = t.clock_ns (); kind; conn; subflow; info } :: t.events_rev;
    t.n_events <- t.n_events + 1
  end

let gauge_count t = t.n_gauges

let rev_to_array n rev =
  match rev with
  | [] -> [||]
  | hd :: _ ->
    let a = Array.make n hd in
    let i = ref (n - 1) in
    List.iter
      (fun x ->
        a.(!i) <- x;
        decr i)
      rev;
    a

let gauges t = rev_to_array t.n_gauges t.gauges_rev
let hist_dump t = rev_to_array (List.length t.hists_rev) t.hists_rev
let events t = rev_to_array t.n_events t.events_rev
