(** Per-simulation metrics registry.

    One [t] belongs to one simulation (it hangs off
    [Sim_engine.Sim_ctx]); nothing here is shared between simulations,
    so probed runs stay safe under the domain-parallel runner. The
    registry is {e off} by default and components only register
    instruments when it is active, so an unprobed run pays at most one
    branch per instrumentation site — the same discipline as
    [Sim_engine.Trace].

    Three instrument kinds:

    - {e gauges}: named read closures over live component state
      (cwnd, queue depth, …), walked by the probe sampler at a fixed
      virtual-time interval. Registration order is the simulation's
      deterministic construction order and defines the column order of
      every rendered time series.
    - {e histograms}: fixed-bucket [Sim_stats.Histogram]s filled on
      the component's own event path (e.g. RTT samples), dumped once
      at capture time.
    - {e events}: timestamped structured records ([phase_switch],
      [rto_fired], [fast_retransmit], [queue_drop]) rendered as a
      JSONL stream, filterable by connection. *)

type meta = {
  component : string;  (** e.g. ["tcp_tx"], ["pktqueue"] *)
  id : string;  (** instance within the component, e.g. ["c3.s0"] *)
  name : string;  (** metric name, e.g. ["cwnd"] *)
  units : string;  (** unit metadata, e.g. ["bytes"], ["ns"] *)
}

type event = {
  t_ns : int;  (** virtual time of the event *)
  kind : string;  (** e.g. ["rto_fired"] *)
  conn : int;  (** connection id, [-1] when not connection-scoped *)
  subflow : int;  (** subflow index, [-1] when not applicable *)
  info : (string * string) list;  (** extra key/value detail *)
}

type t

val create : unit -> t
(** A fresh, disabled registry: [active] is [false], registration and
    emission are no-ops. *)

val enable : t -> ?conns:int list -> clock_ns:(unit -> int) -> unit -> unit
(** Turn the registry on. [conns] restricts connection-scoped
    instruments and events to the given connection ids (default: all
    connections). [clock_ns] supplies virtual-time timestamps for
    events — pass the owning scheduler's clock. Must be called before
    the instrumented components are constructed; components consult
    [active]/[want_conn] only at creation time. *)

val active : t -> bool

val want_conn : t -> int -> bool
(** Whether connection-scoped instruments for [conn] should be
    registered: [active t] and [conn] passes the [conns] filter. *)

val now_ns : t -> int
(** The registry's clock ([0] before {!enable}). *)

val conn_filter : t -> int list option
(** The [conns] restriction passed to {!enable} ([None] when the
    registry is disabled or unrestricted). *)

val conn_filter_matched : t -> bool
(** Whether any {!want_conn} query (or conn-scoped {!emit}) matched
    while a [conns] filter was set. Lets callers detect a filter that
    named only nonexistent connections — which would otherwise render
    perfectly empty artifacts — and fail loudly instead. *)

val components : t -> string list
(** Component names that registered at least one instrument, in first
    registration order — i.e. what the simulation actually built
    under the current model. Used in the mismatch diagnostic above. *)

val register :
  t ->
  component:string ->
  id:string ->
  name:string ->
  units:string ->
  (unit -> float) ->
  unit
(** Register a gauge. No-op while the registry is disabled. The read
    closure is called only by the sampler, never on a hot path. *)

val histogram :
  t ->
  component:string ->
  id:string ->
  name:string ->
  units:string ->
  lo:float ->
  hi:float ->
  buckets:int ->
  Sim_stats.Histogram.t option
(** Register and return a fixed-bucket histogram, or [None] while the
    registry is disabled (callers keep the option and branch once per
    fill site). *)

val emit :
  t ->
  kind:string ->
  ?conn:int ->
  ?subflow:int ->
  ?info:(string * string) list ->
  unit ->
  unit
(** Record a structured event at the current virtual time. Dropped
    when the registry is disabled, and when [conn >= 0] fails the
    [conns] filter (events without a connection always pass). *)

(** {2 Read-out (sampler / capture)} *)

val gauge_count : t -> int

val gauges : t -> (meta * (unit -> float)) array
(** Snapshot in registration order. *)

val hist_dump : t -> (meta * Sim_stats.Histogram.t) array
(** Histograms in registration order. *)

val events : t -> event array
(** Events in emission order. *)
