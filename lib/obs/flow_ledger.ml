(* Per-simulation flow lifecycle ledger. See flow_ledger.mli. *)

type entry = {
  e_conn : int;
  e_src : int;
  e_dst : int;
  e_size : int;
  e_long : bool;
  e_start_ns : int;
  e_handshake_ns : int;
  e_switch_ns : int;
  e_promote_ns : int;
  e_complete_ns : int;
  e_rtos : int;
  e_fast_rtxs : int;
  e_bytes : int;
}

type dump = entry array

(* One mutable record per flow, created at [on_start] and updated in
   place by the lifecycle hooks; [dump] freezes them into [entry]s.
   Kept separate from [entry] so the dump is plain immutable data
   (marshallable across the process-pool boundary). *)
type cell = {
  c_conn : int;
  c_src : int;
  c_dst : int;
  c_size : int;
  c_long : bool;
  c_start_ns : int;
  mutable c_handshake_ns : int;
  mutable c_switch_ns : int;
  mutable c_promote_ns : int;
  mutable c_complete_ns : int;
  mutable c_rtos : int;
  mutable c_fast_rtxs : int;
  mutable c_bytes : int;
}

type t = {
  mutable on : bool;
  mutable clock_ns : unit -> int;
  (* conn id -> index into [cells], -1 when unknown. Conn ids are the
     small dense ints drawn from [Sim_ctx.fresh_conn_id], so a direct
     array beats a hashtable and allocates nothing per lookup. *)
  mutable slot_of_conn : int array;
  mutable cells : cell array;  (* arrival order *)
  mutable n : int;
}

let no_clock () = 0

let create () =
  { on = false; clock_ns = no_clock; slot_of_conn = [||]; cells = [||]; n = 0 }

let enable t ~clock_ns =
  t.on <- true;
  t.clock_ns <- clock_ns;
  if Array.length t.slot_of_conn = 0 then t.slot_of_conn <- Array.make 1024 (-1)

let active t = t.on

let ensure_conn t conn =
  let len = Array.length t.slot_of_conn in
  if conn >= len then begin
    let len' = max (conn + 1) (2 * len) in
    let a = Array.make len' (-1) in
    Array.blit t.slot_of_conn 0 a 0 len;
    t.slot_of_conn <- a
  end

let slot t conn =
  if conn < 0 || conn >= Array.length t.slot_of_conn then -1
  else t.slot_of_conn.(conn)

let on_start t ~conn ~src ~dst ~size ~long =
  if t.on then begin
    ensure_conn t conn;
    if t.slot_of_conn.(conn) < 0 then begin
      let c =
        {
          c_conn = conn;
          c_src = src;
          c_dst = dst;
          c_size = size;
          c_long = long;
          c_start_ns = t.clock_ns ();
          c_handshake_ns = -1;
          c_switch_ns = -1;
          c_promote_ns = -1;
          c_complete_ns = -1;
          c_rtos = 0;
          c_fast_rtxs = 0;
          c_bytes = 0;
        }
      in
      let cap = Array.length t.cells in
      if t.n >= cap then begin
        let a = Array.make (max 256 (2 * cap)) c in
        Array.blit t.cells 0 a 0 t.n;
        t.cells <- a
      end;
      t.cells.(t.n) <- c;
      t.slot_of_conn.(conn) <- t.n;
      t.n <- t.n + 1
    end
  end

let on_handshake t ~conn =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      (* First wins: MPTCP subflows share the parent conn id and each
         completes its own handshake; the flow is usable at the first. *)
      if c.c_handshake_ns < 0 then c.c_handshake_ns <- t.clock_ns ()
    end

let on_phase_switch t ~conn =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      if c.c_switch_ns < 0 then c.c_switch_ns <- t.clock_ns ()
    end

let on_promote t ~conn ~cont =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      if c.c_promote_ns < 0 then c.c_promote_ns <- t.clock_ns ();
      (* The packet stage finishing its [handoff_bytes] fires the
         transport's completion hook, but the flow continues in the
         fluid engine — promotion supersedes that premature completion;
         the aliased continuation will set the real one. *)
      c.c_complete_ns <- -1;
      ensure_conn t cont;
      if t.slot_of_conn.(cont) < 0 then t.slot_of_conn.(cont) <- s
    end

let on_rto t ~conn =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      c.c_rtos <- c.c_rtos + 1
    end

let on_fast_rtx t ~conn =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      c.c_fast_rtxs <- c.c_fast_rtxs + 1
    end

let on_complete t ~conn =
  if t.on then
    let s = slot t conn in
    if s >= 0 then begin
      let c = t.cells.(s) in
      if c.c_complete_ns < 0 then c.c_complete_ns <- t.clock_ns ()
    end

let note_bytes t ~conn bytes =
  if t.on then
    let s = slot t conn in
    if s >= 0 then t.cells.(s).c_bytes <- bytes

let count t = t.n

let dump t =
  Array.init t.n (fun i ->
      let c = t.cells.(i) in
      {
        e_conn = c.c_conn;
        e_src = c.c_src;
        e_dst = c.c_dst;
        e_size = c.c_size;
        e_long = c.c_long;
        e_start_ns = c.c_start_ns;
        e_handshake_ns = c.c_handshake_ns;
        e_switch_ns = c.c_switch_ns;
        e_promote_ns = c.c_promote_ns;
        e_complete_ns = c.c_complete_ns;
        e_rtos = c.c_rtos;
        e_fast_rtxs = c.c_fast_rtxs;
        e_bytes = c.c_bytes;
      })

let fct_ns e =
  if e.e_complete_ns < 0 then None else Some (e.e_complete_ns - e.e_start_ns)
