(** Per-simulation flow lifecycle ledger.

    One [t] belongs to one simulation (it hangs off
    [Sim_engine.Sim_ctx], next to {!Metrics}), records every flow's
    lifecycle — arrival, handshake, MMPTCP phase switch, hybrid
    promotion, retransmit counts, bytes, completion — and freezes it
    into an immutable {!dump} at end of run. The ledger is {e off} by
    default: every hook is one branch when disabled, and the per-flow
    cells are only allocated while it is on, so an unledgered run pays
    nothing measurable (see the ledger-off A/B case in bench/micro).

    All three flow models ([packet], [fluid], [hybrid]) drive the same
    hooks, keyed by transport connection id. MPTCP/MMPTCP subflows
    share their parent's conn id, so subflow-level events (handshakes,
    RTOs, fast retransmits) aggregate onto the one flow record —
    handshake keeps the {e first} timestamp, counters sum. The hybrid
    model's packet→fluid promotion registers the fluid continuation's
    conn id as an {e alias} of the original record, so stage-2 events
    land on the same flow. Hooks for conn ids the ledger has never
    seen are dropped (e.g. background transfers started outside the
    workload). *)

type entry = {
  e_conn : int;  (** transport connection id (packet-stage id for hybrid) *)
  e_src : int;  (** source host id *)
  e_dst : int;  (** destination host id *)
  e_size : int;  (** flow size, bytes *)
  e_long : bool;  (** workload class: long (true) vs short *)
  e_start_ns : int;  (** virtual arrival time *)
  e_handshake_ns : int;  (** first handshake completion, [-1] if none *)
  e_switch_ns : int;  (** MMPTCP PS→MPTCP phase switch, [-1] if none *)
  e_promote_ns : int;  (** hybrid packet→fluid promotion, [-1] if none *)
  e_complete_ns : int;  (** completion time, [-1] if unfinished *)
  e_rtos : int;  (** RTO firings across all subflows *)
  e_fast_rtxs : int;  (** fast retransmits across all subflows *)
  e_bytes : int;  (** bytes delivered *)
}

type dump = entry array
(** Entries in arrival order. Plain immutable data — safe to
    [Marshal] across the process-pool boundary. *)

type t

val create : unit -> t
(** A fresh, disabled ledger: every hook is a no-op. *)

val enable : t -> clock_ns:(unit -> int) -> unit
(** Turn the ledger on. [clock_ns] supplies virtual-time timestamps —
    pass the owning scheduler's clock. Call before flows start. *)

val active : t -> bool

(** {2 Lifecycle hooks}

    Each is one branch when the ledger is disabled, and drops records
    for conn ids without a prior {!on_start}. *)

val on_start :
  t -> conn:int -> src:int -> dst:int -> size:int -> long:bool -> unit
(** A flow arrived and its transport was created. First call per conn
    wins; later calls for the same conn are ignored. *)

val on_handshake : t -> conn:int -> unit
(** A handshake completed (first one wins — MPTCP subflows share the
    parent conn id). *)

val on_phase_switch : t -> conn:int -> unit
(** MMPTCP switched PS→MPTCP (also: fluid switch-leg swap). *)

val on_promote : t -> conn:int -> cont:int -> unit
(** Hybrid handoff: flow [conn] promoted to a fluid continuation with
    conn id [cont]. Records the promotion time, aliases [cont] to the
    same ledger record so stage-2 hooks land on it, and clears any
    completion the packet stage recorded when it ran out of
    handoff bytes (that was a stage boundary, not flow completion). *)

val on_rto : t -> conn:int -> unit
val on_fast_rtx : t -> conn:int -> unit

val on_complete : t -> conn:int -> unit
(** The last byte landed. First call wins. *)

val note_bytes : t -> conn:int -> int -> unit
(** Set the delivered byte count (called at collection time from the
    model's live handle; overwrites). *)

(** {2 Read-out} *)

val count : t -> int
(** Flows recorded so far. *)

val dump : t -> dump
(** Freeze into entries, arrival order. Call after the run. *)

val fct_ns : entry -> int option
(** Flow completion time, [None] while unfinished. *)
