module Cong = Sim_tcp.Cong
module Time = Sim_engine.Sim_time

type group = { mutable windows : Cong.window list }

let make_group () = { windows = [] }

let subflow_count g = List.length g.windows

(* RTT fallback before the first sample; only influences the very first
   increases of a subflow. *)
let default_rtt_s = 1e-3

let rtt_s (w : Cong.window) =
  match w.Cong.srtt () with
  | Some t -> Float.max 1e-6 (Time.to_sec t)
  | None -> default_rtt_s

(* Pure RFC 6356 coupling factor over parallel window/RTT arrays. The
   packet-level [alpha] below and the fluid engine's rate model both
   evaluate this one formula, so the coupling semantics cannot drift
   between the two transport models. *)
let alpha_formula ~cwnds ~rtts =
  let n = Array.length cwnds in
  if n = 0 || n <> Array.length rtts then 1.
  else begin
    let total = Array.fold_left ( +. ) 0. cwnds in
    if total <= 0. then 1.
    else begin
      let best = ref 0. and denom = ref 0. in
      for i = 0 to n - 1 do
        let r = Float.max 1e-6 rtts.(i) in
        best := Float.max !best (cwnds.(i) /. (r *. r));
        denom := !denom +. (cwnds.(i) /. r)
      done;
      if !denom <= 0. then 1. else total *. !best /. (!denom *. !denom)
    end
  end

(* Equilibrium rate split of a LIA-coupled connection, for the fluid
   model. With equal loss rates across paths the coupled increase
   (alpha * acked * mss / cwnd_total per subflow, halving on loss)
   drives the windows to equal sizes — [alpha_formula] at that fixed
   point reduces to best-path fairness — so per-path throughput is
   proportional to 1/rtt_i. The weights sum to 1: the aggregate claims
   exactly one TCP-fair share when every leg crosses one bottleneck,
   and the full aggregate of its shares when the paths are disjoint. *)
let fluid_weights ~rtts =
  let n = Array.length rtts in
  if n = 0 then [||]
  else begin
    let inv = Array.map (fun r -> 1. /. Float.max 1e-6 r) rtts in
    let sum = Array.fold_left ( +. ) 0. inv in
    if sum <= 0. then Array.make n (1. /. float_of_int n)
    else Array.map (fun x -> x /. sum) inv
  end

let alpha g =
  match g.windows with
  | [] -> 1.
  | windows ->
    let cwnds =
      Array.of_list (List.map (fun w -> w.Cong.get_cwnd ()) windows)
    in
    let rtts = Array.of_list (List.map rtt_s windows) in
    alpha_formula ~cwnds ~rtts

let attach g (w : Cong.window) =
  g.windows <- w :: g.windows;
  let on_ack ~acked ~ece:_ =
    if w.Cong.get_cwnd () < w.Cong.get_ssthresh () then
      Cong.slow_start_increase w ~acked
    else begin
      let total =
        List.fold_left (fun acc w' -> acc +. w'.Cong.get_cwnd ()) 0. g.windows
      in
      let a = alpha g in
      let mss = float_of_int w.Cong.mss in
      let acked_f = float_of_int acked in
      let coupled = a *. acked_f *. mss /. Float.max total mss in
      let uncoupled = acked_f *. mss /. Float.max (w.Cong.get_cwnd ()) mss in
      let inc = Float.min coupled uncoupled in
      (* Same per-ACK cap as byte-counted AIMD. *)
      w.Cong.set_cwnd (w.Cong.get_cwnd () +. Float.min inc mss)
    end
  in
  { Cong.name = "lia"; on_ack; on_loss = Cong.reno_on_loss w; gauges = [] }
