module Cong = Sim_tcp.Cong
module Time = Sim_engine.Sim_time

type group = { mutable windows : Cong.window list }

let make_group () = { windows = [] }

let subflow_count g = List.length g.windows

(* RTT fallback before the first sample; only influences the very first
   increases of a subflow. *)
let default_rtt_s = 1e-3

let rtt_s (w : Cong.window) =
  match w.Cong.srtt () with
  | Some t -> Float.max 1e-6 (Time.to_sec t)
  | None -> default_rtt_s

let alpha g =
  match g.windows with
  | [] -> 1.
  | windows ->
    let total = List.fold_left (fun acc w -> acc +. w.Cong.get_cwnd ()) 0. windows in
    if total <= 0. then 1.
    else begin
      let best =
        List.fold_left
          (fun acc w ->
            let r = rtt_s w in
            Float.max acc (w.Cong.get_cwnd () /. (r *. r)))
          0. windows
      in
      let denom =
        List.fold_left (fun acc w -> acc +. (w.Cong.get_cwnd () /. rtt_s w)) 0. windows
      in
      if denom <= 0. then 1. else total *. best /. (denom *. denom)
    end

let attach g (w : Cong.window) =
  g.windows <- w :: g.windows;
  let on_ack ~acked ~ece:_ =
    if w.Cong.get_cwnd () < w.Cong.get_ssthresh () then
      Cong.slow_start_increase w ~acked
    else begin
      let total =
        List.fold_left (fun acc w' -> acc +. w'.Cong.get_cwnd ()) 0. g.windows
      in
      let a = alpha g in
      let mss = float_of_int w.Cong.mss in
      let acked_f = float_of_int acked in
      let coupled = a *. acked_f *. mss /. Float.max total mss in
      let uncoupled = acked_f *. mss /. Float.max (w.Cong.get_cwnd ()) mss in
      let inc = Float.min coupled uncoupled in
      (* Same per-ACK cap as byte-counted AIMD. *)
      w.Cong.set_cwnd (w.Cong.get_cwnd () +. Float.min inc mss)
    end
  in
  { Cong.name = "lia"; on_ack; on_loss = Cong.reno_on_loss w; gauges = [] }
