module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Host = Sim_net.Host
module Packet = Sim_net.Packet
module Tcp_tx = Sim_tcp.Tcp_tx
module Tcp_rx = Sim_tcp.Tcp_rx

type t = {
  conn : int;
  size : int;
  subflows : int;
  plane : Dataplane.t;
  mutable txs : Tcp_tx.t array;
  mutable rxs : Tcp_rx.t array;
  started_at : Time.t;
  group : Lia.group option;
}

let start ~src ~dst ~size ~subflows ?(params = Sim_tcp.Tcp_params.default)
    ?(coupled = true) ?(on_complete = fun _ -> ()) () =
  if subflows < 1 then invalid_arg "Mptcp_conn.start: subflows must be >= 1";
  let sched = Host.sched src in
  let conn = Sim_tcp.Conn_id.fresh (Scheduler.ctx sched) in
  let group = if coupled then Some (Lia.make_group ()) else None in
  let rec t =
    lazy
      {
        conn;
        size;
        subflows;
        plane =
          Dataplane.create ~sched ~size ~on_complete:(fun () ->
              Sim_obs.Flow_ledger.on_complete
                (Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched))
                ~conn;
              on_complete (Lazy.force t));
        txs = [||];
        rxs = [||];
        started_at = Scheduler.now sched;
        group;
      }
  in
  let t = Lazy.force t in
  (let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched) in
   if Sim_obs.Metrics.want_conn m conn then begin
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"mptcp"
         ~id:(Printf.sprintf "c%d" conn)
         ~name ~units read
     in
     reg "subflows_active" "subflows" (fun () ->
         float_of_int (Array.length t.txs));
     reg "bytes_received" "bytes" (fun () ->
         float_of_int (Dataplane.received_bytes t.plane))
   end);
  let source =
    {
      Tcp_tx.pull = (fun ~max -> Dataplane.pull t.plane ~max);
      has_more = (fun () -> Dataplane.unassigned t.plane);
    }
  in
  let cc =
    match group with Some g -> Lia.attach g | None -> Sim_tcp.Reno.make
  in
  let make_subflow i =
    let src_port = 10_000 + (conn * 131) + (i * 7) in
    let tx =
      Tcp_tx.create ~host:src ~peer:(Host.addr dst) ~conn ~subflow:i ~params
        ~src_port:(fun () -> src_port)
        ~dst_port:5001 ~source ~cc ()
    in
    let rx =
      Tcp_rx.create ~params ~host:dst ~peer:(Host.addr src) ~conn ~subflow:i
        ~on_data:(fun ~dsn ~len -> Dataplane.deliver t.plane ~dsn ~len)
        ()
    in
    (tx, rx)
  in
  let pairs = Array.init subflows make_subflow in
  t.txs <- Array.map fst pairs;
  t.rxs <- Array.map snd pairs;
  Host.bind src ~conn (fun pkt ->
      let i = pkt.Packet.subflow in
      if i >= 0 && i < subflows then Tcp_tx.handle t.txs.(i) pkt);
  Host.bind dst ~conn (fun pkt ->
      let i = pkt.Packet.subflow in
      if i >= 0 && i < subflows then Tcp_rx.handle t.rxs.(i) pkt);
  if size = 0 then Dataplane.deliver t.plane ~dsn:0 ~len:0;
  Array.iter Tcp_tx.connect t.txs;
  t

let conn t = t.conn
let size t = t.size
let subflow_count t = t.subflows
let started_at t = t.started_at
let completed_at t = Dataplane.completed_at t.plane

let fct t =
  match completed_at t with
  | None -> None
  | Some c -> Some (Time.diff c t.started_at)

let is_complete t = Dataplane.is_complete t.plane
let bytes_received t = Dataplane.received_bytes t.plane

let sum_stats t f =
  Array.fold_left (fun acc tx -> acc + f (Tcp_tx.stats tx)) 0 t.txs

let rto_events t = sum_stats t (fun s -> s.Tcp_tx.rto_events)
let fast_rtx_events t = sum_stats t (fun s -> s.Tcp_tx.fast_rtx_events)
let subflow_tx t i = t.txs.(i)
let lia_alpha t = Option.map Lia.alpha t.group

let total_cwnd t =
  Array.fold_left (fun acc tx -> acc +. Tcp_tx.cwnd tx) 0. t.txs
