(** Linked-Increase congestion control (RFC 6356), the MPTCP coupled
    algorithm evaluated in the paper.

    All subflows of a connection share a {!group}. On every ACK the
    group computes

    {v alpha = cwnd_total * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2 v}

    and subflow [i] increases by
    [min(alpha * acked * mss / cwnd_total, acked * mss / w_i)] bytes in
    congestion avoidance — never more aggressive than an uncoupled TCP
    on its best path, and shifting load away from congested paths.
    Slow start and the loss response are the standard per-subflow
    mechanisms. *)

type group

val make_group : unit -> group

val attach : group -> Sim_tcp.Cong.window -> Sim_tcp.Cong.t
(** Join a subflow's window to the group and get its controller. *)

val subflow_count : group -> int

val alpha : group -> float
(** Current coupling factor (diagnostic; recomputed on demand).
    Evaluates {!alpha_formula} over the group's live windows. *)

val alpha_formula : cwnds:float array -> rtts:float array -> float
(** The RFC 6356 coupling factor as a pure function of parallel
    window (bytes) and RTT (seconds) arrays. Shared by the packet
    stack (via {!alpha}) and the fluid rate model so the coupling
    semantics exist exactly once. Returns 1.0 on empty or mismatched
    input. *)

val fluid_weights : rtts:float array -> float array
(** Equilibrium per-subflow rate split of a LIA-coupled connection,
    as weights summing to 1 (proportional to [1/rtt_i]): at the LIA
    fixed point with equal per-path loss, windows equalise and
    throughput is inverse in RTT. The fluid engine assigns leg [i]
    the weight [w_i] so the aggregate takes one TCP-fair share at a
    shared bottleneck and the sum of its per-path shares on disjoint
    paths. Empty input yields an empty array. *)
