module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let row name r =
  let s = Report.fct_stats r in
  [
    name;
    Table.fms s.Report.mean_ms;
    Table.fms s.Report.sd_ms;
    string_of_int s.Report.flows_with_rto;
    Table.pct (Scenario.core_loss r);
    Table.pct (Scenario.agg_loss r);
    Printf.sprintf "%.1f" (Report.long_mean_mbps r);
    Table.pct (Scenario.core_utilisation r);
  ]

let run ?(jobs = 1) scale =
  Report.header
    "Table 1: MMPTCP vs MPTCP on the paper workload (identical seed)";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  Report.printf
    "paper reports: MMPTCP 116ms (sd 101) vs MPTCP 126ms (sd 425); loss at\n\
     core/agg slightly lower for MMPTCP; equal long-flow throughput and\n\
     utilisation.\n";
  let table =
    Table.create
      ~columns:
        [
          "protocol";
          "short mean(ms)";
          "short sd(ms)";
          "rto-flows";
          "core loss";
          "agg loss";
          "long goodput(Mb/s)";
          "core util";
        ]
  in
  let entries =
    [
      ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
      ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
    ]
  in
  let results =
    Runner.par_map ~jobs
      (fun (name, protocol) ->
        (name, Scenario.run (Scale.scenario_config scale ~protocol)))
      entries
  in
  List.iter (fun (name, r) -> Table.add_row table (row name r)) results;
  Report.table table
