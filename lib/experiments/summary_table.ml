module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let row name r =
  let s = Report.fct_stats r in
  [
    name;
    Table.fms s.Report.mean_ms;
    Table.fms s.Report.sd_ms;
    string_of_int s.Report.flows_with_rto;
    Table.pct (Scenario.core_loss r);
    Table.pct (Scenario.agg_loss r);
    Printf.sprintf "%.1f" (Report.long_mean_mbps r);
    Table.pct (Scenario.core_utilisation r);
  ]

let entries =
  [
    ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
    ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
  ]

let render scale pairs =
  Report.header
    "Table 1: MMPTCP vs MPTCP on the paper workload (identical seed)";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  Report.printf
    "paper reports: MMPTCP 116ms (sd 101) vs MPTCP 126ms (sd 425); loss at\n\
     core/agg slightly lower for MMPTCP; equal long-flow throughput and\n\
     utilisation.\n";
  let table =
    Table.create
      ~columns:
        [
          "protocol";
          "short mean(ms)";
          "short sd(ms)";
          "rto-flows";
          "core loss";
          "agg loss";
          "long goodput(Mb/s)";
          "core util";
        ]
  in
  List.iter (fun ((name, _), r) -> Table.add_row table (row name r)) pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"table1"
      ~columns:
        [
          ("protocol", fun ((name, _), _) -> Sink.str name);
          ("mean_ms", fun (_, (s, _)) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, (s, _)) -> Sink.float s.Report.sd_ms);
          ("rto_flows", fun (_, (s, _)) -> Sink.int s.Report.flows_with_rto);
          ("core_loss", fun (_, (_, r)) -> Sink.float (Scenario.core_loss r));
          ("agg_loss", fun (_, (_, r)) -> Sink.float (Scenario.agg_loss r));
          ( "long_goodput_mbps",
            fun (_, (_, r)) -> Sink.float (Report.long_mean_mbps r) );
          ( "core_utilisation",
            fun (_, (_, r)) -> Sink.float (Scenario.core_utilisation r) );
        ]
      (List.map (fun (p, r) -> (p, (Report.fct_stats r, r))) pairs);
  ]

let experiment =
  Experiment.make ~name:"table1"
    ~doc:"Text claims: MMPTCP vs MPTCP summary table."
    ~points:(fun _scale -> entries)
    ~point_label:(fun (name, _) -> name)
    ~run_point:(fun scale (_, protocol) ->
      Scenario.run (Scale.scenario_config scale ~protocol))
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
