module Domain_pool = Sim_engine.Domain_pool

exception Point_failed of { experiment : string; point : string; exn : exn }
exception Remote of string

let () =
  Printexc.register_printer (function
    | Point_failed { experiment; point; exn } ->
      Some
        (Printf.sprintf "experiment %s, point [%s]: %s" experiment point
           (Printexc.to_string exn))
    (* The payload is already a printed exception: render it verbatim
       so a failure reads the same whether it crossed a process
       boundary or not. *)
    | Remote cause -> Some cause
    | _ -> None)

let default_jobs () = Domain_pool.recommended_jobs ()

let par_map ~jobs f xs =
  if jobs < 1 then invalid_arg "Runner.par_map: jobs must be >= 1";
  if jobs = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      Domain_pool.run ~domains:(min jobs n) (fun pool ->
          Array.iteri
            (fun i x ->
              Domain_pool.submit pool (fun () ->
                  results.(i) <- Some (try Ok (f x) with e -> Error e)))
            arr);
      (* The pool has been joined: every slot is filled and the writes
         happen-before this read. Results come back in input order; a
         failed job re-raises here, earliest input first. *)
      Array.to_list results
      |> List.map (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
    end
  end
