(** E2 (Roadmap: "network loads"): short-flow arrival-rate sweep.

    Varies the per-host Poisson arrival rate of short flows and
    compares MPTCP-8 with MMPTCP. The expectation from the paper: the
    two protocols are comparable at light load, and MMPTCP's advantage
    (fewer RTO-bound flows, smaller tail) widens as bursts become more
    frequent. *)

val experiment : Experiment.t
