(* Cross-validation of the fluid and hybrid flow models against the
   packet-level reference: same scenario, three models, compare
   short-flow FCT statistics.

   The comparison scenarios are light-load by design (no long
   background flows, modest arrival rate): there the packet-level FCT
   is dominated by handshake + slow-start + serialisation, exactly the
   pipeline the fluid engine models analytically, so agreement within
   a few percent is the expected behaviour and deviation is a bug in
   the rate model. Under heavy congestion the fluid abstraction has no
   queueing delay or loss by construction and divergence is expected —
   that regime is what the hybrid model's packet stage is for (see
   DESIGN.md §4k). *)

module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let models = [ Scenario.Packet; Scenario.Fluid;
               Scenario.Hybrid { handoff_bytes = Sim_workload.Flow_model.default_handoff_bytes } ]

(* The two comparison scenarios from the issue: a tiny dumbbell under
   TCP and a k=8 permutation FatTree under MPTCP-8, plus the same
   FatTree under MMPTCP exercising the scatter-phase rate model. *)
let scenarios scale =
  let light cfg = { cfg with Scenario.long_fraction = 0. } in
  (* The dumbbell funnels every crossing flow through one 100 Mb/s
     link, so the base scale's arrival rate would overflow the
     50-packet queue and put RTO recovery — which the fluid model
     cannot represent — into the reference itself. Slow the Poisson
     process to ~0.1 bottleneck load and stretch the horizon to cover
     the arrival span. *)
  let pairs = 4 in
  let dumbbell_rate = scale.Scale.rate /. 16. in
  let dumbbell_horizon =
    (float_of_int scale.Scale.flows /. (float_of_int (2 * pairs) *. dumbbell_rate))
    +. 2.
  in
  [
    ( "dumbbell-tcp",
      light
        {
          (Scale.scenario_config scale ~protocol:Scenario.Tcp_proto) with
          Scenario.topo =
            Scenario.Dumbbell_topo
              { pairs; bottleneck = Scenario.paper_link_spec };
          short_rate = dumbbell_rate;
          horizon = Sim_engine.Sim_time.of_sec dumbbell_horizon;
        } );
    ( "fattree8-mptcp",
      light
        {
          (Scale.scenario_config scale
             ~protocol:(Scenario.Mptcp_proto { subflows = 8; coupled = true }))
          with
          Scenario.topo =
            Scenario.Fattree_topo (Scenario.paper_fattree ~k:8 ~oversub:4 ());
        } );
    ( "fattree8-mmptcp",
      light
        {
          (Scale.scenario_config scale
             ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default))
          with
          Scenario.topo =
            Scenario.Fattree_topo (Scenario.paper_fattree ~k:8 ~oversub:4 ());
        } );
  ]

let points scale =
  List.concat_map
    (fun (name, cfg) ->
      List.map (fun m -> (name, m, { cfg with Scenario.model = m })) models)
    (scenarios scale)

let tolerance = 0.10

(* Relative deviation of [v] from reference [r]; 0 when both idle. *)
let rel v r = if r = 0. then (if v = 0. then 0. else infinity) else (v -. r) /. r

type row = {
  r_scenario : string;
  r_model : string;
  r_mean : float;
  r_p99 : float;
  r_dmean : float;  (* vs the packet row of the same scenario *)
  r_dp99 : float;
  r_ok : bool;
}

let rows pairs =
  let stats = List.map (fun ((s, m, _), r) -> (s, m, Report.fct_stats r)) pairs in
  let packet_ref scenario =
    List.find_map
      (fun (s, m, st) -> if s = scenario && m = Scenario.Packet then Some st else None)
      stats
  in
  List.map
    (fun (s, m, st) ->
      let p = Option.get (packet_ref s) in
      let dmean = rel st.Report.mean_ms p.Report.mean_ms in
      let dp99 = rel st.Report.p99_ms p.Report.p99_ms in
      {
        r_scenario = s;
        r_model = Scenario.model_name m;
        r_mean = st.Report.mean_ms;
        r_p99 = st.Report.p99_ms;
        r_dmean = dmean;
        r_dp99 = dp99;
        r_ok =
          (m = Scenario.Packet)
          || (Float.abs dmean <= tolerance && Float.abs dp99 <= tolerance);
      })
    stats

let render scale pairs =
  Report.header
    "EXT: fluid/hybrid cross-validation against packet-level (short-flow FCT)";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "scenario"; "model"; "mean(ms)"; "p99(ms)"; "d-mean"; "d-p99"; "<=10%" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.r_scenario;
          r.r_model;
          Table.fms r.r_mean;
          Table.fms r.r_p99;
          Printf.sprintf "%+.1f%%" (100. *. r.r_dmean);
          Printf.sprintf "%+.1f%%" (100. *. r.r_dp99);
          (if r.r_ok then "ok" else "DIVERGES");
        ])
    (rows pairs);
  Report.table table;
  Report.printf
    "deviations are vs the packet row of the same scenario; light-load \
     scenarios, where the fluid rate model is expected to track.\n"

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-fluid-xval"
      ~columns:
        [
          ("scenario", fun r -> Sink.str r.r_scenario);
          ("model", fun r -> Sink.str r.r_model);
          ("mean_ms", fun r -> Sink.float r.r_mean);
          ("p99_ms", fun r -> Sink.float r.r_p99);
          ("rel_mean", fun r -> Sink.float r.r_dmean);
          ("rel_p99", fun r -> Sink.float r.r_dp99);
          ("within_tolerance", fun r -> Sink.int (if r.r_ok then 1 else 0));
        ]
      (rows pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-fluid-xval"
    ~doc:"EXT: fluid/hybrid FCT cross-validation vs packet-level."
    ~points
    ~point_label:(fun (s, m, _) ->
      Printf.sprintf "%s/%s" s (Scenario.model_name m))
    ~run_point:(fun _scale (_, _, cfg) -> Scenario.run cfg)
    ~render ~sinks
    ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger)
    ()
