(** Figures 1(b) and 1(c): per-flow completion-time scatter.

    Figure 1(b) plots every short flow's FCT under MPTCP with 8
    subflows; Figure 1(c) is the same under MMPTCP (PS phase + 8
    subflows after switching). The paper's claim: under MPTCP many
    flows stall on (repeated) RTOs and reach seconds, while under
    MMPTCP the cloud collapses towards the x-axis with the majority of
    flows below 100 ms.

    Printed per protocol: the FCT histogram, a decimated
    [flow-id fct-ms] series (every flow whose FCT exceeds 500 ms plus a
    uniform sample of the rest), and summary statistics. *)

val run_fig1b : ?csv_dir:string -> ?jobs:int -> Scale.t -> unit
val run_fig1c : ?csv_dir:string -> ?jobs:int -> Scale.t -> unit
(** [csv_dir] additionally writes the complete per-flow series to
    [<csv_dir>/fig1b.csv] / [fig1c.csv]. Each figure is a single
    simulation; [jobs] only moves it onto a pool domain. *)

val scatter :
  Sim_workload.Scenario.result -> max_series:int -> (int * float) list
(** The decimated series described above (exposed for tests). *)
