(** Figures 1(b) and 1(c): per-flow completion-time scatter.

    Figure 1(b) plots every short flow's FCT under MPTCP with 8
    subflows; Figure 1(c) is the same under MMPTCP (PS phase + 8
    subflows after switching). The paper's claim: under MPTCP many
    flows stall on (repeated) RTOs and reach seconds, while under
    MMPTCP the cloud collapses towards the x-axis with the majority of
    flows below 100 ms.

    Printed per protocol: the FCT histogram, a decimated
    [flow-id fct-ms] series (every flow whose FCT exceeds 500 ms plus a
    uniform sample of the rest), and summary statistics. The sink
    exports the complete per-flow (id, fct, rtos) series the paper's
    scatter plots are drawn from. *)

val fig1b : Experiment.t
val fig1c : Experiment.t
(** Each figure is a single simulation point. *)

val scatter :
  Sim_workload.Scenario.result -> max_series:int -> (int * float) list
(** The decimated series described above (exposed for tests). *)
