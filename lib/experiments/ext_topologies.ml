module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

(* A VL2 Clos with the same host count as the FatTree at this scale:
   k^3/4 * oversub hosts spread over ToRs of the same radix as the
   FatTree edge switches. *)
let vl2_params scale =
  let hosts = Sim_net.Fattree.host_count (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ()) in
  let hosts_per_tor = scale.Scale.k / 2 * scale.Scale.oversub in
  {
    Sim_net.Vl2.aggs = scale.Scale.k;
    intermediates = scale.Scale.k / 2;
    tors = hosts / hosts_per_tor;
    hosts_per_tor;
    host_spec = Scenario.paper_link_spec;
    fabric_spec = Scenario.paper_link_spec;
  }

let points scale =
  List.concat_map
    (fun (tname, topo) ->
      List.map
        (fun (pname, protocol) -> (tname, topo, pname, protocol))
        [
          ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
          ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
        ])
    [
      ( "fattree",
        Scenario.Fattree_topo
          (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ()) );
      ("vl2", Scenario.Vl2_topo (vl2_params scale));
    ]

let render scale pairs =
  Report.header "E7: FatTree vs VL2-style Clos, same workload";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "topology"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  List.iter
    (fun ((tname, _, pname, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          tname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-topologies"
      ~columns:
        [
          ("topology", fun ((tname, _, _, _), _) -> Sink.str tname);
          ("protocol", fun ((_, _, pname, _), _) -> Sink.str pname);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-topologies"
    ~doc:"E7: FatTree vs VL2-style Clos." ~points
    ~point_label:(fun (tname, _, pname, _) -> tname ^ " " ^ pname)
    ~run_point:(fun scale (_, topo, _, protocol) ->
      Scenario.run { (Scale.scenario_config scale ~protocol) with Scenario.topo })
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
