module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

(* A VL2 Clos with the same host count as the FatTree at this scale:
   k^3/4 * oversub hosts spread over ToRs of the same radix as the
   FatTree edge switches. *)
let vl2_params scale =
  let hosts = Sim_net.Fattree.host_count (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ()) in
  let hosts_per_tor = scale.Scale.k / 2 * scale.Scale.oversub in
  {
    Sim_net.Vl2.aggs = scale.Scale.k;
    intermediates = scale.Scale.k / 2;
    tors = hosts / hosts_per_tor;
    hosts_per_tor;
    host_spec = Scenario.paper_link_spec;
    fabric_spec = Scenario.paper_link_spec;
  }

let run ?(jobs = 1) scale =
  Report.header "E7: FatTree vs VL2-style Clos, same workload";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "topology"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  let entries =
    List.concat_map
      (fun (tname, topo) ->
        List.map
          (fun (pname, protocol) -> (tname, topo, pname, protocol))
          [
            ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
            ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
          ])
      [
        ( "fattree",
          Scenario.Fattree_topo
            (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ()) );
        ("vl2", Scenario.Vl2_topo (vl2_params scale));
      ]
  in
  Runner.par_map ~jobs
    (fun (tname, topo, pname, protocol) ->
      let cfg = { (Scale.scenario_config scale ~protocol) with Scenario.topo } in
      (tname, pname, Scenario.run cfg))
    entries
  |> List.iter (fun (tname, pname, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          tname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ]);
  Report.table table
