(** E8 (Roadmap: "traffic matrices"): permutation vs uniform-random vs
    stride matrices under MPTCP-8 and MMPTCP. Permutation (the Figure 1
    matrix) maximises ECMP collision pain for subflow-pinned paths;
    random destinations decorrelate over time; stride is the classic
    adversarial pattern for structured fabrics. *)

val experiment : Experiment.t
