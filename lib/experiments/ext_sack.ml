module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let run ?(jobs = 1) scale =
  Report.header "E9: NewReno vs SACK loss recovery (extension)";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "recovery"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  let entries =
    List.concat_map
      (fun (rname, sack) ->
        List.map
          (fun (pname, protocol) -> (rname, sack, pname, protocol))
          [
            ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
            ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
          ])
      [ ("newreno", false); ("sack", true) ]
  in
  Runner.par_map ~jobs
    (fun (rname, sack, pname, protocol) ->
      let base = Scale.scenario_config scale ~protocol in
      let cfg =
        {
          base with
          Scenario.params = { base.Scenario.params with Sim_tcp.Tcp_params.sack };
        }
      in
      (rname, pname, Scenario.run cfg))
    entries
  |> List.iter (fun (rname, pname, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          rname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ]);
  Report.table table
