module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let points _scale =
  List.concat_map
    (fun (rname, sack) ->
      List.map
        (fun (pname, protocol) -> (rname, sack, pname, protocol))
        [
          ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
          ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
        ])
    [ ("newreno", false); ("sack", true) ]

let render scale pairs =
  Report.header "E9: NewReno vs SACK loss recovery (extension)";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "recovery"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  List.iter
    (fun ((rname, _, pname, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          rname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-sack"
      ~columns:
        [
          ("recovery", fun ((rname, _, _, _), _) -> Sink.str rname);
          ("protocol", fun ((_, _, pname, _), _) -> Sink.str pname);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-sack"
    ~doc:"E9: NewReno vs SACK loss recovery." ~points
    ~point_label:(fun (rname, _, pname, _) -> rname ^ " " ^ pname)
    ~run_point:(fun scale (_, sack, _, protocol) ->
      let base = Scale.scenario_config scale ~protocol in
      Scenario.run
        {
          base with
          Scenario.params = { base.Scenario.params with Sim_tcp.Tcp_params.sack };
        })
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
