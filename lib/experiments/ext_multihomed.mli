(** E4 (Roadmap: "multi-homed network topologies"): burst tolerance
    with dual-homed hosts.

    Runs the paper workload on the dual-homed FatTree variant, where
    every host attaches to two edge switches, and compares against the
    single-homed fabric. The paper's conjecture: more parallel paths
    at the access layer raise burst tolerance — scatter can spread
    even the first hop — so MMPTCP improves further. *)

val experiment : Experiment.t
