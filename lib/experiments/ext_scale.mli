(** Fluid-model scale sweep: k=16 FatTree (1024 hosts), 200x the base
    short-flow budget (100k Poisson shorts at the default scale)
    against 1/3 long background flows. Model pinned to fluid. *)

val experiment : Experiment.t
