(** Renders flow-ledger dumps into [--out] artifacts.

    For every probed point the sink emits, under the prefix
    [ledger-<experiment>-<label>]:

    - a per-flow table (CSV + JSON): one row per flow in arrival
      order — conn, endpoints, size, class, every lifecycle timestamp
      (-1 when the event did not occur), FCT, retransmit counts,
      bytes;
    - a JSONL stream ([.jsonl]): the same records one JSON object per
      line, sentinel timestamps omitted;
    - an FCT-percentile summary table ([-summary]): p50/p90/p99/max
      flow completion time in milliseconds by size class — the
      paper's CDF inputs, straight from the ledger.

    Everything is a pure function of the dump, so the artifacts are
    byte-identical at any [--jobs] and in both exec modes. *)

val artifacts :
  experiment:string ->
  (string * Sim_obs.Flow_ledger.dump) list ->
  Sink.artifact list
(** [artifacts ~experiment pairs] with [pairs] the (point label,
    ledger dump) list in point order. *)
