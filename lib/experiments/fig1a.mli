(** Figure 1(a): MPTCP short-flow completion time vs subflow count.

    Sweeps the number of MPTCP subflows from [lo] to [hi] over the
    paper workload and prints, per point, the mean and standard
    deviation of short-flow completion times (the paper's main panel)
    and the mean alone (the embedded zoom panel). The paper's claim:
    both grow with the subflow count, the deviation dramatically so,
    because more subflows mean smaller per-subflow windows and
    therefore more RTO-bound losses. *)

val configs :
  ?lo:int -> ?hi:int -> Scale.t -> (int * Sim_workload.Scenario.config) list
(** The swept (subflow count, config) list, in sweep order. *)

val experiment : Experiment.t
(** Points are subflow counts 1–9; the sink exports the swept series
    (subflows, mean, sd, p99, rto-flows). *)
