(** Experiments as first-class values.

    Every paper artefact and extension experiment is the same shape: a
    list of independent simulation {e points} swept from a {!Scale.t},
    a per-point runner, and a renderer that prints the artefact from
    the completed [(point, result)] pairs. Reifying that shape lets
    {!Registry} flatten the points of {e many} experiments into one
    shared job queue ([all --jobs N] with no inter-experiment
    barriers) while rendering strictly in registry order — stdout is
    byte-identical at every job count because nothing prints until
    every point of an experiment has finished.

    A new experiment is its own module exposing a [t] built with
    {!make}, plus one line in {!Registry.all}; the CLI, [all], [--list]
    and the sink artifacts all derive from the registry. *)

type ('p, 'r) spec = {
  name : string;  (** CLI subcommand and artifact basename, e.g. ["fig1a"] *)
  doc : string;  (** one-line description for [--list] and CLI help *)
  points : Scale.t -> 'p list;  (** the sweep, in render order *)
  point_label : 'p -> string;  (** stable label for errors and the manifest *)
  run_point : Scale.t -> 'p -> 'r;
      (** one independent simulation; runs on a worker domain *)
  render : Scale.t -> ('p * 'r) list -> unit;
      (** print the artefact via {!Report}; called after the whole
          sweep completed, pairs in [points] order *)
  sinks : Scale.t -> ('p * 'r) list -> Sink.table list;
      (** declarative artifact tables for [--out DIR]; [fun _ _ -> []]
          if the experiment exports nothing *)
  capture : 'r -> Sim_obs.Capture.t option;
      (** extract the probe capture from a point result, if the result
          type carries one ([Scenario.result.obs]); rendered by
          {!Probe_sink} into per-point time-series artifacts *)
  ledger : 'r -> Sim_obs.Flow_ledger.dump option;
      (** extract the flow-ledger dump from a point result, if the
          result type carries one ([Scenario.result.ledger]); rendered
          by {!Ledger_sink} into per-flow lifecycle artifacts *)
}

type t = E : ('p, 'r) spec -> t  (** packed: point/result types are internal *)

val make :
  name:string ->
  doc:string ->
  points:(Scale.t -> 'p list) ->
  point_label:('p -> string) ->
  run_point:(Scale.t -> 'p -> 'r) ->
  render:(Scale.t -> ('p * 'r) list -> unit) ->
  ?sinks:(Scale.t -> ('p * 'r) list -> Sink.table list) ->
  ?capture:('r -> Sim_obs.Capture.t option) ->
  ?ledger:('r -> Sim_obs.Flow_ledger.dump option) ->
  unit ->
  t

val name : t -> string
val doc : t -> string

(** {2 Execution}

    An {!instance} is an experiment bound to a scale: its points have
    become labelled jobs whose results accumulate inside the instance.
    The caller fans the jobs of any number of instances over one
    {!Runner.par_map} submission, then calls {!finish} on each
    instance in registry order. *)

type job

val job_label : job -> string

val job_experiment : job -> string
(** Name of the experiment the job belongs to — the coordinator's
    metadata for attributing a worker-process failure. *)

val run_job : job -> unit
(** Run the point on the calling domain, stashing its result and
    duration in the owning instance. Raises {!Runner.Point_failed}
    around any escaping exception. *)

val run_job_serial : job -> (string, string) result
(** Worker-process side: run the point and return its result (and
    [clock] duration) as marshalled bytes instead of stashing them —
    nothing is written into the instance. [Error] is
    [Printexc.to_string] of whatever the point raised. *)

val accept_job : job -> string -> unit
(** Coordinator side: store a payload produced by {!run_job_serial}
    for the {e same} job (same experiment list, scale and point index)
    into the instance, as if {!run_job} had run locally. The identical
    job must have produced the bytes — [instantiate] builds both
    closures over the same result type, which is what makes the
    unmarshal well-typed. *)

type instance

val instantiate : ?clock:(unit -> float) -> t -> Scale.t -> instance
(** [clock] (a monotonic-enough seconds source, e.g.
    [Unix.gettimeofday] injected by the executable — library code
    must not read the wall clock, simlint D002) prices each point for
    the manifest; the default clock makes every duration 0. *)

val instance_name : instance -> string

val instance_jobs : instance -> job list
(** In [points] order. Jobs may run on any domain in any order; the
    {!Domain_pool} join gives the happens-before edge that makes
    their writes visible to {!finish}. *)

val finish : instance -> Sink.artifact list
(** Render the experiment (prints via {!Report}) and return its sink
    artifacts: the declared tables, any probe time-series artifacts
    extracted via [capture], and any flow-ledger artifacts extracted
    via [ledger]. Must be called after every job of the instance has
    run — [Invalid_argument] otherwise. *)

val point_seconds : instance -> (string * float) list
(** Per-point (label, duration) as measured by [clock], in [points]
    order; meaningful only after the jobs ran. *)

val point_spans : instance -> (string * Prof.span) list
(** Per-point (label, profiling span) in [points] order — wall time
    plus [Gc] allocation deltas, measured wherever the point ran
    (worker domain or worker process); meaningful only after the jobs
    ran. Rendered by {!Registry.run} under [--prof]. *)
