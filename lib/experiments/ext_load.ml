module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let rates = [ 10.; 25.; 50.; 100. ]

let run ?(jobs = 1) scale =
  Report.header "E2: effect of network load (short-flow arrival rate)";
  Report.printf "workload: %s (rate swept)\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "rate(flows/s/host)";
          "protocol";
          "mean(ms)";
          "sd(ms)";
          "p99(ms)";
          "rto-flows";
        ]
  in
  let entries =
    List.concat_map
      (fun rate ->
        List.map
          (fun (name, protocol) -> (rate, name, protocol))
          [
            ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
            ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
          ])
      rates
  in
  Runner.par_map ~jobs
    (fun (rate, name, protocol) ->
      let cfg = Scale.scenario_config { scale with Scale.rate } ~protocol in
      (rate, name, Scenario.run cfg))
    entries
  |> List.iter (fun (rate, name, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          Printf.sprintf "%.0f" rate;
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ]);
  Report.table table
