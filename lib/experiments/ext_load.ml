module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let rates = [ 10.; 25.; 50.; 100. ]

let points _scale =
  List.concat_map
    (fun rate ->
      List.map
        (fun (name, protocol) -> (rate, name, protocol))
        [
          ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
          ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
        ])
    rates

let render scale pairs =
  Report.header "E2: effect of network load (short-flow arrival rate)";
  Report.printf "workload: %s (rate swept)\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "rate(flows/s/host)";
          "protocol";
          "mean(ms)";
          "sd(ms)";
          "p99(ms)";
          "rto-flows";
        ]
  in
  List.iter
    (fun ((rate, name, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          Printf.sprintf "%.0f" rate;
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-load"
      ~columns:
        [
          ("rate", fun ((rate, _, _), _) -> Sink.float rate);
          ("protocol", fun ((_, name, _), _) -> Sink.str name);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-load" ~doc:"E2: network-load sweep." ~points
    ~point_label:(fun (rate, name, _) -> Printf.sprintf "rate=%.0f %s" rate name)
    ~run_point:(fun scale (rate, _, protocol) ->
      Scenario.run (Scale.scenario_config { scale with Scale.rate } ~protocol))
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
