(* Host-time self-profiling spans: wall-clock plus Gc allocation
   deltas around each experiment point. A span is measured wherever
   the point actually ran — in-process on a worker domain, or inside a
   process-pool worker, whose span marshals back with the result — so
   the coordinating process can render and total them no matter which
   exec mode produced them. Values are host-side and therefore not
   deterministic; the CI diff strips them and compares shape only. *)

type span = {
  sp_wall_s : float;
  sp_minor_words : float;
  sp_promoted_words : float;
  sp_major_words : float;
  sp_minor_gcs : int;
  sp_major_gcs : int;
}

let zero =
  {
    sp_wall_s = 0.;
    sp_minor_words = 0.;
    sp_promoted_words = 0.;
    sp_major_words = 0.;
    sp_minor_gcs = 0;
    sp_major_gcs = 0;
  }

let add a b =
  {
    sp_wall_s = a.sp_wall_s +. b.sp_wall_s;
    sp_minor_words = a.sp_minor_words +. b.sp_minor_words;
    sp_promoted_words = a.sp_promoted_words +. b.sp_promoted_words;
    sp_major_words = a.sp_major_words +. b.sp_major_words;
    sp_minor_gcs = a.sp_minor_gcs + b.sp_minor_gcs;
    sp_major_gcs = a.sp_major_gcs + b.sp_major_gcs;
  }

let measure ~clock f =
  let g0 = Gc.quick_stat () in
  let t0 = clock () in
  let r = f () in
  let dt = clock () -. t0 in
  let g1 = Gc.quick_stat () in
  ( r,
    {
      sp_wall_s = dt;
      sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      sp_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      sp_minor_gcs = g1.Gc.minor_collections - g0.Gc.minor_collections;
      sp_major_gcs = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

(* One table per experiment, one row per point plus a TOTAL row the
   coordinator aggregates — this is where process-mode workers' spans
   meet. *)
let artifact ~experiment spans =
  let total = List.fold_left (fun acc (_, s) -> add acc s) zero spans in
  let rows = spans @ [ ("TOTAL", total) ] in
  Sink.Table
    (Sink.table
       ~name:(Printf.sprintf "prof-%s" experiment)
       ~columns:
         [
           ("point", fun (l, _) -> Sink.str l);
           ("wall_s", fun (_, s) -> Sink.float s.sp_wall_s);
           ("minor_words", fun (_, s) -> Sink.float s.sp_minor_words);
           ("promoted_words", fun (_, s) -> Sink.float s.sp_promoted_words);
           ("major_words", fun (_, s) -> Sink.float s.sp_major_words);
           ("minor_gcs", fun (_, s) -> Sink.int s.sp_minor_gcs);
           ("major_gcs", fun (_, s) -> Sink.int s.sp_major_gcs);
         ]
       rows)
