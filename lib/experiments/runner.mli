(** Parallel experiment execution.

    Every paper artefact is regenerated from a sweep of *independent*
    simulations; since a simulation's whole state hangs off its
    {!Sim_engine.Scheduler.t}, the sweep is embarrassingly parallel.
    [par_map] fans the runs out over a fixed {!Sim_engine.Domain_pool}
    and reassembles results in input order, so an experiment's output
    is byte-identical whatever the job count. *)

exception Point_failed of { experiment : string; point : string; exn : exn }
(** Wrapper identifying which experiment point died when a job on the
    shared queue raises: without it, a crash deep in a [--full]-scale
    sweep is unattributable. Raised by the jobs built in
    {!Experiment.instantiate}; re-raised as-is by {!par_map}. A
    printer is registered, so [Printexc.to_string] renders
    ["experiment NAME, point [LABEL]: <cause>"]. *)

exception Remote of string
(** A point failure reported by a worker process. Exceptions do not
    survive marshalling, so the worker sends [Printexc.to_string] of
    the original and the coordinator wraps that cause string in
    [Remote] inside a reconstructed {!Point_failed}. Its printer
    renders the payload verbatim, making the failure message identical
    to the in-process one. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], floored at 1. *)

val par_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [par_map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains, preserving input order. [jobs = 1] runs sequentially on
    the calling domain with no pool at all. If any [f x] raises, the
    whole map raises (the exception of the earliest failed input) —
    after every worker has been joined, so no domain is left behind.
    [Invalid_argument] if [jobs < 1]. *)
