(** The experiment registry: every experiment of the suite, in the
    canonical order of DESIGN.md's index (F1a, F1b, F1c, T1, E1–E9).

    The CLI (subcommands, [--list], [all --only]), the [all] command
    body, and the sink artifacts are all derived from {!all}; adding
    an experiment means writing its module and adding one line here. *)

val all : Experiment.t list

val names : unit -> string list
(** Registry order. *)

val find : string -> Experiment.t option

val select : string list -> (Experiment.t list, string) result
(** [select names] is the named experiments in {e registry} order
    (duplicates collapsed), or [Error name] for the first unknown
    name. *)

type exec_mode =
  | Domains  (** fan out over OCaml domains in this process *)
  | Processes
      (** fan out over worker processes, each with a private heap —
          the scalable mode; allocation-heavy simulations contend on
          the domains' shared major heap *)

val exec_mode_to_string : exec_mode -> string
val exec_mode_of_string : string -> exec_mode option

val run :
  ?clock:(unit -> float) ->
  ?out:string ->
  ?git:string ->
  ?exec_mode:exec_mode ->
  ?worker_argv:string array ->
  ?prof:bool ->
  jobs:int ->
  Scale.t ->
  Experiment.t list ->
  unit
(** Run the given experiments as one batch: every point of every
    experiment is flattened into a single shared job queue — no
    barrier between experiments, so a straggler point in one
    experiment cannot idle the others' workers — then each experiment
    renders in list order. All rendering and artifact writing happens
    here in the coordinating process after every point has finished,
    which is what keeps stdout and [--out] artifacts byte-identical
    at every [jobs] value and in both exec modes.

    [exec_mode] (default [Domains]) picks the fan-out backend for
    [jobs > 1]; [jobs = 1] always runs sequentially in-process.
    [Processes] requires [worker_argv] — the command line of a
    process that will call {!worker} with the {e same} scale and
    experiment list (conventionally this process's own argv plus a
    hidden [--worker] flag) — and falls back to the sequential path
    when it is missing. A failed point raises {!Runner.Point_failed}
    (earliest point first) in either mode.

    [prof] (default false) appends a [prof-<experiment>] artifact per
    experiment — per-point wall-clock and [Gc] allocation spans with a
    TOTAL row, measured wherever the point ran (worker domains, or
    worker processes whose spans marshal back with the results).
    Span values are host-side and nondeterministic, so they render
    only under [out]; with [prof] but no [out] a fixed one-line note
    is printed instead and stdout stays deterministic.

    [out] writes each experiment's sink tables (CSV + JSON) and a
    [manifest.json] (scale, jobs, [git], per-point timings from
    [clock], total wall-clock) into the directory, creating it if
    missing, and prints a final one-line note. [clock] should be the
    executable's wall-clock (library code must not read the clock
    itself); without it the manifest's timings are zero. *)

val worker : ?clock:(unit -> float) -> Scale.t -> Experiment.t list -> unit
(** Worker-process body for [Processes] mode: rebuild the same flat
    job queue as {!run} (determinism of [instantiate] makes parent
    and worker agree on what index [i] means), then serve job indices
    from stdin until the coordinator closes it. Never renders, never
    writes artifacts; stdout carries only the reply protocol. *)
