(** The experiment registry: every experiment of the suite, in the
    canonical order of DESIGN.md's index (F1a, F1b, F1c, T1, E1–E9).

    The CLI (subcommands, [--list], [all --only]), the [all] command
    body, and the sink artifacts are all derived from {!all}; adding
    an experiment means writing its module and adding one line here. *)

val all : Experiment.t list

val names : unit -> string list
(** Registry order. *)

val find : string -> Experiment.t option

val select : string list -> (Experiment.t list, string) result
(** [select names] is the named experiments in {e registry} order
    (duplicates collapsed), or [Error name] for the first unknown
    name. *)

val run :
  ?clock:(unit -> float) ->
  ?out:string ->
  ?git:string ->
  jobs:int ->
  Scale.t ->
  Experiment.t list ->
  unit
(** Run the given experiments as one batch: every point of every
    experiment is flattened into a single {!Runner.par_map}
    submission over one shared domain pool — no barrier between
    experiments, so a straggler point in one experiment cannot idle
    the others' domains — then each experiment renders in list order.
    Stdout is therefore byte-identical at every [jobs] value.

    [out] writes each experiment's sink tables (CSV + JSON) and a
    [manifest.json] (scale, jobs, [git], per-point timings from
    [clock], total wall-clock) into the directory, creating it if
    missing, and prints a final one-line note. [clock] should be the
    executable's wall-clock (library code must not read the clock
    itself); without it the manifest's timings are zero. *)
