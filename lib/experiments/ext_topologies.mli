(** E7 (Roadmap: "simulating several data centre topologies"): the
    same mixed workload on a FatTree and a VL2-style Clos of equal host
    count, under MPTCP-8 and MMPTCP. MMPTCP's topology-aware threshold
    adapts automatically (it only consumes [Topology.path_count]), so
    the qualitative ordering should carry over — the paper's argument
    that one transport can serve disparate fabrics. *)

val experiment : Experiment.t
