module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let multihomed_topo scale =
  Scenario.Multihomed_topo
    {
      Sim_net.Multihomed.k = scale.Scale.k;
      oversub = scale.Scale.oversub;
      host_spec = Scenario.paper_link_spec;
      fabric_spec = Scenario.paper_link_spec;
    }

let run ?(jobs = 1) scale =
  Report.header "E4: single-homed vs dual-homed FatTree";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "topology";
          "protocol";
          "mean(ms)";
          "sd(ms)";
          "p99(ms)";
          "rto-flows";
        ]
  in
  let entries =
    List.concat_map
      (fun (tname, topo) ->
        List.map
          (fun (pname, protocol) -> (tname, topo, pname, protocol))
          [
            ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
            ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
          ])
      [
        ( "fattree",
          Scenario.Fattree_topo
            (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ()) );
        ("dual-homed", multihomed_topo scale);
      ]
  in
  Runner.par_map ~jobs
    (fun (tname, topo, pname, protocol) ->
      let cfg = { (Scale.scenario_config scale ~protocol) with Scenario.topo } in
      (tname, pname, Scenario.run cfg))
    entries
  |> List.iter (fun (tname, pname, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          tname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ]);
  Report.table table
