module Scenario = Sim_workload.Scenario
module Strategy = Mmptcp.Strategy
module Table = Sim_stats.Table

let strategies =
  [
    ("volume-35KB", Strategy.Data_volume 35_000);
    ("volume-100KB", Strategy.Data_volume 100_000);
    ("volume-500KB", Strategy.Data_volume 500_000);
    ("volume-2MB", Strategy.Data_volume 2_000_000);
    ("congestion-event", Strategy.Congestion_event);
    ("never (pure PS)", Strategy.Never);
  ]

let run ?(jobs = 1) scale =
  Report.header "E1: MMPTCP phase-switching strategies";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "switching";
          "short mean(ms)";
          "short sd(ms)";
          "rto-flows";
          "long goodput(Mb/s)";
        ]
  in
  Runner.par_map ~jobs
    (fun (name, switch) ->
      let strategy = { Strategy.default with Strategy.switch } in
      let cfg =
        Scale.scenario_config scale ~protocol:(Scenario.Mmptcp_proto strategy)
      in
      (name, Scenario.run cfg))
    strategies
  |> List.iter (fun (name, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          string_of_int s.Report.flows_with_rto;
          Printf.sprintf "%.1f" (Report.long_mean_mbps r);
        ]);
  Report.table table
