module Scenario = Sim_workload.Scenario
module Strategy = Mmptcp.Strategy
module Table = Sim_stats.Table

let strategies =
  [
    ("volume-35KB", Strategy.Data_volume 35_000);
    ("volume-100KB", Strategy.Data_volume 100_000);
    ("volume-500KB", Strategy.Data_volume 500_000);
    ("volume-2MB", Strategy.Data_volume 2_000_000);
    ("congestion-event", Strategy.Congestion_event);
    ("never (pure PS)", Strategy.Never);
  ]

let render scale pairs =
  Report.header "E1: MMPTCP phase-switching strategies";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "switching";
          "short mean(ms)";
          "short sd(ms)";
          "rto-flows";
          "long goodput(Mb/s)";
        ]
  in
  List.iter
    (fun ((name, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          string_of_int s.Report.flows_with_rto;
          Printf.sprintf "%.1f" (Report.long_mean_mbps r);
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-switching"
      ~columns:
        [
          ("switching", fun ((name, _), _) -> Sink.str name);
          ("mean_ms", fun (_, (s, _)) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, (s, _)) -> Sink.float s.Report.sd_ms);
          ("rto_flows", fun (_, (s, _)) -> Sink.int s.Report.flows_with_rto);
          ( "long_goodput_mbps",
            fun (_, (_, r)) -> Sink.float (Report.long_mean_mbps r) );
        ]
      (List.map (fun (p, r) -> (p, (Report.fct_stats r, r))) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-switching"
    ~doc:"E1: phase-switching strategies."
    ~points:(fun _scale -> strategies)
    ~point_label:(fun (name, _) -> name)
    ~run_point:(fun scale (_, switch) ->
      let strategy = { Strategy.default with Strategy.switch } in
      Scenario.run
        (Scale.scenario_config scale ~protocol:(Scenario.Mmptcp_proto strategy)))
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
