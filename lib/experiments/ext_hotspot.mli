(** E3 (Roadmap: "effect of hotspots"): hotspot traffic matrices.

    A fraction of short-flow senders all target a handful of hot
    hosts, concentrating load on a few downlinks, while the remaining
    hosts follow the permutation matrix. Compares TCP, MPTCP-8 and
    MMPTCP under this skewed matrix. *)

val experiment : Experiment.t
