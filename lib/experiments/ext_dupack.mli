(** E6 (paper §2 "Packet Scatter Phase"): dup-ACK threshold ablation.

    The scatter phase must not mistake reordering for loss. The paper
    proposes (1) a topology-derived threshold and (2) an RR-TCP-style
    adaptive scheme. This ablation runs MMPTCP with: the standard
    static threshold 3 (no protection), the topology-aware threshold,
    the adaptive scheme, and an effectively-infinite threshold (fast
    retransmit disabled). Reported: FCT statistics, RTO-bound flows,
    spurious fast retransmits avoided. *)

val experiment : Experiment.t
