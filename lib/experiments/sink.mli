(** Structured result sinks for the experiment registry.

    An experiment declares its artifact as a list of named columns
    over its result rows; the sink layer renders that one declaration
    as both a CSV file (RFC 4180, via {!Sim_stats.Csv}) and a JSON
    file, and writes a run manifest describing every artifact of an
    invocation. Sinks write files only — they never touch stdout, so
    they cannot perturb the byte-identical-output guarantee of the
    parallel runner (simlint rule D004 covers console I/O; file
    artifacts under an explicit [--out DIR] are deliberately outside
    its scope). *)

(** {2 Cells} *)

type cell
(** One datum: an int, a float or a string. Rendered as [%.6g] /
    bare text in CSV; in JSON, non-finite floats become [null]
    (JSON has no NaN or infinity). *)

val int : int -> cell
val float : float -> cell
val str : string -> cell

(** {2 Tables} *)

type table
(** A materialised artifact: a name plus columns of cells. *)

val table : name:string -> columns:(string * ('a -> cell)) list -> 'a list -> table
(** [table ~name ~columns rows] applies each column's projection to
    every row. [name] becomes the artifact basename ([name.csv],
    [name.json]). *)

val name : table -> string
val columns : table -> string list
val rows : table -> cell list list

val csv_string : table -> string
val json_string : table -> string
(** [{ "name": ..., "columns": [...], "rows": [[...], ...] }] *)

val write : dir:string -> table -> string list
(** Write [name.csv] and [name.json] under [dir] (created if
    missing); returns the basenames written, CSV first. Raises
    [Sys_error] on unwritable paths. *)

(** {2 Artifacts}

    Most artifacts are tables (rendered as CSV + JSON); streams that
    are not tabular — the probe sampler's JSONL event log — are raw
    files written verbatim. *)

type artifact =
  | Table of table
  | Raw of { basename : string; contents : string }

val write_artifact : dir:string -> artifact -> string list
(** Write one artifact under [dir]; returns the basenames written
    ([name.csv; name.json] for a table, the single basename for a raw
    file). *)

(** {2 Run manifest} *)

type experiment_entry = {
  e_name : string;
  e_artifacts : string list;  (** basenames under the out dir *)
  e_points : (string * float) list;
      (** per-point (label, seconds on its worker domain) *)
}

val manifest_string :
  scale:Scale.t ->
  jobs:int ->
  git:string option ->
  total_seconds:float ->
  experiment_entry list ->
  string
(** The manifest as JSON: tool name, the full scale record, job
    count, [git describe] output when available, end-to-end
    wall-clock, and per-experiment entries. An experiment's
    [seconds] is the sum of its point durations — under the shared
    cross-experiment queue points of different experiments
    interleave, so per-experiment *wall*-clock is not defined. *)

val write_manifest :
  dir:string ->
  scale:Scale.t ->
  jobs:int ->
  git:string option ->
  total_seconds:float ->
  experiment_entry list ->
  string
(** Write [manifest.json] under [dir]; returns its basename. *)
