(** Cross-validation of the fluid and hybrid flow models against the
    packet-level reference on light-load scenarios (tiny dumbbell,
    k=8 permutation FatTree): short-flow FCT mean/p99 must track the
    packet rows within 10%. *)

val experiment : Experiment.t
