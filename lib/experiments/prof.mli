(** Host-time self-profiling: wall-clock + [Gc] allocation spans
    around experiment points.

    A {!span} is measured where the point ran — on a worker domain, or
    inside a process-pool worker (spans are plain data and marshal
    back with the point result) — and rendered by the coordinating
    process into one [prof-<experiment>] table per experiment with a
    TOTAL row aggregated across all points and workers.

    Span values are host-side measurements and are {e not}
    deterministic; CI compares the artifact's shape (rows and
    columns), never its values. *)

type span = {
  sp_wall_s : float;  (** wall-clock seconds from the injected clock *)
  sp_minor_words : float;
  sp_promoted_words : float;
  sp_major_words : float;
  sp_minor_gcs : int;
  sp_major_gcs : int;
}

val zero : span

val add : span -> span -> span
(** Field-wise sum — how the coordinator totals spans from many
    points and worker processes. *)

val measure : clock:(unit -> float) -> (unit -> 'a) -> 'a * span
(** [measure ~clock f] runs [f] and prices it: wall time from [clock]
    (injected by the executable — library code must not read the
    clock, simlint D002) and allocation deltas from [Gc.quick_stat]. *)

val artifact : experiment:string -> (string * span) list -> Sink.artifact
(** [artifact ~experiment spans] renders the per-point spans (label,
    span), in point order, as the [prof-<experiment>] table with a
    trailing TOTAL row. *)
