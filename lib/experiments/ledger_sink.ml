(* Renders flow-ledger dumps into --out artifacts: a per-flow table
   (CSV + JSON), a JSONL stream, and an FCT-percentile summary by size
   class — the paper's CDF inputs, straight from the ledger. Pure
   functions of the dump, so the artifacts inherit its determinism
   guarantee (byte-identical at any job count, in both exec modes). *)

module L = Sim_obs.Flow_ledger

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    label

let flow_table ~prefix (d : L.dump) =
  Sink.table ~name:prefix
    ~columns:
      [
        ("conn", fun (e : L.entry) -> Sink.int e.L.e_conn);
        ("src", fun e -> Sink.int e.L.e_src);
        ("dst", fun e -> Sink.int e.L.e_dst);
        ("size", fun e -> Sink.int e.L.e_size);
        ("class", fun e -> Sink.str (if e.L.e_long then "long" else "short"));
        ("start_ns", fun e -> Sink.int e.L.e_start_ns);
        ("handshake_ns", fun e -> Sink.int e.L.e_handshake_ns);
        ("switch_ns", fun e -> Sink.int e.L.e_switch_ns);
        ("promote_ns", fun e -> Sink.int e.L.e_promote_ns);
        ("complete_ns", fun e -> Sink.int e.L.e_complete_ns);
        ( "fct_ns",
          fun e ->
            Sink.int (match L.fct_ns e with Some v -> v | None -> -1) );
        ("rtos", fun e -> Sink.int e.L.e_rtos);
        ("fast_rtxs", fun e -> Sink.int e.L.e_fast_rtxs);
        ("bytes", fun e -> Sink.int e.L.e_bytes);
      ]
    (Array.to_list d)

(* One JSON object per flow; -1 sentinel timestamps are omitted, so a
   record reads as "these lifecycle events happened". *)
let jsonl (d : L.dump) =
  let buf = Buffer.create (256 * Array.length d) in
  Array.iter
    (fun (e : L.entry) ->
      Buffer.add_char buf '{';
      Printf.bprintf buf
        "\"conn\":%d,\"src\":%d,\"dst\":%d,\"size\":%d,\"class\":%S,\"start_ns\":%d"
        e.L.e_conn e.L.e_src e.L.e_dst e.L.e_size
        (if e.L.e_long then "long" else "short")
        e.L.e_start_ns;
      let opt name v = if v >= 0 then Printf.bprintf buf ",%S:%d" name v in
      opt "handshake_ns" e.L.e_handshake_ns;
      opt "switch_ns" e.L.e_switch_ns;
      opt "promote_ns" e.L.e_promote_ns;
      opt "complete_ns" e.L.e_complete_ns;
      (match L.fct_ns e with
      | Some v -> Printf.bprintf buf ",\"fct_ns\":%d" v
      | None -> ());
      Printf.bprintf buf ",\"rtos\":%d,\"fast_rtxs\":%d,\"bytes\":%d}\n"
        e.L.e_rtos e.L.e_fast_rtxs e.L.e_bytes)
    d;
  Buffer.contents buf

(* FCT percentiles by size class over the completed flows — the
   distribution inputs behind the paper's CDFs. *)
let summary_table ~prefix (d : L.dump) =
  let classes = [ ("short", false); ("long", true) ] in
  let rows =
    List.filter_map
      (fun (cls, long) ->
        let flows =
          Array.to_list d |> List.filter (fun e -> e.L.e_long = long)
        in
        if flows = [] then None
        else begin
          let fcts_ms =
            List.filter_map
              (fun e ->
                Option.map (fun ns -> float_of_int ns /. 1e6) (L.fct_ns e))
              flows
            |> Array.of_list
          in
          Array.sort compare fcts_ms;
          let pct q =
            if Array.length fcts_ms = 0 then nan
            else Sim_stats.Summary.percentile fcts_ms q
          in
          Some (cls, List.length flows, Array.length fcts_ms, pct)
        end)
      classes
  in
  Sink.table
    ~name:(prefix ^ "-summary")
    ~columns:
      [
        ("class", fun (cls, _, _, _) -> Sink.str cls);
        ("flows", fun (_, n, _, _) -> Sink.int n);
        ("completed", fun (_, _, c, _) -> Sink.int c);
        ("fct_p50_ms", fun (_, _, _, pct) -> Sink.float (pct 50.));
        ("fct_p90_ms", fun (_, _, _, pct) -> Sink.float (pct 90.));
        ("fct_p99_ms", fun (_, _, _, pct) -> Sink.float (pct 99.));
        ("fct_max_ms", fun (_, _, _, pct) -> Sink.float (pct 100.));
      ]
    rows

let dump_artifacts ~experiment ~label (d : L.dump) =
  let prefix = Printf.sprintf "ledger-%s-%s" experiment (sanitize label) in
  [
    Sink.Table (flow_table ~prefix d);
    Sink.Raw { basename = prefix ^ ".jsonl"; contents = jsonl d };
    Sink.Table (summary_table ~prefix d);
  ]

let artifacts ~experiment pairs =
  List.concat_map
    (fun (label, d) -> dump_artifacts ~experiment ~label d)
    pairs
