(** Experiment scale presets.

    The paper simulates a 512-server (k=8, 4:1) FatTree with on the
    order of 100 K short flows; that takes tens of minutes per protocol
    in this simulator. [small] is the default benchmark scale — a k=4
    4:1 fat-tree (64 servers) and hundreds of flows — at which every
    qualitative shape of the paper already holds and the full suite
    runs in minutes. [full] is the paper-scale configuration. *)

type t = {
  k : int;
  oversub : int;
  flows : int;  (** total short flows *)
  rate : float;  (** Poisson arrivals per short host, flows/s *)
  seed : int;
  horizon_s : float;  (** simulation stop time *)
  model : Sim_workload.Scenario.model;
      (** which engine serves the flows (packet / fluid / hybrid);
          presets carry [Packet], the CLI overrides via [--model] *)
  obs : Sim_workload.Scenario.obs_cfg;
      (** observability switches applied to every point; presets carry
          {!Sim_workload.Scenario.default_obs} (everything off) *)
}

val tiny : t
(** Seconds-per-experiment smoke scale (CI and the bechamel suite). *)

val small : t
val full : t
val pp : Format.formatter -> t -> unit
(** Every field, including the horizon and flow model: two runs that
    differ only in [horizon_s] (or only in [model]) must print
    distinguishable "workload:" lines. *)

val scenario_config :
  t -> protocol:Sim_workload.Scenario.protocol -> Sim_workload.Scenario.config
(** The paper workload (permutation TM, 1/3 long hosts, 70 KB shorts)
    at this scale. *)
