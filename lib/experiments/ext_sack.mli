(** E9 (extension beyond the paper): SACK-based loss recovery.

    The paper-era ns-3 models recover with NewReno only; part of
    MPTCP's short-flow pain is that a tiny subflow window cannot even
    produce three duplicate ACKs, and NewReno repairs one hole per
    RTT. This ablation reruns the headline comparison with
    selective-acknowledgement recovery enabled in every sender, asking
    a forward-looking question the paper leaves open: how much of
    MMPTCP's advantage survives once loss recovery itself improves? *)

val experiment : Experiment.t
