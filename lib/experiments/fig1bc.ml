module Time = Sim_engine.Sim_time
module Scenario = Sim_workload.Scenario
module Histogram = Sim_stats.Histogram

let scatter r ~max_series =
  let all =
    Array.to_list r.Scenario.shorts
    |> List.filter_map (fun f ->
        match f.Scenario.fct with
        | Some t -> Some (f.Scenario.id, Time.to_ms t)
        | None -> None)
  in
  let stragglers = List.filter (fun (_, ms) -> ms > 500.) all in
  let normal = List.filter (fun (_, ms) -> ms <= 500.) all in
  let stride = max 1 (List.length normal / max 1 max_series) in
  let sampled =
    List.filteri (fun i _ -> i mod stride = 0) normal
  in
  List.sort compare (stragglers @ sampled)

let render_one ~title scale r =
  Report.header title;
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let s = Report.fct_stats r in
  Report.printf
    "shorts: %d completed, %d incomplete | mean=%.1fms sd=%.1fms p50=%.1fms p99=%.1fms max=%.1fms\n"
    s.Report.completed s.Report.incomplete s.Report.mean_ms s.Report.sd_ms
    s.Report.p50_ms s.Report.p99_ms s.Report.max_ms;
  Report.printf "flows with >=1 RTO: %d | completed within 100ms: %.1f%%\n"
    s.Report.flows_with_rto
    (100. *. s.Report.within_100ms);
  Report.sub_header "FCT histogram (ms)";
  let h = Histogram.create ~lo:0. ~hi:1000. ~buckets:10 in
  Array.iter (fun v -> Histogram.add h v) (Scenario.short_fcts_ms r);
  Report.out (Histogram.render h);
  Report.sub_header "scatter series: flow-id fct-ms (stragglers + sample)";
  List.iter
    (fun (id, ms) -> Report.printf "  %6d %9.1f\n" id ms)
    (scatter r ~max_series:40)

(* The per-flow series the paper's scatter plots are drawn from. *)
let sinks ~tag _scale pairs =
  let r = match pairs with [ ((), r) ] -> r | _ -> assert false in
  let completed =
    Array.to_list r.Scenario.shorts
    |> List.filter_map (fun f ->
        match f.Scenario.fct with
        | Some t -> Some (f.Scenario.id, Time.to_ms t, f.Scenario.rtos)
        | None -> None)
  in
  [
    Sink.table ~name:tag
      ~columns:
        [
          ("flow_id", fun (id, _, _) -> Sink.int id);
          ("fct_ms", fun (_, ms, _) -> Sink.float ms);
          ("rtos", fun (_, _, rtos) -> Sink.int rtos);
        ]
      completed;
  ]

let make ~tag ~title ~doc ~protocol =
  Experiment.make ~name:tag ~doc
    ~points:(fun _scale -> [ () ])
    ~point_label:(fun () -> "scenario")
    ~run_point:(fun scale () ->
      Scenario.run (Scale.scenario_config scale ~protocol))
    ~render:(fun scale pairs ->
      match pairs with
      | [ ((), r) ] -> render_one ~title scale r
      | _ -> assert false)
    ~sinks:(sinks ~tag) ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()

let fig1b =
  make ~tag:"fig1b"
    ~title:"Figure 1(b): short-flow completion times, MPTCP (8 subflows)"
    ~doc:"Figure 1(b): per-flow FCT scatter, MPTCP 8 subflows."
    ~protocol:(Scenario.Mptcp_proto { subflows = 8; coupled = true })

let fig1c =
  make ~tag:"fig1c"
    ~title:"Figure 1(c): short-flow completion times, MMPTCP (PS + 8 subflows)"
    ~doc:"Figure 1(c): per-flow FCT scatter, MMPTCP."
    ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default)
