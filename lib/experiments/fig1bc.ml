module Time = Sim_engine.Sim_time
module Scenario = Sim_workload.Scenario
module Histogram = Sim_stats.Histogram

let scatter r ~max_series =
  let all =
    Array.to_list r.Scenario.shorts
    |> List.filter_map (fun f ->
        match f.Scenario.fct with
        | Some t -> Some (f.Scenario.id, Time.to_ms t)
        | None -> None)
  in
  let stragglers = List.filter (fun (_, ms) -> ms > 500.) all in
  let normal = List.filter (fun (_, ms) -> ms <= 500.) all in
  let stride = max 1 (List.length normal / max 1 max_series) in
  let sampled =
    List.filteri (fun i _ -> i mod stride = 0) normal
  in
  List.sort compare (stragglers @ sampled)

let run_one ~title ~tag ?csv_dir ?(jobs = 1) ~protocol scale =
  Report.header title;
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let cfg = Scale.scenario_config scale ~protocol in
  (* A single simulation: par_map only moves it off the calling domain,
     but keeps the figure's interface uniform with the swept
     experiments. *)
  let r =
    match Runner.par_map ~jobs Scenario.run [ cfg ] with
    | [ r ] -> r
    | _ -> assert false
  in
  (match csv_dir with
   | Some dir ->
     let rows =
       Array.to_list r.Scenario.shorts
       |> List.filter_map (fun f ->
           match f.Scenario.fct with
           | Some t ->
             Some
               [
                 string_of_int f.Scenario.id;
                 Sim_stats.Csv.float_cell (Time.to_ms t);
                 string_of_int f.Scenario.rtos;
               ]
           | None -> None)
     in
     let path = Filename.concat dir (tag ^ ".csv") in
     Sim_stats.Csv.write ~path ~header:[ "flow_id"; "fct_ms"; "rtos" ] rows;
     Report.printf "[full per-flow series written to %s]\n" path
   | None -> ());
  let s = Report.fct_stats r in
  Report.printf
    "shorts: %d completed, %d incomplete | mean=%.1fms sd=%.1fms p50=%.1fms p99=%.1fms max=%.1fms\n"
    s.Report.completed s.Report.incomplete s.Report.mean_ms s.Report.sd_ms
    s.Report.p50_ms s.Report.p99_ms s.Report.max_ms;
  Report.printf "flows with >=1 RTO: %d | completed within 100ms: %.1f%%\n"
    s.Report.flows_with_rto
    (100. *. s.Report.within_100ms);
  Report.sub_header "FCT histogram (ms)";
  let h = Histogram.create ~lo:0. ~hi:1000. ~buckets:10 in
  Array.iter (fun v -> Histogram.add h v) (Scenario.short_fcts_ms r);
  Report.out (Histogram.render h);
  Report.sub_header "scatter series: flow-id fct-ms (stragglers + sample)";
  List.iter
    (fun (id, ms) -> Report.printf "  %6d %9.1f\n" id ms)
    (scatter r ~max_series:40)

let run_fig1b ?csv_dir ?jobs scale =
  run_one
    ~title:"Figure 1(b): short-flow completion times, MPTCP (8 subflows)"
    ~tag:"fig1b" ?csv_dir ?jobs
    ~protocol:(Scenario.Mptcp_proto { subflows = 8; coupled = true })
    scale

let run_fig1c ?csv_dir ?jobs scale =
  run_one
    ~title:"Figure 1(c): short-flow completion times, MMPTCP (PS + 8 subflows)"
    ~tag:"fig1c" ?csv_dir ?jobs
    ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default)
    scale
