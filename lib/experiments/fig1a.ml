module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let configs ?(lo = 1) ?(hi = 9) scale =
  List.init
    (max 0 (hi - lo + 1))
    (fun i ->
      let n = lo + i in
      ( n,
        Scale.scenario_config scale
          ~protocol:(Scenario.Mptcp_proto { subflows = n; coupled = true }) ))

let render scale pairs =
  Report.header "Figure 1(a): MPTCP short-flow FCT vs number of subflows";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "#subflows"; "mean(ms)"; "stddev(ms)"; "p99(ms)"; "rto-flows"; "incomplete" ]
  in
  let rows =
    List.map
      (fun ((n, _), r) ->
        let s = Report.fct_stats r in
        Table.add_row table
          [
            string_of_int n;
            Table.fms s.Report.mean_ms;
            Table.fms s.Report.sd_ms;
            Table.fms s.Report.p99_ms;
            string_of_int s.Report.flows_with_rto;
            string_of_int s.Report.incomplete;
          ];
        (n, s))
      pairs
  in
  Report.table table;
  Report.sub_header "embedded panel (mean only)";
  List.iter
    (fun (n, s) -> Report.printf "  %d subflows: %6.1f ms\n" n s.Report.mean_ms)
    rows

let sinks _scale pairs =
  [
    Sink.table ~name:"fig1a"
      ~columns:
        [
          ("subflows", fun ((n, _), _) -> Sink.int n);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"fig1a"
    ~doc:"Figure 1(a): MPTCP short-flow FCT vs subflow count."
    ~points:(fun scale -> configs scale)
    ~point_label:(fun (n, _) -> Printf.sprintf "subflows=%d" n)
    ~run_point:(fun _scale (_, cfg) -> Scenario.run cfg)
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
