module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let configs ?(lo = 1) ?(hi = 9) scale =
  List.init
    (max 0 (hi - lo + 1))
    (fun i ->
      let n = lo + i in
      ( n,
        Scale.scenario_config scale
          ~protocol:(Scenario.Mptcp_proto { subflows = n; coupled = true }) ))

let run ?(lo = 1) ?(hi = 9) ?csv_dir ?(jobs = 1) scale =
  Report.header "Figure 1(a): MPTCP short-flow FCT vs number of subflows";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let results =
    Runner.par_map ~jobs
      (fun (n, cfg) -> (n, Scenario.run cfg))
      (configs ~lo ~hi scale)
  in
  let table =
    Table.create
      ~columns:
        [ "#subflows"; "mean(ms)"; "stddev(ms)"; "p99(ms)"; "rto-flows"; "incomplete" ]
  in
  let rows =
    List.map
      (fun (n, r) ->
        let s = Report.fct_stats r in
        Table.add_row table
          [
            string_of_int n;
            Table.fms s.Report.mean_ms;
            Table.fms s.Report.sd_ms;
            Table.fms s.Report.p99_ms;
            string_of_int s.Report.flows_with_rto;
            string_of_int s.Report.incomplete;
          ];
        (n, s))
      results
  in
  Report.table table;
  (match csv_dir with
   | Some dir ->
     let path = Filename.concat dir "fig1a.csv" in
     Sim_stats.Csv.write ~path
       ~header:[ "subflows"; "mean_ms"; "sd_ms"; "p99_ms"; "rto_flows" ]
       (List.map
          (fun (n, s) ->
            [
              string_of_int n;
              Sim_stats.Csv.float_cell s.Report.mean_ms;
              Sim_stats.Csv.float_cell s.Report.sd_ms;
              Sim_stats.Csv.float_cell s.Report.p99_ms;
              string_of_int s.Report.flows_with_rto;
            ])
          rows);
     Report.printf "[series written to %s]\n" path
   | None -> ());
  Report.sub_header "embedded panel (mean only)";
  List.iter
    (fun (n, s) -> Report.printf "  %d subflows: %6.1f ms\n" n s.Report.mean_ms)
    rows
