(** Table 1 (the paper's quantitative claims, reported in prose):

    - short-flow mean FCT and standard deviation: MMPTCP 116 ms (sd
      101) vs MPTCP 126 ms (sd 425);
    - average loss rates at the core and aggregation layers slightly
      lower under MMPTCP;
    - the same average long-flow throughput and overall network
      utilisation for both protocols.

    Runs both protocols on the identical seeded workload and prints
    all of those quantities side by side. *)

val experiment : Experiment.t
