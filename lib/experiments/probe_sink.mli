(** Render probe captures as sink artifacts.

    One capture (one simulation point) becomes:

    - per-component gauge time series
      [probe-<experiment>-<point>-<component>] — long-format tables
      with columns [t_ns, id, metric, units, value], rows in
      (sample time, registration) order;
    - a histogram dump [probe-<experiment>-<point>-hist] with one row
      per bucket;
    - a raw JSONL event stream
      [probe-<experiment>-<point>-events.jsonl].

    Empty streams produce no artifact. All ordering is derived from
    registration and emission order inside the simulation, so the
    rendered bytes are independent of job count. *)

val artifacts :
  experiment:string ->
  (string * Sim_obs.Capture.t) list ->
  Sink.artifact list
(** [artifacts ~experiment pairs] renders every [(point_label,
    capture)] pair, in list order. Labels are sanitised to
    filename-safe characters. *)
