module Scenario = Sim_workload.Scenario
module Traffic_matrix = Sim_workload.Traffic_matrix
module Table = Sim_stats.Table

let protocols =
  [
    ("tcp", Scenario.Tcp_proto);
    ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
    ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
  ]

let tm = Traffic_matrix.Hotspot { targets = 4; fraction = 0.5 }

let render scale pairs =
  Report.header "E3: hotspot traffic matrices";
  Report.printf "workload: %s, 4 hot targets, 50%% hot senders\n"
    (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows"; "incomplete" ]
  in
  List.iter
    (fun ((name, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
          string_of_int s.Report.incomplete;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-hotspot"
      ~columns:
        [
          ("protocol", fun ((name, _), _) -> Sink.str name);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
          ("incomplete", fun (_, s) -> Sink.int s.Report.incomplete);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-hotspot" ~doc:"E3: hotspot traffic matrices."
    ~points:(fun _scale -> protocols)
    ~point_label:(fun (name, _) -> name)
    ~run_point:(fun scale (_, protocol) ->
      Scenario.run { (Scale.scenario_config scale ~protocol) with Scenario.tm })
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
