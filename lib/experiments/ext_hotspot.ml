module Scenario = Sim_workload.Scenario
module Traffic_matrix = Sim_workload.Traffic_matrix
module Table = Sim_stats.Table

let run ?(jobs = 1) scale =
  Report.header "E3: hotspot traffic matrices";
  Report.printf "workload: %s, 4 hot targets, 50%% hot senders\n"
    (Format.asprintf "%a" Scale.pp scale);
  let tm = Traffic_matrix.Hotspot { targets = 4; fraction = 0.5 } in
  let table =
    Table.create
      ~columns:
        [ "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows"; "incomplete" ]
  in
  Runner.par_map ~jobs
    (fun (name, protocol) ->
      let cfg = { (Scale.scenario_config scale ~protocol) with Scenario.tm } in
      (name, Scenario.run cfg))
    [
      ("tcp", Scenario.Tcp_proto);
      ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
      ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
    ]
  |> List.iter (fun (name, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
          string_of_int s.Report.incomplete;
        ]);
  Report.table table
