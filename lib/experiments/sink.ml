(* Structured result sinks: one declarative column spec per
   experiment, rendered as CSV + JSON artifacts plus a per-run
   manifest. File I/O only — stdout stays the Report module's
   monopoly (simlint D004), which is what keeps the parallel runner's
   byte-identical-output guarantee intact whatever artifacts a run
   also writes. *)

type cell = Int of int | Float of float | String of string

let int i = Int i
let float f = Float f
let str s = String s

let csv_cell = function
  | Int i -> string_of_int i
  | Float f -> Sim_stats.Csv.float_cell f
  | String s -> s

(* ------------------------------------------------------------------ *)
(* Minimal JSON encoding (no dependency): objects, arrays, strings,
   finite numbers. Non-finite floats have no JSON representation and
   encode as null. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let json_cell = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | String s -> json_escape s

(* ------------------------------------------------------------------ *)
(* Tables *)

type table = {
  t_name : string;
  t_columns : string list;
  t_rows : cell list list;
}

let table ~name ~columns rows =
  {
    t_name = name;
    t_columns = List.map fst columns;
    t_rows = List.map (fun r -> List.map (fun (_, proj) -> proj r) columns) rows;
  }

let name t = t.t_name
let columns t = t.t_columns
let rows t = t.t_rows

let csv_string t =
  Sim_stats.Csv.to_string ~header:t.t_columns
    (List.map (List.map csv_cell) t.t_rows)

let json_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"name\": ";
  Buffer.add_string buf (json_escape t.t_name);
  Buffer.add_string buf ",\n  \"columns\": [";
  Buffer.add_string buf (String.concat ", " (List.map json_escape t.t_columns));
  Buffer.add_string buf "],\n  \"rows\": [";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    [";
      Buffer.add_string buf (String.concat ", " (List.map json_cell row));
      Buffer.add_char buf ']')
    t.t_rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File output *)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_file ~dir ~basename contents =
  ensure_dir dir;
  let oc = open_out (Filename.concat dir basename) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  basename

let write ~dir t =
  [
    write_file ~dir ~basename:(t.t_name ^ ".csv") (csv_string t);
    write_file ~dir ~basename:(t.t_name ^ ".json") (json_string t);
  ]

(* ------------------------------------------------------------------ *)
(* Artifacts *)

type artifact = Table of table | Raw of { basename : string; contents : string }

let write_artifact ~dir = function
  | Table t -> write ~dir t
  | Raw { basename; contents } -> [ write_file ~dir ~basename contents ]

(* ------------------------------------------------------------------ *)
(* Manifest *)

type experiment_entry = {
  e_name : string;
  e_artifacts : string list;
  e_points : (string * float) list;
}

let manifest_string ~scale ~jobs ~git ~total_seconds entries =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n  \"tool\": \"mmptcp_sim\",\n  \"scale\": {";
  add
    (Printf.sprintf
       "\"k\": %d, \"oversub\": %d, \"flows\": %d, \"rate\": %s, \"seed\": %d, \
        \"horizon_s\": %s, \"model\": %s"
       scale.Scale.k scale.Scale.oversub scale.Scale.flows
       (json_float scale.Scale.rate) scale.Scale.seed
       (json_float scale.Scale.horizon_s)
       (json_escape (Sim_workload.Scenario.model_name scale.Scale.model)));
  add "},\n";
  add (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  add
    (Printf.sprintf "  \"git\": %s,\n"
       (match git with Some g -> json_escape g | None -> "null"));
  add (Printf.sprintf "  \"total_seconds\": %s,\n" (json_float total_seconds));
  add "  \"experiments\": [";
  List.iteri
    (fun i e ->
      if i > 0 then add ",";
      add "\n    {\n      \"name\": ";
      add (json_escape e.e_name);
      (* Points of different experiments interleave on the shared
         queue, so the only well-defined per-experiment cost is the
         sum of its points' durations. *)
      add
        (Printf.sprintf ",\n      \"seconds\": %s"
           (json_float
              (List.fold_left (fun a (_, s) -> a +. s) 0. e.e_points)));
      add ",\n      \"points\": [";
      List.iteri
        (fun j (label, secs) ->
          if j > 0 then add ", ";
          add
            (Printf.sprintf "{\"label\": %s, \"seconds\": %s}"
               (json_escape label) (json_float secs)))
        e.e_points;
      add "],\n      \"artifacts\": [";
      add (String.concat ", " (List.map json_escape e.e_artifacts));
      add "]\n    }")
    entries;
  add "\n  ]\n}\n";
  Buffer.contents buf

let write_manifest ~dir ~scale ~jobs ~git ~total_seconds entries =
  write_file ~dir ~basename:"manifest.json"
    (manifest_string ~scale ~jobs ~git ~total_seconds entries)
