module Scenario = Sim_workload.Scenario
module Strategy = Mmptcp.Strategy
module Table = Sim_stats.Table

let variants =
  [
    ("static-3 (std TCP)", Strategy.Static 3);
    ("topology-aware", Strategy.Topology_aware);
    ("adaptive (RR-TCP)", Strategy.Adaptive { initial = 3; cap = 64 });
    ("static-1000 (no FR)", Strategy.Static 1_000);
  ]

let fast_rtxs r =
  Array.fold_left (fun a f -> a + f.Scenario.fast_rtxs) 0 r.Scenario.shorts

let render scale pairs =
  Report.header "E6: scatter-phase dup-ACK threshold ablation";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "threshold";
          "mean(ms)";
          "sd(ms)";
          "p99(ms)";
          "rto-flows";
          "fast-rtx(total)";
        ]
  in
  List.iter
    (fun ((name, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
          string_of_int (fast_rtxs r);
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-dupack"
      ~columns:
        [
          ("threshold", fun ((name, _), _) -> Sink.str name);
          ("mean_ms", fun (_, (s, _)) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, (s, _)) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, (s, _)) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, (s, _)) -> Sink.int s.Report.flows_with_rto);
          ("fast_rtx_total", fun (_, (_, r)) -> Sink.int (fast_rtxs r));
        ]
      (List.map (fun (p, r) -> (p, (Report.fct_stats r, r))) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-dupack"
    ~doc:"E6: dup-ACK threshold ablation."
    ~points:(fun _scale -> variants)
    ~point_label:(fun (name, _) -> name)
    ~run_point:(fun scale (_, dupack) ->
      let strategy = { Strategy.default with Strategy.dupack } in
      Scenario.run
        (Scale.scenario_config scale ~protocol:(Scenario.Mmptcp_proto strategy)))
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
