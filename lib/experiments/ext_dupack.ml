module Scenario = Sim_workload.Scenario
module Strategy = Mmptcp.Strategy
module Table = Sim_stats.Table

let variants =
  [
    ("static-3 (std TCP)", Strategy.Static 3);
    ("topology-aware", Strategy.Topology_aware);
    ("adaptive (RR-TCP)", Strategy.Adaptive { initial = 3; cap = 64 });
    ("static-1000 (no FR)", Strategy.Static 1_000);
  ]

let run ?(jobs = 1) scale =
  Report.header "E6: scatter-phase dup-ACK threshold ablation";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [
          "threshold";
          "mean(ms)";
          "sd(ms)";
          "p99(ms)";
          "rto-flows";
          "fast-rtx(total)";
        ]
  in
  Runner.par_map ~jobs
    (fun (name, dupack) ->
      let strategy = { Strategy.default with Strategy.dupack } in
      let cfg =
        Scale.scenario_config scale ~protocol:(Scenario.Mmptcp_proto strategy)
      in
      (name, Scenario.run cfg))
    variants
  |> List.iter (fun (name, r) ->
      let s = Report.fct_stats r in
      let frtx =
        Array.fold_left
          (fun a f -> a + f.Scenario.fast_rtxs)
          0 r.Scenario.shorts
      in
      Table.add_row table
        [
          name;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
          string_of_int frtx;
        ]);
  Report.table table
