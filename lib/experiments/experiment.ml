(* Experiments as data: the spec is what a module declares, an
   instance is the spec bound to a scale with slots for its results.
   The registry flattens many instances' jobs into one par_map call;
   result and timing slots are written on worker domains and read
   after the pool join (the join publishes the writes, exactly the
   argument Runner.par_map makes for its own result array). *)

type ('p, 'r) spec = {
  name : string;
  doc : string;
  points : Scale.t -> 'p list;
  point_label : 'p -> string;
  run_point : Scale.t -> 'p -> 'r;
  render : Scale.t -> ('p * 'r) list -> unit;
  sinks : Scale.t -> ('p * 'r) list -> Sink.table list;
  capture : 'r -> Sim_obs.Capture.t option;
  ledger : 'r -> Sim_obs.Flow_ledger.dump option;
}

type t = E : ('p, 'r) spec -> t

let make ~name ~doc ~points ~point_label ~run_point ~render
    ?(sinks = fun _ _ -> []) ?(capture = fun _ -> None)
    ?(ledger = fun _ -> None) () =
  E
    { name; doc; points; point_label; run_point; render; sinks; capture; ledger }

let name (E s) = s.name
let doc (E s) = s.doc

type job = {
  j_label : string;
  j_owner : string;
  j_run : unit -> unit;
  j_serial : unit -> string;
  j_accept : string -> unit;
}

let job_label j = j.j_label
let job_experiment j = j.j_owner
let run_job j = j.j_run ()

let run_job_serial j =
  match j.j_serial () with
  | payload -> Ok payload
  | exception e -> Error (Printexc.to_string e)

let accept_job j payload = j.j_accept payload

type instance = {
  i_name : string;
  i_jobs : job list;
  i_finish : unit -> Sink.artifact list;
  i_point_seconds : unit -> (string * float) list;
  i_point_spans : unit -> (string * Prof.span) list;
}

let instance_name i = i.i_name
let instance_jobs i = i.i_jobs
let finish i = i.i_finish ()
let point_seconds i = i.i_point_seconds ()
let point_spans i = i.i_point_spans ()

let instantiate ?(clock = fun () -> 0.) (E s) scale =
  let points = Array.of_list (s.points scale) in
  let n = Array.length points in
  let labels = Array.map s.point_label points in
  let results = Array.make n None in
  let seconds = Array.make n 0. in
  let spans = Array.make n Prof.zero in
  let job i =
    {
      j_label = labels.(i);
      j_owner = s.name;
      j_run =
        (fun () ->
          let r, sp =
            try Prof.measure ~clock (fun () -> s.run_point scale points.(i))
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              Printexc.raise_with_backtrace
                (Runner.Point_failed
                   { experiment = s.name; point = labels.(i); exn = e })
                bt
          in
          seconds.(i) <- sp.Prof.sp_wall_s;
          spans.(i) <- sp;
          results.(i) <- Some r);
      (* The serial triple lives where ['r] is in scope, so the bytes
         a worker produces unmarshal back at the matching slot's type
         in the coordinator — the only place Marshal's type-unsafety
         could bite, closed off by construction. *)
      j_serial =
        (fun () ->
          let r, sp =
            Prof.measure ~clock (fun () -> s.run_point scale points.(i))
          in
          Marshal.to_string (sp.Prof.sp_wall_s, sp, r) []);
      j_accept =
        (fun payload ->
          let dt, sp, r = Marshal.from_string payload 0 in
          seconds.(i) <- dt;
          spans.(i) <- sp;
          results.(i) <- Some r);
    }
  in
  let pairs () =
    Array.to_list
      (Array.mapi
         (fun i p ->
           match results.(i) with
           | Some r -> (p, r)
           | None ->
             invalid_arg
               (Printf.sprintf
                  "Experiment.finish: point [%s] of %s has not run" labels.(i)
                  s.name))
         points)
  in
  {
    i_name = s.name;
    i_jobs = List.init n job;
    i_finish =
      (fun () ->
        let prs = pairs () in
        s.render scale prs;
        let tables = List.map (fun t -> Sink.Table t) (s.sinks scale prs) in
        let captures =
          List.filter_map
            (fun (p, r) ->
              Option.map (fun c -> (s.point_label p, c)) (s.capture r))
            prs
        in
        let ledgers =
          List.filter_map
            (fun (p, r) ->
              Option.map (fun d -> (s.point_label p, d)) (s.ledger r))
            prs
        in
        tables
        @ Probe_sink.artifacts ~experiment:s.name captures
        @ Ledger_sink.artifacts ~experiment:s.name ledgers);
    i_point_seconds =
      (fun () ->
        Array.to_list (Array.mapi (fun i l -> (l, seconds.(i))) labels));
    i_point_spans =
      (fun () -> Array.to_list (Array.mapi (fun i l -> (l, spans.(i))) labels));
  }
