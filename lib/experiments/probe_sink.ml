module Capture = Sim_obs.Capture
module Metrics = Sim_obs.Metrics

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    label

(* Component names in first-gauge-registration order: determined by
   simulation construction order, not by hashing. *)
let components (c : Capture.t) =
  Array.fold_left
    (fun acc (g : Metrics.meta) ->
      if List.mem g.component acc then acc else g.component :: acc)
    [] c.gauges
  |> List.rev

let gauge_table ~prefix (c : Capture.t) comp =
  let rows =
    Array.to_list c.samples
    |> List.filter (fun (_, idx, _) -> c.gauges.(idx).Metrics.component = comp)
  in
  if rows = [] then None
  else
    Some
      (Sink.table
         ~name:(Printf.sprintf "%s-%s" prefix comp)
         ~columns:
           [
             ("t_ns", fun (t, _, _) -> Sink.int t);
             ("id", fun (_, i, _) -> Sink.str c.gauges.(i).Metrics.id);
             ("metric", fun (_, i, _) -> Sink.str c.gauges.(i).Metrics.name);
             ("units", fun (_, i, _) -> Sink.str c.gauges.(i).Metrics.units);
             ("value", fun (_, _, v) -> Sink.float v);
           ]
         rows)

let hist_table ~prefix (c : Capture.t) =
  let rows =
    Array.to_list c.hists
    |> List.concat_map (fun (h : Capture.hist) ->
           Array.to_list
             (Array.mapi
                (fun i count ->
                  let lo, hi = h.bucket_bounds.(i) in
                  (h.h_meta, lo, hi, count))
                h.bucket_counts)
           |> List.filter (fun (_, _, _, count) -> count > 0))
  in
  if rows = [] then None
  else
    Some
      (Sink.table ~name:(prefix ^ "-hist")
         ~columns:
           [
             ( "component",
               fun ((m : Metrics.meta), _, _, _) -> Sink.str m.component );
             ("id", fun ((m : Metrics.meta), _, _, _) -> Sink.str m.id);
             ("metric", fun ((m : Metrics.meta), _, _, _) -> Sink.str m.name);
             ("units", fun ((m : Metrics.meta), _, _, _) -> Sink.str m.units);
             ("bucket_lo", fun (_, lo, _, _) -> Sink.float lo);
             ("bucket_hi", fun (_, _, hi, _) -> Sink.float hi);
             ("count", fun (_, _, _, n) -> Sink.int n);
           ]
         rows)

let capture_artifacts ~experiment ~label (c : Capture.t) =
  let prefix = Printf.sprintf "probe-%s-%s" experiment (sanitize label) in
  let tables =
    List.filter_map Fun.id
      (List.map (gauge_table ~prefix c) (components c) @ [ hist_table ~prefix c ])
  in
  let events =
    match Capture.events_jsonl c with
    | "" -> []
    | contents -> [ Sink.Raw { basename = prefix ^ "-events.jsonl"; contents } ]
  in
  List.map (fun t -> Sink.Table t) tables @ events

let artifacts ~experiment pairs =
  List.concat_map
    (fun (label, c) -> capture_artifacts ~experiment ~label c)
    pairs
