module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Table = Sim_stats.Table

let jain_index xs =
  let n = float_of_int (Array.length xs) in
  if n = 0. then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. xs in
    let sq = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if sq = 0. then 1. else s *. s /. (n *. sq)
  end

let names = [ "tcp"; "mptcp-8"; "mmptcp" ]

(* One three-flow bottleneck simulation; the per-protocol goodputs are
   the whole result. *)
let run_bottleneck scale =
  let sched = Scheduler.create () in
  let net =
    Dumbbell.create ~sched
      ~bottleneck_spec:Sim_workload.Scenario.paper_link_spec ~pairs:3 ()
  in
  let duration = 20. in
  let size = 1_000_000_000 in
  (* Pair 0: TCP, pair 1: MPTCP-8, pair 2: MMPTCP. *)
  let tcp_flow =
    Sim_tcp.Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 3)
      ~size ()
  in
  let mptcp_conn =
    Sim_mptcp.Mptcp_conn.start ~src:(Topology.host net 1)
      ~dst:(Topology.host net 4) ~size ~subflows:8 ()
  in
  let mmptcp_conn =
    Mmptcp.Mmptcp_conn.start ~src:(Topology.host net 2)
      ~dst:(Topology.host net 5) ~size
      ~rng:(Sim_engine.Rng.create ~seed:scale.Scale.seed)
      ()
  in
  Scheduler.run ~until:(Time.of_sec duration) sched;
  let goodput bytes = float_of_int bytes *. 8. /. duration /. 1e6 in
  [|
    goodput (Sim_tcp.Flow.bytes_received tcp_flow);
    goodput (Sim_mptcp.Mptcp_conn.bytes_received mptcp_conn);
    goodput (Mmptcp.Mmptcp_conn.bytes_received mmptcp_conn);
  |]

let render _scale pairs =
  let rates = match pairs with [ ((), r) ] -> r | _ -> assert false in
  Report.header "E5: co-existence of TCP, MPTCP and MMPTCP on one bottleneck";
  let table = Table.create ~columns:[ "protocol"; "goodput(Mb/s)"; "share" ] in
  let total = Array.fold_left ( +. ) 0. rates in
  List.iteri
    (fun i name ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" rates.(i);
          Printf.sprintf "%.1f%%" (100. *. rates.(i) /. Float.max total 1e-9);
        ])
    names;
  Report.table table;
  Report.printf "Jain fairness index: %.3f (1.0 = perfectly fair)\n"
    (jain_index rates)

let sinks _scale pairs =
  let rates = match pairs with [ ((), r) ] -> r | _ -> assert false in
  let total = Array.fold_left ( +. ) 0. rates in
  [
    Sink.table ~name:"ext-coexist"
      ~columns:
        [
          ("protocol", fun (name, _) -> Sink.str name);
          ("goodput_mbps", fun (_, rate) -> Sink.float rate);
          ( "share",
            fun (_, rate) -> Sink.float (rate /. Float.max total 1e-9) );
        ]
      (List.mapi (fun i name -> (name, rates.(i))) names);
  ]

let experiment =
  Experiment.make ~name:"ext-coexist" ~doc:"E5: co-existence fairness."
    ~points:(fun _scale -> [ () ])
    ~point_label:(fun () -> "bottleneck")
    ~run_point:(fun scale () -> run_bottleneck scale)
    ~render ~sinks ()
