(** E1 (paper §2 "Phase Switching" + Roadmap): switching strategies.

    Sweeps the data-volume threshold and compares it against
    congestion-event switching and against never switching (pure
    packet scatter). Reported per strategy: short-flow FCT statistics
    and long-flow goodput — the trade-off the paper describes is that
    switching too late hurts long flows (single window for too long)
    while switching too early forfeits scatter's burst tolerance. *)

val experiment : Experiment.t
