(** Shared result-reporting helpers for the experiment suite. *)

type fct_stats = {
  completed : int;
  incomplete : int;
  mean_ms : float;
  sd_ms : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  within_100ms : float;  (** fraction of completed shorts *)
  flows_with_rto : int;
}

val fct_stats : Sim_workload.Scenario.result -> fct_stats
(** Short-flow statistics of a finished scenario run. *)

(** {2 Output channel}

    All experiment stdout goes through these. This module is the one
    [D004] allowlist entry in [simlint.allow]; direct [Printf.printf]
    (or friends) anywhere else under [lib/] fails [dune build @lint]. *)

val printf : ('a, out_channel, unit) format -> 'a
(** Formatted experiment output (stdout). *)

val out : string -> unit
(** Verbatim experiment output (stdout). *)

val newline : unit -> unit

val table : Sim_stats.Table.t -> unit
(** Render and print a result table. *)

val header : string -> unit
(** Print an experiment banner. *)

val sub_header : string -> unit

val long_mean_mbps : Sim_workload.Scenario.result -> float
(** Mean long-flow goodput; 0 when there are no long flows. *)
