module Time = Sim_engine.Sim_time
module Scenario = Sim_workload.Scenario

type t = {
  k : int;
  oversub : int;
  flows : int;
  rate : float;
  seed : int;
  horizon_s : float;
  model : Scenario.model;
  obs : Scenario.obs_cfg;
}

(* Horizons: short-flow arrivals span well under a second at these
   rates; the rest of the horizon is tail budget for RTO-backoff
   stragglers. *)
let tiny =
  { k = 4; oversub = 2; flows = 40; rate = 50.; seed = 3; horizon_s = 2.;
    model = Scenario.Packet; obs = Scenario.default_obs }

let small =
  { k = 4; oversub = 4; flows = 500; rate = 25.; seed = 7; horizon_s = 8.;
    model = Scenario.Packet; obs = Scenario.default_obs }

let full =
  { k = 8; oversub = 4; flows = 20_000; rate = 25.; seed = 7; horizon_s = 30.;
    model = Scenario.Packet; obs = Scenario.default_obs }

let pp ppf t =
  Format.fprintf ppf
    "k=%d oversub=%d flows=%d rate=%.0f/s seed=%d horizon=%gs model=%s"
    t.k t.oversub t.flows t.rate t.seed t.horizon_s
    (Scenario.model_name t.model)

let scenario_config t ~protocol =
  {
    Scenario.default_config with
    Scenario.model = t.model;
    topo = Scenario.Fattree_topo (Scenario.paper_fattree ~k:t.k ~oversub:t.oversub ());
    protocol;
    seed = t.seed;
    short_flows = t.flows;
    short_rate = t.rate;
    horizon = Time.of_sec t.horizon_s;
    obs = t.obs;
  }
