module Scenario = Sim_workload.Scenario
module Traffic_matrix = Sim_workload.Traffic_matrix
module Table = Sim_stats.Table

let matrices hosts =
  [
    ("permutation", Traffic_matrix.Permutation);
    ("random", Traffic_matrix.Random);
    ("stride", Traffic_matrix.Stride (max 1 (hosts / 2)));
  ]

let points scale =
  let hosts =
    Sim_net.Fattree.host_count
      (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ())
  in
  List.concat_map
    (fun (mname, tm) ->
      List.map
        (fun (pname, protocol) -> (mname, tm, pname, protocol))
        [
          ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
          ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
        ])
    (matrices hosts)

let render scale pairs =
  Report.header "E8: traffic matrices";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:[ "matrix"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  List.iter
    (fun ((mname, _, pname, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          mname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-matrices"
      ~columns:
        [
          ("matrix", fun ((mname, _, _, _), _) -> Sink.str mname);
          ("protocol", fun ((_, _, pname, _), _) -> Sink.str pname);
          ("mean_ms", fun (_, s) -> Sink.float s.Report.mean_ms);
          ("sd_ms", fun (_, s) -> Sink.float s.Report.sd_ms);
          ("p99_ms", fun (_, s) -> Sink.float s.Report.p99_ms);
          ("rto_flows", fun (_, s) -> Sink.int s.Report.flows_with_rto);
        ]
      (List.map (fun (p, r) -> (p, Report.fct_stats r)) pairs);
  ]

let experiment =
  Experiment.make ~name:"ext-matrices" ~doc:"E8: traffic matrices." ~points
    ~point_label:(fun (mname, _, pname, _) -> mname ^ " " ^ pname)
    ~run_point:(fun scale (_, tm, _, protocol) ->
      Scenario.run { (Scale.scenario_config scale ~protocol) with Scenario.tm })
    ~render ~sinks ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger) ()
