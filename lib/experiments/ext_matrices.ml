module Scenario = Sim_workload.Scenario
module Traffic_matrix = Sim_workload.Traffic_matrix
module Table = Sim_stats.Table

let matrices hosts =
  [
    ("permutation", Traffic_matrix.Permutation);
    ("random", Traffic_matrix.Random);
    ("stride", Traffic_matrix.Stride (max 1 (hosts / 2)));
  ]

let run ?(jobs = 1) scale =
  Report.header "E8: traffic matrices";
  Report.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let hosts =
    Sim_net.Fattree.host_count
      (Scenario.paper_fattree ~k:scale.Scale.k ~oversub:scale.Scale.oversub ())
  in
  let table =
    Table.create
      ~columns:[ "matrix"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  let entries =
    List.concat_map
      (fun (mname, tm) ->
        List.map
          (fun (pname, protocol) -> (mname, tm, pname, protocol))
          [
            ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
            ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
          ])
      (matrices hosts)
  in
  Runner.par_map ~jobs
    (fun (mname, tm, pname, protocol) ->
      let cfg = { (Scale.scenario_config scale ~protocol) with Scenario.tm } in
      (mname, pname, Scenario.run cfg))
    entries
  |> List.iter (fun (mname, pname, r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          mname;
          pname;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.sd_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.flows_with_rto;
        ]);
  Report.table table
