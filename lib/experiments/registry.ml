(* The canonical experiment list and the shared execution path. The
   order is DESIGN.md's index and is load-bearing: `all` renders in
   this order, and `select` re-sorts any user subset into it so
   output order never depends on how a flag was spelled. *)

let all : Experiment.t list =
  [
    Fig1a.experiment;
    Fig1bc.fig1b;
    Fig1bc.fig1c;
    Summary_table.experiment;
    Ext_switching.experiment;
    Ext_load.experiment;
    Ext_hotspot.experiment;
    Ext_multihomed.experiment;
    Ext_coexist.experiment;
    Ext_dupack.experiment;
    Ext_topologies.experiment;
    Ext_matrices.experiment;
    Ext_sack.experiment;
    Ext_fluid_xval.experiment;
    Ext_scale.experiment;
  ]

let names () = List.map Experiment.name all

let find name = List.find_opt (fun e -> Experiment.name e = name) all

let select requested =
  match List.find_opt (fun n -> Option.is_none (find n)) requested with
  | Some unknown -> Error unknown
  | None ->
    Ok (List.filter (fun e -> List.mem (Experiment.name e) requested) all)

type exec_mode = Domains | Processes

let exec_mode_to_string = function
  | Domains -> "domains"
  | Processes -> "processes"

let exec_mode_of_string = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | _ -> None

(* Fan the flat job queue out to worker processes. Results land in the
   instances via accept_job as replies arrive; failures are collected
   and the earliest-index one re-raised after the pool drains, exactly
   par_map's semantics. *)
let run_sharded ~jobs ~worker_argv queue =
  let failures = ref [] in
  Sim_engine.Proc_pool.run ~jobs ~worker_argv ~n:(Array.length queue)
    ~deliver:(fun i outcome ->
      match outcome with
      | Ok payload -> Experiment.accept_job queue.(i) payload
      | Error cause -> failures := (i, cause) :: !failures);
  match List.sort compare !failures with
  | [] -> ()
  | (i, cause) :: _ ->
    let j = queue.(i) in
    raise
      (Runner.Point_failed
         {
           experiment = Experiment.job_experiment j;
           point = Experiment.job_label j;
           exn = Runner.Remote cause;
         })

let run ?clock ?out ?git ?(exec_mode = Domains) ?worker_argv ?(prof = false)
    ~jobs scale experiments =
  let now () = match clock with Some c -> c () | None -> 0. in
  let t0 = now () in
  let instances =
    List.map (fun e -> Experiment.instantiate ?clock e scale) experiments
  in
  (* One flat submission: points of all experiments interleave freely
     on the shared pool; par_map's join is the barrier that makes
     every instance's result slots readable. *)
  let queue = List.concat_map Experiment.instance_jobs instances in
  (match (exec_mode, worker_argv) with
   | Processes, Some argv when jobs > 1 && queue <> [] ->
     run_sharded ~jobs ~worker_argv:argv (Array.of_list queue)
   | (Domains | Processes), _ ->
     (* jobs = 1 stays sequential in-process in either mode. *)
     ignore (Runner.par_map ~jobs Experiment.run_job queue : unit list));
  (* Render in registry order only after everything ran: this is what
     keeps stdout byte-identical at every job count. *)
  let artifacts =
    List.map
      (fun i ->
        let arts = Experiment.finish i in
        let arts =
          if prof then
            arts
            @ [
                Prof.artifact
                  ~experiment:(Experiment.instance_name i)
                  (Experiment.point_spans i);
              ]
          else arts
        in
        (i, arts))
      instances
  in
  match out with
  | None ->
    (* Span values are host-side and nondeterministic, so without an
       artifact directory to absorb them there is nothing
       reproducible to print — stdout stays byte-identical. *)
    if prof then Report.printf "[--prof: profile dropped — pass --out DIR]\n"
  | Some dir ->
    let entries =
      List.map
        (fun (inst, arts) ->
          {
            Sink.e_name = Experiment.instance_name inst;
            e_artifacts =
              List.concat_map (fun a -> Sink.write_artifact ~dir a) arts;
            e_points = Experiment.point_seconds inst;
          })
        artifacts
    in
    let manifest =
      Sink.write_manifest ~dir ~scale ~jobs ~git
        ~total_seconds:(now () -. t0) entries
    in
    Report.printf "[artifacts + %s written to %s]\n" manifest dir

let worker ?clock scale experiments =
  let instances =
    List.map (fun e -> Experiment.instantiate ?clock e scale) experiments
  in
  let queue =
    Array.of_list (List.concat_map Experiment.instance_jobs instances)
  in
  Sim_engine.Proc_pool.serve ~run:(fun i ->
      if i < 0 || i >= Array.length queue then
        Error (Printf.sprintf "worker: job index %d out of range" i)
      else Experiment.run_job_serial queue.(i))
