module Scenario = Sim_workload.Scenario
module Summary = Sim_stats.Summary

type fct_stats = {
  completed : int;
  incomplete : int;
  mean_ms : float;
  sd_ms : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  within_100ms : float;
  flows_with_rto : int;
}

let fct_stats r =
  let fcts = Scenario.short_fcts_ms r in
  if Array.length fcts = 0 then
    {
      completed = 0;
      incomplete = Scenario.incomplete_shorts r;
      mean_ms = nan;
      sd_ms = nan;
      p50_ms = nan;
      p99_ms = nan;
      max_ms = nan;
      within_100ms = 0.;
      flows_with_rto = 0;
    }
  else begin
    let s = Summary.of_array fcts in
    let fast = Array.fold_left (fun a t -> if t <= 100. then a + 1 else a) 0 fcts in
    {
      completed = Array.length fcts;
      incomplete = Scenario.incomplete_shorts r;
      mean_ms = s.Summary.mean;
      sd_ms = s.Summary.stddev;
      p50_ms = s.Summary.p50;
      p99_ms = s.Summary.p99;
      max_ms = s.Summary.max;
      within_100ms = float_of_int fast /. float_of_int (Array.length fcts);
      flows_with_rto = Scenario.shorts_with_rto r;
    }
  end

(* The one place experiment output touches stdout (simlint rule D004:
   this module is allowlisted, nothing else in lib/ may print). The
   runner prints results in input order after par_map joins, so going
   through a single channel here is what keeps `--jobs N` stdout
   byte-identical. *)

let printf fmt = Printf.printf fmt

let out s = print_string s

let newline () = print_newline ()

let table t = print_string (Sim_stats.Table.render t)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let long_mean_mbps r =
  let g = Scenario.long_goodput_mbps r in
  if Array.length g = 0 then 0. else Summary.mean g
