(* Production-scale runs on the fluid model (ROADMAP item 2): a k=16
   FatTree (1024 hosts) carrying a short-flow budget 200x the packet
   experiments', against the usual 1/3 long background flows. At the
   default --small scale that is 100,000 Poisson shorts — far past
   what packet-level DES can sweep — and the fluid engine completes it
   in less wall-clock than a single packet-level fig1a point sweep.

   The model is pinned to fluid: at this scale the packet stages of
   the other models are exactly the cost being avoided. The derived
   workload (k, flow count, horizon) is printed through Scale.pp and
   carried per point into the manifest and sink tables, so artifacts
   record what actually ran rather than the command-line base scale. *)

module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let flow_factor = 200
let k = 16
let oversub = 4

(* The base scale with the fluid-scale overrides applied — this is
   what runs, renders and lands in the sink tables. *)
let derived scale =
  {
    scale with
    Scale.k;
    oversub;
    flows = scale.Scale.flows * flow_factor;
    model = Scenario.Fluid;
  }

let protocols =
  [
    ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
    ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
  ]

let points scale =
  let d = derived scale in
  List.map
    (fun (name, protocol) ->
      (name, d, Scale.scenario_config d ~protocol))
    protocols

let render scale pairs =
  Report.header "EXT: fluid-model scale sweep (k=16 FatTree, 200x short flows)";
  Report.printf "workload: %s\n"
    (Format.asprintf "%a" Scale.pp (derived scale));
  let table =
    Table.create
      ~columns:
        [
          "protocol"; "flows"; "mean(ms)"; "p50(ms)"; "p99(ms)"; "incomplete";
          "long-goodput(Mb/s)"; "core-util"; "events";
        ]
  in
  List.iter
    (fun ((name, d, _), r) ->
      let s = Report.fct_stats r in
      Table.add_row table
        [
          name;
          string_of_int d.Scale.flows;
          Table.fms s.Report.mean_ms;
          Table.fms s.Report.p50_ms;
          Table.fms s.Report.p99_ms;
          string_of_int s.Report.incomplete;
          Printf.sprintf "%.1f" (Report.long_mean_mbps r);
          Printf.sprintf "%.3f" (Scenario.core_utilisation r);
          string_of_int r.Scenario.events;
        ])
    pairs;
  Report.table table

let sinks _scale pairs =
  [
    Sink.table ~name:"ext-scale"
      ~columns:
        [
          ("protocol", fun ((name, _, _), _) -> Sink.str name);
          ("k", fun ((_, d, _), _) -> Sink.int d.Scale.k);
          ("flows", fun ((_, d, _), _) -> Sink.int d.Scale.flows);
          ("horizon_s", fun ((_, d, _), _) -> Sink.float d.Scale.horizon_s);
          ( "model",
            fun ((_, d, _), _) -> Sink.str (Scenario.model_name d.Scale.model) );
          ("mean_ms", fun (_, r) -> Sink.float (Report.fct_stats r).Report.mean_ms);
          ("p50_ms", fun (_, r) -> Sink.float (Report.fct_stats r).Report.p50_ms);
          ("p99_ms", fun (_, r) -> Sink.float (Report.fct_stats r).Report.p99_ms);
          ( "incomplete",
            fun (_, r) -> Sink.int (Report.fct_stats r).Report.incomplete );
          ( "long_goodput_mbps",
            fun (_, r) -> Sink.float (Report.long_mean_mbps r) );
          ("core_util", fun (_, r) -> Sink.float (Scenario.core_utilisation r));
          ("events", fun (_, r) -> Sink.int r.Scenario.events);
        ]
      pairs;
  ]

let experiment =
  Experiment.make ~name:"ext-scale"
    ~doc:"EXT: fluid-model k=16 FatTree at 200x short-flow scale."
    ~points
    ~point_label:(fun (name, d, _) ->
      Printf.sprintf "%s k=%d flows=%d horizon=%gs" name d.Scale.k
        d.Scale.flows d.Scale.horizon_s)
    ~run_point:(fun _scale (_, _, cfg) -> Scenario.run cfg)
    ~render ~sinks
    ~capture:(fun r -> r.Scenario.obs)
    ~ledger:(fun r -> r.Scenario.ledger)
    ()
