(** E5 (paper Discussion: co-existence with TCP and MPTCP).

    One long flow of each protocol — TCP, MPTCP-8 and MMPTCP — shares a
    single dumbbell bottleneck. Harmonious co-existence means each
    aggregate takes roughly a third of the link: LIA is designed to
    make an MPTCP connection no more aggressive than one TCP, and
    MMPTCP runs one Reno window in its scatter phase before moving to
    LIA. Prints per-protocol goodput and the Jain fairness index. *)

val experiment : Experiment.t
(** A single simulation point (nothing to fan out). *)

val jain_index : float array -> float
(** Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly
    fair. Exposed for tests. *)
