module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable busy_ns : int;
}

type t = {
  sched : Scheduler.t;
  rate_bps : float;
  delay : Time.t;
  jitter : Time.t;
  jitter_rng : Sim_engine.Rng.t;
  queue : Pktqueue.t;
  id : int;
  mutable deliver : (Packet.t -> unit) option;
  mutable taps : (Packet.t -> unit) list;
  mutable busy : bool;
  mutable last_delivery : Time.t;
  (* Typed event pools carrying the in-flight Packet.t (D007/§4j:
     scheduling moves ownership into the pending event; the fire
     function receives it back). [tx_pool] holds the one packet being
     serialised; [rx_pool] one cell per packet propagating on the
     wire. Option-wrapped only because each pool's fire function needs
     [t]: both are installed in [create], immediately after the record
     exists, and never change. *)
  mutable tx_pool : Packet.t Scheduler.Event.pool option;
  mutable rx_pool : Packet.t Scheduler.Event.pool option;
  (* Capacity claimed by a coexisting fluid allocation (hybrid model):
     packet serialisation slows to the residual rate. 0 outside hybrid
     runs, in which case tx_time is bit-identical to the historic
     computation. *)
  mutable reserved_bps : float;
  st : stats;
}

let attach t f = t.deliver <- Some f
let add_tap t f = t.taps <- f :: t.taps

(* Packet traffic never starves entirely: the effective rate floors at
   5% of nominal even when the fluid side claims the whole link, so a
   hybrid run's packet phase always makes progress. *)
let effective_rate t =
  if t.reserved_bps <= 0. then t.rate_bps
  else Float.max (t.rate_bps -. t.reserved_bps) (0.05 *. t.rate_bps)

let tx_time t ~bytes =
  Time.of_ns
    (int_of_float (float_of_int (bytes * 8) /. effective_rate t *. 1e9))

let the_pool = function Some p -> p | None -> assert false

(* Receiver-side fire: a packet has propagated across the wire. *)
let deliver_pkt t pkt =
  match t.deliver with
  | Some f -> f pkt
  | None ->
    (* Unreachable: [send] refuses traffic until [attach]. *)
    failwith "Link.send: no receiver attached"

(* Transmitter-side fire: serialisation done, the packet enters the
   wire and the transmitter is free for the next one. Propagation gets
   a small random jitter (switch pipelines and NICs are not perfectly
   deterministic; without this, exact ACK-clocking produces drop-tail
   lockout artifacts), clamped so the link stays FIFO. *)
let rec tx_done t pkt =
  let extra =
    if Time.is_zero t.jitter then Time.zero
    else Time.of_ns (int_of_float
           (Sim_engine.Rng.float t.jitter_rng
              (float_of_int (Time.to_ns t.jitter))))
  in
  let target = Time.add (Time.add (Scheduler.now t.sched) t.delay) extra in
  let when_ = Time.max target t.last_delivery in
  t.last_delivery <- when_;
  ignore (Scheduler.Event.schedule_at (the_pool t.rx_pool) when_ pkt);
  pump t

and pump t =
  match Pktqueue.dequeue t.queue with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = tx_time t ~bytes:pkt.Packet.size in
    t.st.tx_packets <- t.st.tx_packets + 1;
    t.st.tx_bytes <- t.st.tx_bytes + pkt.Packet.size;
    t.st.busy_ns <- t.st.busy_ns + Time.to_ns tx;
    List.iter (fun tap -> tap pkt) t.taps;
    ignore (Scheduler.Event.schedule_after (the_pool t.tx_pool) tx pkt)

let create ?(jitter = Time.of_us 5.) ~sched ~rate_bps ~delay ~queue ~id () =
  if rate_bps <= 0. then invalid_arg "Link.create: rate must be positive";
  let t =
    {
      sched;
      rate_bps;
      delay;
      jitter;
      (* Seeded from the link id: runs stay bit-for-bit reproducible. *)
      jitter_rng = Sim_engine.Rng.create ~seed:(0x11CC + id);
      queue;
      id;
      deliver = None;
      taps = [];
      busy = false;
      last_delivery = Time.zero;
      tx_pool = None;
      rx_pool = None;
      reserved_bps = 0.;
      st = { tx_packets = 0; tx_bytes = 0; busy_ns = 0 };
    }
  in
  t.tx_pool <- Some (Scheduler.Event.pool sched ~fire:(fun pkt -> tx_done t pkt));
  t.rx_pool <- Some (Scheduler.Event.pool sched ~fire:(fun pkt -> deliver_pkt t pkt));
  t

let send t pkt =
  if t.deliver = None then failwith "Link.send: no receiver attached";
  let accepted = Pktqueue.enqueue t.queue pkt in
  if accepted && not t.busy then pump t

let id t = t.id
let queue t = t.queue
let rate_bps t = t.rate_bps
let delay t = t.delay
let stats t = t.st

let set_reserved_bps t bps =
  t.reserved_bps <- Float.max 0. (Float.min bps t.rate_bps)

let reserved_bps t = t.reserved_bps

let utilisation t ~now =
  let n = Time.to_ns now in
  if n = 0 then 0. else float_of_int t.st.busy_ns /. float_of_int n
