module Builder = Topology.Builder

let no_paths a b = if Addr.equal a b then 0 else 1

let direct ~sched ?(spec = Topology.default_link_spec) () =
  let b = Builder.create sched in
  let h0 = Host.create ~sched ~addr:(Addr.of_int 0) in
  let h1 = Host.create ~sched ~addr:(Addr.of_int 1) in
  let l01 = Builder.make_link b ~spec ~layer:Layer.Host_layer in
  let l10 = Builder.make_link b ~spec ~layer:Layer.Host_layer in
  Builder.to_host l01 h1;
  Builder.to_host l10 h0;
  Host.add_nic h0 l01;
  Host.add_nic h1 l10;
  let ro_paths ~src ~dst = if src = dst then 0 else 1 in
  let ro_path ~src ~dst ~choice:_ =
    if src = dst then [||]
    else if src = 0 then [| Link.id l01 |]
    else [| Link.id l10 |]
  in
  {
    Topology.sched;
    name = "direct";
    hosts = [| h0; h1 |];
    switches = [||];
    links = Builder.links b;
    path_count = no_paths;
    routes = Some { Topology.ro_paths; ro_path };
  }

let create ~sched ?(edge_spec = Topology.default_link_spec)
    ?(bottleneck_spec = Topology.default_link_spec) ~pairs () =
  if pairs < 1 then invalid_arg "Dumbbell.create: pairs must be >= 1";
  let b = Builder.create sched in
  let n = 2 * pairs in
  let hosts = Array.init n (fun i -> Host.create ~sched ~addr:(Addr.of_int i)) in
  let sw_left = Switch.create ~id:0 ~layer:Layer.Edge_layer in
  let sw_right = Switch.create ~id:1 ~layer:Layer.Edge_layer in
  let host_down = Array.make n None in
  let host_up = Array.make n None in
  let attach sw i =
    let up = Builder.make_link b ~spec:edge_spec ~layer:Layer.Host_layer in
    Builder.to_switch up sw;
    Host.add_nic hosts.(i) up;
    host_up.(i) <- Some up;
    let down = Builder.make_link b ~spec:edge_spec ~layer:Layer.Edge_layer in
    Builder.to_host down hosts.(i);
    host_down.(i) <- Some down
  in
  for i = 0 to pairs - 1 do
    attach sw_left i
  done;
  for i = pairs to n - 1 do
    attach sw_right i
  done;
  let lr = Builder.make_link b ~spec:bottleneck_spec ~layer:Layer.Core_layer in
  let rl = Builder.make_link b ~spec:bottleneck_spec ~layer:Layer.Core_layer in
  Builder.to_switch lr sw_right;
  Builder.to_switch rl sw_left;
  let down i =
    match host_down.(i) with Some l -> l | None -> assert false
  in
  Switch.set_route sw_left (fun pkt ->
      let d = Addr.to_int pkt.Packet.dst in
      if d < pairs then down d else lr);
  Switch.set_route sw_right (fun pkt ->
      let d = Addr.to_int pkt.Packet.dst in
      if d >= pairs then down d else rl);
  let up i = match host_up.(i) with Some l -> Link.id l | None -> assert false in
  let ro_paths ~src ~dst = if src = dst then 0 else 1 in
  let ro_path ~src ~dst ~choice:_ =
    if src = dst then [||]
    else begin
      let left i = i < pairs in
      if left src = left dst then [| up src; Link.id (down dst) |]
      else if left src then [| up src; Link.id lr; Link.id (down dst) |]
      else [| up src; Link.id rl; Link.id (down dst) |]
    end
  in
  {
    Topology.sched;
    name = Printf.sprintf "dumbbell-%d" pairs;
    hosts;
    switches = [| sw_left; sw_right |];
    links = Builder.links b;
    path_count = no_paths;
    routes = Some { Topology.ro_paths; ro_path };
  }

let parking_lot ~sched ?(spec = Topology.default_link_spec) ~hops () =
  if hops < 1 then invalid_arg "Dumbbell.parking_lot: hops must be >= 1";
  let b = Builder.create sched in
  (* Switches s0 .. s_hops in a chain; sender i attaches to switch i,
     the single receiver attaches to the last switch. *)
  let switches =
    Array.init (hops + 1) (fun i -> Switch.create ~id:i ~layer:Layer.Edge_layer)
  in
  let hosts =
    Array.init (hops + 1) (fun i -> Host.create ~sched ~addr:(Addr.of_int i))
  in
  let host_down = Array.make (hops + 1) None in
  let host_up = Array.make (hops + 1) None in
  Array.iteri
    (fun i _ ->
      let sw = switches.(min i hops) in
      let up = Builder.make_link b ~spec ~layer:Layer.Host_layer in
      Builder.to_switch up sw;
      Host.add_nic hosts.(i) up;
      host_up.(i) <- Some up;
      let downl = Builder.make_link b ~spec ~layer:Layer.Edge_layer in
      Builder.to_host downl hosts.(i);
      host_down.(i) <- Some downl)
    hosts;
  (* Chain links, both directions, tagged Core for easy inspection. *)
  let fwd =
    Array.init hops (fun i ->
        let l = Builder.make_link b ~spec ~layer:Layer.Core_layer in
        Builder.to_switch l switches.(i + 1);
        l)
  in
  let bwd =
    Array.init hops (fun i ->
        let l = Builder.make_link b ~spec ~layer:Layer.Core_layer in
        Builder.to_switch l switches.(i);
        l)
  in
  let down i = match host_down.(i) with Some l -> l | None -> assert false in
  Array.iteri
    (fun si sw ->
      Switch.set_route sw (fun pkt ->
          let d = Addr.to_int pkt.Packet.dst in
          let d_switch = min d hops in
          if d_switch = si then down d
          else if d_switch > si then fwd.(si)
          else bwd.(si - 1)))
    switches;
  let up i = match host_up.(i) with Some l -> l | None -> assert false in
  let ro_paths ~src ~dst = if src = dst then 0 else 1 in
  let ro_path ~src ~dst ~choice:_ =
    if src = dst then [||]
    else begin
      let s = min src hops and d = min dst hops in
      let chain =
        if d > s then Array.init (d - s) (fun j -> Link.id fwd.(s + j))
        else if d < s then Array.init (s - d) (fun j -> Link.id bwd.(s - 1 - j))
        else [||]
      in
      Array.concat [ [| Link.id (up src) |]; chain; [| Link.id (down dst) |] ]
    end
  in
  {
    Topology.sched;
    name = Printf.sprintf "parking-lot-%d" hops;
    hosts;
    switches;
    links = Builder.links b;
    path_count = no_paths;
    routes = Some { Topology.ro_paths; ro_path };
  }
