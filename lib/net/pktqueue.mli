(** Drop-tail FIFO packet queue with optional ECN marking.

    One queue sits in front of every link transmitter. Capacity is
    counted in packets (matching ns-3's default [DropTailQueue]
    configuration used in the paper's era). When an ECN threshold is
    configured, packets that arrive to a backlog at or above the
    threshold are CE-marked instead of (not) being dropped — the
    standard DCTCP switch behaviour. *)

type stats = {
  mutable enqueued : int;  (** packets accepted *)
  mutable dropped : int;  (** packets dropped (queue full) *)
  mutable marked : int;  (** packets CE-marked *)
  mutable bytes_enqueued : int;
  mutable max_backlog : int;  (** high-water mark, packets *)
}

type t

(** Random Early Detection parameters (Floyd & Jacobson 1993). The
    average queue is an EWMA with gain [weight]; packets are dropped
    (or CE-marked when [mark] is set and the packet's transport
    supports it) with probability rising linearly from 0 at [min_th]
    to [max_p] at [max_th], and always beyond [max_th]. *)
type red = {
  min_th : int;  (** packets *)
  max_th : int;  (** packets *)
  max_p : float;
  weight : float;  (** EWMA gain, e.g. 0.002 *)
  mark : bool;  (** mark instead of dropping (ECN mode) *)
}

val default_red : red
(** min 5, max 15, max_p 0.1, weight 0.002, drop mode. *)

val create :
  ?ecn_threshold:int ->
  ?red:red ->
  ctx:Sim_engine.Sim_ctx.t ->
  capacity:int ->
  layer:Layer.t ->
  unit ->
  t
(** [capacity] in packets; [ecn_threshold] in packets (step marking at
    a fixed backlog, the DCTCP style); [red] enables RED early
    drop/marking instead. The two are exclusive; [red] wins if both are
    given. [ctx] is the owning simulation's identifier state: queues
    constructed in the same order within a simulation draw the same
    RED seeds, independent of any other simulation in the process. *)

val enqueue : t -> Packet.t -> bool
(** [false] if the packet was dropped. *)

val add_drop_hook : t -> (Packet.t -> unit) -> unit
(** Register an observer called for every dropped packet. Multiple
    observers may coexist (e.g. {!Flowmon} and the metrics layer);
    they run in installation order, after the drop is counted in
    {!stats} and after any [queue_drop] metrics event is emitted.
    Hooks cannot be removed — an observer lives as long as its
    queue.

    {b Aliasing rule}: every hook runs strictly before the queue
    returns the packet to the pool ({!Packet.free} happens only after
    the last hook), so a hook may read any field of its argument — but
    the argument is a lease, not a gift. The moment the hook returns,
    the record may be recycled into an unrelated segment; a hook that
    wants to keep the packet (or any alias to it) past its own return
    must retain a {!Packet.copy}. The debug-profile pool sanitizer
    turns a violation into [Invalid_argument]; simlint rule D007
    rejects it statically. *)

val dequeue : t -> Packet.t option
val backlog_pkts : t -> int
val backlog_bytes : t -> int
val is_empty : t -> bool
val capacity : t -> int
val layer : t -> Layer.t
val stats : t -> stats

val red_average : t -> float
(** Current RED average backlog estimate; 0 when RED is off. *)
