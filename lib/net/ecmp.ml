(* SplitMix64-style finaliser over the packed 5-tuple. Cheap, and good
   enough avalanche behaviour that per-switch salts decorrelate. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_fields ~src ~dst ~sport ~dport ~salt =
  let open Int64 in
  let a = of_int ((src lsl 20) lxor dst) in
  let b = of_int ((sport lsl 16) lxor dport) in
  let h = mix64 (logxor (mix64 a) (add b (mul (of_int salt) 0x9E3779B97F4A7C15L))) in
  Int64.to_int h land Stdlib.max_int

let flow_hash (p : Packet.t) =
  hash_fields ~src:(Addr.to_int p.src) ~dst:(Addr.to_int p.dst)
    ~sport:p.src_port ~dport:p.dst_port ~salt:0

let select (p : Packet.t) ~salt ~n =
  if n <= 0 then invalid_arg "Ecmp.select: n must be positive";
  hash_fields ~src:(Addr.to_int p.src) ~dst:(Addr.to_int p.dst)
    ~sport:p.src_port ~dport:p.dst_port ~salt
  mod n
