(** Assembled networks.

    A topology bundles the hosts, switches and links of a built network
    together with a path-count oracle (the number of equal-cost paths
    ECMP can use between two hosts — the quantity MMPTCP's
    topology-aware dup-ACK heuristic derives from FatTree addressing). *)

module Time = Sim_engine.Sim_time

type link_spec = {
  rate_bps : float;
  delay : Time.t;
  queue_capacity : int;  (** packets *)
  ecn_threshold : int option;  (** packets; [None] disables marking *)
  red : Pktqueue.red option;  (** RED discipline; [None] = drop tail *)
  jitter : Time.t;  (** per-packet propagation jitter bound, see {!Link.create} *)
}

val default_link_spec : link_spec
(** 100 Mb/s, 20 us delay, 100-packet drop-tail queue, no ECN, 5 us
    propagation jitter — the base data-centre link. *)

(** Static forward-path enumeration over host indices, for transport
    models that never push packets through the switches (the fluid
    engine reads link capacities and delays along a path instead).
    [ro_paths ~src ~dst] is the number of distinct forward paths
    (matching [path_count]); [ro_path ~src ~dst ~choice] with
    [choice] in [\[0, ro_paths)] lists the link ids along that path in
    hop order, starting at the source NIC and ending at the
    destination's edge-down link. [links.(id)] is the link with that
    id (builder ids are assigned densely in creation order).
    Topologies whose routing is only defined packet-by-packet
    (randomised valiant bounce, per-NIC source routing) leave
    [routes = None]; model backends that need the oracle report the
    topology as unsupported rather than guessing. *)
type route_oracle = {
  ro_paths : src:int -> dst:int -> int;
  ro_path : src:int -> dst:int -> choice:int -> int array;
}

type t = {
  sched : Sim_engine.Scheduler.t;
  name : string;
  hosts : Host.t array;
  switches : Switch.t array;
  links : Link.t array;
  path_count : Addr.t -> Addr.t -> int;
  routes : route_oracle option;
}

val host : t -> int -> Host.t
val host_count : t -> int

(** {1 Aggregate statistics} *)

val layer_links : t -> Layer.t -> Link.t list
(** Links transmitted into by devices of the given layer. *)

val layer_loss_rate : t -> Layer.t -> float
(** Dropped / offered packets across the layer's queues; 0 if idle. *)

val layer_utilisation : t -> Layer.t -> float
(** Mean transmitter busy fraction over the layer's links at the
    current simulation time. *)

val total_drops : t -> int

(** {1 Building blocks for topology constructors} *)

module Builder : sig
  type b

  val create : Sim_engine.Scheduler.t -> b
  val sched : b -> Sim_engine.Scheduler.t

  val make_link : b -> spec:link_spec -> layer:Layer.t -> Link.t
  (** A fresh unattached link with a fresh id and its own queue. *)

  val links : b -> Link.t array

  val to_switch : Link.t -> Switch.t -> unit
  (** Attach the link's receive side to a switch. *)

  val to_host : Link.t -> Host.t -> unit
end
