type params = {
  aggs : int;
  intermediates : int;
  tors : int;
  hosts_per_tor : int;
  host_spec : Topology.link_spec;
  fabric_spec : Topology.link_spec;
}

let default_params ?(aggs = 4) ?(intermediates = 4) ?(tors = 16)
    ?(hosts_per_tor = 4) () =
  {
    aggs;
    intermediates;
    tors;
    hosts_per_tor;
    host_spec = Topology.default_link_spec;
    fabric_spec = Topology.default_link_spec;
  }

let validate p =
  if p.aggs < 2 then invalid_arg "Vl2: need >= 2 aggregation switches";
  if p.intermediates < 1 then invalid_arg "Vl2: need >= 1 intermediate switch";
  if p.tors < 2 then invalid_arg "Vl2: need >= 2 ToRs";
  if p.hosts_per_tor < 1 then invalid_arg "Vl2: need >= 1 host per ToR"

let host_count p = p.tors * p.hosts_per_tor

(* The two aggregation switches a ToR is homed to. *)
let aggs_of_tor p tor = (tor mod p.aggs, (tor + 1) mod p.aggs)

let create ~sched p =
  validate p;
  let n_hosts = host_count p in
  let open Topology in
  let b = Builder.create sched in
  let hosts =
    Array.init n_hosts (fun i -> Host.create ~sched ~addr:(Addr.of_int i))
  in
  let next_sw = ref 0 in
  let fresh_switch layer =
    let sw = Switch.create ~id:!next_sw ~layer in
    incr next_sw;
    sw
  in
  let tor = Array.init p.tors (fun _ -> fresh_switch Layer.Edge_layer) in
  let agg = Array.init p.aggs (fun _ -> fresh_switch Layer.Agg_layer) in
  let inter = Array.init p.intermediates (fun _ -> fresh_switch Layer.Core_layer) in

  let tor_of_host h = h / p.hosts_per_tor in

  (* Host <-> ToR. *)
  let tor_down =
    Array.init p.tors (fun t ->
        Array.init p.hosts_per_tor (fun i ->
            let h = (t * p.hosts_per_tor) + i in
            let down = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Edge_layer in
            Builder.to_host down hosts.(h);
            let up = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Host_layer in
            Builder.to_switch up tor.(t);
            Host.add_nic hosts.(h) up;
            down))
  in
  (* ToR <-> its two aggs. *)
  let tor_up =
    Array.init p.tors (fun t ->
        let a1, a2 = aggs_of_tor p t in
        Array.map
          (fun a ->
            let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Edge_layer in
            Builder.to_switch l agg.(a);
            l)
          [| a1; a2 |])
  in
  let agg_down_to_tor =
    (* agg_down.(a) : tor -> link option *)
    Array.init p.aggs (fun _ -> Hashtbl.create 16)
  in
  Array.iteri
    (fun t _ ->
      let a1, a2 = aggs_of_tor p t in
      List.iter
        (fun a ->
          let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
          Builder.to_switch l tor.(t);
          Hashtbl.replace agg_down_to_tor.(a) t l)
        (if a1 = a2 then [ a1 ] else [ a1; a2 ]))
    tor;
  (* Agg <-> intermediates: complete bipartite. *)
  let agg_up =
    Array.init p.aggs (fun _a ->
        Array.init p.intermediates (fun i ->
            let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
            Builder.to_switch l inter.(i);
            l))
  in
  let inter_down =
    Array.init p.intermediates (fun _i ->
        Array.init p.aggs (fun a ->
            let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Core_layer in
            Builder.to_switch l agg.(a);
            l))
  in

  (* Routing. *)
  Array.iteri
    (fun t sw ->
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let d = Addr.to_int pkt.Packet.dst in
          let dt = tor_of_host d in
          if dt = t then tor_down.(t).(d mod p.hosts_per_tor)
          else tor_up.(t).(Ecmp.select pkt ~salt ~n:2)))
    tor;
  Array.iteri
    (fun a sw ->
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let d = Addr.to_int pkt.Packet.dst in
          let dt = tor_of_host d in
          match Hashtbl.find_opt agg_down_to_tor.(a) dt with
          | Some l -> l
          | None -> agg_up.(a).(Ecmp.select pkt ~salt ~n:p.intermediates)))
    agg;
  Array.iteri
    (fun i sw ->
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let d = Addr.to_int pkt.Packet.dst in
          let dt = tor_of_host d in
          let a1, a2 = aggs_of_tor p dt in
          let a =
            if a1 = a2 then a1
            else if Ecmp.select pkt ~salt:(salt + 31) ~n:2 = 0 then a1
            else a2
          in
          inter_down.(i).(a)))
    inter;

  let path_count a bb =
    if Addr.equal a bb then 0
    else begin
      let ta = Addr.to_int a / p.hosts_per_tor
      and tb = Addr.to_int bb / p.hosts_per_tor in
      if ta = tb then 1
      else begin
        (* Up-agg choice x intermediate choice x down-agg choice, minus
           the shortcut when the two ToRs share an agg (2-hop path). *)
        let a1, a2 = aggs_of_tor p ta and b1, b2 = aggs_of_tor p tb in
        let shared = List.exists (fun x -> x = b1 || x = b2) [ a1; a2 ] in
        let up = if a1 = a2 then 1 else 2 in
        let down = if b1 = b2 then 1 else 2 in
        (up * p.intermediates * down) + (if shared then 1 else 0)
      end
    end
  in
  {
    sched;
    name = Printf.sprintf "vl2-a%d-i%d-t%d" p.aggs p.intermediates p.tors;
    hosts;
    switches = Array.concat [ tor; agg; inter ];
    links = Builder.links b;
    path_count;
    routes = None;
  }
