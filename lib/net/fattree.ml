type params = {
  k : int;
  oversub : int;
  host_spec : Topology.link_spec;
  fabric_spec : Topology.link_spec;
}

let default_params ?(k = 4) ?(oversub = 4) () =
  {
    k;
    oversub;
    host_spec = Topology.default_link_spec;
    fabric_spec = Topology.default_link_spec;
  }

let validate p =
  if p.k < 2 || p.k mod 2 <> 0 then
    invalid_arg "Fattree: k must be even and >= 2";
  if p.oversub < 1 then invalid_arg "Fattree: oversub must be >= 1"

let hosts_per_edge p = p.k / 2 * p.oversub
let hosts_per_pod p = p.k / 2 * hosts_per_edge p
let host_count p = p.k * hosts_per_pod p

let position p addr =
  let h = Addr.to_int addr in
  let hpe = hosts_per_edge p and hpp = hosts_per_pod p in
  let pod = h / hpp in
  let rem = h mod hpp in
  (pod, rem / hpe, rem mod hpe)

let paths_between p a b =
  let pa, ea, _ = position p a and pb, eb, _ = position p b in
  let half = p.k / 2 in
  if Addr.equal a b then 0
  else if pa = pb && ea = eb then 1
  else if pa = pb then half
  else half * half

let create ~sched p =
  validate p;
  let n_hosts = host_count p in
  let open Topology in
  let b = Builder.create sched in
  let half = p.k / 2 in
  let pods = p.k in
  let hpe = hosts_per_edge p in
  let hosts =
    Array.init n_hosts (fun i -> Host.create ~sched ~addr:(Addr.of_int i))
  in
  (* Switch ids are globally unique so ECMP salts differ per switch. *)
  let next_sw = ref 0 in
  let fresh_switch layer =
    let sw = Switch.create ~id:!next_sw ~layer in
    incr next_sw;
    sw
  in
  let edge = Array.init pods (fun _ -> Array.init half (fun _ -> fresh_switch Layer.Edge_layer)) in
  let agg = Array.init pods (fun _ -> Array.init half (fun _ -> fresh_switch Layer.Agg_layer)) in
  let core = Array.init (half * half) (fun _ -> fresh_switch Layer.Core_layer) in

  (* Host <-> edge links. The up links are retained for the route
     oracle; make_link call order (down before up, per host) is id
     assignment order and must not change. *)
  let host_up = Array.make n_hosts None in
  let edge_down = (* edge_down.(pod).(e).(i) : edge -> host i *)
    Array.init pods (fun pd ->
        Array.init half (fun e ->
            Array.init hpe (fun i ->
                let host_id = (pd * half + e) * hpe + i in
                let l = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Edge_layer in
                Builder.to_host l hosts.(host_id);
                let up = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Host_layer in
                Builder.to_switch up edge.(pd).(e);
                Host.add_nic hosts.(host_id) up;
                host_up.(host_id) <- Some up;
                l)))
  in
  (* Edge <-> agg links (within each pod, full bipartite). *)
  let edge_up = (* edge_up.(pod).(e).(a) : edge e -> agg a *)
    Array.init pods (fun pd ->
        Array.init half (fun e ->
            Array.init half (fun a ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Edge_layer in
                Builder.to_switch l agg.(pd).(a);
                ignore e;
                l)))
  in
  let agg_down = (* agg_down.(pod).(a).(e) : agg a -> edge e *)
    Array.init pods (fun pd ->
        Array.init half (fun a ->
            Array.init half (fun e ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
                Builder.to_switch l edge.(pd).(e);
                ignore a;
                l)))
  in
  (* Agg <-> core links. Core c = a * half + m connects to agg a of
     every pod; agg (pd, a) uplink m goes to core a*half + m. *)
  let agg_up = (* agg_up.(pod).(a).(m) : agg -> core (a*half + m) *)
    Array.init pods (fun pd ->
        Array.init half (fun a ->
            Array.init half (fun m ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
                Builder.to_switch l core.((a * half) + m);
                ignore pd;
                l)))
  in
  let core_down = (* core_down.(c).(pod) : core -> agg (c / half) of pod *)
    Array.init (half * half) (fun c ->
        Array.init pods (fun pd ->
            let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Core_layer in
            Builder.to_switch l agg.(pd).(c / half);
            l))
  in

  (* Routing. *)
  let pos addr = position p addr in
  for pd = 0 to pods - 1 do
    for e = 0 to half - 1 do
      let sw = edge.(pd).(e) in
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let dpd, de, di = pos pkt.Packet.dst in
          if dpd = pd && de = e then edge_down.(pd).(e).(di)
          else edge_up.(pd).(e).(Ecmp.select pkt ~salt ~n:half))
    done;
    for a = 0 to half - 1 do
      let sw = agg.(pd).(a) in
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let dpd, de, _ = pos pkt.Packet.dst in
          if dpd = pd then agg_down.(pd).(a).(de)
          else agg_up.(pd).(a).(Ecmp.select pkt ~salt ~n:half))
    done
  done;
  Array.iteri
    (fun c sw ->
      Switch.set_route sw (fun pkt ->
          let dpd, _, _ = pos pkt.Packet.dst in
          core_down.(c).(dpd)))
    core;

  let switches =
    Array.concat
      [ Array.concat (Array.to_list edge); Array.concat (Array.to_list agg); core ]
  in
  (* Static path enumeration mirroring the ECMP routing above: the
     per-hop next-link tables are deterministic given the (agg, core
     uplink) pair a hashed scatter would pick, so [choice] indexes
     that pair directly. *)
  let up h = match host_up.(h) with Some l -> Link.id l | None -> assert false in
  let ro_paths ~src ~dst = paths_between p (Addr.of_int src) (Addr.of_int dst) in
  let ro_path ~src ~dst ~choice =
    if src = dst then [||]
    else begin
      let spd, se, _ = position p (Addr.of_int src) in
      let dpd, de, di = position p (Addr.of_int dst) in
      let down = Link.id edge_down.(dpd).(de).(di) in
      if spd = dpd && se = de then [| up src; down |]
      else if spd = dpd then begin
        let a = choice mod half in
        [|
          up src;
          Link.id edge_up.(spd).(se).(a);
          Link.id agg_down.(spd).(a).(de);
          down;
        |]
      end
      else begin
        let c = choice mod (half * half) in
        let a = c / half and m = c mod half in
        [|
          up src;
          Link.id edge_up.(spd).(se).(a);
          Link.id agg_up.(spd).(a).(m);
          Link.id core_down.((a * half) + m).(dpd);
          Link.id agg_down.(dpd).(a).(de);
          down;
        |]
      end
    end
  in
  {
    sched;
    name = Printf.sprintf "fattree-k%d-oversub%d" p.k p.oversub;
    hosts;
    switches;
    links = Builder.links b;
    path_count = (fun a bb -> paths_between p a bb);
    routes = Some { ro_paths; ro_path };
  }
