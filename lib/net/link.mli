(** Unidirectional point-to-point link.

    A link models a transmitter (store-and-forward serialisation at
    [rate_bps] out of a drop-tail queue) followed by fixed propagation
    delay. Transmission is pipelined: the next packet starts
    serialising as soon as the previous one has left the transmitter,
    while earlier packets are still propagating.

    The receive side is a closure installed with [attach]; topologies
    wire it to the downstream switch or host. *)

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable busy_ns : int;  (** cumulative serialisation time, ns *)
}

type t

val create :
  ?jitter:Sim_engine.Sim_time.t ->
  sched:Sim_engine.Scheduler.t ->
  rate_bps:float ->
  delay:Sim_engine.Sim_time.t ->
  queue:Pktqueue.t ->
  id:int ->
  unit ->
  t
(** [jitter] (default 5 us) is the bound of a uniform random extra
    propagation delay applied per packet, from a per-link deterministic
    stream. It decorrelates otherwise perfectly ACK-clocked arrivals —
    without it drop-tail FIFOs exhibit total lockout of sparse flows, a
    simulation artifact. Delivery order on a link remains FIFO. Pass
    [Sim_time.zero] for exact timing (used by timing unit tests). *)

val attach : t -> (Packet.t -> unit) -> unit
(** Install the receiver-side handler. Must be called before traffic
    flows; [send] raises [Failure] otherwise. *)

val add_tap : t -> (Packet.t -> unit) -> unit
(** Register a passive observer called for every packet as it starts
    transmitting (flow monitors, packet sniffers). Taps never affect
    forwarding. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission (drop-tail on overflow). *)

val id : t -> int
val queue : t -> Pktqueue.t
val rate_bps : t -> float
val delay : t -> Sim_engine.Sim_time.t
val stats : t -> stats

val set_reserved_bps : t -> float -> unit
(** Reserve part of the link's capacity for a coexisting fluid
    allocation (hybrid model): subsequent packet serialisations run at
    the residual rate, floored at 5% of nominal so packet traffic
    always drains. Clamped to [\[0, rate_bps\]]; 0 (the initial value)
    restores exact nominal-rate timing. *)

val reserved_bps : t -> float

val utilisation : t -> now:Sim_engine.Sim_time.t -> float
(** Fraction of wall-clock time the transmitter has been busy. *)

val tx_time : t -> bytes:int -> Sim_engine.Sim_time.t
(** Serialisation delay for a packet of [bytes] bytes. *)
