(** Hash-based equal-cost multi-path selection.

    Switches hash the 5-tuple of each packet to pick among equal-cost
    next hops, as in RFC 2992-style ECMP. The hash is deterministic, so
    all packets of a (src, dst, sport, dport) flow follow one path —
    which is exactly why per-packet source-port randomisation in
    MMPTCP's packet-scatter phase sprays packets across all paths. *)

val hash_fields :
  src:int -> dst:int -> sport:int -> dport:int -> salt:int -> int
(** The stable SplitMix64-style hash underlying {!flow_hash} and
    {!select}. Deliberately NOT [Hashtbl.hash] (simlint rule D003):
    the polymorphic hash may change between compiler releases, which
    would silently re-route every sprayed packet and change every
    figure. This function is pure integer arithmetic; golden tests pin
    its exact values so a behaviour change cannot land unnoticed. *)

val flow_hash : Packet.t -> int
(** Non-negative hash of the packet's 5-tuple. *)

val select : Packet.t -> salt:int -> n:int -> int
(** [select pkt ~salt ~n] picks an index in [\[0, n)]. [salt] decorrelates
    the choice made by different switches on the same flow (real
    switches use distinct hash seeds; without this, hash polarisation
    would collapse path diversity). *)
