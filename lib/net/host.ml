type t = {
  sched : Sim_engine.Scheduler.t;
  addr : Addr.t;
  mutable nics : Link.t array;
  demux : (int, Packet.t -> unit) Hashtbl.t;
  mutable unmatched : int;
}

let create ~sched ~addr =
  { sched; addr; nics = [||]; demux = Hashtbl.create 16; unmatched = 0 }

let addr t = t.addr
let sched t = t.sched

let add_nic t link = t.nics <- Array.append t.nics [| link |]
let nic_count t = Array.length t.nics

let send t pkt =
  match Array.length t.nics with
  | 0 -> failwith "Host.send: host has no NIC"
  | 1 -> Link.send t.nics.(0) pkt
  | n ->
    let i = Ecmp.select pkt ~salt:(Addr.to_int t.addr + 0x5115) ~n in
    Link.send t.nics.(i) pkt

(* The host is the end of a packet's life: once the bound handler has
   read it (handlers must not retain packets), the record goes back to
   the simulation's pool. *)
let receive t pkt =
  (match Hashtbl.find_opt t.demux pkt.Packet.conn with
   | Some handler -> handler pkt
   | None -> t.unmatched <- t.unmatched + 1);
  Packet.free ~ctx:(Sim_engine.Scheduler.ctx t.sched) pkt

let bind t ~conn handler =
  if Hashtbl.mem t.demux conn then
    invalid_arg "Host.bind: connection id already bound";
  Hashtbl.replace t.demux conn handler

let unbind t ~conn = Hashtbl.remove t.demux conn
let unmatched t = t.unmatched
