type params = {
  k : int;
  oversub : int;
  host_spec : Topology.link_spec;
  fabric_spec : Topology.link_spec;
}

let default_params ?(k = 4) ?(oversub = 4) () =
  {
    k;
    oversub;
    host_spec = Topology.default_link_spec;
    fabric_spec = Topology.default_link_spec;
  }

let validate p =
  if p.k < 4 || p.k mod 2 <> 0 then
    invalid_arg "Multihomed: k must be even and >= 4";
  if p.oversub < 1 then invalid_arg "Multihomed: oversub must be >= 1"

let hosts_per_edge p = p.k / 2 * p.oversub
let hosts_per_pod p = p.k / 2 * hosts_per_edge p
let host_count p = p.k * hosts_per_pod p

let position p addr =
  let h = Addr.to_int addr in
  let hpe = hosts_per_edge p and hpp = hosts_per_pod p in
  let pod = h / hpp in
  let rem = h mod hpp in
  (pod, rem / hpe, rem mod hpe)

let paths_between p a b =
  let pa, ea, _ = position p a and pb, eb, _ = position p b in
  let half = p.k / 2 in
  if Addr.equal a b then 0
  else if pa = pb && (ea = eb || (ea + 1) mod half = eb || (eb + 1) mod half = ea)
  then 2 * half (* some shared edge: direct + via fabric *)
  else if pa = pb then 2 * half
  else 2 * half * half

let create ~sched p =
  validate p;
  let n_hosts = host_count p in
  let open Topology in
  let b = Builder.create sched in
  let half = p.k / 2 in
  let pods = p.k in
  let hosts =
    Array.init n_hosts (fun i -> Host.create ~sched ~addr:(Addr.of_int i))
  in
  let next_sw = ref 0 in
  let fresh_switch layer =
    let sw = Switch.create ~id:!next_sw ~layer in
    incr next_sw;
    sw
  in
  let edge = Array.init pods (fun _ -> Array.init half (fun _ -> fresh_switch Layer.Edge_layer)) in
  let agg = Array.init pods (fun _ -> Array.init half (fun _ -> fresh_switch Layer.Agg_layer)) in
  let core = Array.init (half * half) (fun _ -> fresh_switch Layer.Core_layer) in

  (* Host links: each host connects to its home edge [e] and to
     [(e+1) mod half]. Downlink tables are per edge switch, keyed by
     host id. *)
  let edge_host_down = Array.init pods (fun _ -> Array.init half (fun _ -> Hashtbl.create 32)) in
  for h = 0 to n_hosts - 1 do
    let pd, e, _ = position p (Addr.of_int h) in
    let attach_to e' =
      let up = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Host_layer in
      Builder.to_switch up edge.(pd).(e');
      Host.add_nic hosts.(h) up;
      let down = Builder.make_link b ~spec:p.host_spec ~layer:Layer.Edge_layer in
      Builder.to_host down hosts.(h);
      Hashtbl.replace edge_host_down.(pd).(e') h down
    in
    attach_to e;
    attach_to ((e + 1) mod half)
  done;

  let edge_up =
    Array.init pods (fun pd ->
        Array.init half (fun _e ->
            Array.init half (fun a ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Edge_layer in
                Builder.to_switch l agg.(pd).(a);
                l)))
  in
  let agg_down =
    Array.init pods (fun pd ->
        Array.init half (fun _a ->
            Array.init half (fun e ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
                Builder.to_switch l edge.(pd).(e);
                l)))
  in
  let agg_up =
    Array.init pods (fun _pd ->
        Array.init half (fun a ->
            Array.init half (fun m ->
                let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Agg_layer in
                Builder.to_switch l core.((a * half) + m);
                l)))
  in
  let core_down =
    Array.init (half * half) (fun c ->
        Array.init pods (fun pd ->
            let l = Builder.make_link b ~spec:p.fabric_spec ~layer:Layer.Core_layer in
            Builder.to_switch l agg.(pd).(c / half);
            l))
  in

  let pos addr = position p addr in
  for pd = 0 to pods - 1 do
    for e = 0 to half - 1 do
      let sw = edge.(pd).(e) in
      let salt = Switch.id sw in
      let down_tbl = edge_host_down.(pd).(e) in
      Switch.set_route sw (fun pkt ->
          let d = Addr.to_int pkt.Packet.dst in
          match Hashtbl.find_opt down_tbl d with
          | Some l -> l
          | None -> edge_up.(pd).(e).(Ecmp.select pkt ~salt ~n:half))
    done;
    for a = 0 to half - 1 do
      let sw = agg.(pd).(a) in
      let salt = Switch.id sw in
      Switch.set_route sw (fun pkt ->
          let dpd, de, _ = pos pkt.Packet.dst in
          if dpd = pd then begin
            (* Two candidate edges serve the destination host. *)
            let e1 = de and e2 = (de + 1) mod half in
            let e = if Ecmp.select pkt ~salt:(salt + 7919) ~n:2 = 0 then e1 else e2 in
            agg_down.(pd).(a).(e)
          end
          else agg_up.(pd).(a).(Ecmp.select pkt ~salt ~n:half))
    done
  done;
  Array.iteri
    (fun c sw ->
      Switch.set_route sw (fun pkt ->
          let dpd, _, _ = pos pkt.Packet.dst in
          core_down.(c).(dpd)))
    core;

  let switches =
    Array.concat
      [ Array.concat (Array.to_list edge); Array.concat (Array.to_list agg); core ]
  in
  {
    sched;
    name = Printf.sprintf "multihomed-k%d-oversub%d" p.k p.oversub;
    hosts;
    switches;
    links = Builder.links b;
    path_count = (fun a bb -> paths_between p a bb);
    routes = None;
  }
