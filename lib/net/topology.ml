module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler

type link_spec = {
  rate_bps : float;
  delay : Time.t;
  queue_capacity : int;
  ecn_threshold : int option;
  red : Pktqueue.red option;
  jitter : Time.t;
}

let default_link_spec =
  {
    rate_bps = 100e6;
    delay = Time.of_us 20.;
    queue_capacity = 100;
    ecn_threshold = None;
    red = None;
    jitter = Time.of_us 5.;
  }

type route_oracle = {
  ro_paths : src:int -> dst:int -> int;
  ro_path : src:int -> dst:int -> choice:int -> int array;
}

type t = {
  sched : Scheduler.t;
  name : string;
  hosts : Host.t array;
  switches : Switch.t array;
  links : Link.t array;
  path_count : Addr.t -> Addr.t -> int;
  routes : route_oracle option;
}

let host t i = t.hosts.(i)
let host_count t = Array.length t.hosts

let layer_links t layer =
  Array.to_list t.links
  |> List.filter (fun l -> Layer.equal (Pktqueue.layer (Link.queue l)) layer)

let layer_loss_rate t layer =
  let offered = ref 0 and dropped = ref 0 in
  List.iter
    (fun l ->
      let st = Pktqueue.stats (Link.queue l) in
      offered := !offered + st.Pktqueue.enqueued + st.Pktqueue.dropped;
      dropped := !dropped + st.Pktqueue.dropped)
    (layer_links t layer);
  if !offered = 0 then 0. else float_of_int !dropped /. float_of_int !offered

let layer_utilisation t layer =
  let links = layer_links t layer in
  match links with
  | [] -> 0.
  | _ ->
    let now = Scheduler.now t.sched in
    let sum =
      List.fold_left (fun acc l -> acc +. Link.utilisation l ~now) 0. links
    in
    sum /. float_of_int (List.length links)

let total_drops t =
  Array.fold_left
    (fun acc l -> acc + (Pktqueue.stats (Link.queue l)).Pktqueue.dropped)
    0 t.links

module Builder = struct
  type b = {
    sched : Scheduler.t;
    mutable links_rev : Link.t list;
    mutable next_id : int;
  }

  let create sched = { sched; links_rev = []; next_id = 0 }
  let sched b = b.sched

  let make_link b ~spec ~layer =
    let queue =
      Pktqueue.create ?ecn_threshold:spec.ecn_threshold ?red:spec.red
        ~ctx:(Scheduler.ctx b.sched) ~capacity:spec.queue_capacity ~layer ()
    in
    let link =
      Link.create ~jitter:spec.jitter ~sched:b.sched ~rate_bps:spec.rate_bps
        ~delay:spec.delay ~queue ~id:b.next_id ()
    in
    b.next_id <- b.next_id + 1;
    b.links_rev <- link :: b.links_rev;
    link

  let links b = Array.of_list (List.rev b.links_rev)
  let to_switch link sw = Link.attach link (Switch.receive sw)
  let to_host link h = Link.attach link (Host.receive h)
end
