type t = {
  mutable uid : int;
  mutable src : Addr.t;
  mutable dst : Addr.t;
  mutable size : int;
  mutable conn : int;
  mutable subflow : int;
  mutable src_port : int;
  mutable dst_port : int;
  mutable seq : int;
  mutable ack_seq : int;
  mutable len : int;
  mutable bits : int;
  mutable dsn : int;
  mutable sack_count : int;
  sack : int array;
  mutable ce : bool;
  mutable gen : int;
}

let header_bytes = 40
let max_sack_blocks = 3

let syn_bit = 1
let ack_bit = 2
let fin_bit = 4
let ece_bit = 8
let dup_bit = 16

let data_bits = 0
let pure_ack_bits = ack_bit
let syn_bits = syn_bit
let syn_ack_bits = syn_bit lor ack_bit

let ack_bits ~ece ~dup_seen =
  ack_bit lor (if ece then ece_bit else 0) lor (if dup_seen then dup_bit else 0)

(* ------------------------------------------------------------------ *)
(* Pool sanitizer (debug profiles only; [sanitizer] is a compile-time
   constant, so release builds pay one predictable branch per guarded
   operation and nothing else).

   [gen] counts the record's trips through the pool: odd = live
   (issued by [make]), even = pooled (returned by [free]). [free]
   flips the parity and poisons every header field, so a stale alias
   that survives its handler either trips a generation check at the
   next accessor call or reads values no valid segment can carry —
   both of which the debug test battery catches deterministically
   instead of corrupting a sequence number in silence. *)

let sanitizer = Sim_engine.Sanitizer_mode.on

(* Poison sits far outside any valid sequence/length so arithmetic on
   a dead packet produces wildly wrong, not plausibly wrong, values. *)
let poison = 0x7EAD_DEAD_DEAD

let dead t = t.gen land 1 = 0

let check_live t ~op =
  if sanitizer && dead t then
    invalid_arg
      (Printf.sprintf
         "Packet.%s: use-after-free of pooled packet uid %d (pool generation \
          %d; the record was returned to the pool — retaining components must \
          Packet.copy)"
         op t.uid t.gen)

let syn t = check_live t ~op:"syn"; t.bits land syn_bit <> 0
let ack t = check_live t ~op:"ack"; t.bits land ack_bit <> 0
let fin t = check_live t ~op:"fin"; t.bits land fin_bit <> 0
let ece t = check_live t ~op:"ece"; t.bits land ece_bit <> 0
let dup_seen t = check_live t ~op:"dup_seen"; t.bits land dup_bit <> 0

(* ------------------------------------------------------------------ *)
(* Per-simulation freelist, hung off the context's extension slot so
   the engine layer needn't know the packet type. A plain stack: [free]
   pushes, [make] pops. Records in the pool are dead — nothing else
   references them — so reuse only has to reinitialise every field
   [make] promises. The [dummy] fill element lives in the pool record
   itself (allocated per simulation with the pool), so freed slots
   hold no live packet and no module-level state exists to share
   across simulations. *)

type pool = { mutable items : t array; mutable count : int; dummy : t }

type Sim_engine.Sim_ctx.ext += Pool of pool

let pool_of ctx =
  match Sim_engine.Sim_ctx.ext ctx with
  | Some (Pool p) -> p
  | _ ->
    let dummy =
      {
        uid = 0;
        src = Addr.of_int 0;
        dst = Addr.of_int 0;
        size = 0;
        conn = 0;
        subflow = 0;
        src_port = 0;
        dst_port = 0;
        seq = 0;
        ack_seq = 0;
        len = 0;
        bits = 0;
        dsn = -1;
        sack_count = 0;
        sack = [||];
        ce = false;
        gen = 0;
      }
    in
    let p = { items = Array.make 64 dummy; count = 0; dummy } in
    Sim_engine.Sim_ctx.set_ext ctx (Pool p);
    p

let make ~ctx ~src ~dst ~conn ~subflow ~src_port ~dst_port ~seq ~ack_seq ~len
    ~bits ~dsn =
  let uid = Sim_engine.Sim_ctx.fresh_packet_uid ctx in
  if sanitizer then Sim_engine.Sim_ctx.pool_track ctx 1;
  let p = pool_of ctx in
  if p.count = 0 then
    {
      uid;
      src;
      dst;
      size = header_bytes + len;
      conn;
      subflow;
      src_port;
      dst_port;
      seq;
      ack_seq;
      len;
      bits;
      dsn;
      sack_count = 0;
      sack = Array.make (2 * max_sack_blocks) 0;
      ce = false;
      gen = 1;
    }
  else begin
    p.count <- p.count - 1;
    let t = p.items.(p.count) in
    p.items.(p.count) <- p.dummy;
    if sanitizer then begin
      if not (dead t) then
        invalid_arg
          (Printf.sprintf
             "Packet.make: pool corruption — freelist slot holds a live \
              record (uid %d, generation %d)"
             t.uid t.gen);
      t.gen <- t.gen + 1 (* odd again: reissued *)
    end;
    t.uid <- uid;
    t.src <- src;
    t.dst <- dst;
    t.size <- header_bytes + len;
    t.conn <- conn;
    t.subflow <- subflow;
    t.src_port <- src_port;
    t.dst_port <- dst_port;
    t.seq <- seq;
    t.ack_seq <- ack_seq;
    t.len <- len;
    t.bits <- bits;
    t.dsn <- dsn;
    t.sack_count <- 0;
    t.ce <- false;
    t
  end

let copy ~ctx t =
  check_live t ~op:"copy";
  let d =
    make ~ctx ~src:t.src ~dst:t.dst ~conn:t.conn ~subflow:t.subflow
      ~src_port:t.src_port ~dst_port:t.dst_port ~seq:t.seq ~ack_seq:t.ack_seq
      ~len:t.len ~bits:t.bits ~dsn:t.dsn
  in
  d.ce <- t.ce;
  d.sack_count <- t.sack_count;
  Array.blit t.sack 0 d.sack 0 (2 * t.sack_count);
  d

let free ~ctx t =
  if sanitizer then begin
    if dead t then
      invalid_arg
        (Printf.sprintf
           "Packet.free: double free of pooled packet uid %d (pool \
            generation %d; only the packet's final owner — host delivery or \
            queue drop — frees, exactly once)"
           t.uid t.gen);
    t.gen <- t.gen + 1;
    (* even: pooled *)
    Sim_engine.Sim_ctx.pool_track ctx (-1);
    (* Poison the header so a stale direct field read (which no
       accessor guard can intercept) yields values outside any valid
       segment. [uid] is kept for the diagnostic above. *)
    t.seq <- poison;
    t.ack_seq <- poison;
    t.len <- poison;
    t.size <- poison;
    t.dsn <- poison;
    t.conn <- poison;
    t.subflow <- poison;
    t.sack_count <- 0;
    Array.fill t.sack 0 (Array.length t.sack) poison
  end;
  let p = pool_of ctx in
  if p.count = Array.length p.items then begin
    let items = Array.make (2 * p.count) p.dummy in
    Array.blit p.items 0 items 0 p.count;
    p.items <- items
  end;
  p.items.(p.count) <- t;
  p.count <- p.count + 1

let sack_blocks t =
  check_live t ~op:"sack_blocks";
  List.init t.sack_count (fun i -> (t.sack.(2 * i), t.sack.((2 * i) + 1)))

let is_data t = check_live t ~op:"is_data"; t.len > 0

let is_pure_ack t =
  check_live t ~op:"is_pure_ack";
  t.len = 0 && t.bits land ack_bit <> 0 && t.bits land syn_bit = 0

let pp ppf t =
  check_live t ~op:"pp";
  Format.fprintf ppf "#%d %a->%a c%d.%d %s seq=%d ack=%d len=%d%s" t.uid
    Addr.pp t.src Addr.pp t.dst t.conn t.subflow
    (if syn t && ack t then "SYNACK"
     else if syn t then "SYN"
     else if t.len > 0 then "DATA"
     else "ACK")
    t.seq t.ack_seq t.len
    (if t.ce then " CE" else "")
