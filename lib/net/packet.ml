type t = {
  mutable uid : int;
  mutable src : Addr.t;
  mutable dst : Addr.t;
  mutable size : int;
  mutable conn : int;
  mutable subflow : int;
  mutable src_port : int;
  mutable dst_port : int;
  mutable seq : int;
  mutable ack_seq : int;
  mutable len : int;
  mutable bits : int;
  mutable dsn : int;
  mutable sack_count : int;
  sack : int array;
  mutable ce : bool;
}

let header_bytes = 40
let max_sack_blocks = 3

let syn_bit = 1
let ack_bit = 2
let fin_bit = 4
let ece_bit = 8
let dup_bit = 16

let data_bits = 0
let pure_ack_bits = ack_bit
let syn_bits = syn_bit
let syn_ack_bits = syn_bit lor ack_bit

let ack_bits ~ece ~dup_seen =
  ack_bit lor (if ece then ece_bit else 0) lor (if dup_seen then dup_bit else 0)

let syn t = t.bits land syn_bit <> 0
let ack t = t.bits land ack_bit <> 0
let fin t = t.bits land fin_bit <> 0
let ece t = t.bits land ece_bit <> 0
let dup_seen t = t.bits land dup_bit <> 0

(* ------------------------------------------------------------------ *)
(* Per-simulation freelist, hung off the context's extension slot so
   the engine layer needn't know the packet type. A plain stack: [free]
   pushes, [make] pops. Records in the pool are dead — nothing else
   references them — so reuse only has to reinitialise every field
   [make] promises. *)

type pool = { mutable items : t array; mutable count : int }

type Sim_engine.Sim_ctx.ext += Pool of pool

let dummy =
  {
    uid = 0;
    src = Addr.of_int 0;
    dst = Addr.of_int 0;
    size = 0;
    conn = 0;
    subflow = 0;
    src_port = 0;
    dst_port = 0;
    seq = 0;
    ack_seq = 0;
    len = 0;
    bits = 0;
    dsn = -1;
    sack_count = 0;
    sack = [||];
    ce = false;
  }

let pool_of ctx =
  match Sim_engine.Sim_ctx.ext ctx with
  | Some (Pool p) -> p
  | _ ->
    let p = { items = Array.make 64 dummy; count = 0 } in
    Sim_engine.Sim_ctx.set_ext ctx (Pool p);
    p

let make ~ctx ~src ~dst ~conn ~subflow ~src_port ~dst_port ~seq ~ack_seq ~len
    ~bits ~dsn =
  let uid = Sim_engine.Sim_ctx.fresh_packet_uid ctx in
  let p = pool_of ctx in
  if p.count = 0 then
    {
      uid;
      src;
      dst;
      size = header_bytes + len;
      conn;
      subflow;
      src_port;
      dst_port;
      seq;
      ack_seq;
      len;
      bits;
      dsn;
      sack_count = 0;
      sack = Array.make (2 * max_sack_blocks) 0;
      ce = false;
    }
  else begin
    p.count <- p.count - 1;
    let t = p.items.(p.count) in
    p.items.(p.count) <- dummy;
    t.uid <- uid;
    t.src <- src;
    t.dst <- dst;
    t.size <- header_bytes + len;
    t.conn <- conn;
    t.subflow <- subflow;
    t.src_port <- src_port;
    t.dst_port <- dst_port;
    t.seq <- seq;
    t.ack_seq <- ack_seq;
    t.len <- len;
    t.bits <- bits;
    t.dsn <- dsn;
    t.sack_count <- 0;
    t.ce <- false;
    t
  end

let copy ~ctx t =
  let d =
    make ~ctx ~src:t.src ~dst:t.dst ~conn:t.conn ~subflow:t.subflow
      ~src_port:t.src_port ~dst_port:t.dst_port ~seq:t.seq ~ack_seq:t.ack_seq
      ~len:t.len ~bits:t.bits ~dsn:t.dsn
  in
  d.ce <- t.ce;
  d.sack_count <- t.sack_count;
  Array.blit t.sack 0 d.sack 0 (2 * t.sack_count);
  d

let free ~ctx t =
  let p = pool_of ctx in
  if p.count = Array.length p.items then begin
    let items = Array.make (2 * p.count) dummy in
    Array.blit p.items 0 items 0 p.count;
    p.items <- items
  end;
  p.items.(p.count) <- t;
  p.count <- p.count + 1

let sack_blocks t =
  List.init t.sack_count (fun i -> (t.sack.(2 * i), t.sack.((2 * i) + 1)))

let is_data t = t.len > 0
let is_pure_ack t = t.len = 0 && ack t && not (syn t)

let pp ppf t =
  Format.fprintf ppf "#%d %a->%a c%d.%d %s seq=%d ack=%d len=%d%s" t.uid
    Addr.pp t.src Addr.pp t.dst t.conn t.subflow
    (if syn t && ack t then "SYNACK"
     else if syn t then "SYN"
     else if t.len > 0 then "DATA"
     else "ACK")
    t.seq t.ack_seq t.len
    (if t.ce then " CE" else "")
