type flags = { syn : bool; ack : bool; fin : bool }

type tcp = {
  conn : int;
  subflow : int;
  src_port : int;
  dst_port : int;
  seq : int;
  ack_seq : int;
  len : int;
  flags : flags;
  ece : bool;
  dup_seen : bool;
  dsn : int;
  sack : (int * int) list;
}

type t = {
  uid : int;
  src : Addr.t;
  dst : Addr.t;
  size : int;
  tcp : tcp;
  mutable ce : bool;
}

let header_bytes = 40

let data_flags = { syn = false; ack = false; fin = false }
let pure_ack_flags = { syn = false; ack = true; fin = false }
let syn_flags = { syn = true; ack = false; fin = false }
let syn_ack_flags = { syn = true; ack = true; fin = false }

let make ~ctx ~src ~dst ~tcp =
  let uid = Sim_engine.Sim_ctx.fresh_packet_uid ctx in
  { uid; src; dst; size = header_bytes + tcp.len; tcp; ce = false }

let is_data t = t.tcp.len > 0
let is_pure_ack t = t.tcp.len = 0 && t.tcp.flags.ack && not t.tcp.flags.syn

let pp ppf t =
  let f = t.tcp.flags in
  Format.fprintf ppf "#%d %a->%a c%d.%d %s seq=%d ack=%d len=%d%s"
    t.uid Addr.pp t.src Addr.pp t.dst t.tcp.conn t.tcp.subflow
    (if f.syn && f.ack then "SYNACK"
     else if f.syn then "SYN"
     else if t.tcp.len > 0 then "DATA"
     else "ACK")
    t.tcp.seq t.tcp.ack_seq t.tcp.len
    (if t.ce then " CE" else "")
