type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable marked : int;
  mutable bytes_enqueued : int;
  mutable max_backlog : int;
}

type red = {
  min_th : int;
  max_th : int;
  max_p : float;
  weight : float;
  mark : bool;
}

let default_red = { min_th = 5; max_th = 15; max_p = 0.1; weight = 0.002; mark = false }

type t = {
  q : Packet.t Queue.t;
  ctx : Sim_engine.Sim_ctx.t;
  cap : int;
  ecn_threshold : int option;
  red : red option;
  red_rng : Sim_engine.Rng.t;
  mutable red_avg : float;
  lay : Layer.t;
  qname : string;
  mutable backlog_bytes : int;
  (* Installation order; every hook sees every dropped packet. *)
  mutable drop_hooks : (Packet.t -> unit) list;
  st : stats;
  m : Sim_obs.Metrics.t option;  (* [Some] only when the registry is on *)
}

let create ?ecn_threshold ?red ~ctx ~capacity ~layer () =
  if capacity <= 0 then invalid_arg "Pktqueue.create: capacity must be positive";
  (match red with
   | Some r ->
     if r.min_th < 0 || r.max_th <= r.min_th then
       invalid_arg "Pktqueue.create: bad RED thresholds";
     if r.max_p < 0. || r.max_p > 1. then
       invalid_arg "Pktqueue.create: bad RED max_p"
   | None -> ());
  (* Deterministic per-queue RED randomness: construction order within
     the simulation seeds. *)
  let queue_id = Sim_engine.Sim_ctx.fresh_queue_id ctx in
  let metrics = Sim_engine.Sim_ctx.metrics ctx in
  let qname = Printf.sprintf "q%d.%s" queue_id (Layer.to_string layer) in
  let t =
    {
      q = Queue.create ();
      ctx;
      cap = capacity;
      ecn_threshold = (if red = None then ecn_threshold else None);
      red;
      red_rng = Sim_engine.Rng.create ~seed:(0xEED + queue_id);
      red_avg = 0.;
      lay = layer;
      qname;
      backlog_bytes = 0;
      drop_hooks = [];
      st = { enqueued = 0; dropped = 0; marked = 0; bytes_enqueued = 0; max_backlog = 0 };
      m = (if Sim_obs.Metrics.active metrics then Some metrics else None);
    }
  in
  (match t.m with
   | Some m ->
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"pktqueue" ~id:qname ~name ~units
         read
     in
     reg "depth_pkts" "pkts" (fun () -> float_of_int (Queue.length t.q));
     reg "depth_bytes" "bytes" (fun () -> float_of_int t.backlog_bytes);
     reg "drops" "pkts" (fun () -> float_of_int t.st.dropped);
     reg "ecn_marks" "pkts" (fun () -> float_of_int t.st.marked)
   | None -> ());
  t

let add_drop_hook t hook = t.drop_hooks <- t.drop_hooks @ [ hook ]

let red_average t = t.red_avg

(* RED early-drop decision for an arriving packet. Returns [`Accept],
   [`Mark] or [`Drop]. *)
let red_verdict t r =
  t.red_avg <-
    ((1. -. r.weight) *. t.red_avg)
    +. (r.weight *. float_of_int (Queue.length t.q));
  if t.red_avg < float_of_int r.min_th then `Accept
  else if t.red_avg >= float_of_int r.max_th then
    if r.mark then `Mark else `Drop
  else begin
    let p =
      r.max_p
      *. (t.red_avg -. float_of_int r.min_th)
      /. float_of_int (r.max_th - r.min_th)
    in
    if Sim_engine.Rng.float t.red_rng 1.0 < p then
      if r.mark then `Mark else `Drop
    else `Accept
  end

let backlog_pkts t = Queue.length t.q
let backlog_bytes t = t.backlog_bytes
let is_empty t = Queue.is_empty t.q
let capacity t = t.cap
let layer t = t.lay
let stats t = t.st

let enqueue t pkt =
  let red_decision =
    match t.red with Some r -> red_verdict t r | None -> `Accept
  in
  if Queue.length t.q >= t.cap || red_decision = `Drop then begin
    t.st.dropped <- t.st.dropped + 1;
    (match t.m with
     | Some m ->
       Sim_obs.Metrics.emit m ~kind:"queue_drop"
         ~conn:pkt.Packet.conn
         ~subflow:pkt.Packet.subflow
         ~info:
           [ ("queue", t.qname); ("size", string_of_int pkt.Packet.size) ]
         ()
     | None -> ());
    List.iter (fun f -> f pkt) t.drop_hooks;
    (* A drop ends the packet's life; hooks have all seen it. The
       order is a contract (pktqueue.mli): free strictly after the
       last hook, so hooks read a live packet but must copy to
       retain. *)
    Packet.free ~ctx:t.ctx pkt;
    false
  end
  else begin
    if red_decision = `Mark then begin
      pkt.Packet.ce <- true;
      t.st.marked <- t.st.marked + 1
    end;
    (match t.ecn_threshold with
     | Some k when Queue.length t.q >= k ->
       pkt.Packet.ce <- true;
       t.st.marked <- t.st.marked + 1
     | Some _ | None -> ());
    Queue.push pkt t.q;
    t.backlog_bytes <- t.backlog_bytes + pkt.Packet.size;
    t.st.enqueued <- t.st.enqueued + 1;
    t.st.bytes_enqueued <- t.st.bytes_enqueued + pkt.Packet.size;
    if Queue.length t.q > t.st.max_backlog then t.st.max_backlog <- Queue.length t.q;
    true
  end

let dequeue t =
  match Queue.take_opt t.q with
  | None -> None
  | Some pkt ->
    t.backlog_bytes <- t.backlog_bytes - pkt.Packet.size;
    Some pkt
