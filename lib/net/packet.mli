(** Simulated packets.

    Every packet carries a TCP segment. The segment header includes the
    standard 5-tuple fields plus the simulation-level connection id
    (which stands in for full connection demultiplexing state at the
    hosts) and an optional MPTCP data-sequence mapping. *)

type flags = { syn : bool; ack : bool; fin : bool }

type tcp = {
  conn : int;  (** simulation-global connection identifier *)
  subflow : int;  (** subflow index within the connection; 0 for plain TCP *)
  src_port : int;
  dst_port : int;
  seq : int;  (** subflow-level byte sequence of the first payload byte *)
  ack_seq : int;  (** cumulative acknowledgement (valid when [flags.ack]) *)
  len : int;  (** payload bytes *)
  flags : flags;
  ece : bool;  (** ECN echo (receiver -> sender, for DCTCP) *)
  dup_seen : bool;  (** duplicate-arrival signal, a DSACK stand-in *)
  dsn : int;  (** MPTCP data-level sequence of the payload; -1 when absent *)
  sack : (int * int) list;
      (** selective-acknowledgement blocks [(start, stop)] above the
          cumulative ACK; at most 3, empty when the receiver holds no
          out-of-order data (or SACK is unused by the sender) *)
}

type t = {
  uid : int;  (** unique per packet, for tracing *)
  src : Addr.t;
  dst : Addr.t;
  size : int;  (** bytes on the wire, header included *)
  tcp : tcp;
  mutable ce : bool;  (** ECN congestion-experienced mark, set by queues *)
}

val header_bytes : int
(** Combined IP + TCP header size charged to every segment (40). *)

val data_flags : flags
val pure_ack_flags : flags
val syn_flags : flags
val syn_ack_flags : flags

val make : ctx:Sim_engine.Sim_ctx.t -> src:Addr.t -> dst:Addr.t -> tcp:tcp -> t
(** Builds a packet; [size] is [header_bytes + tcp.len]. The [uid] is
    drawn from the simulation's {!Sim_engine.Sim_ctx.t} so concurrent
    simulations never share numbering. *)

val is_data : t -> bool
val is_pure_ack : t -> bool
val pp : Format.formatter -> t -> unit
