(** Simulated packets.

    Every packet carries a TCP segment, flattened into one mutable
    record: the standard 5-tuple fields plus the simulation-level
    connection id (which stands in for full connection demultiplexing
    state at the hosts) and an optional MPTCP data-sequence mapping.

    Packets are pooled per simulation. {!make} reuses a record freed
    earlier in the same {!Sim_engine.Sim_ctx.t} when one is available,
    so the per-segment cost on the hot path is field writes, not
    allocation. The two sinks of a packet's life — final delivery at a
    host and a queue drop — call {!free}; in between, components may
    read the packet but must not retain it past their handler (copy
    the fields, or {!sack_blocks} for the SACK payload; duplicate the
    whole packet with {!copy}). Boolean header flags live in {!bits},
    an int bitset, so no flags record exists to allocate.

    The ownership contract is machine-checked twice over (DESIGN.md
    §4i): statically by simlint rule D007, which rejects any
    expression of this type that escapes its handler scope without
    flowing through {!copy}; and dynamically, in every build profile
    except [release], by the pool sanitizer — {!free} flips the
    record's {!gen} parity and poisons the header fields, and every
    accessor asserts the packet is live, so a retained alias fails
    loudly under [dune runtest] instead of corrupting a later
    simulation's segment. *)

type t = {
  mutable uid : int;  (** unique per packet, for tracing *)
  mutable src : Addr.t;
  mutable dst : Addr.t;
  mutable size : int;  (** bytes on the wire, header included *)
  mutable conn : int;  (** simulation-global connection identifier *)
  mutable subflow : int;
      (** subflow index within the connection; 0 for plain TCP *)
  mutable src_port : int;
  mutable dst_port : int;
  mutable seq : int;
      (** subflow-level byte sequence of the first payload byte *)
  mutable ack_seq : int;
      (** cumulative acknowledgement (valid when the ack bit is set) *)
  mutable len : int;  (** payload bytes *)
  mutable bits : int;  (** header booleans, see the [*_bit] masks *)
  mutable dsn : int;
      (** MPTCP data-level sequence of the payload; -1 when absent *)
  mutable sack_count : int;  (** live SACK blocks in [sack] *)
  sack : int array;
      (** selective-acknowledgement blocks above the cumulative ACK,
          block [i] spanning [sack.(2*i), sack.(2*i+1))]; at most
          {!max_sack_blocks}, none when the receiver holds no
          out-of-order data (or SACK is unused by the sender) *)
  mutable ce : bool;  (** ECN congestion-experienced mark, set by queues *)
  mutable gen : int;
      (** pool generation: odd while issued by {!make}, even while in
          the freelist. Maintained (and asserted) only when
          {!sanitizer} is set; constant 1 in release builds. Not
          simulation state — never read it to make a protocol
          decision. *)
}

val header_bytes : int
(** Combined IP + TCP header size charged to every segment (40). *)

val max_sack_blocks : int
(** Capacity of the [sack] scratch array, in blocks (3). *)

(** {2 Header bits}

    [bits] is the OR of the masks below. The [*_bits] constants are
    the common whole-header values, mirroring the flag-record
    constants the pooled representation replaced. *)

val syn_bit : int
val ack_bit : int
val fin_bit : int
val ece_bit : int
(** ECN echo (receiver -> sender, for DCTCP). *)

val dup_bit : int
(** Duplicate-arrival signal, a DSACK stand-in. *)

val data_bits : int
(** No flags: a plain data segment. *)

val pure_ack_bits : int

val syn_bits : int
val syn_ack_bits : int

val ack_bits : ece:bool -> dup_seen:bool -> int
(** [ack_bit] plus the requested signal bits — the receiver's ACK
    emission path, computed without allocating. *)

val syn : t -> bool
val ack : t -> bool
val fin : t -> bool
val ece : t -> bool
val dup_seen : t -> bool

val make :
  ctx:Sim_engine.Sim_ctx.t ->
  src:Addr.t ->
  dst:Addr.t ->
  conn:int ->
  subflow:int ->
  src_port:int ->
  dst_port:int ->
  seq:int ->
  ack_seq:int ->
  len:int ->
  bits:int ->
  dsn:int ->
  t
(** Builds a packet; [size] is [header_bytes + len], [ce] is clear and
    [sack_count] is 0. The record comes from [ctx]'s pool when one is
    free, otherwise it is allocated (and joins the pool when freed).
    Either way the [uid] is fresh from {!Sim_engine.Sim_ctx.t}, so uid
    sequences are identical with or without reuse and concurrent
    simulations never share numbering. *)

val copy : ctx:Sim_engine.Sim_ctx.t -> t -> t
(** A second physical packet with the same header (fresh [uid]) — for
    taps that duplicate traffic: each copy then has its own pooled
    lifetime, where re-injecting the original would double-{!free}. *)

val free : ctx:Sim_engine.Sim_ctx.t -> t -> unit
(** Return [t] to [ctx]'s pool for reuse by a later {!make}. Only the
    packet's final owner (host delivery, queue drop) may call this,
    exactly once; the caller must hold no reference afterwards. Under
    {!sanitizer}, a second [free] of the same record raises
    [Invalid_argument], the header fields are poisoned, and the
    context's {!Sim_engine.Sim_ctx.pool_live} counter is decremented
    (a clean teardown balances it back to 0). *)

val sanitizer : bool
(** Whether the runtime pool sanitizer is compiled in — equal to
    {!Sim_engine.Sanitizer_mode.on}, i.e. [true] in every profile but
    [release]. Tests that plant deliberate ownership violations gate
    their expectations on this. *)

val sack_blocks : t -> (int * int) list
(** The SACK blocks as a fresh [(start, stop)] list — an allocating
    convenience for tests and diagnostics; the hot path reads the
    [sack] array directly. *)

val is_data : t -> bool
val is_pure_ack : t -> bool
val pp : Format.formatter -> t -> unit
