type conn_stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
  mutable retransmitted_segments : int;
  mutable per_layer_packets : (Layer.t * int) list;
  mutable drops_per_layer : (Layer.t * int) list;
}

type t = {
  table : (int, conn_stats) Hashtbl.t;
  (* (conn, subflow, seq) first-transmission dedup, host layer only. *)
  seen : (int * int * int, unit) Hashtbl.t;
}

let fresh_stats () =
  {
    tx_packets = 0;
    tx_bytes = 0;
    drops = 0;
    retransmitted_segments = 0;
    per_layer_packets = [];
    drops_per_layer = [];
  }

let get t conn =
  match Hashtbl.find_opt t.table conn with
  | Some s -> s
  | None ->
    let s = fresh_stats () in
    Hashtbl.replace t.table conn s;
    s

let bump_layer assoc layer =
  let rec go = function
    | [] -> [ (layer, 1) ]
    | (l, n) :: rest when Layer.equal l layer -> (l, n + 1) :: rest
    | entry :: rest -> entry :: go rest
  in
  go assoc

let attach net =
  let t = { table = Hashtbl.create 64; seen = Hashtbl.create 1024 } in
  Array.iter
    (fun link ->
      let layer = Pktqueue.layer (Link.queue link) in
      Link.add_tap link (fun pkt ->
          if Packet.is_data pkt then begin
            let s = get t pkt.Packet.conn in
            s.tx_packets <- s.tx_packets + 1;
            s.tx_bytes <- s.tx_bytes + pkt.Packet.size;
            s.per_layer_packets <- bump_layer s.per_layer_packets layer;
            if Layer.equal layer Layer.Host_layer then begin
              let key =
                ( pkt.Packet.conn,
                  pkt.Packet.subflow,
                  pkt.Packet.seq )
              in
              if Hashtbl.mem t.seen key then
                s.retransmitted_segments <- s.retransmitted_segments + 1
              else Hashtbl.replace t.seen key ()
            end
          end);
      Pktqueue.add_drop_hook (Link.queue link) (fun pkt ->
          let s = get t pkt.Packet.conn in
          s.drops <- s.drops + 1;
          s.drops_per_layer <- bump_layer s.drops_per_layer layer;
          (* A segment dropped at the sender's own uplink never hits
             the transmit tap; record it so its retransmission is
             still recognised as one. *)
          if Layer.equal layer Layer.Host_layer && Packet.is_data pkt then
            Hashtbl.replace t.seen
              ( pkt.Packet.conn,
                pkt.Packet.subflow,
                pkt.Packet.seq )
              ()))
    net.Topology.links;
  t

let conn_stats t ~conn = Hashtbl.find_opt t.table conn
let conns t = Hashtbl.fold (fun c _ acc -> c :: acc) t.table []

let total_drops t =
  Hashtbl.fold (fun _ s acc -> acc + s.drops) t.table 0

let top_talkers t ~n =
  Hashtbl.fold (fun c s acc -> (c, s) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> compare b.tx_bytes a.tx_bytes)
  |> List.filteri (fun i _ -> i < n)
