type t = {
  sched : Scheduler.t;
  series : Sim_obs.Series.t;
  interval : Sim_time.t;
  timer : Scheduler.Timer.t;
  mutable armed : bool;
  mutable ticks : int;
}

let tick t =
  Sim_obs.Series.sample t.series
    ~now_ns:(Sim_time.to_ns (Scheduler.now t.sched));
  t.ticks <- t.ticks + 1;
  if t.armed then Scheduler.Timer.schedule_after t.timer t.interval

let create ?conns sched ~interval =
  if Sim_time.to_ns interval <= 0 then
    invalid_arg "Probe.create: interval must be positive";
  let m = Sim_ctx.metrics (Scheduler.ctx sched) in
  Sim_obs.Metrics.enable m ?conns
    ~clock_ns:(fun () -> Sim_time.to_ns (Scheduler.now sched))
    ();
  Sim_obs.Metrics.register m ~component:"scheduler" ~id:"sched"
    ~name:"heap_pending" ~units:"events" (fun () ->
      float_of_int (Scheduler.heap_pending sched));
  Sim_obs.Metrics.register m ~component:"scheduler" ~id:"sched"
    ~name:"wheel_pending" ~units:"timers" (fun () ->
      float_of_int (Scheduler.wheel_pending sched));
  Sim_obs.Metrics.register m ~component:"scheduler" ~id:"sched"
    ~name:"events_processed" ~units:"events" (fun () ->
      float_of_int (Scheduler.events_processed sched));
  Sim_obs.Metrics.register m ~component:"scheduler" ~id:"sched"
    ~name:"event_cells" ~units:"cells" (fun () ->
      float_of_int (Scheduler.event_cells_allocated sched));
  Sim_obs.Metrics.register m ~component:"scheduler" ~id:"sched"
    ~name:"event_cells_free" ~units:"cells" (fun () ->
      float_of_int (Scheduler.event_cells_free sched));
  (* The timer's state is [t] and [t] needs the timer: tie the knot
     through a forward cell rather than a recursive value, keeping the
     record free of option fields on the tick path. *)
  let cell = ref None in
  let tick_cell cell = match !cell with Some t -> tick t | None -> () in
  let timer = Scheduler.Timer.create sched tick_cell cell in
  let t =
    { sched; series = Sim_obs.Series.create m; interval; timer; armed = false;
      ticks = 0 }
  in
  cell := Some t;
  t

let start t =
  if not t.armed then begin
    t.armed <- true;
    Scheduler.Timer.schedule_after t.timer t.interval
  end

let stop t =
  t.armed <- false;
  Scheduler.Timer.cancel t.timer

let ticks t = t.ticks
let series t = t.series

let capture t =
  stop t;
  Sim_obs.Capture.of_series t.series
