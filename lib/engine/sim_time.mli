(** Virtual simulation time.

    Time is an absolute count of nanoseconds since the start of the
    simulation, stored as a native [int] (63 bits holds ~146 years of
    nanoseconds). The native representation is deliberate: unlike
    [int64] it is unboxed, so times held in heap cells, timer-wheel
    entries and packet records are immediate words and hot-path
    arithmetic does not allocate. All public constructors and
    accessors go through this module so that the unit is impossible to
    confuse at call sites. *)

type t = private int

val zero : t

val is_zero : t -> bool

(** {1 Constructors} *)

val of_ns : int -> t
(** [of_ns n] is [n] nanoseconds. Raises [Invalid_argument] if [n < 0]. *)

val of_us : float -> t
val of_ms : float -> t
val of_sec : float -> t

(** {1 Accessors} *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

(** {1 Arithmetic} *)

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val scale : t -> float -> t
(** [scale t f] multiplies a duration by a non-negative factor. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
