(** Fixed pool of worker {e processes}.

    Domains share one major heap, and allocation-heavy simulations
    contend on it badly enough that adding domains makes the suite
    slower (ROADMAP item 1). Worker processes each get a private heap,
    so the same fan-out scales. The pool re-executes the current
    binary with caller-supplied argv (conventionally the original
    command line plus a hidden [--worker] flag); each worker rebuilds
    the same deterministic job queue from that argv and then serves
    job {e indices} sent by the parent.

    Wire protocol, strictly request/reply per worker:
    - parent -> worker (stdin): one decimal job index per ['\n']-line;
      closing stdin tells the worker to exit.
    - worker -> parent (stdout): one [Marshal]-framed
      [int * (string, string) result] per completed index — [Ok
      payload] is job-defined marshalled bytes, [Error cause] is a
      printed exception.

    A worker that dies mid-point (crash, kill, abrupt [exit]) yields
    [Error] for its in-flight index; remaining indices are re-assigned
    to surviving workers, or delivered as [Error] if none survive. The
    parent never hangs on a dead worker and always reaps every child
    it spawned. *)

val run :
  jobs:int ->
  worker_argv:string array ->
  n:int ->
  deliver:(int -> (string, string) result -> unit) ->
  unit
(** [run ~jobs ~worker_argv ~n ~deliver] executes job indices
    [0 .. n-1] on [min jobs n] worker processes spawned from
    [worker_argv.(0)] (resolved as a path, not via [$PATH]) and calls
    [deliver i outcome] exactly once per index, in arbitrary order, as
    replies arrive. Workers inherit stderr. [Invalid_argument] if
    [jobs < 1]. Does nothing when [n = 0]. *)

val serve : run:(int -> (string, string) result) -> unit
(** Worker side: read job indices from stdin, reply on stdout, return
    when stdin closes. [run] must not let exceptions escape (catch and
    return [Error]); stdout belongs to the protocol, so served jobs
    must not print to it. *)
