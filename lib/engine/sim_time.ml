(* Nanoseconds since simulation start, as a native int. A 63-bit int
   holds ~146 years of nanoseconds, and unlike [int64] it is unboxed:
   time values in records, timer-wheel slots and heap cells are
   immediate words, and arithmetic in the event hot path allocates
   nothing. *)

type t = int

let zero = 0
let is_zero t = t = 0

let of_ns n =
  if n < 0 then invalid_arg "Sim_time.of_ns: negative";
  n

let of_us f =
  if f < 0. then invalid_arg "Sim_time.of_us: negative";
  int_of_float (f *. 1e3)

let of_ms f =
  if f < 0. then invalid_arg "Sim_time.of_ms: negative";
  int_of_float (f *. 1e6)

let of_sec f =
  if f < 0. then invalid_arg "Sim_time.of_sec: negative";
  int_of_float (f *. 1e9)

let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add = ( + )

let diff a b =
  if b > a then invalid_arg "Sim_time.diff: negative result";
  a - b

let scale t f =
  if f < 0. then invalid_arg "Sim_time.scale: negative factor";
  int_of_float (float_of_int t *. f)

let compare = Int.compare
let equal : t -> t -> bool = Int.equal
let ( < ) : t -> t -> bool = Stdlib.( < )
let ( <= ) : t -> t -> bool = Stdlib.( <= )
let ( > ) : t -> t -> bool = Stdlib.( > )
let ( >= ) : t -> t -> bool = Stdlib.( >= )
let min : t -> t -> t = Stdlib.min
let max : t -> t -> t = Stdlib.max

let pp ppf t =
  let ns = float_of_int t in
  if Stdlib.( < ) ns 1e3 then Format.fprintf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else Format.fprintf ppf "%.4fs" (ns /. 1e9)

let to_string t = Format.asprintf "%a" pp t
