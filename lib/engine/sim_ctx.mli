(** Per-simulation identifier and tracing state.

    One [t] belongs to one simulation instance (the {!Scheduler}
    carries it), so independent simulations never share counters and
    can run concurrently on separate domains. Identical runs draw
    identical id sequences, which keeps results reproducible and
    independent of whatever ran earlier in the process.

    All counters start at 0; the first draw of each kind is 1. *)

type t

type ext = ..
(** Open extension point: state that must live per-simulation but
    whose type a higher layer owns. The engine cannot name, say, the
    packet type, so {!Sim_net.Packet} extends this variant with its
    freelist and stashes it here via {!set_ext}/{!ext}. One slot per
    context; today its only occupant is the packet pool. *)

val create : unit -> t

val fresh_packet_uid : t -> int
(** Next packet uid (tracing / debugging identity). *)

val fresh_conn_id : t -> int
(** Next transport connection id (host demultiplexing key). *)

val fresh_queue_id : t -> int
(** Next packet-queue id (seeds per-queue RED randomness). *)

val pool_live : t -> int
(** Pooled objects currently live (issued and not yet freed) in this
    simulation — the packet-pool sanitizer's leak counter. Maintained
    by {!Sim_net.Packet} only when {!Sanitizer_mode.on}; always 0 in
    release builds. A finished simulation whose transport tore down
    cleanly reports 0: anything positive is a retained (leaked)
    packet, anything negative a double-free that slipped past the
    per-record generation check. *)

val pool_track : t -> int -> unit
(** [pool_track t delta] adjusts {!pool_live} by [delta] (+1 on issue,
    -1 on free). Called by the pool owner under {!Sanitizer_mode.on}
    only. *)

val trace : t -> Trace.t
(** This simulation's trace configuration. Per-simulation so that
    enabling debug tracing in one run cannot leak into concurrent runs
    on sibling domains. *)

val metrics : t -> Sim_obs.Metrics.t
(** This simulation's metrics registry. Created disabled; {!Probe}
    turns it on before components are constructed. Per-simulation for
    the same reason as {!trace}. *)

val ledger : t -> Sim_obs.Flow_ledger.t
(** This simulation's flow-lifecycle ledger. Created disabled;
    [Sim_workload.Scenario] turns it on before flows arrive.
    Per-simulation for the same reason as {!trace}. *)

val ext : t -> ext option
(** The extension slot, [None] until {!set_ext}. *)

val set_ext : t -> ext -> unit
(** Install (or replace) the extension payload. *)
