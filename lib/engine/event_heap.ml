(* Array-backed binary min-heap. Each slot stores an immutable cell so
   that [pop]'s sift-down moves a single word. Ordering key is
   (time, seq); both are native ints, so a cell is one flat block with
   no inner boxes.

   Empty slots hold a shared sentinel cell instead of [None]: this is
   the innermost loop of every simulation, and the [option] wrapper
   cost an allocation per [push] plus a match per slot read. The
   sentinel is a perfectly ordinary block whose [value] field is never
   read (only slots below [size] are), so the single [Obj.magic]
   below cannot escape. *)

type 'a cell = { time : int; seq : int; value : 'a }

let null_repr = { time = min_int; seq = -1; value = Obj.repr () }
let null_cell () : 'a cell = Obj.magic null_repr

type 'a t = {
  mutable cells : 'a cell array;
  mutable size : int;
  null : 'a cell;  (* fills slots at index >= size *)
}

let create () =
  let null = null_cell () in
  { cells = Array.make 64 null; size = 0; null }

let length t = t.size
let is_empty t = t.size = 0

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cells = Array.make (2 * Array.length t.cells) t.null in
  Array.blit t.cells 0 cells 0 t.size;
  t.cells <- cells

let push t ~time ~seq value =
  if t.size = Array.length t.cells then grow t;
  let cell = { time; seq; value } in
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pc = t.cells.(parent) in
    if cell_lt cell pc then begin
      t.cells.(!i) <- pc;
      i := parent
    end
    else continue := false
  done;
  t.cells.(!i) <- cell

(* Sift the cell [x] down from position [i0] (whose slot is treated as
   free). Writes [x] into its final position; moves a single word per
   level. *)
let sift_down t i0 x =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    let sc = ref x in
    if l < t.size then begin
      let lc = t.cells.(l) in
      if cell_lt lc !sc then begin
        smallest := l;
        sc := lc
      end
    end;
    if r < t.size then begin
      let rc = t.cells.(r) in
      if cell_lt rc !sc then begin
        smallest := r;
        sc := rc
      end
    end;
    if !smallest = !i then begin
      t.cells.(!i) <- x;
      continue := false
    end
    else begin
      t.cells.(!i) <- !sc;
      i := !smallest
    end
  done

(* Allocation-free root access for the scheduler's run loop: the
   [max_int] sentinel folds the empty check into the time comparison,
   and reading the three components separately avoids the
   option-of-tuple that [pop] builds. Only call [top_seq]/[top_value]
   after checking the heap is non-empty. *)
let top_time t = if t.size = 0 then max_int else t.cells.(0).time
let top_seq t = t.cells.(0).seq
let top_value t = t.cells.(0).value

let drop t =
  t.size <- t.size - 1;
  let last = t.cells.(t.size) in
  t.cells.(t.size) <- t.null;
  if t.size > 0 then sift_down t 0 last

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.cells.(0) in
    drop t;
    Some (root.time, root.seq, root.value)
  end

let peek_time t = if t.size = 0 then None else Some t.cells.(0).time

let clear t =
  Array.fill t.cells 0 t.size t.null;
  t.size <- 0

(* Drop every cell [keep] rejects, then restore the heap property with
   a bottom-up heapify — O(n), preserving each surviving cell's exact
   (time, seq) key so the drain order is unchanged. The scheduler calls
   this when cancelled-timer tombstones dominate the heap; the backing
   array shrinks once the survivors fit in a quarter of it. *)
let compact t ~keep =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let c = t.cells.(i) in
    if keep ~time:c.time ~seq:c.seq c.value then begin
      t.cells.(!j) <- c;
      incr j
    end
  done;
  let old_size = t.size in
  t.size <- !j;
  let cap = Array.length t.cells in
  if cap > 64 && t.size * 4 < cap then begin
    let ncap = ref cap in
    while !ncap > 64 && t.size * 4 < !ncap do
      ncap := !ncap / 2
    done;
    let cells = Array.make !ncap t.null in
    Array.blit t.cells 0 cells 0 t.size;
    t.cells <- cells
  end
  else Array.fill t.cells t.size (old_size - t.size) t.null;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i t.cells.(i)
  done
