(* Array-backed binary min-heap, stored as three parallel arrays
   (time, seq, value) rather than an array of cells. This is the
   innermost loop of every simulation, and the one-cell-per-event
   representation cost a 4-word block per [push] — the scheduler's
   last per-event allocation. With parallel arrays a push writes three
   slots and allocates nothing; a sift moves three words per level
   instead of one, still far cheaper than the allocation plus the
   minor-GC traffic it caused. Ordering key is (time, seq); both are
   native ints, so key comparisons never touch the value array.

   Empty value slots hold a shared sentinel instead of [None]: the
   [option] wrapper would cost an allocation per push plus a match per
   slot read. The sentinel is the unit immediate, so [Array.make]
   builds a uniform (non-float) array and a later ['a = float]
   instantiation stores ordinary boxed floats — the representation
   stays correct for every ['a]. Slots at index >= [size] are never
   read; the single [Obj.magic] below cannot escape. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  null : 'a;  (* fills value slots at index >= size *)
}

let null_value () : 'a = Obj.magic (Obj.repr ())

let create () =
  let null = null_value () in
  {
    times = Array.make 64 0;
    seqs = Array.make 64 0;
    values = Array.make 64 null;
    size = 0;
    null;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0 in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  let values = Array.make cap t.null in
  Array.blit t.values 0 values 0 t.size;
  t.values <- values

let push t ~time ~seq value =
  if t.size = Array.length t.times then grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && seq < t.seqs.(parent)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.values.(!i) <- t.values.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- value

(* Sift the event (time, seq, value) down from position [i0] (whose
   slot is treated as free). Writes it into its final position. *)
let sift_down t i0 time seq value =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref (-1) in
    let st = ref time and ss = ref seq in
    if
      l < t.size
      && (t.times.(l) < !st || (t.times.(l) = !st && t.seqs.(l) < !ss))
    then begin
      smallest := l;
      st := t.times.(l);
      ss := t.seqs.(l)
    end;
    if
      r < t.size
      && (t.times.(r) < !st || (t.times.(r) = !st && t.seqs.(r) < !ss))
    then begin
      smallest := r;
      st := t.times.(r);
      ss := t.seqs.(r)
    end;
    if !smallest < 0 then begin
      t.times.(!i) <- time;
      t.seqs.(!i) <- seq;
      t.values.(!i) <- value;
      continue := false
    end
    else begin
      let s = !smallest in
      t.times.(!i) <- t.times.(s);
      t.seqs.(!i) <- t.seqs.(s);
      t.values.(!i) <- t.values.(s);
      i := s
    end
  done

(* Allocation-free root access for the scheduler's run loop: the
   [max_int] sentinel folds the empty check into the time comparison,
   and reading the three components separately avoids the
   option-of-tuple that [pop] builds. Only call [top_seq]/[top_value]
   after checking the heap is non-empty. *)
let top_time t = if t.size = 0 then max_int else t.times.(0)
let top_seq t = t.seqs.(0)
let top_value t = t.values.(0)

let drop t =
  t.size <- t.size - 1;
  let n = t.size in
  let time = t.times.(n) and seq = t.seqs.(n) and value = t.values.(n) in
  t.values.(n) <- t.null;
  if n > 0 then sift_down t 0 time seq value

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and value = t.values.(0) in
    drop t;
    Some (time, seq, value)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  Array.fill t.values 0 t.size t.null;
  t.size <- 0

(* Drop every event [keep] rejects, then restore the heap property with
   a bottom-up heapify — O(n), preserving each survivor's exact
   (time, seq) key so the drain order is unchanged. The scheduler calls
   this when cancelled-timer tombstones dominate the heap; the backing
   arrays shrink once the survivors fit in a quarter of them. *)
let compact t ~keep =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if keep ~time:t.times.(i) ~seq:t.seqs.(i) t.values.(i) then begin
      let d = !j in
      if d <> i then begin
        t.times.(d) <- t.times.(i);
        t.seqs.(d) <- t.seqs.(i);
        t.values.(d) <- t.values.(i)
      end;
      incr j
    end
  done;
  let old_size = t.size in
  t.size <- !j;
  let cap = Array.length t.times in
  if cap > 64 && t.size * 4 < cap then begin
    let ncap = ref cap in
    while !ncap > 64 && t.size * 4 < !ncap do
      ncap := !ncap / 2
    done;
    let times = Array.make !ncap 0 in
    Array.blit t.times 0 times 0 t.size;
    t.times <- times;
    let seqs = Array.make !ncap 0 in
    Array.blit t.seqs 0 seqs 0 t.size;
    t.seqs <- seqs;
    let values = Array.make !ncap t.null in
    Array.blit t.values 0 values 0 t.size;
    t.values <- values
  end
  else Array.fill t.values t.size (old_size - t.size) t.null;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i t.times.(i) t.seqs.(i) t.values.(i)
  done
