(* Array-backed binary min-heap. Each slot stores an immutable cell so
   that [pop]'s sift-down moves a single word. Ordering key is
   (time, seq).

   Empty slots hold a shared sentinel cell instead of [None]: this is
   the innermost loop of every simulation, and the [option] wrapper
   cost an allocation per [push] plus a match per slot read. The
   sentinel is a perfectly ordinary block whose [value] field is never
   read (only slots below [size] are), so the single [Obj.magic]
   below cannot escape. *)

type 'a cell = { time : int64; seq : int; value : 'a }

let null_repr = { time = Int64.min_int; seq = -1; value = Obj.repr () }
let null_cell () : 'a cell = Obj.magic null_repr

type 'a t = {
  mutable cells : 'a cell array;
  mutable size : int;
  null : 'a cell;  (* fills slots at index >= size *)
}

let create () =
  let null = null_cell () in
  { cells = Array.make 64 null; size = 0; null }

let length t = t.size
let is_empty t = t.size = 0

let cell_lt a b =
  let c = Int64.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow t =
  let cells = Array.make (2 * Array.length t.cells) t.null in
  Array.blit t.cells 0 cells 0 t.size;
  t.cells <- cells

let push t ~time ~seq value =
  if t.size = Array.length t.cells then grow t;
  let cell = { time; seq; value } in
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pc = t.cells.(parent) in
    if cell_lt cell pc then begin
      t.cells.(!i) <- pc;
      i := parent
    end
    else continue := false
  done;
  t.cells.(!i) <- cell

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.cells.(0) in
    t.size <- t.size - 1;
    let last = t.cells.(t.size) in
    t.cells.(t.size) <- t.null;
    if t.size > 0 then begin
      (* Sift the former last element down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let sc = ref last in
        if l < t.size then begin
          let lc = t.cells.(l) in
          if cell_lt lc !sc then begin
            smallest := l;
            sc := lc
          end
        end;
        if r < t.size then begin
          let rc = t.cells.(r) in
          if cell_lt rc !sc then begin
            smallest := r;
            sc := rc
          end
        end;
        if !smallest = !i then begin
          t.cells.(!i) <- last;
          continue := false
        end
        else begin
          t.cells.(!i) <- !sc;
          i := !smallest
        end
      done
    end;
    Some (root.time, root.seq, root.value)
  end

let peek_time t = if t.size = 0 then None else Some t.cells.(0).time

let clear t =
  Array.fill t.cells 0 t.size t.null;
  t.size <- 0
