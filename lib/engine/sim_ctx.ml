type ext = ..

type t = {
  mutable next_packet_uid : int;
  mutable next_conn_id : int;
  mutable next_queue_id : int;
  trace : Trace.t;
  metrics : Sim_obs.Metrics.t;
  ledger : Sim_obs.Flow_ledger.t;
  mutable ext : ext option;
  mutable pool_live : int;
}

let create () =
  {
    next_packet_uid = 0;
    next_conn_id = 0;
    next_queue_id = 0;
    trace = Trace.create ();
    metrics = Sim_obs.Metrics.create ();
    ledger = Sim_obs.Flow_ledger.create ();
    ext = None;
    pool_live = 0;
  }

let fresh_packet_uid t =
  t.next_packet_uid <- t.next_packet_uid + 1;
  t.next_packet_uid

let fresh_conn_id t =
  t.next_conn_id <- t.next_conn_id + 1;
  t.next_conn_id

let fresh_queue_id t =
  t.next_queue_id <- t.next_queue_id + 1;
  t.next_queue_id

let pool_live t = t.pool_live
let pool_track t delta = t.pool_live <- t.pool_live + delta

let trace t = t.trace
let metrics t = t.metrics
let ledger t = t.ledger
let ext t = t.ext
let set_ext t e = t.ext <- Some e
