(** Fixed pool of worker domains.

    Simulations are single-threaded and self-contained (all their
    state hangs off one {!Scheduler.t}), so independent runs are
    embarrassingly parallel: the pool fans jobs out across OCaml 5
    domains. Jobs are closures pulled from a shared queue; submission
    order is dequeue order, completion order is arbitrary.

    Jobs should not let exceptions escape — a stray exception is
    swallowed so it cannot kill a worker and hang {!shutdown}; wrap
    user code in [Result] (as {!Sim_experiments.Runner.par_map} does)
    to observe failures. *)

type t

val recommended_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: keep one core
    for the coordinating domain. *)

val create : domains:int -> t
(** Spawn [domains] workers (>= 1, [Invalid_argument] otherwise). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job. [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue, let the workers drain every submitted job, and
    join them all. Idempotent in effect; no domain is left running. *)

val run : domains:int -> (t -> 'a) -> 'a
(** [run ~domains f] creates a pool, applies [f], and shuts the pool
    down even if [f] raises. *)
