type t = {
  mutable workers : unit Domain.t array;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable closed : bool;
}

let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.closed do
    Condition.wait t.work_ready t.mutex
  done;
  match Queue.take_opt t.jobs with
  | None ->
    (* Queue drained and the pool is closed. *)
    Mutex.unlock t.mutex
  | Some job ->
    Mutex.unlock t.mutex;
    (* Jobs are expected to capture their own failures (par_map wraps
       user functions in [Result]); a stray exception must not kill the
       worker or the joining [shutdown] would hang the remaining
       jobs. *)
    (try job () with _ -> ());
    worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let t =
    {
      workers = [||];
      jobs = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      closed = false;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.work_ready;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers

let run ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
