(* Hierarchical timing wheel (Varghese & Lauck), specialised for the
   scheduler's timer population: TCP retransmission and delayed-ACK
   timers that are armed far in the future and almost always cancelled
   or re-armed before they fire.

   Seven levels of 32 slots each; a level-[l] slot spans
   [2^(10 + 5l)] ns, so level 0 resolves ~1 us and the whole wheel
   covers ~9.8 hours (times beyond that are clamped to the farthest
   top-level slot and re-dispatched when the cursor gets there). The
   level-0 slot doubles as the admission cutoff: anything due sooner
   is refused by [schedule] and belongs on the caller's heap. A 1 us
   cutoff deliberately routes ordinary packet events (link transit)
   through the wheel too — measured on the fig1a suite, keeping the
   binary heap down to the handful of events inside the current
   microsecond beats sparing mid-range events the wheel's
   insert-then-emit double handling.

   Schedule, cancel and re-arm are O(1): entries are intrusive nodes
   in per-slot doubly-linked lists, and a per-level occupancy bitmap
   (32 slots = 32 bits, comfortably inside OCaml's 63-bit int) makes
   finding the next non-empty slot a handful of bit operations. Times
   are native-int nanoseconds ({!Sim_time}'s representation), so all
   of this is unboxed word arithmetic.

   The wheel does NOT order events within a slot. Exactness comes from
   the handoff contract: [advance] emits every entry whose slot starts
   at or before [upto], and the caller re-keys emitted entries by
   their exact [(time, seq)] in its binary heap. Emitting an entry
   early is therefore always safe (the heap re-orders it); the
   invariants below guarantee an entry is never emitted late:

   - [cursor] only moves forward, and only to slot starts <= the
     earliest pending event time;
   - an entry inserted at level [l] satisfies
     [time - cursor < 32 * width_l], so its slot index cannot wrap
     past a second occurrence before the cursor reaches it;
   - cascading re-inserts strictly below the drained level, so each
     entry descends at most [levels] times. *)

(* What to do when the entry fires: a fire function paired with the
   state it runs on. Packing the pair behind one existential keeps the
   entry monomorphic (the heap and the slot lists need that) while
   letting a re-armable timer or a pooled event cell install a
   *static* fire function once and never allocate per arm — the old
   [unit -> unit] representation forced a fresh closure on anything
   that wanted per-event state. The generic closure API still exists:
   it wraps the closure as [Run (call, f)] (see Scheduler). *)
type erun = Run : ('a -> unit) * 'a -> erun

type entry = {
  mutable time : int;    (* absolute ns; exact, not slot-rounded *)
  mutable seq : int;     (* scheduler insertion counter at last arm *)
  mutable run : erun;
  mutable state : int;   (* see st_* below *)
  mutable next : entry;  (* intrusive slot list; self-linked when free *)
  mutable prev : entry;
  mutable slot : int;    (* flat slot index while in the wheel, -1 otherwise *)
}

(* States live here (not in Scheduler) so that cancel/advance can
   maintain them without a dependency cycle. *)
let st_idle = 0  (* not scheduled: never armed, cancelled, or a popped tombstone *)
let st_wheel = 1 (* linked into a wheel slot *)
let st_heap = 2  (* handed off to the scheduler's heap *)
let st_fired = 3

let noop_run = Run (ignore, ())

let make_entry fire state =
  let rec e =
    { time = 0; seq = 0; run = Run (fire, state); state = st_idle; next = e;
      prev = e; slot = -1 }
  in
  e

let bits = 5
let slots_per_level = 32
let slot_mask = slots_per_level - 1
let bitmap_mask = (1 lsl slots_per_level) - 1
let shift0 = 10 (* level-0 slot width: 1024 ns *)
let levels = 7

type t = {
  heads : entry array;    (* levels * slots_per_level sentinel nodes *)
  occupied : int array;   (* per-level bitmap of non-empty slots; exact *)
  mutable cursor : int;   (* every slot starting at or before this is drained *)
  mutable live : int;     (* entries currently linked in the wheel *)
  mutable gen : int;      (* bumped on every mutation; see [generation] *)
}

let create () =
  (* Slot sentinels carry no event, so the 224 heads share the single
     [noop_run] instead of a fresh [Run] block each — and they are
     built non-recursively via a local placeholder, because a
     [let rec] record binding compiles to a dummy block plus a
     backpatch copy, doubling the dominant allocation of [create].
     [nil]'s fields are never mutated: every head overwrites
     [next]/[prev] with itself before [create] returns. *)
  let rec nil =
    { time = 0; seq = 0; run = noop_run; state = st_idle; next = nil;
      prev = nil; slot = -1 }
  in
  let make_head () =
    let e =
      { time = 0; seq = 0; run = noop_run; state = st_idle; next = nil;
        prev = nil; slot = -1 }
    in
    e.next <- e;
    e.prev <- e;
    e
  in
  {
    heads = Array.init (levels * slots_per_level) (fun _ -> make_head ());
    occupied = Array.make levels 0;
    cursor = 0;
    live = 0;
    gen = 0;
  }

let live t = t.live
let cursor_ns t = t.cursor
let generation t = t.gen

(* Number of trailing zeros of a non-zero 32-bit value, by de Bruijn
   multiplication (no ctz primitive in stdlib). The table is a string
   so it is immutable data, not module-level mutable state:
   [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
      31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |] *)
let ctz_table =
  "\000\001\028\002\029\014\024\003\030\022\020\015\025\017\004\008\
   \031\027\013\023\021\019\016\007\026\012\018\006\011\005\010\009"

let ctz32 x = Char.code ctz_table.[((x land -x) * 0x077CB531) lsr 27 land 31]

let shift_of_level l = shift0 + (bits * l)
let width_of_level l = 1 lsl shift_of_level l
let index_at l time = (time lsr shift_of_level l) land slot_mask

let link_tail head e =
  e.prev <- head.prev;
  e.next <- head;
  head.prev.next <- e;
  head.prev <- e

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev;
  e.next <- e;
  e.prev <- e

(* Insert [e] (whose [time], [seq] are set) into the right slot.
   Returns false without inserting when the entry is due within one
   level-0 slot of the cursor: batching it in the wheel would buy
   nothing, the caller should push it straight onto its heap.

   Wrap guard: when [delta] is in the top 1/32 of a level's span, the
   entry's slot index can equal the cursor's own index while its slot
   is the *next* occurrence of that index (32 slots later). Leaving it
   there would make [advance] cascade it now and re-insert it into the
   same slot, looping. Detect the collision (masked indices equal,
   unmasked slot numbers different) and bump the entry one level up,
   where [delta < width_(l+1)] makes a wrap impossible. *)
let clamp_slot t =
  let top = levels - 1 in
  (top * slots_per_level) + ((index_at top t.cursor + slot_mask) land slot_mask)

let schedule t e =
  let delta = e.time - t.cursor in
  if delta < width_of_level 0 then false
  else begin
    (* Smallest level whose full span still contains [delta]; the span
       of level [l] is the width of level [l+1]. *)
    let rec find_level l =
      if l >= levels then -1
      else if delta < width_of_level (l + 1) then l
      else find_level (l + 1)
    in
    let l = find_level 0 in
    let flat =
      if l < 0 then
        (* Beyond the wheel's span: park in the farthest top-level slot
           and re-dispatch when the cursor reaches it. *)
        clamp_slot t
      else begin
        let sh = shift_of_level l in
        let se = e.time lsr sh in
        let sc = t.cursor lsr sh in
        let idx = se land slot_mask in
        if idx = sc land slot_mask && se <> sc then
          if l + 1 >= levels then clamp_slot t
          else ((l + 1) * slots_per_level) + index_at (l + 1) e.time
        else (l * slots_per_level) + idx
      end
    in
    link_tail t.heads.(flat) e;
    e.slot <- flat;
    e.state <- st_wheel;
    t.occupied.(flat / slots_per_level) <-
      t.occupied.(flat / slots_per_level) lor (1 lsl (flat land slot_mask));
    t.live <- t.live + 1;
    t.gen <- t.gen + 1;
    true
  end

(* O(1): unlink, clear the occupancy bit when the slot empties. The
   caller owns [run] (a re-armable timer keeps its fire/state pair; a
   one-shot handle drops it to release captured state early). *)
let cancel t e =
  let flat = e.slot in
  unlink e;
  e.slot <- -1;
  e.state <- st_idle;
  t.live <- t.live - 1;
  t.gen <- t.gen + 1;
  let head = t.heads.(flat) in
  if head.next == head then begin
    let l = flat / slots_per_level and idx = flat land slot_mask in
    t.occupied.(l) <- t.occupied.(l) land lnot (1 lsl idx)
  end

(* Start time of the earliest non-empty slot (a lower bound on the
   earliest pending event time: entries sit anywhere inside their
   slot). [max_int] when the wheel is empty. *)
let next_due_ns t =
  let best = ref max_int in
  for l = 0 to levels - 1 do
    let b = t.occupied.(l) in
    if b <> 0 then begin
      let cur = index_at l t.cursor in
      (* Rotate so bit 0 is the cursor's slot; the first set bit gives
         the distance (in slots) to the next occupied slot. *)
      let r = ((b lsr cur) lor (b lsl (slots_per_level - cur))) land bitmap_mask in
      let d = ctz32 r in
      let w = width_of_level l in
      let align = t.cursor land lnot (w - 1) in
      let start = align + (d * w) in
      if start < !best then best := start
    end
  done;
  !best

let drain_slot t l idx ~emit ~reinsert =
  let head = t.heads.((l * slots_per_level) + idx) in
  while head.next != head do
    let e = head.next in
    unlink e;
    e.slot <- -1;
    t.live <- t.live - 1;
    if l = 0 then begin
      e.state <- st_idle;
      emit e
    end
    else reinsert e
  done;
  t.occupied.(l) <- t.occupied.(l) land lnot (1 lsl idx)

(* Move the cursor forward, emitting (via [emit]) every entry whose
   slot starts at or before [upto]. Higher levels drain first so a
   cascaded entry lands in a lower slot of the same pass (or is
   emitted directly when it is within one level-0 slot). *)
let advance t ~upto ~emit =
  t.gen <- t.gen + 1;
  let reinsert e = if not (schedule t e) then (e.state <- st_idle; emit e) in
  let continue = ref true in
  while !continue do
    let due = next_due_ns t in
    if due = max_int || due > upto then begin
      if upto > t.cursor then t.cursor <- upto;
      continue := false
    end
    else begin
      if due > t.cursor then t.cursor <- due;
      (* Only slots containing the cursor can be due ([next_due_ns]
         guarantees no earlier occupied slot exists), and the wrap
         guard in [schedule] ensures everything in them belongs to the
         current occurrence. *)
      for l = levels - 1 downto 0 do
        let idx = index_at l t.cursor in
        if t.occupied.(l) land (1 lsl idx) <> 0 then
          drain_slot t l idx ~emit ~reinsert
      done
    end
  done
