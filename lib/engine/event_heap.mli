(** Binary min-heap of timestamped events.

    Events are ordered by [(time, seq)] where [seq] is a strictly
    increasing insertion counter, so two events scheduled for the same
    instant fire in insertion order (FIFO tie-breaking, matching ns-3
    semantics). Times are native-int nanoseconds (see {!Sim_time}) and
    the heap is stored as parallel (time, seq, value) arrays, so the
    hot push/pop path allocates nothing at all. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the earliest event. *)

(** {2 Allocation-free root access}

    The scheduler's run loop uses these instead of [pop] to avoid
    building an option-of-tuple per event. *)

val top_time : 'a t -> int
(** Time of the earliest event, or [max_int] when the heap is empty
    (so an ordinary [<=] against another deadline also handles the
    empty case). *)

val top_seq : 'a t -> int
(** Sequence number of the earliest event. Only valid when non-empty. *)

val top_value : 'a t -> 'a
(** Value of the earliest event. Only valid when non-empty. *)

val drop : 'a t -> unit
(** Removes the earliest event. Only valid when non-empty. *)

val peek_time : 'a t -> int option

val clear : 'a t -> unit
(** Drops every event and resets [length] to zero in one step, so
    callers tracking per-event statistics (e.g. tombstone counts) can
    reset them at the same point without the two drifting. *)

val compact : 'a t -> keep:(time:int -> seq:int -> 'a -> bool) -> unit
(** Removes every event [keep] rejects, in O(n) (filter + bottom-up
    heapify). Survivors keep their exact [(time, seq)] keys, so
    the drain order of survivors is unchanged. Shrinks the backing
    array when survivors occupy less than a quarter of it. *)
