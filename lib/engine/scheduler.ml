(* Discrete-event scheduler: binary heap for the near-future event
   stream, hierarchical timing wheel for the far-future timer
   population. See DESIGN.md §4e.

   Every armed event carries a unique (time, seq) key; seq is a single
   monotone counter consumed once per arm. The wheel never fires
   anything itself: [run] drains due wheel slots into the heap, and the
   heap restores exact (time, seq) order, so the observable firing
   order is identical to a heap-only scheduler. *)

type handle = Timer_wheel.entry

type t = {
  heap : handle Event_heap.t;
  wheel : Timer_wheel.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  mutable processed : int;
  mutable tombstones : int;  (* cancelled cells still buried in the heap *)
  (* Cached Timer_wheel.next_due_ns, valid while the wheel generation
     is unchanged — the run loop consults the wheel before every pop,
     and in the common case (draining heap events between timer
     activity) the wheel has not moved. *)
  mutable wheel_due : int;
  mutable wheel_gen : int;
  ctx : Sim_ctx.t;
}

let create () =
  {
    heap = Event_heap.create ();
    wheel = Timer_wheel.create ();
    now = Sim_time.zero;
    next_seq = 0;
    processed = 0;
    tombstones = 0;
    wheel_due = max_int;
    wheel_gen = -1;
    ctx = Sim_ctx.create ();
  }

let now t = t.now
let ctx t = t.ctx

(* Arm [e] at [time], consuming exactly one seq. Entries due within one
   level-0 wheel slot skip the wheel and go straight onto the heap. *)
let arm t (e : Timer_wheel.entry) time =
  e.time <- Sim_time.to_ns time;
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  if not (Timer_wheel.schedule t.wheel e) then begin
    e.state <- Timer_wheel.st_heap;
    Event_heap.push t.heap ~time:e.time ~seq:e.seq e
  end

let schedule_at t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Scheduler.schedule_at: time is in the past";
  let e = Timer_wheel.make_entry action in
  arm t e time;
  e

let schedule_after t delay action =
  schedule_at t (Sim_time.add t.now delay) action

let cancelled_pending t = t.tombstones

(* A heap cell is live iff its entry is still heap-resident under the
   same seq; anything else (cancelled, or re-armed since) is a
   tombstone. Compact once tombstones dominate: O(n) filter+heapify,
   amortised against the >= n/2 pops the tombstones would otherwise
   cost, keyed only on exact (time, seq) so drain order is unchanged. *)
let maybe_compact t =
  if t.tombstones > 64 && t.tombstones * 2 > Event_heap.length t.heap then begin
    Event_heap.compact t.heap ~keep:(fun ~time:_ ~seq e ->
        e.state = Timer_wheel.st_heap && e.seq = seq);
    t.tombstones <- 0
  end

(* Detach [e] from wherever it is pending; keeps the action closure so
   a re-armable timer can reuse it. *)
let detach t (e : Timer_wheel.entry) =
  if e.state = Timer_wheel.st_wheel then Timer_wheel.cancel t.wheel e
  else if e.state = Timer_wheel.st_heap then begin
    (* The heap cell stays behind as a tombstone. *)
    e.state <- Timer_wheel.st_idle;
    t.tombstones <- t.tombstones + 1;
    maybe_compact t
  end

let cancel t (e : Timer_wheel.entry) =
  detach t e;
  (* One-shot handle: drop the closure now so captured packets/buffers
     are collectable before the tombstone is popped. *)
  e.action <- Timer_wheel.noop

let is_pending (e : handle) =
  e.state = Timer_wheel.st_wheel || e.state = Timer_wheel.st_heap

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> Sim_time.to_ns u | None -> max_int in
  let emit (e : handle) =
    e.state <- Timer_wheel.st_heap;
    Event_heap.push t.heap ~time:e.time ~seq:e.seq e
  in
  let continue = ref true in
  while !continue && !budget > 0 do
    let wheel_due =
      let g = Timer_wheel.generation t.wheel in
      if g = t.wheel_gen then t.wheel_due
      else begin
        let d = Timer_wheel.next_due_ns t.wheel in
        t.wheel_gen <- g;
        t.wheel_due <- d;
        d
      end
    in
    let heap_due = Event_heap.top_time t.heap in
    if wheel_due <= heap_due && wheel_due <> max_int then
      (* Wheel slots due at or before the heap top must drain first:
         [wheel_due] is a lower bound, so a resident entry could key
         below the heap top. Draining moves them into the heap, which
         then decides the true order. *)
      if wheel_due > horizon then continue := false
      else Timer_wheel.advance t.wheel ~upto:wheel_due ~emit
    else if heap_due = max_int || heap_due > horizon then
      (* Empty (max_int sentinel) or next event beyond the horizon. *)
      continue := false
    else begin
      let e = Event_heap.top_value t.heap in
      let seq = Event_heap.top_seq t.heap in
      Event_heap.drop t.heap;
      if e.state = Timer_wheel.st_heap && e.seq = seq then begin
        t.now <- Sim_time.of_ns heap_due;
        e.state <- Timer_wheel.st_fired;
        t.processed <- t.processed + 1;
        decr budget;
        e.action ()
      end
      else
        (* Stale cell of a cancelled or re-armed event. Skipping it
           consumes neither budget nor clock. *)
        t.tombstones <- t.tombstones - 1
    end
  done;
  (* When the queue drained (or only holds events beyond the horizon)
     advance the clock to the horizon, so repeated bounded runs make
     progress. A stop caused by [max_events] leaves the clock alone. *)
  if !budget > 0 then
    match until with
    | Some u when Sim_time.(u > t.now) -> t.now <- u
    | Some _ | None -> ()

(* Live work only: heap cells net of tombstones, plus wheel residents.
   A backlog of cancelled-only cells reports zero. *)
let pending_events t =
  Event_heap.length t.heap - t.tombstones + Timer_wheel.live t.wheel

let heap_pending t = Event_heap.length t.heap - t.tombstones
let wheel_pending t = Timer_wheel.live t.wheel
let events_processed t = t.processed

module Timer = struct
  type sched = t

  type t = { sched : sched; entry : Timer_wheel.entry }

  let create sched action = { sched; entry = Timer_wheel.make_entry action }
  let is_pending tm = is_pending tm.entry

  (* Unlike {!Scheduler.cancel}, keeps the action closure: that is the
     point of the abstraction — one entry, one closure, reused across
     every re-arm of an RTO or delayed-ACK timer. *)
  let cancel tm = detach tm.sched tm.entry

  let schedule_at tm time =
    cancel tm;
    if Sim_time.(time < tm.sched.now) then
      invalid_arg "Scheduler.Timer.schedule_at: time is in the past";
    arm tm.sched tm.entry time

  let schedule_after tm delay = schedule_at tm (Sim_time.add tm.sched.now delay)
end
