(* Discrete-event scheduler: binary heap for the near-future event
   stream, hierarchical timing wheel for the far-future timer
   population. See DESIGN.md §4e.

   Every armed event carries a unique (time, seq) key; seq is a single
   monotone counter consumed once per arm. The wheel never fires
   anything itself: [run] drains due wheel slots into the heap, and the
   heap restores exact (time, seq) order, so the observable firing
   order is identical to a heap-only scheduler. *)

type handle = Timer_wheel.entry

type t = {
  heap : handle Event_heap.t;
  wheel : Timer_wheel.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  mutable processed : int;
  mutable tombstones : int;  (* cancelled cells still buried in the heap *)
  (* Cached Timer_wheel.next_due_ns, valid while the wheel generation
     is unchanged — the run loop consults the wheel before every pop,
     and in the common case (draining heap events between timer
     activity) the wheel has not moved. *)
  mutable wheel_due : int;
  mutable wheel_gen : int;
  (* Event-cell pool accounting across every {!Event.pool} of this
     scheduler, exposed to the Probe's self-profiling gauges. *)
  mutable cells_allocated : int;
  mutable cells_free : int;
  ctx : Sim_ctx.t;
}

let create () =
  {
    heap = Event_heap.create ();
    wheel = Timer_wheel.create ();
    now = Sim_time.zero;
    next_seq = 0;
    processed = 0;
    tombstones = 0;
    wheel_due = max_int;
    wheel_gen = -1;
    cells_allocated = 0;
    cells_free = 0;
    ctx = Sim_ctx.create ();
  }

let now t = t.now
let ctx t = t.ctx

(* Arm [e] at [time], consuming exactly one seq. Entries due within one
   level-0 wheel slot skip the wheel and go straight onto the heap. *)
let arm t (e : Timer_wheel.entry) time =
  e.time <- Sim_time.to_ns time;
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  if not (Timer_wheel.schedule t.wheel e) then begin
    e.state <- Timer_wheel.st_heap;
    Event_heap.push t.heap ~time:e.time ~seq:e.seq e
  end

(* The generic closure API, kept for cold-path setup code (workload
   arrival processes, examples). Hot-path modules schedule through
   {!Timer} or {!Event} instead — simlint rule D008 enforces this. *)
let call_closure (f : unit -> unit) = f ()

let schedule_at t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Scheduler.schedule_at: time is in the past";
  let e = Timer_wheel.make_entry call_closure action in
  arm t e time;
  e

let schedule_after t delay action =
  schedule_at t (Sim_time.add t.now delay) action

let cancelled_pending t = t.tombstones

(* A heap cell is live iff its entry is still heap-resident under the
   same seq; anything else (cancelled, or re-armed since) is a
   tombstone. Compact once tombstones dominate: O(n) filter+heapify,
   amortised against the >= n/2 pops the tombstones would otherwise
   cost, keyed only on exact (time, seq) so drain order is unchanged. *)
let maybe_compact t =
  if t.tombstones > 64 && t.tombstones * 2 > Event_heap.length t.heap then begin
    Event_heap.compact t.heap ~keep:(fun ~time:_ ~seq e ->
        e.state = Timer_wheel.st_heap && e.seq = seq);
    t.tombstones <- 0
  end

(* Detach [e] from wherever it is pending; keeps the action closure so
   a re-armable timer can reuse it. *)
let detach t (e : Timer_wheel.entry) =
  if e.state = Timer_wheel.st_wheel then Timer_wheel.cancel t.wheel e
  else if e.state = Timer_wheel.st_heap then begin
    (* The heap cell stays behind as a tombstone. *)
    e.state <- Timer_wheel.st_idle;
    t.tombstones <- t.tombstones + 1;
    maybe_compact t
  end

let cancel t (e : Timer_wheel.entry) =
  detach t e;
  (* One-shot handle: drop the fire/state pair now so captured
     packets/buffers are collectable before the tombstone is popped. *)
  e.run <- Timer_wheel.noop_run

let is_pending (e : handle) =
  e.state = Timer_wheel.st_wheel || e.state = Timer_wheel.st_heap

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> Sim_time.to_ns u | None -> max_int in
  let emit (e : handle) =
    e.state <- Timer_wheel.st_heap;
    Event_heap.push t.heap ~time:e.time ~seq:e.seq e
  in
  let continue = ref true in
  while !continue && !budget > 0 do
    let wheel_due =
      let g = Timer_wheel.generation t.wheel in
      if g = t.wheel_gen then t.wheel_due
      else begin
        let d = Timer_wheel.next_due_ns t.wheel in
        t.wheel_gen <- g;
        t.wheel_due <- d;
        d
      end
    in
    let heap_due = Event_heap.top_time t.heap in
    if wheel_due <= heap_due && wheel_due <> max_int then
      (* Wheel slots due at or before the heap top must drain first:
         [wheel_due] is a lower bound, so a resident entry could key
         below the heap top. Draining moves them into the heap, which
         then decides the true order. *)
      if wheel_due > horizon then continue := false
      else Timer_wheel.advance t.wheel ~upto:wheel_due ~emit
    else if heap_due = max_int || heap_due > horizon then
      (* Empty (max_int sentinel) or next event beyond the horizon. *)
      continue := false
    else begin
      let e = Event_heap.top_value t.heap in
      let seq = Event_heap.top_seq t.heap in
      Event_heap.drop t.heap;
      if e.state = Timer_wheel.st_heap && e.seq = seq then begin
        t.now <- Sim_time.of_ns heap_due;
        e.state <- Timer_wheel.st_fired;
        t.processed <- t.processed + 1;
        decr budget;
        let (Timer_wheel.Run (fire, state)) = e.run in
        fire state
      end
      else
        (* Stale cell of a cancelled or re-armed event. Skipping it
           consumes neither budget nor clock. *)
        t.tombstones <- t.tombstones - 1
    end
  done;
  (* When the queue drained (or only holds events beyond the horizon)
     advance the clock to the horizon, so repeated bounded runs make
     progress. A stop caused by [max_events] leaves the clock alone. *)
  if !budget > 0 then
    match until with
    | Some u when Sim_time.(u > t.now) -> t.now <- u
    | Some _ | None -> ()

(* Live work only: heap cells net of tombstones, plus wheel residents.
   A backlog of cancelled-only cells reports zero. *)
let pending_events t =
  Event_heap.length t.heap - t.tombstones + Timer_wheel.live t.wheel

let heap_pending t = Event_heap.length t.heap - t.tombstones
let wheel_pending t = Timer_wheel.live t.wheel
let events_processed t = t.processed
let event_cells_allocated t = t.cells_allocated
let event_cells_free t = t.cells_free

module Timer = struct
  type sched = t

  type t = { sched : sched; entry : Timer_wheel.entry }

  let create sched fire state = { sched; entry = Timer_wheel.make_entry fire state }
  let is_pending tm = is_pending tm.entry

  (* Unlike {!Scheduler.cancel}, keeps the fire/state pair: that is
     the point of the abstraction — one entry, one pair, reused across
     every re-arm of an RTO or delayed-ACK timer. *)
  let cancel tm = detach tm.sched tm.entry

  let schedule_at tm time =
    cancel tm;
    if Sim_time.(time < tm.sched.now) then
      invalid_arg "Scheduler.Timer.schedule_at: time is in the past";
    arm tm.sched tm.entry time

  let schedule_after tm delay = schedule_at tm (Sim_time.add tm.sched.now delay)
end

module Event = struct
  type sched = t

  (* A pool of one-shot typed event cells sharing one fire function.
     Each cell owns its wheel/heap entry and a payload slot; the
     entry's [run] points back at the cell, so the steady-state path
     — acquire, fill payload, arm — allocates nothing. Cells return
     to the pool's freelist the moment they fire or are cancelled.

     The freelist is a plain array stack (the Packet pool's idiom);
     it starts empty and takes its first backing array from the first
     released cell, so no dummy payload value is ever needed. Freed
     slots above [free_count] keep stale cell pointers alive — cells
     are pool members for the scheduler's lifetime, so this pins no
     memory that was not already pinned.

     Cell generation parity mirrors the packet-pool sanitizer: odd
     while armed, even while pooled. [cancel] on an even-generation
     cell is a use-after-free (the event already fired, or was
     cancelled) and raises when the sanitizer is compiled in. Like
     the packet pool, ABA reuse — cancelling a stale handle after the
     cell was re-acquired for a new event — is outside the parity
     check and must be avoided by contract (DESIGN.md §4j): only the
     scheduling site may hold a cell, and only until fire/cancel. *)
  type 'a cell = {
    c_entry : Timer_wheel.entry;
    mutable c_payload : 'a;
    mutable c_gen : int;
    c_pool : 'a pool;
  }

  and 'a pool = {
    p_sched : sched;
    p_fire : 'a -> unit;
    mutable p_free : 'a cell array;
    mutable p_free_count : int;
  }

  let pool sched ~fire =
    { p_sched = sched; p_fire = fire; p_free = [||]; p_free_count = 0 }

  let release p c =
    c.c_gen <- c.c_gen + 1;  (* armed (odd) -> pooled (even) *)
    if p.p_free_count = Array.length p.p_free then begin
      let a = Array.make (max 8 (2 * p.p_free_count)) c in
      Array.blit p.p_free 0 a 0 p.p_free_count;
      p.p_free <- a
    end;
    p.p_free.(p.p_free_count) <- c;
    p.p_free_count <- p.p_free_count + 1;
    p.p_sched.cells_free <- p.p_sched.cells_free + 1

  (* Static fire function shared by every cell: read the payload out,
     return the cell to the pool, then run the pool's handler. The
     release happens first so the handler may itself schedule into the
     same pool and reuse this very cell. *)
  let fire_cell c =
    let p = c.c_pool in
    let v = c.c_payload in
    release p c;
    p.p_fire v

  let acquire p v =
    if p.p_free_count > 0 then begin
      p.p_free_count <- p.p_free_count - 1;
      let c = p.p_free.(p.p_free_count) in
      p.p_sched.cells_free <- p.p_sched.cells_free - 1;
      c.c_gen <- c.c_gen + 1;  (* pooled (even) -> armed (odd) *)
      c.c_payload <- v;
      c
    end
    else begin
      let c =
        { c_entry = Timer_wheel.make_entry ignore (); c_payload = v;
          c_gen = 1; c_pool = p }
      in
      c.c_entry.run <- Timer_wheel.Run (fire_cell, c);
      p.p_sched.cells_allocated <- p.p_sched.cells_allocated + 1;
      c
    end

  let schedule_at p time v =
    if Sim_time.(time < p.p_sched.now) then
      invalid_arg "Scheduler.Event.schedule_at: time is in the past";
    let c = acquire p v in
    arm p.p_sched c.c_entry time;
    c

  let schedule_after p delay v =
    schedule_at p (Sim_time.add p.p_sched.now delay) v

  let is_pending c = is_pending c.c_entry

  let cancel p c =
    if Sanitizer_mode.on && c.c_gen land 1 = 0 then
      invalid_arg
        "Scheduler.Event.cancel: cell is not armed (already fired or \
         cancelled — stale cell handle)";
    if is_pending c then begin
      detach p.p_sched c.c_entry;
      let v = c.c_payload in
      release p c;
      Some v
    end
    else None
end
