type handle = {
  mutable cancelled : bool;
  mutable fired : bool;
  action : unit -> unit;
}

type t = {
  heap : handle Event_heap.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  mutable processed : int;
  ctx : Sim_ctx.t;
}

let create () =
  {
    heap = Event_heap.create ();
    now = Sim_time.zero;
    next_seq = 0;
    processed = 0;
    ctx = Sim_ctx.create ();
  }

let now t = t.now
let ctx t = t.ctx

let schedule_at t time action =
  if Sim_time.(time < t.now) then
    invalid_arg "Scheduler.schedule_at: time is in the past";
  let h = { cancelled = false; fired = false; action } in
  Event_heap.push t.heap ~time:(Sim_time.to_ns time) ~seq:t.next_seq h;
  t.next_seq <- t.next_seq + 1;
  h

let schedule_after t delay action =
  schedule_at t (Sim_time.add t.now delay) action

let cancel h = h.cancelled <- true

let is_pending h = (not h.cancelled) && not h.fired

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> Sim_time.to_ns u | None -> Int64.max_int in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Event_heap.peek_time t.heap with
    | None -> continue := false
    | Some time when Int64.compare time horizon > 0 -> continue := false
    | Some _ ->
      (match Event_heap.pop t.heap with
       | None -> assert false
       | Some (time, _seq, h) ->
         if not h.cancelled then begin
           t.now <- Sim_time.of_ns time;
           h.fired <- true;
           t.processed <- t.processed + 1;
           decr budget;
           h.action ()
         end)
  done;
  (* When the queue drained (or only holds events beyond the horizon)
     advance the clock to the horizon, so repeated bounded runs make
     progress. A stop caused by [max_events] leaves the clock alone. *)
  if !budget > 0 then
    match until with
    | Some u when Sim_time.(u > t.now) -> t.now <- u
    | Some _ | None -> ()

let pending_events t = Event_heap.length t.heap
let events_processed t = t.processed
