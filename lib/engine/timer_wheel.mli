(** Hierarchical timing wheel (Varghese & Lauck) for the scheduler's
    timer population: events armed far in the future and almost always
    cancelled or re-armed before firing (TCP retransmission and
    delayed-ACK timers). Schedule, cancel and re-arm are O(1). Times
    are native-int nanoseconds ({!Sim_time}'s representation), so the
    whole structure is unboxed word arithmetic.

    The wheel does not order events within a slot. [advance] hands
    every due entry to the caller, which restores exact [(time, seq)]
    order by pushing them through its binary heap — emitting an entry
    early is safe (the heap re-sorts it); the wheel's invariants
    guarantee an entry is never emitted late. See the implementation
    header for the full argument. *)

type erun = Run : ('a -> unit) * 'a -> erun
(** Typed fire slot: a static fire function paired with the state it
    runs on, packed behind an existential so [entry] stays
    monomorphic. A re-armable timer or pooled event cell installs its
    pair once and re-arms forever after without allocating; the
    generic closure API wraps a [unit -> unit] as
    [Run ((fun f -> f ()), f)]. *)

type entry = {
  mutable time : int;    (** absolute due time, ns — exact, not rounded *)
  mutable seq : int;     (** scheduler insertion counter at last arm *)
  mutable run : erun;
  mutable state : int;
  mutable next : entry;
  mutable prev : entry;
  mutable slot : int;
}
(** Intrusive node. The scheduler uses [entry] directly as its event
    handle so a re-armable timer or event cell reuses one allocation
    (and one fire/state pair) across its whole life. *)

(** {2 Entry states}

    [st_idle]: not scheduled (never armed, cancelled, or popped as a
    tombstone). [st_wheel]: linked into a wheel slot. [st_heap]: handed
    off to the scheduler's event heap. [st_fired]: popped and run. *)

val st_idle : int
val st_wheel : int
val st_heap : int
val st_fired : int

val noop_run : erun
(** Shared no-op used to drop a fire/state pair on cancel. *)

val make_entry : ('a -> unit) -> 'a -> entry
(** [make_entry fire state] is a fresh idle, self-linked entry whose
    [run] slot holds [Run (fire, state)]. *)

type t

val create : unit -> t

val live : t -> int
(** Entries currently resident in the wheel (excludes entries already
    handed to the heap). *)

val cursor_ns : t -> int

val generation : t -> int
(** Bumped on every mutation (schedule, cancel, advance). Lets the
    scheduler cache {!next_due_ns} across heap pops instead of
    rescanning the levels for every event. *)

val schedule : t -> entry -> bool
(** Insert an idle entry whose [time] and [seq] are already set.
    Returns [false] (without inserting) when the entry is due within
    one level-0 slot of the cursor — the caller should push it
    straight onto its heap. Time must be at or after the cursor. *)

val cancel : t -> entry -> unit
(** O(1) unlink of an [st_wheel] entry; the entry becomes idle. The
    caller decides whether to drop the fire/state pair (one-shot
    events) or keep it (re-armable timers, pooled event cells). *)

val next_due_ns : t -> int
(** Start time of the earliest non-empty slot — a lower bound on the
    earliest pending entry's due time. [max_int] when empty. *)

val advance : t -> upto:int -> emit:(entry -> unit) -> unit
(** Move the cursor forward, calling [emit] on every entry whose slot
    starts at or before [upto] (cascading multi-level slots as
    needed). Emitted entries leave the wheel in [st_idle]; the caller
    re-keys them by exact [(time, seq)]. *)
