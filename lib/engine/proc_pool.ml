(* Worker-process pool. See the .mli for the wire protocol; the key
   liveness facts the code below relies on:

   - strict request/reply: a worker holds at most one assigned index,
     so between replies its stdout pipe (and our buffered in_channel
     on it) is empty. [Unix.select] on the raw fds is therefore an
     accurate "a reply has started arriving" signal, and the blocking
     [Marshal.from_channel] that follows only waits for the tail of a
     message the worker is already flushing.
   - parent-side pipe ends are close-on-exec, so a worker never holds
     a sibling's pipe open; a dead worker's stdout always reads EOF.
   - every child is reaped exactly once ([reap] removes it from
     [live]; the [Fun.protect] finaliser only sees survivors). *)

type worker = {
  pid : int;
  to_worker : out_channel;
  from_worker : in_channel;
  from_fd : Unix.file_descr;
  mutable inflight : int option;
}

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let rec select_retry fds =
  match Unix.select fds [] [] (-1.0) with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds

let spawn worker_argv =
  let in_read, in_write = Unix.pipe () in
  let out_read, out_write = Unix.pipe () in
  (* Keep our ends out of future workers: an inherited write end would
     hold a dead sibling's pipe open and hide its EOF. *)
  Unix.set_close_on_exec in_write;
  Unix.set_close_on_exec out_read;
  let pid =
    Unix.create_process worker_argv.(0) worker_argv in_read out_write
      Unix.stderr
  in
  Unix.close in_read;
  Unix.close out_write;
  let to_worker = Unix.out_channel_of_descr in_write in
  let from_worker = Unix.in_channel_of_descr out_read in
  set_binary_mode_out to_worker true;
  set_binary_mode_in from_worker true;
  { pid; to_worker; from_worker; from_fd = out_read; inflight = None }

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let run ~jobs ~worker_argv ~n ~deliver =
  if jobs < 1 then invalid_arg "Proc_pool.run: jobs must be >= 1";
  if n > 0 then begin
    (* A worker dying between assignment and flush must surface as a
       delivered Error, not kill us with SIGPIPE. *)
    let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    let live = ref (List.init (min jobs n) (fun _ -> spawn worker_argv)) in
    let next = ref 0 in
    let delivered = ref 0 in
    let deliver i outcome =
      incr delivered;
      deliver i outcome
    in
    let reap w =
      live := List.filter (fun w' -> w'.pid <> w.pid) !live;
      (try close_out w.to_worker with Sys_error _ -> ());
      (try close_in w.from_worker with Sys_error _ -> ());
      let status = waitpid_retry w.pid in
      match w.inflight with
      | None -> ()
      | Some i ->
        w.inflight <- None;
        deliver i
          (Error
             (Printf.sprintf "worker process died mid-point (%s)"
                (describe_status status)))
    in
    (* Hand [w] the next pending index, or close its stdin when none
       remain. A send failure means the worker is already dead: reap
       it without consuming the index, so a survivor picks it up. *)
    let assign w =
      if !next >= n then begin
        w.inflight <- None;
        try close_out w.to_worker with Sys_error _ -> ()
      end
      else
        let i = !next in
        match
          output_string w.to_worker (string_of_int i);
          output_char w.to_worker '\n';
          flush w.to_worker
        with
        | () ->
          w.inflight <- Some i;
          incr next
        | exception Sys_error _ -> reap w
    in
    let handle_reply w =
      match
        (Marshal.from_channel w.from_worker : int * (string, string) result)
      with
      | i, outcome ->
        w.inflight <- None;
        deliver i outcome;
        assign w
      | exception (End_of_file | Failure _ | Sys_error _) -> reap w
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try close_out w.to_worker with Sys_error _ -> ());
            (try close_in w.from_worker with Sys_error _ -> ());
            (* Already told to exit via EOF; the kill only guarantees
               waitpid cannot hang on a misbehaving worker. *)
            (try Unix.kill w.pid Sys.sigkill
             with Unix.Unix_error _ -> ());
            ignore (waitpid_retry w.pid))
          !live;
        live := [];
        Sys.set_signal Sys.sigpipe old_sigpipe)
      (fun () ->
        List.iter assign (List.rev !live);
        while !delivered < n do
          if !live = [] then begin
            (* Every assigned index has been delivered (reply or reap),
               so only never-assigned ones remain. *)
            while !next < n do
              deliver !next (Error "no worker processes left");
              incr next
            done
          end
          else begin
            let busy = List.filter (fun w -> w.inflight <> None) !live in
            let ready = select_retry (List.map (fun w -> w.from_fd) busy) in
            List.iter
              (fun w -> if List.memq w.from_fd ready then handle_reply w)
              busy
          end
        done)
  end

let serve ~run =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      let i = int_of_string (String.trim line) in
      Marshal.to_channel stdout (i, (run i : (string, string) result)) [];
      flush stdout;
      loop ()
  in
  loop ()
