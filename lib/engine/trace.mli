(** Lightweight component-tagged tracing.

    Tracing is off by default and costs one branch per call site when
    disabled, so stacks can trace per-packet events without slowing
    down full-scale benchmark runs.

    Trace configuration is per-simulation state: each {!Sim_ctx.t}
    carries its own [t] (reach it via [Sim_ctx.trace (Scheduler.ctx
    sched)]), so enabling debug output in one simulation cannot leak
    into others running concurrently on sibling domains. *)

type level = Error | Warn | Info | Debug

type t
(** One simulation's trace configuration. *)

val create : unit -> t
(** A fresh configuration with tracing disabled. *)

val set_level : t -> level option -> unit
(** [set_level t (Some Debug)] enables everything; [set_level t None]
    (the default) disables all output. *)

val level : t -> level option

val set_components : t -> string list option -> unit
(** Restrict output to the given component tags (the [~component]
    argument of the [*f] functions, e.g. ["tcp_tx"], ["pktqueue"]).
    [None] (the default) logs every component. The filter composes
    with the level threshold: a line is printed iff its level passes
    {!set_level} {e and} its component passes this filter. *)

val components : t -> string list option

val enabled : t -> level -> bool
(** Level check only; ignores the component filter. *)

val enabled_for : t -> level -> component:string -> bool
(** Full check: level threshold plus component filter — exactly the
    condition under which the [*f] functions print. *)

val errorf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val warnf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val infof : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val debugf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
