(** Lightweight component-tagged tracing.

    Tracing is off by default and costs one branch per call site when
    disabled, so stacks can trace per-packet events without slowing
    down full-scale benchmark runs.

    Trace configuration is per-simulation state: each {!Sim_ctx.t}
    carries its own [t] (reach it via [Sim_ctx.trace (Scheduler.ctx
    sched)]), so enabling debug output in one simulation cannot leak
    into others running concurrently on sibling domains. *)

type level = Error | Warn | Info | Debug

type t
(** One simulation's trace configuration. *)

val create : unit -> t
(** A fresh configuration with tracing disabled. *)

val set_level : t -> level option -> unit
(** [set_level t (Some Debug)] enables everything; [set_level t None]
    (the default) disables all output. *)

val level : t -> level option

val enabled : t -> level -> bool

val errorf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val warnf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val infof : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
val debugf : t -> component:string -> ('a, Format.formatter, unit) format -> 'a
