(** Virtual-time probe sampler.

    A probe turns a simulation's (otherwise dormant) metrics registry
    on and walks it at a fixed virtual-time interval using a re-armable
    {!Scheduler.Timer}, appending one row per registered gauge to an
    in-memory {!Sim_obs.Series}. Sampling only {e reads} component
    state — gauge closures never mutate — so an enabled probe cannot
    change simulation behaviour, only interleave extra timer events
    (which shift sequence numbers but preserve the relative order of
    simulation events).

    Lifecycle: {!create} before the instrumented components are
    constructed (it enables the registry they consult at construction
    time), {!start} before [Scheduler.run], {!stop} after — stopping
    cancels the timer so a finished simulation reports
    [pending_events = 0]. *)

type t

val create : ?conns:int list -> Scheduler.t -> interval:Sim_time.t -> t
(** Enable the scheduler's metrics registry ([conns] filters
    connection-scoped instruments and events) and build a sampler that
    will tick every [interval] of virtual time. Also registers the
    scheduler's self-profiling gauges ([heap_pending],
    [wheel_pending], [events_processed]) as the first columns.
    Raises [Invalid_argument] if [interval] is not positive. *)

val start : t -> unit
(** Arm the first tick at [now + interval]. Idempotent while armed. *)

val stop : t -> unit
(** Cancel the pending tick, leaving collected data intact. *)

val ticks : t -> int
(** Sampling ticks fired so far. *)

val series : t -> Sim_obs.Series.t

val capture : t -> Sim_obs.Capture.t
(** Immutable snapshot of everything collected (gauge samples,
    histograms, events). Call after the run; implies {!stop}. *)
