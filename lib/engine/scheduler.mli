(** Discrete-event scheduler.

    The scheduler owns the virtual clock and two pending-event
    structures: a binary heap for the near-future event stream and a
    hierarchical timing wheel ({!Timer_wheel}) for the far-future timer
    population (RTO, delayed ACK) that is almost always cancelled or
    re-armed before firing. [run] drains [min(heap-peek, wheel-peek)]:
    due wheel slots are handed to the heap, which restores exact
    [(time, seq)] order, so firing order — and therefore experiment
    output — is identical to a heap-only scheduler. Events scheduled
    for the same instant fire in the order they were scheduled.

    Cancellation is O(1) in both structures: a wheel entry unlinks
    immediately; a heap entry leaves a tombstone that is skipped when
    popped and compacted away when tombstones dominate. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current virtual time. *)

val ctx : t -> Sim_ctx.t
(** The simulation's identifier state. One scheduler = one simulation
    instance = one {!Sim_ctx.t}; nothing identifier-related is shared
    between schedulers, so independent simulations may run on separate
    domains concurrently. *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past.

    Allocates a fresh handle and closure per event: fine for cold-path
    setup code (workload arrival processes, one-off phase changes),
    wrong for anything on the per-packet or per-re-arm path — those go
    through {!Timer} (re-armable, one allocation for life) or {!Event}
    (pooled one-shot cells). simlint rule D008 flags hot-path use. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] runs [f] at [now t + delay]. Same
    allocation caveat as {!schedule_at}. *)

val cancel : t -> handle -> unit
(** Cancel a pending event and drop its action closure (releasing
    captured packets/buffers before any tombstone is popped).
    Cancelling an already-fired or already-cancelled event is a
    no-op. *)

val is_pending : handle -> bool

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the next
    event lies strictly beyond [until], or after [max_events] events. *)

val pending_events : t -> int
(** Events that will still fire: heap entries net of cancelled
    tombstones, plus wheel residents. A backlog consisting only of
    cancelled events reports zero. *)

val heap_pending : t -> int
(** Live events resident in the near-future heap (net of tombstones).
    With {!wheel_pending} this splits {!pending_events} by structure —
    exposed for the {!Probe} sampler's scheduler self-profiling. *)

val wheel_pending : t -> int
(** Live timers resident in the far-future wheel. *)

val cancelled_pending : t -> int
(** Cancelled events still buried in the heap as tombstones (the
    compaction heuristic's input). Excludes wheel cancellations, which
    unlink immediately. *)

val events_processed : t -> int

val event_cells_allocated : t -> int
(** Event cells created across every {!Event.pool} of this scheduler.
    Steady state is a small constant (the high-water mark of in-flight
    typed events); growth during a run means a pool is being drained
    faster than it fires. Exposed for the {!Probe} sampler. *)

val event_cells_free : t -> int
(** Event cells currently parked on pool freelists.
    [event_cells_allocated - event_cells_free] is the number of typed
    events armed right now. *)

(** Re-armable timer: one handle and one fire/state pair allocated at
    [create], reused across every restart. [schedule_*] atomically
    cancels any pending occurrence and re-arms, so at most one
    occurrence is ever pending; unlike {!cancel}, {!Timer.cancel}
    keeps the pair for the next re-arm. Each re-arm consumes one
    scheduling sequence number, exactly like a fresh {!schedule_at}.

    [create sched fire state] takes the fire function and its state
    separately so call sites pass a statically-allocated function
    (typically the module's [on_rto]/[on_timeout]) instead of building
    a closure; the pair is packed once into the entry's typed run
    slot. *)
module Timer : sig
  type sched := t
  type t

  val create : sched -> ('a -> unit) -> 'a -> t
  val schedule_at : t -> Sim_time.t -> unit
  val schedule_after : t -> Sim_time.t -> unit
  val cancel : t -> unit
  val is_pending : t -> bool
end

(** Pooled one-shot typed events — the closure-free hot path.

    A pool is created once per scheduling site with a fixed fire
    function; each [schedule_*] then fills a pooled cell (entry +
    payload slot) and arms it, allocating nothing in steady state.
    Cells return to the pool when they fire or are cancelled, so the
    pool's size is the high-water mark of simultaneously in-flight
    events (a link's pool holds about bandwidth-delay-product cells).

    Ownership contract (DESIGN.md §4j): scheduling a payload moves
    ownership into the pending event; the fire function receives it
    back. Only the scheduling site may hold the returned cell, and
    only until the event fires or is cancelled — a cell handle kept
    past that is a use-after-free (the cell is reissued to a later
    event), caught by generation parity when the sanitizer profile is
    compiled in. For [Packet.t] payloads this is the same single-owner
    contract D007 enforces: handing a raw pooled packet to
    [Event.schedule_*] is flagged outside pool-implementation
    modules. *)
module Event : sig
  type sched := t

  type 'a pool
  (** A pool of event cells sharing one fire function. *)

  type 'a cell
  (** A cell armed by [schedule_*]; valid until its event fires or is
      cancelled, then owned by the pool again. *)

  val pool : sched -> fire:('a -> unit) -> 'a pool

  val schedule_at : 'a pool -> Sim_time.t -> 'a -> 'a cell
  (** Arm a pooled cell carrying the payload; fires exactly like a
      {!schedule_at} closure event armed at the same instant (one seq
      consumed per arm). Raises [Invalid_argument] on past times. *)

  val schedule_after : 'a pool -> Sim_time.t -> 'a -> 'a cell

  val cancel : 'a pool -> 'a cell -> 'a option
  (** [cancel p c] unlinks a pending event and hands the payload back
      to the caller (who owns it again — for a packet that means
      freeing or re-scheduling it). [None] if the event already fired.
      Raises [Invalid_argument] under the sanitizer profile when [c]
      is a stale handle (its event already fired or was cancelled). *)

  val is_pending : 'a cell -> bool
end
