(** Discrete-event scheduler.

    The scheduler owns the virtual clock and two pending-event
    structures: a binary heap for the near-future event stream and a
    hierarchical timing wheel ({!Timer_wheel}) for the far-future timer
    population (RTO, delayed ACK) that is almost always cancelled or
    re-armed before firing. [run] drains [min(heap-peek, wheel-peek)]:
    due wheel slots are handed to the heap, which restores exact
    [(time, seq)] order, so firing order — and therefore experiment
    output — is identical to a heap-only scheduler. Events scheduled
    for the same instant fire in the order they were scheduled.

    Cancellation is O(1) in both structures: a wheel entry unlinks
    immediately; a heap entry leaves a tombstone that is skipped when
    popped and compacted away when tombstones dominate. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current virtual time. *)

val ctx : t -> Sim_ctx.t
(** The simulation's identifier state. One scheduler = one simulation
    instance = one {!Sim_ctx.t}; nothing identifier-related is shared
    between schedulers, so independent simulations may run on separate
    domains concurrently. *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] runs [f] at [now t + delay]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event and drop its action closure (releasing
    captured packets/buffers before any tombstone is popped).
    Cancelling an already-fired or already-cancelled event is a
    no-op. *)

val is_pending : handle -> bool

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the next
    event lies strictly beyond [until], or after [max_events] events. *)

val pending_events : t -> int
(** Events that will still fire: heap entries net of cancelled
    tombstones, plus wheel residents. A backlog consisting only of
    cancelled events reports zero. *)

val heap_pending : t -> int
(** Live events resident in the near-future heap (net of tombstones).
    With {!wheel_pending} this splits {!pending_events} by structure —
    exposed for the {!Probe} sampler's scheduler self-profiling. *)

val wheel_pending : t -> int
(** Live timers resident in the far-future wheel. *)

val cancelled_pending : t -> int
(** Cancelled events still buried in the heap as tombstones (the
    compaction heuristic's input). Excludes wheel cancellations, which
    unlink immediately. *)

val events_processed : t -> int

(** Re-armable timer: one handle and one action closure allocated at
    [create], reused across every restart. [schedule_*] atomically
    cancels any pending occurrence and re-arms, so at most one
    occurrence is ever pending; unlike {!cancel}, {!Timer.cancel}
    keeps the closure for the next re-arm. Each re-arm consumes one
    scheduling sequence number, exactly like a fresh
    {!schedule_at}. *)
module Timer : sig
  type sched := t
  type t

  val create : sched -> (unit -> unit) -> t
  val schedule_at : t -> Sim_time.t -> unit
  val schedule_after : t -> Sim_time.t -> unit
  val cancel : t -> unit
  val is_pending : t -> bool
end
