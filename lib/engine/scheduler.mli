(** Discrete-event scheduler.

    The scheduler owns the virtual clock and a priority queue of pending
    events. Simulation components schedule closures to run at future
    instants; [run] drains the queue in timestamp order, advancing the
    clock. Events scheduled for the same instant fire in the order they
    were scheduled.

    A scheduled event can be cancelled through its handle; cancellation
    is O(1) (the event stays in the heap but is skipped when popped),
    which is the right trade-off for TCP retransmission timers that are
    re-armed on almost every ACK. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current virtual time. *)

val ctx : t -> Sim_ctx.t
(** The simulation's identifier state. One scheduler = one simulation
    instance = one {!Sim_ctx.t}; nothing identifier-related is shared
    between schedulers, so independent simulations may run on separate
    domains concurrently. *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] runs [f] at [now t + delay]. *)

val cancel : handle -> unit
(** Cancel a pending event. Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val is_pending : handle -> bool

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the next
    event lies strictly beyond [until], or after [max_events] events. *)

val pending_events : t -> int
val events_processed : t -> int
