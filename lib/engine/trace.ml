type level = Error | Warn | Info | Debug

type t = {
  mutable current : level option;
  mutable components : string list option;
}

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let label = function Error -> "ERROR" | Warn -> "WARN" | Info -> "INFO" | Debug -> "DEBUG"

let create () = { current = None; components = None }

let set_level t l = t.current <- l
let level t = t.current

let set_components t cs = t.components <- cs
let components t = t.components

let enabled t l =
  match t.current with
  | None -> false
  | Some threshold -> severity l <= severity threshold

let enabled_for t l ~component =
  enabled t l
  && (match t.components with None -> true | Some cs -> List.mem component cs)

let logf t lvl ~component fmt =
  if enabled_for t lvl ~component then
    Format.kfprintf
      (fun ppf -> Format.fprintf ppf "@.")
      Format.err_formatter
      ("[%s] %s: " ^^ fmt)
      (label lvl) component
  else Format.ifprintf Format.err_formatter fmt

let errorf t ~component fmt = logf t Error ~component fmt
let warnf t ~component fmt = logf t Warn ~component fmt
let infof t ~component fmt = logf t Info ~component fmt
let debugf t ~component fmt = logf t Debug ~component fmt
