module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Packet = Sim_net.Packet
module Host = Sim_net.Host
module Addr = Sim_net.Addr

type t = {
  host : Host.t;
  peer : Addr.t;
  conn : int;
  subflow : int;
  params : Tcp_params.t;
  received : Intervals.t;
  mutable rcv_nxt : int;
  on_data : dsn:int -> len:int -> unit;
  mutable acks_sent : int;
  mutable dup_segments : int;
  (* Delayed-ACK state. *)
  mutable pending : int;  (* in-order segments not yet acknowledged *)
  mutable pending_ece : bool;
  mutable reply_ports : (int * int) option;  (* (src, dst) of our ACKs *)
  (* Re-armable delayed-ACK timer, allocated on first arm and reused. *)
  mutable delack_timer : Scheduler.Timer.t option;
}

let create ?(params = Tcp_params.default) ~host ~peer ~conn ~subflow ~on_data () =
  {
    host;
    peer;
    conn;
    subflow;
    params;
    received = Intervals.create ();
    rcv_nxt = 0;
    on_data;
    acks_sent = 0;
    dup_segments = 0;
    pending = 0;
    pending_ece = false;
    reply_ports = None;
    delack_timer = None;
  }

let cancel_delack t =
  match t.delack_timer with
  | Some tm -> Scheduler.Timer.cancel tm
  | None -> ()

let delack_pending t =
  match t.delack_timer with
  | Some tm -> Scheduler.Timer.is_pending tm
  | None -> false

let emit_ack t ~src_port ~dst_port ~bits =
  t.acks_sent <- t.acks_sent + 1;
  let pkt =
    Packet.make
      ~ctx:(Scheduler.ctx (Host.sched t.host))
      ~src:(Host.addr t.host) ~dst:t.peer ~conn:t.conn ~subflow:t.subflow
      ~src_port ~dst_port ~seq:0 ~ack_seq:t.rcv_nxt ~len:0 ~bits ~dsn:(-1)
  in
  (* Up to three SACK blocks: the out-of-order spans above the
     cumulative acknowledgement, in ascending order, written straight
     into the packet's scratch array (nothing allocated here). *)
  pkt.Packet.sack_count <-
    Intervals.fill_above t.received ~above:t.rcv_nxt
      ~max_blocks:Packet.max_sack_blocks ~dst:pkt.Packet.sack;
  Host.send t.host pkt

let flush_ack t ~ece ~dup_seen =
  match t.reply_ports with
  | None -> ()
  | Some (src_port, dst_port) ->
    cancel_delack t;
    t.pending <- 0;
    t.pending_ece <- false;
    emit_ack t ~src_port ~dst_port ~bits:(Packet.ack_bits ~ece ~dup_seen)

let on_delack_timeout t =
  if t.pending > 0 then flush_ack t ~ece:t.pending_ece ~dup_seen:false

let arm_delack t =
  let tm =
    match t.delack_timer with
    | Some tm -> tm
    | None ->
      let tm = Scheduler.Timer.create (Host.sched t.host) on_delack_timeout t in
      t.delack_timer <- Some tm;
      tm
  in
  Scheduler.Timer.schedule_after tm t.params.Tcp_params.delack_timeout

let handle t pkt =
  if Packet.syn pkt && not (Packet.ack pkt) then begin
    (* Passive open (or duplicate SYN): always answer. *)
    t.reply_ports <- Some (pkt.Packet.dst_port, pkt.Packet.src_port);
    emit_ack t ~src_port:pkt.Packet.dst_port ~dst_port:pkt.Packet.src_port
      ~bits:Packet.syn_ack_bits
  end
  else if pkt.Packet.len > 0 then begin
    let start = pkt.Packet.seq in
    let stop = start + pkt.Packet.len in
    let before = t.rcv_nxt in
    let added = Intervals.add t.received ~start ~stop in
    t.rcv_nxt <- Intervals.contiguous_from t.received 0;
    let dup = added = 0 in
    if dup then t.dup_segments <- t.dup_segments + 1;
    t.on_data ~dsn:pkt.Packet.dsn ~len:pkt.Packet.len;
    t.reply_ports <- Some (pkt.Packet.dst_port, pkt.Packet.src_port);
    let in_order_advance = (not dup) && t.rcv_nxt > before in
    if in_order_advance && Intervals.span_count t.received = 1 then begin
      (* Clean in-order progress: eligible for coalescing. *)
      t.pending <- t.pending + 1;
      t.pending_ece <- t.pending_ece || pkt.Packet.ce;
      if t.pending >= t.params.Tcp_params.delayed_ack then
        flush_ack t ~ece:t.pending_ece ~dup_seen:false
      else if not (delack_pending t) then arm_delack t
    end
    else begin
      (* Out-of-order, duplicate, or hole-filling arrival: acknowledge
         immediately (duplicate-ACK generation must not be delayed). *)
      t.pending <- t.pending + 1;
      t.pending_ece <- t.pending_ece || pkt.Packet.ce;
      flush_ack t ~ece:t.pending_ece ~dup_seen:dup
    end
  end

let rcv_nxt t = t.rcv_nxt
let unique_bytes t = Intervals.total t.received
let acks_sent t = t.acks_sent
let dup_segments t = t.dup_segments
let reorder_spans t = Intervals.span_count t.received
