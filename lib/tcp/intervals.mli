(** Sets of disjoint half-open byte ranges.

    Used by receivers to track out-of-order arrivals and by multipath
    connections to track data-level coverage. Ranges are normalised:
    disjoint, non-adjacent, sorted. *)

type t

val create : unit -> t

val add : t -> start:int -> stop:int -> int
(** Insert [\[start, stop)]; returns the number of bytes that were not
    already covered. Raises [Invalid_argument] if [stop < start]. *)

val total : t -> int
(** Total covered bytes. *)

val contiguous_from : t -> int -> int
(** [contiguous_from t x] is the largest [y >= x] with [\[x, y)] fully
    covered ([x] itself if [x] is uncovered). *)

val is_covered : t -> start:int -> stop:int -> bool
val spans : t -> (int * int) list
(** The normalised ranges, sorted. *)

val span_count : t -> int

val fill_above : t -> above:int -> max_blocks:int -> dst:int array -> int
(** [fill_above t ~above ~max_blocks ~dst] writes the first
    [max_blocks] ranges whose start exceeds [above] into [dst] as
    flattened pairs (range [i] at [dst.(2i), dst.(2i+1)]) and returns
    how many it wrote. Allocation-free: this is the receive path's
    SACK-block encoder, writing straight into a packet's scratch
    array. *)
