module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Host = Sim_net.Host

type t = {
  conn : int;
  size : int;
  mutable tx : Tcp_tx.t option;
  mutable rx : Tcp_rx.t option;
  started_at : Time.t;
  mutable completed_at : Time.t option;
  received : Intervals.t;
}

let start ~src ~dst ~size ?(params = Tcp_params.default) ?(cc = Reno.make)
    ?dupack_threshold ?src_port ?dst_port ?(on_complete = fun _ -> ()) () =
  if size < 0 then invalid_arg "Flow.start: negative size";
  let sched = Host.sched src in
  let conn = Conn_id.fresh (Scheduler.ctx sched) in
  let t =
    {
      conn;
      size;
      tx = None;
      rx = None;
      started_at = Scheduler.now sched;
      completed_at = None;
      received = Intervals.create ();
    }
  in
  let src_port = match src_port with Some p -> p | None -> 10_000 + conn in
  let dst_port = match dst_port with Some p -> p | None -> 5001 in
  let on_data ~dsn ~len =
    if dsn >= 0 && t.completed_at = None then begin
      ignore (Intervals.add t.received ~start:dsn ~stop:(dsn + len));
      if Intervals.total t.received >= size then begin
        t.completed_at <- Some (Scheduler.now sched);
        Sim_obs.Flow_ledger.on_complete
          (Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched))
          ~conn;
        on_complete t
      end
    end
  in
  let rx =
    Tcp_rx.create ~params ~host:dst ~peer:(Host.addr src) ~conn ~subflow:0
      ~on_data ()
  in
  let tx =
    Tcp_tx.create ~host:src ~peer:(Host.addr dst) ~conn ~subflow:0 ~params
      ~src_port:(fun () -> src_port)
      ~dst_port
      ~source:(Tcp_tx.fixed_size_source size)
      ~cc ?dupack_threshold ()
  in
  t.tx <- Some tx;
  t.rx <- Some rx;
  Host.bind src ~conn (Tcp_tx.handle tx);
  Host.bind dst ~conn (Tcp_rx.handle rx);
  (* A zero-byte flow completes at establishment; treat it as complete
     immediately for simplicity. *)
  if size = 0 then begin
    t.completed_at <- Some (Scheduler.now sched);
    Sim_obs.Flow_ledger.on_complete
      (Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched))
      ~conn;
    on_complete t
  end;
  Tcp_tx.connect tx;
  t

let conn t = t.conn
let size t = t.size
let started_at t = t.started_at
let completed_at t = t.completed_at

let fct t =
  match t.completed_at with
  | None -> None
  | Some c -> Some (Time.diff c t.started_at)

let is_complete t = t.completed_at <> None
let bytes_received t = Intervals.total t.received

let get_tx t = match t.tx with Some x -> x | None -> assert false
let get_rx t = match t.rx with Some x -> x | None -> assert false
let tx = get_tx
let rx = get_rx
let rto_events t = (Tcp_tx.stats (get_tx t)).Tcp_tx.rto_events
