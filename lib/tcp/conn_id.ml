let fresh ctx = Sim_engine.Sim_ctx.fresh_conn_id ctx
