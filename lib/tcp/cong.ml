type window = {
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
  flight : unit -> int;
  mss : int;
  srtt : unit -> Sim_engine.Sim_time.t option;
}

type loss_kind = Fast_retransmit | Timeout

type t = {
  name : string;
  on_ack : acked:int -> ece:bool -> unit;
  on_loss : loss_kind -> unit;
  gauges : (string * (unit -> float)) list;
}

let gauge t key = Option.map (fun f -> f ()) (List.assoc_opt key t.gauges)

let reno_on_loss w kind =
  let mss = float_of_int w.mss in
  (* RFC 5681 FlightSize, clamped to cwnd: NewReno window inflation can
     leave more data outstanding than cwnd, and halving from that
     inflated figure would let ssthresh ratchet upwards across
     consecutive recoveries. *)
  let flight = Float.min (float_of_int (w.flight ())) (w.get_cwnd ()) in
  let ssthresh = Float.max (flight /. 2.) (2. *. mss) in
  w.set_ssthresh ssthresh;
  match kind with
  | Fast_retransmit -> w.set_cwnd ssthresh
  | Timeout -> w.set_cwnd mss

(* Byte-counted slow start without a per-ACK cap: a cumulative ACK
   covering n segments grows cwnd by n segments, exactly like
   per-segment ACKing would. Capping at one MSS per ACK would stall
   senders whose ACK stream is aggregated by reordering — which is the
   normal regime for the packet-scatter phase. *)
let slow_start_increase w ~acked = w.set_cwnd (w.get_cwnd () +. float_of_int acked)

let congestion_avoidance_increase w ~acked =
  let mss = float_of_int w.mss in
  let cwnd = w.get_cwnd () in
  let inc = mss *. mss /. cwnd *. (float_of_int acked /. mss) in
  (* Cap the per-ACK increase at one MSS, as byte-counted AIMD does. *)
  w.set_cwnd (cwnd +. Float.min inc mss)
