module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Packet = Sim_net.Packet
module Host = Sim_net.Host
module Addr = Sim_net.Addr

type source = {
  pull : max:int -> (int * int) option;
  has_more : unit -> bool;
}

let fixed_size_source n =
  if n < 0 then invalid_arg "Tcp_tx.fixed_size_source: negative size";
  let next = ref 0 in
  {
    pull =
      (fun ~max ->
        if !next >= n then None
        else begin
          let len = min max (n - !next) in
          let dsn = !next in
          next := !next + len;
          Some (dsn, len)
        end);
    has_more = (fun () -> !next < n);
  }

type stats = {
  mutable segments_sent : int;
  mutable segments_rtx : int;
  mutable bytes_sent : int;
  mutable rto_events : int;
  mutable fast_rtx_events : int;
  mutable acks_received : int;
  mutable dsacks_received : int;
  mutable syn_sent : int;
}

type state = Closed | Syn_sent | Established | Failed

type recovery = Normal | Fast_recovery | Rto_recovery

type seg = {
  ssn : int;
  len : int;
  dsn : int;
  mutable sent_at : Time.t;
  mutable rtx : int;
  mutable sacked : bool;
  mutable rtx_rec : bool;  (* retransmitted during the current recovery *)
}

type t = {
  sched : Scheduler.t;
  host : Host.t;
  peer : Addr.t;
  conn : int;
  subflow : int;
  params : Tcp_params.t;
  src_port : unit -> int;
  dst_port : int;
  source : source;
  rtt : Rtt_estimator.t;
  mutable state : state;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable snd_una : int;
  mutable snd_nxt : int;
  segs : seg Queue.t;
  mutable dup_acks : int;
  mutable recovery : recovery;
  mutable recover_point : int;
  (* Re-armable RTO timer: one entry (static fire fn + state) allocated
     on first arm, then reused for the connection's whole life. *)
  mutable rto_timer : Scheduler.Timer.t option;
  mutable backoff : int;
  mutable syn_retries : int;
  mutable cc : Cong.t;
  dupack_threshold : unit -> int;
  on_established : unit -> unit;
  on_dsn_acked : dsn:int -> len:int -> unit;
  on_all_acked : unit -> unit;
  on_dsack : unit -> unit;
  on_first_congestion : unit -> unit;
  mutable congestion_seen : bool;
  mutable all_acked_fired : bool;
  mutable sacked_bytes : int;  (* bytes in [segs] currently SACKed *)
  st : stats;
  m : Sim_obs.Metrics.t option;  (* [Some] only when probing this conn *)
  hist_rtt : Sim_stats.Histogram.t option;
  ledger : Sim_obs.Flow_ledger.t;  (* per-sim; every hook is one branch when off *)
}

let noop () = ()
let noop_dsn ~dsn:_ ~len:_ = ()

let window t =
  {
    Cong.get_cwnd = (fun () -> t.cwnd);
    set_cwnd = (fun c -> t.cwnd <- Float.max c (float_of_int t.params.Tcp_params.mss));
    get_ssthresh = (fun () -> t.ssthresh);
    set_ssthresh = (fun s -> t.ssthresh <- s);
    flight = (fun () -> t.snd_nxt - t.snd_una);
    mss = t.params.Tcp_params.mss;
    srtt = (fun () -> Rtt_estimator.srtt t.rtt);
  }

let mss t = t.params.Tcp_params.mss
let flight t = t.snd_nxt - t.snd_una

let current_rto t =
  let base = Rtt_estimator.rto t.rtt in
  let backed =
    Time.scale base (Float.of_int (1 lsl min t.backoff 16))
  in
  Time.min backed t.params.Tcp_params.max_rto

let create ~host ~peer ~conn ~subflow ~params ~src_port ~dst_port ~source ~cc
    ?dupack_threshold ?(on_established = noop) ?(on_dsn_acked = noop_dsn)
    ?(on_all_acked = noop) ?(on_dsack = noop) ?(on_first_congestion = noop) () =
  let threshold =
    match dupack_threshold with
    | Some f -> f
    | None -> fun () -> params.Tcp_params.dupack_threshold
  in
  let metrics =
    let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx (Host.sched host)) in
    if Sim_obs.Metrics.want_conn m conn then Some m else None
  in
  let mid = Printf.sprintf "c%d.s%d" conn subflow in
  let hist_rtt =
    match metrics with
    | Some m ->
      (* Data-centre RTTs: 100 µs per bucket up to 5 ms, overflow
         beyond (queue-buildup and RTO-scale outliers). *)
      Sim_obs.Metrics.histogram m ~component:"tcp_tx" ~id:mid ~name:"rtt"
        ~units:"us" ~lo:0. ~hi:5000. ~buckets:50
    | None -> None
  in
  let t =
    {
      sched = Host.sched host;
      host;
      peer;
      conn;
      subflow;
      params;
      src_port;
      dst_port;
      source;
      rtt = Rtt_estimator.create ~params;
      state = Closed;
      cwnd = float_of_int (params.Tcp_params.initial_window * params.Tcp_params.mss);
      ssthresh = Float.max_float /. 4.;
      snd_una = 0;
      snd_nxt = 0;
      segs = Queue.create ();
      dup_acks = 0;
      recovery = Normal;
      recover_point = 0;
      rto_timer = None;
      backoff = 0;
      syn_retries = 0;
      cc = { Cong.name = "uninitialised"; on_ack = (fun ~acked:_ ~ece:_ -> ()); on_loss = (fun _ -> ()); gauges = [] };
      dupack_threshold = threshold;
      on_established;
      on_dsn_acked;
      on_all_acked;
      on_dsack;
      on_first_congestion;
      congestion_seen = false;
      all_acked_fired = false;
      sacked_bytes = 0;
      st =
        {
          segments_sent = 0;
          segments_rtx = 0;
          bytes_sent = 0;
          rto_events = 0;
          fast_rtx_events = 0;
          acks_received = 0;
          dsacks_received = 0;
          syn_sent = 0;
        };
      m = metrics;
      hist_rtt;
      ledger = Sim_engine.Sim_ctx.ledger (Scheduler.ctx (Host.sched host));
    }
  in
  t.cc <- cc (window t);
  (match t.m with
   | Some m ->
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"tcp_tx" ~id:mid ~name ~units read
     in
     reg "cwnd" "bytes" (fun () -> t.cwnd);
     reg "ssthresh" "bytes" (fun () ->
         (* The initial "infinite" ssthresh would drown real values in
            any plot; report it as 0 until congestion sets it. *)
         if t.ssthresh > 1e18 then 0. else t.ssthresh);
     reg "inflight" "bytes" (fun () -> float_of_int (t.snd_nxt - t.snd_una));
     reg "rto" "ns" (fun () -> float_of_int (Time.to_ns (current_rto t)));
     reg "srtt" "ns" (fun () ->
         match Rtt_estimator.srtt t.rtt with
         | Some s -> float_of_int (Time.to_ns s)
         | None -> 0.);
     reg "bytes_acked" "bytes" (fun () -> float_of_int t.snd_una)
   | None -> ());
  t

let set_cc t factory = t.cc <- factory (window t)

let cancel_rto t =
  match t.rto_timer with
  | Some tm -> Scheduler.Timer.cancel tm
  | None -> ()

let rto_pending t =
  match t.rto_timer with
  | Some tm -> Scheduler.Timer.is_pending tm
  | None -> false

let emit_segment t seg =
  t.st.segments_sent <- t.st.segments_sent + 1;
  t.st.bytes_sent <- t.st.bytes_sent + seg.len;
  Host.send t.host
    (Packet.make ~ctx:(Scheduler.ctx t.sched) ~src:(Host.addr t.host)
       ~dst:t.peer ~conn:t.conn ~subflow:t.subflow ~src_port:(t.src_port ())
       ~dst_port:t.dst_port ~seq:seg.ssn ~ack_seq:0 ~len:seg.len
       ~bits:Packet.data_bits ~dsn:seg.dsn)

let send_syn t =
  t.st.syn_sent <- t.st.syn_sent + 1;
  Host.send t.host
    (Packet.make ~ctx:(Scheduler.ctx t.sched) ~src:(Host.addr t.host)
       ~dst:t.peer ~conn:t.conn ~subflow:t.subflow ~src_port:(t.src_port ())
       ~dst_port:t.dst_port ~seq:0 ~ack_seq:0 ~len:0 ~bits:Packet.syn_bits
       ~dsn:(-1))

let first_congestion t =
  if not t.congestion_seen then begin
    t.congestion_seen <- true;
    t.on_first_congestion ()
  end

let retransmit_front t =
  match Queue.peek_opt t.segs with
  | None -> ()
  | Some seg ->
    seg.rtx <- seg.rtx + 1;
    seg.sent_at <- Scheduler.now t.sched;
    t.st.segments_rtx <- t.st.segments_rtx + 1;
    emit_segment t seg

(* Mark segments covered by the ACK's SACK blocks, read straight off
   the packet's scratch array (nothing allocated here). *)
let process_sack t (pkt : Packet.t) =
  let nblocks = pkt.Packet.sack_count in
  if t.params.Tcp_params.sack && nblocks > 0 then begin
    let blocks = pkt.Packet.sack in
    Queue.iter
      (fun seg ->
        if not seg.sacked then begin
          let covered = ref false in
          for i = 0 to nblocks - 1 do
            if
              blocks.(2 * i) <= seg.ssn
              && seg.ssn + seg.len <= blocks.((2 * i) + 1)
            then covered := true
          done;
          if !covered then begin
            seg.sacked <- true;
            t.sacked_bytes <- t.sacked_bytes + seg.len
          end
        end)
      t.segs
  end

(* Retransmit the earliest hole (unSACKed, un-retransmitted this
   recovery, below the recovery point). *)
let retransmit_next_hole t =
  let exception Done in
  try
    Queue.iter
      (fun seg ->
        if (not seg.sacked) && (not seg.rtx_rec) && seg.ssn < t.recover_point
        then begin
          seg.rtx_rec <- true;
          seg.rtx <- seg.rtx + 1;
          seg.sent_at <- Scheduler.now t.sched;
          t.st.segments_rtx <- t.st.segments_rtx + 1;
          emit_segment t seg;
          raise Done
        end)
      t.segs
  with Done -> ()

let clear_recovery_marks t =
  Queue.iter (fun seg -> seg.rtx_rec <- false) t.segs

let clear_sack_marks t =
  Queue.iter (fun seg -> seg.sacked <- false) t.segs;
  t.sacked_bytes <- 0

let rec arm_rto t =
  let tm =
    match t.rto_timer with
    | Some tm -> tm
    | None ->
      let tm = Scheduler.Timer.create t.sched on_rto t in
      t.rto_timer <- Some tm;
      tm
  in
  Scheduler.Timer.schedule_after tm (current_rto t)

and on_rto t =
  match t.state with
  | Syn_sent ->
    t.syn_retries <- t.syn_retries + 1;
    if t.syn_retries > t.params.Tcp_params.max_syn_retries then t.state <- Failed
    else begin
      t.backoff <- t.backoff + 1;
      send_syn t;
      arm_rto t
    end
  | Established when flight t > 0 ->
    t.st.rto_events <- t.st.rto_events + 1;
    Sim_obs.Flow_ledger.on_rto t.ledger ~conn:t.conn;
    (match t.m with
     | Some m ->
       Sim_obs.Metrics.emit m ~kind:"rto_fired" ~conn:t.conn
         ~subflow:t.subflow
         ~info:[ ("backoff", string_of_int t.backoff) ]
         ()
     | None -> ());
    first_congestion t;
    t.cc.Cong.on_loss Cong.Timeout;
    t.dup_acks <- 0;
    t.recovery <- Rto_recovery;
    t.recover_point <- t.snd_nxt;
    t.backoff <- t.backoff + 1;
    clear_recovery_marks t;
    clear_sack_marks t;
    retransmit_front t;
    arm_rto t
  | Established | Closed | Failed -> ()

(* Allowed flight: the congestion window, plus one MSS per duplicate
   ACK while still below the fast-retransmit threshold (generalised
   limited transmit, RFC 3042): every dup ACK signals a departure, so
   the ACK clock keeps running through reordering runs. With the
   standard threshold of 3 this is plain limited transmit; with the
   scatter phase's topology-derived threshold it is what keeps a
   reordered single window from stalling. *)
let send_allowance t =
  match t.recovery with
  | Normal -> t.cwnd +. float_of_int (t.dup_acks * t.params.Tcp_params.mss)
  | Fast_recovery when t.params.Tcp_params.sack ->
    (* Pipe accounting: SACKed bytes have left the network. *)
    t.cwnd +. float_of_int t.sacked_bytes
  | Fast_recovery | Rto_recovery -> t.cwnd

let try_send t =
  if t.state = Established then begin
    let continue = ref true in
    while !continue do
      if float_of_int (flight t) >= send_allowance t then continue := false
      else
        match t.source.pull ~max:(mss t) with
        | None -> continue := false
        | Some (dsn, len) ->
          assert (len > 0 && len <= mss t);
          let seg =
            {
              ssn = t.snd_nxt;
              len;
              dsn;
              sent_at = Scheduler.now t.sched;
              rtx = 0;
              sacked = false;
              rtx_rec = false;
            }
          in
          Queue.push seg t.segs;
          t.snd_nxt <- t.snd_nxt + len;
          emit_segment t seg;
          if not (rto_pending t) then arm_rto t
    done
  end

let notify_source_ready t = try_send t

let connect t =
  if t.state <> Closed then invalid_arg "Tcp_tx.connect: already started";
  t.state <- Syn_sent;
  send_syn t;
  arm_rto t

let check_all_acked t =
  if
    (not t.all_acked_fired)
    && t.state = Established
    && (not (t.source.has_more ()))
    && t.snd_una = t.snd_nxt
  then begin
    t.all_acked_fired <- true;
    t.on_all_acked ()
  end

let enter_fast_recovery t =
  t.st.fast_rtx_events <- t.st.fast_rtx_events + 1;
  Sim_obs.Flow_ledger.on_fast_rtx t.ledger ~conn:t.conn;
  (match t.m with
   | Some m ->
     Sim_obs.Metrics.emit m ~kind:"fast_retransmit" ~conn:t.conn
       ~subflow:t.subflow
       ~info:[ ("dup_acks", string_of_int t.dup_acks) ]
       ()
   | None -> ());
  first_congestion t;
  t.cc.Cong.on_loss Cong.Fast_retransmit;
  t.cwnd <- t.cwnd +. (3. *. float_of_int (mss t));
  t.recover_point <- t.snd_nxt;
  t.recovery <- Fast_recovery;
  clear_recovery_marks t;
  if t.params.Tcp_params.sack then retransmit_next_hole t
  else retransmit_front t;
  t.backoff <- 0;
  arm_rto t

let handle_new_ack t a ~ece =
  let newly = a - t.snd_una in
  (* Pop fully acknowledged segments, keeping the freshest candidate
     RTT sample from a never-retransmitted segment (Karn). *)
  let sample = ref None in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.segs with
    | Some seg when seg.ssn + seg.len <= a ->
      ignore (Queue.pop t.segs);
      if seg.sacked then t.sacked_bytes <- t.sacked_bytes - seg.len;
      if seg.rtx = 0 then sample := Some seg.sent_at;
      t.on_dsn_acked ~dsn:seg.dsn ~len:seg.len
    | Some _ | None -> continue := false
  done;
  t.snd_una <- a;
  t.backoff <- 0;
  (match !sample with
   | Some sent_at ->
     let now = Scheduler.now t.sched in
     let rtt_sample = Time.diff now sent_at in
     Rtt_estimator.observe t.rtt rtt_sample;
     (match t.hist_rtt with
      | Some h ->
        Sim_stats.Histogram.add h
          (float_of_int (Time.to_ns rtt_sample) /. 1e3)
      | None -> ())
   | None -> ());
  (match t.recovery with
   | Fast_recovery ->
     if a >= t.recover_point then begin
       t.recovery <- Normal;
       t.cwnd <- Float.max t.ssthresh (float_of_int (mss t));
       t.dup_acks <- 0
     end
     else if t.params.Tcp_params.sack then retransmit_next_hole t
     else
       (* NewReno partial ACK: retransmit the next hole. The window
          stays at ssthresh + 3 MSS for the whole recovery (no
          inflation/deflation pair): under heavy loss the classic
          inflating variant degenerates into permanent 1-in-1-out
          conservation that pins the bottleneck queue full; holding
          the window lets the pipe drain and recovery terminate. *)
       retransmit_front t
   | Rto_recovery ->
     t.cc.Cong.on_ack ~acked:newly ~ece;
     if a >= t.recover_point then begin
       t.recovery <- Normal;
       t.dup_acks <- 0
     end
     else retransmit_front t
   | Normal ->
     t.dup_acks <- 0;
     t.cc.Cong.on_ack ~acked:newly ~ece);
  if flight t = 0 then cancel_rto t else arm_rto t;
  try_send t;
  check_all_acked t

let handle_dup_ack t =
  match t.recovery with
  | Fast_recovery when t.params.Tcp_params.sack ->
    (* SACK information identifies further holes: repair them and keep
       the pipe full under the cwnd + sacked allowance. *)
    retransmit_next_hole t;
    try_send t
  | Fast_recovery ->
    (* No window inflation (see the partial-ACK comment); new data
       flows again once enough of the pre-loss flight has drained. *)
    ()
  | Rto_recovery -> ()
  | Normal ->
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks >= t.dupack_threshold () then enter_fast_recovery t
    else try_send t

let handle t pkt =
  if Packet.syn pkt && Packet.ack pkt then begin
    (* SYN-ACK: establish (duplicates ignored). *)
    match t.state with
    | Syn_sent ->
      t.state <- Established;
      t.backoff <- 0;
      cancel_rto t;
      Sim_obs.Flow_ledger.on_handshake t.ledger ~conn:t.conn;
      t.on_established ();
      try_send t;
      (* A zero-length flow completes immediately. *)
      check_all_acked t
    | Closed | Established | Failed -> ()
  end
  else if Packet.ack pkt && t.state = Established then begin
    t.st.acks_received <- t.st.acks_received + 1;
    if Packet.dup_seen pkt then begin
      t.st.dsacks_received <- t.st.dsacks_received + 1;
      t.on_dsack ()
    end;
    process_sack t pkt;
    let a = pkt.Packet.ack_seq in
    if a > t.snd_una then handle_new_ack t a ~ece:(Packet.ece pkt)
    else if a = t.snd_una && flight t > 0 then handle_dup_ack t
  end

let state t = t.state
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let in_recovery t = t.recovery <> Normal
let srtt t = Rtt_estimator.srtt t.rtt
let rto t = current_rto t
let stats t = t.st
