module Time = Sim_engine.Sim_time

type t = {
  params : Tcp_params.t;
  mutable srtt_ns : float;
  mutable rttvar_ns : float;
  mutable samples : int;
}

let create ~params = { params; srtt_ns = 0.; rttvar_ns = 0.; samples = 0 }

let observe t sample =
  let r = float_of_int (Time.to_ns sample) in
  if t.samples = 0 then begin
    t.srtt_ns <- r;
    t.rttvar_ns <- r /. 2.
  end
  else begin
    t.rttvar_ns <- (0.75 *. t.rttvar_ns) +. (0.25 *. Float.abs (t.srtt_ns -. r));
    t.srtt_ns <- (0.875 *. t.srtt_ns) +. (0.125 *. r)
  end;
  t.samples <- t.samples + 1

let srtt t =
  if t.samples = 0 then None else Some (Time.of_ns (int_of_float t.srtt_ns))

let rttvar t =
  if t.samples = 0 then None else Some (Time.of_ns (int_of_float t.rttvar_ns))

let rto t =
  if t.samples = 0 then t.params.Tcp_params.initial_rto
  else begin
    let raw = t.srtt_ns +. Float.max 1.0 (4. *. t.rttvar_ns) in
    let raw_t = Time.of_ns (int_of_float raw) in
    Time.min t.params.Tcp_params.max_rto
      (Time.max t.params.Tcp_params.min_rto raw_t)
  end

let samples t = t.samples
