(** Pluggable congestion control.

    The sender exposes a {!window} view of its mutable state; a
    congestion-control algorithm is a record of callbacks over that
    view. This indirection is what lets MPTCP's Linked-Increase
    algorithm couple the windows of several subflows: the MPTCP
    connection builds one {!t} per subflow whose callbacks read every
    subflow's window. *)

type window = {
  get_cwnd : unit -> float;  (** congestion window, bytes *)
  set_cwnd : float -> unit;
  get_ssthresh : unit -> float;  (** slow-start threshold, bytes *)
  set_ssthresh : float -> unit;
  flight : unit -> int;  (** unacknowledged bytes *)
  mss : int;
  srtt : unit -> Sim_engine.Sim_time.t option;  (** smoothed RTT *)
}

type loss_kind = Fast_retransmit | Timeout

type t = {
  name : string;
  on_ack : acked:int -> ece:bool -> unit;
      (** Called for every ACK that advances the cumulative
          acknowledgement outside of loss recovery. [acked] is the
          number of newly acknowledged bytes; [ece] is the ECN echo
          flag (consumed by DCTCP, ignored by Reno/LIA). *)
  on_loss : loss_kind -> unit;
      (** Must set ssthresh and the post-loss cwnd. The sender applies
          NewReno window inflation/deflation mechanics on top. *)
  gauges : (string * (unit -> float)) list;
      (** Named introspection probes into the controller's internal
          state (e.g. DCTCP exposes ["alpha"]). The state itself lives
          in the controller's closures, so a controller — and
          everything it can leak — dies with its connection; nothing
          is registered globally. Empty for controllers with nothing
          to expose. *)
}

val gauge : t -> string -> float option
(** [gauge t key] reads probe [key], [None] if the controller does not
    expose it. *)

val reno_on_loss : window -> loss_kind -> unit
(** Standard multiplicative decrease: ssthresh = max(flight/2, 2*mss);
    cwnd = ssthresh after fast retransmit, 1 MSS after a timeout.
    Shared by Reno, DCTCP (timeout path) and LIA. *)

val slow_start_increase : window -> acked:int -> unit
(** cwnd += acked (uncapped byte counting): identical to classic
    per-ACK slow start when ACKs are not aggregated, and robust to the
    cumulative-ACK jumps that reordering produces. *)

val congestion_avoidance_increase : window -> acked:int -> unit
(** cwnd += mss*mss/cwnd per full-MSS ACK (byte-counted AIMD). *)
