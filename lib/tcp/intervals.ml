(* A sorted list of disjoint, non-adjacent [start, stop) ranges. The
   receive path keeps the prefix merged into the head range, so lists
   stay short (bounded by the number of concurrent reorder holes). *)

type t = { mutable spans : (int * int) list; mutable total : int }

let create () = { spans = []; total = 0 }

let total t = t.total

let add t ~start ~stop =
  if stop < start then invalid_arg "Intervals.add: stop < start";
  if stop = start then 0
  else begin
    (* Walk the list, accumulating ranges before the insertion point,
       merging every range that overlaps or touches [start, stop). *)
    let rec go acc s e covered = function
      | [] -> (List.rev ((s, e) :: acc), covered)
      | (rs, re) :: rest ->
        if re < s then go ((rs, re) :: acc) s e covered rest
        else if rs > e then (List.rev_append acc ((s, e) :: (rs, re) :: rest), covered)
        else begin
          (* Overlap or adjacency: merge, and count the overlap. *)
          let overlap = max 0 (min e re - max s rs) in
          go acc (min s rs) (max e re) (covered + overlap) rest
        end
    in
    let spans, covered = go [] start stop 0 t.spans in
    let added = stop - start - covered in
    t.spans <- spans;
    t.total <- t.total + added;
    added
  end

let contiguous_from t x =
  let rec find = function
    | [] -> x
    | (s, e) :: rest ->
      if s <= x && x < e then e
      else if s > x then x
      else find rest
  in
  find t.spans

let is_covered t ~start ~stop =
  if stop <= start then true
  else
    List.exists (fun (s, e) -> s <= start && stop <= e) t.spans

let spans t = t.spans
let span_count t = List.length t.spans

let fill_above t ~above ~max_blocks ~dst =
  let rec go i = function
    | [] -> i
    | (s, e) :: rest ->
      if i >= max_blocks then i
      else if s > above then begin
        dst.(2 * i) <- s;
        dst.((2 * i) + 1) <- e;
        go (i + 1) rest
      end
      else go i rest
  in
  go 0 t.spans
