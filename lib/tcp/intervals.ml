(* A sorted set of disjoint, non-adjacent [start, stop) ranges. The
   receive path keeps the prefix merged into the head range, so sets
   stay short (bounded by the number of concurrent reorder holes).

   The head range lives in two mutable int fields rather than at the
   front of the list: the overwhelmingly common add — an in-order
   segment extending the merged prefix — then mutates [hi] in place
   instead of rebuilding a cons + tuple per segment (the receive path
   does one add per data segment at subflow level and the multipath
   layer a second at data level, so this was a per-segment allocation,
   twice). [rest] holds the spans strictly after the head; the set is
   empty iff [hi <= lo], and [rest] is non-empty only when a head
   exists (the head is always the first span). *)

type t = {
  mutable lo : int;  (* head span [lo, hi); empty set iff hi <= lo *)
  mutable hi : int;
  mutable rest : (int * int) list;  (* spans after the head; sorted, disjoint, non-adjacent *)
  mutable total : int;
}

let create () = { lo = 0; hi = 0; rest = []; total = 0 }

let total t = t.total

let has_head t = t.hi > t.lo

let to_spans t = if has_head t then (t.lo, t.hi) :: t.rest else t.rest

let set_spans t = function
  | [] ->
    t.lo <- 0;
    t.hi <- 0;
    t.rest <- []
  | (s, e) :: rest ->
    t.lo <- s;
    t.hi <- e;
    t.rest <- rest

(* General insert: walk the spans, accumulating ranges before the
   insertion point, merging every range that overlaps or touches
   [start, stop). Only reached on out-of-order arrivals and
   hole-filling retransmissions. *)
let add_slow t ~start ~stop =
  let rec go acc s e covered = function
    | [] -> (List.rev ((s, e) :: acc), covered)
    | (rs, re) :: rest ->
      if re < s then go ((rs, re) :: acc) s e covered rest
      else if rs > e then (List.rev_append acc ((s, e) :: (rs, re) :: rest), covered)
      else begin
        (* Overlap or adjacency: merge, and count the overlap. *)
        let overlap = max 0 (min e re - max s rs) in
        go acc (min s rs) (max e re) (covered + overlap) rest
      end
  in
  let spans, covered = go [] start stop 0 (to_spans t) in
  let added = stop - start - covered in
  set_spans t spans;
  t.total <- t.total + added;
  added

let add t ~start ~stop =
  if stop < start then invalid_arg "Intervals.add: stop < start";
  if stop = start then 0
  else if not (has_head t) then begin
    (* First span: becomes the head. *)
    t.lo <- start;
    t.hi <- stop;
    t.total <- t.total + (stop - start);
    stop - start
  end
  else if t.lo <= start && start <= t.hi then
    (* Overlaps or touches the head. Extend it in place unless the new
       range reaches the next span (then the two must merge). *)
    if stop <= t.hi then 0
    else begin
      match t.rest with
      | (ns, _) :: _ when stop >= ns -> add_slow t ~start ~stop
      | _ ->
        let added = stop - t.hi in
        t.hi <- stop;
        t.total <- t.total + added;
        added
    end
  else add_slow t ~start ~stop

let contiguous_from t x =
  let rec find = function
    | [] -> x
    | (s, e) :: rest ->
      if s <= x && x < e then e
      else if s > x then x
      else find rest
  in
  if not (has_head t) || x < t.lo then x
  else if x < t.hi then t.hi (* non-adjacency: coverage stops at the head's end *)
  else find t.rest

let is_covered t ~start ~stop =
  if stop <= start then true
  else if has_head t && t.lo <= start && stop <= t.hi then true
  else List.exists (fun (s, e) -> s <= start && stop <= e) t.rest

let spans t = to_spans t
let span_count t = (if has_head t then 1 else 0) + List.length t.rest

let fill_above t ~above ~max_blocks ~dst =
  let rec go i = function
    | [] -> i
    | (s, e) :: rest ->
      if i >= max_blocks then i
      else if s > above then begin
        dst.(2 * i) <- s;
        dst.((2 * i) + 1) <- e;
        go (i + 1) rest
      end
      else go i rest
  in
  let i =
    if has_head t && max_blocks > 0 && t.lo > above then begin
      dst.(0) <- t.lo;
      dst.(1) <- t.hi;
      1
    end
    else 0
  in
  go i t.rest
