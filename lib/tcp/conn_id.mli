(** Per-simulation connection identifiers.

    Stand-in for full (addr, port) connection lookup at hosts: each
    transport connection gets an id carried in every packet, unique
    within its simulation. Ids are drawn from the simulation's
    {!Sim_engine.Sim_ctx.t}, so every run numbers its connections from
    1 regardless of what else runs in the process. *)

val fresh : Sim_engine.Sim_ctx.t -> int
