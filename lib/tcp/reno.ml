let make (w : Cong.window) =
  let on_ack ~acked ~ece:_ =
    if w.Cong.get_cwnd () < w.Cong.get_ssthresh () then
      Cong.slow_start_increase w ~acked
    else Cong.congestion_avoidance_increase w ~acked
  in
  { Cong.name = "reno"; on_ack; on_loss = Cong.reno_on_loss w; gauges = [] }
