module Cong = Sim_tcp.Cong

let recommended_marking_threshold = 17

(* The running alpha lives in a ref captured by the controller's
   closures and is exposed through the generic [Cong.gauges] probes —
   no process-global registry, so a controller's state dies with its
   connection and can never bleed into a later simulation. *)
let make ?(g = 1. /. 16.) (w : Cong.window) =
  let alpha = ref 0. in
  let bytes_acked = ref 0 in
  let bytes_marked = ref 0 in
  let window_target = ref 0. in
  let on_ack ~acked ~ece =
    bytes_acked := !bytes_acked + acked;
    if ece then bytes_marked := !bytes_marked + acked;
    (* Normal growth continues; DCTCP reduces proportionally to the
       marking fraction once per observation window (~one cwnd of
       ACKed bytes). *)
    if w.Cong.get_cwnd () < w.Cong.get_ssthresh () then
      Cong.slow_start_increase w ~acked
    else Cong.congestion_avoidance_increase w ~acked;
    if !window_target <= 0. then window_target := w.Cong.get_cwnd ();
    if float_of_int !bytes_acked >= !window_target then begin
      let f = float_of_int !bytes_marked /. float_of_int (max 1 !bytes_acked) in
      alpha := ((1. -. g) *. !alpha) +. (g *. f);
      if !bytes_marked > 0 then begin
        let cwnd = w.Cong.get_cwnd () in
        let reduced = cwnd *. (1. -. (!alpha /. 2.)) in
        w.Cong.set_cwnd (Float.max reduced (float_of_int w.Cong.mss));
        w.Cong.set_ssthresh (w.Cong.get_cwnd ())
      end;
      bytes_acked := 0;
      bytes_marked := 0;
      window_target := w.Cong.get_cwnd ()
    end
  in
  {
    Cong.name = "dctcp";
    on_ack;
    on_loss = Cong.reno_on_loss w;
    gauges = [ ("alpha", fun () -> !alpha) ];
  }

let alpha_of (cc : Cong.t) =
  if cc.Cong.name = "dctcp" then Cong.gauge cc "alpha" else None
