type dupack_strategy =
  | Static of int
  | Topology_aware
  | Adaptive of { initial : int; cap : int }

type switch_strategy =
  | Data_volume of int
  | Congestion_event
  | After_time of Sim_engine.Sim_time.t
  | Never

type t = {
  subflows : int;
  switch : switch_strategy;
  dupack : dupack_strategy;
}

let default =
  { subflows = 8; switch = Data_volume 100_000; dupack = Topology_aware }

type switch_plan = {
  switch_after_bytes : int option;
  switch_after_time : Sim_engine.Sim_time.t option;
  switch_on_congestion : bool;
}

let plan = function
  | Data_volume v ->
    {
      switch_after_bytes = Some v;
      switch_after_time = None;
      switch_on_congestion = false;
    }
  | Congestion_event ->
    {
      switch_after_bytes = None;
      switch_after_time = None;
      switch_on_congestion = true;
    }
  | After_time d ->
    {
      switch_after_bytes = None;
      switch_after_time = Some d;
      switch_on_congestion = false;
    }
  | Never ->
    {
      switch_after_bytes = None;
      switch_after_time = None;
      switch_on_congestion = false;
    }

let switch_to_string = function
  | Data_volume v -> Printf.sprintf "data-volume(%dB)" v
  | Congestion_event -> "congestion-event"
  | After_time d ->
    Printf.sprintf "after-time(%.1fms)" (Sim_engine.Sim_time.to_ms d)
  | Never -> "never"

let dupack_to_string = function
  | Static k -> Printf.sprintf "static(%d)" k
  | Topology_aware -> "topology-aware"
  | Adaptive { initial; cap } -> Printf.sprintf "adaptive(%d..%d)" initial cap

let pp ppf t =
  Format.fprintf ppf "subflows=%d switch=%s dupack=%s" t.subflows
    (switch_to_string t.switch)
    (dupack_to_string t.dupack)
