(** MMPTCP policy knobs (paper, Section 2).

    Two independent design choices are called out by the paper and
    ablated in this repository's benchmarks: how the packet-scatter
    phase protects itself against reordering-induced spurious fast
    retransmits, and when the connection switches to MPTCP mode. *)

(** How the packet-scatter sender sets its duplicate-ACK threshold. *)
type dupack_strategy =
  | Static of int
      (** Fixed threshold; [Static 3] is standard TCP and the "no
          protection" baseline. *)
  | Topology_aware
      (** Paper approach (1): derive the threshold from the number of
          equal-cost paths between the endpoints, computable from
          FatTree's addressing scheme. With [p] paths the threshold is
          [max 3 p]: a packet can be overtaken by at most one
          queue-full of packets per alternative path, so path count
          bounds plausible reorder depth. *)
  | Adaptive of { initial : int; cap : int }
      (** Paper approach (2), RR-TCP-style: start at [initial] and
          raise the threshold by one (up to [cap]) whenever a
          duplicate-data signal (DSACK stand-in) reveals a spurious
          retransmission. *)

(** When to leave the packet-scatter phase. *)
type switch_strategy =
  | Data_volume of int
      (** Paper strategy (1): switch after this many bytes have been
          handed to the scatter flow. Short flows below the threshold
          never switch. *)
  | Congestion_event
      (** Paper strategy (2): switch at the first fast retransmit or
          RTO on the scatter flow. *)
  | After_time of Sim_engine.Sim_time.t
      (** Deadline-based: switch once the scatter phase has run this
          long, whatever the byte count (driven by a re-armable
          {!Sim_engine.Scheduler.Timer}). Complements [Data_volume]
          when flow sizes are unknown a priori. *)
  | Never  (** Pure packet-scatter (the PS baseline from Raiciu et al.). *)

type t = {
  subflows : int;  (** MPTCP-phase subflows (paper uses 8) *)
  switch : switch_strategy;
  dupack : dupack_strategy;
}

val default : t
(** 8 subflows, [Data_volume 100_000] (just above the paper's 70 KB
    short flows), [Topology_aware]. *)

(** A [switch_strategy] decomposed into its orthogonal triggers, so
    code that acts on the triggers (the packet-level scatter source,
    the fluid two-phase rate model) shares one interpretation of the
    variants instead of duplicating the match. *)
type switch_plan = {
  switch_after_bytes : int option;
      (** switch once this many bytes are handed to the scatter phase *)
  switch_after_time : Sim_engine.Sim_time.t option;
      (** switch at this deadline after the connection starts *)
  switch_on_congestion : bool;
      (** switch at the first fast retransmit or RTO *)
}

val plan : switch_strategy -> switch_plan
(** [Never] yields a plan with no trigger set. *)

val pp : Format.formatter -> t -> unit
val switch_to_string : switch_strategy -> string
val dupack_to_string : dupack_strategy -> string
