module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Host = Sim_net.Host
module Packet = Sim_net.Packet
module Tcp_tx = Sim_tcp.Tcp_tx
module Tcp_rx = Sim_tcp.Tcp_rx
module Dataplane = Sim_mptcp.Dataplane
module Lia = Sim_mptcp.Lia

type phase = Packet_scatter | Multipath

type t = {
  conn : int;
  size : int;
  strategy : Strategy.t;
  splan : Strategy.switch_plan;
  params : Sim_tcp.Tcp_params.t;
  plane : Dataplane.t;
  sched : Scheduler.t;
  src : Host.t;
  dst : Host.t;
  rng : Rng.t;
  mutable phase : phase;
  mutable ps_tx : Tcp_tx.t option;
  mutable mp_txs : Tcp_tx.t array;
  rxs : Tcp_rx.t array;  (* index 0 = scatter, 1..subflows = multipath *)
  started_at : Time.t;
  mutable switched_at : Time.t option;
  group : Lia.group;
  mutable switch_timer : Scheduler.Timer.t option;  (* After_time deadline *)
  mutable dupack_threshold : int;
  dupack_cap : int;
  on_switch : t -> unit;
}

let scatter_tx t =
  match t.ps_tx with Some tx -> tx | None -> assert false

(* Phase switching: open the MPTCP subflows and starve the scatter
   flow of new data. Idempotent; a no-op once the transfer is complete
   (an After_time deadline can outlive a fast flow). *)
let rec trigger_switch t =
  if t.phase = Packet_scatter && not (Dataplane.is_complete t.plane) then begin
    t.phase <- Multipath;
    t.switched_at <- Some (Scheduler.now t.sched);
    Sim_obs.Flow_ledger.on_phase_switch
      (Sim_engine.Sim_ctx.ledger (Scheduler.ctx t.sched))
      ~conn:t.conn;
    Sim_obs.Metrics.emit
      (Sim_engine.Sim_ctx.metrics (Scheduler.ctx t.sched))
      ~kind:"phase_switch" ~conn:t.conn
      ~info:
        [
          ("to", "multipath");
          ("subflows", string_of_int t.strategy.Strategy.subflows);
          ("assigned", string_of_int (Dataplane.assigned t.plane));
        ]
      ();
    (match t.switch_timer with
    | Some tm -> Scheduler.Timer.cancel tm
    | None -> ());
    let mp_source =
      {
        Tcp_tx.pull = (fun ~max -> Dataplane.pull t.plane ~max);
        has_more = (fun () -> Dataplane.unassigned t.plane);
      }
    in
    t.mp_txs <-
      Array.init t.strategy.Strategy.subflows (fun j ->
          let i = j + 1 in
          let src_port = 30_000 + (t.conn * 131) + (i * 7) in
          Tcp_tx.create ~host:t.src ~peer:(Host.addr t.dst) ~conn:t.conn
            ~subflow:i ~params:t.params
            ~src_port:(fun () -> src_port)
            ~dst_port:5001 ~source:mp_source ~cc:(Lia.attach t.group) ());
    Array.iter Tcp_tx.connect t.mp_txs;
    t.on_switch t
  end

and ps_source t =
  {
    Tcp_tx.pull =
      (fun ~max ->
        match t.phase with
        | Multipath -> None
        | Packet_scatter -> (
          match t.splan.Strategy.switch_after_bytes with
          | Some v when Dataplane.assigned t.plane >= v ->
            trigger_switch t;
            None
          | Some _ | None -> Dataplane.pull t.plane ~max));
    has_more =
      (fun () ->
        t.phase = Packet_scatter
        &&
        match t.splan.Strategy.switch_after_bytes with
        | Some v ->
          Dataplane.assigned t.plane < v && Dataplane.unassigned t.plane
        | None -> Dataplane.unassigned t.plane);
  }

let initial_threshold strategy ~paths =
  match strategy with
  | Strategy.Static k -> max 1 k
  | Strategy.Topology_aware -> max 3 paths
  | Strategy.Adaptive { initial; _ } -> max 1 initial

let start ~src ~dst ~size ~rng ?(strategy = Strategy.default)
    ?(params = Sim_tcp.Tcp_params.default) ?(paths = 1)
    ?(on_complete = fun _ -> ()) ?(on_switch = fun _ -> ()) () =
  let sched = Host.sched src in
  let conn = Sim_tcp.Conn_id.fresh (Scheduler.ctx sched) in
  let subflows = strategy.Strategy.subflows in
  if subflows < 1 then invalid_arg "Mmptcp_conn.start: subflows must be >= 1";
  let dupack_cap =
    match strategy.Strategy.dupack with
    | Strategy.Adaptive { cap; _ } -> cap
    | Strategy.Static k -> max 1 k
    | Strategy.Topology_aware -> max 3 paths
  in
  let splan = Strategy.plan strategy.Strategy.switch in
  let rec t =
    lazy
      {
        conn;
        size;
        strategy;
        splan;
        params;
        plane =
          Dataplane.create ~sched ~size ~on_complete:(fun () ->
              let t = Lazy.force t in
              (* A still-armed After_time deadline must not outlive the
                 transfer: cancel releases the timer's wheel slot. *)
              (match t.switch_timer with
              | Some tm -> Scheduler.Timer.cancel tm
              | None -> ());
              Sim_obs.Flow_ledger.on_complete
                (Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched))
                ~conn;
              on_complete t);
        sched;
        src;
        dst;
        rng;
        phase = Packet_scatter;
        ps_tx = None;
        mp_txs = [||];
        rxs =
          Array.init (subflows + 1) (fun i ->
              Tcp_rx.create ~params ~host:dst ~peer:(Host.addr src) ~conn
                ~subflow:i
                ~on_data:(fun ~dsn ~len ->
                  Dataplane.deliver (Lazy.force t).plane ~dsn ~len)
                ());
        started_at = Scheduler.now sched;
        switched_at = None;
        group = Lia.make_group ();
        switch_timer = None;
        dupack_threshold = initial_threshold strategy.Strategy.dupack ~paths;
        dupack_cap;
        on_switch;
      }
  in
  let t = Lazy.force t in
  (let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched) in
   if Sim_obs.Metrics.want_conn m conn then begin
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"mmptcp"
         ~id:(Printf.sprintf "c%d" conn)
         ~name ~units read
     in
     reg "phase" "enum" (fun () ->
         match t.phase with Packet_scatter -> 0. | Multipath -> 1.);
     reg "subflows_active" "subflows" (fun () ->
         float_of_int
           ((match t.ps_tx with Some _ -> 1 | None -> 0)
           + Array.length t.mp_txs));
     reg "dupack_threshold" "acks" (fun () ->
         float_of_int t.dupack_threshold);
     reg "bytes_received" "bytes" (fun () ->
         float_of_int (Dataplane.received_bytes t.plane))
   end);
  (* Per-packet source-port randomisation: this is what makes ECMP
     scatter the flow, and it applies to retransmissions too — a
     retransmitted packet takes a fresh random path. *)
  let scatter_port () = 1024 + Rng.int t.rng 60_000 in
  let on_first_congestion () =
    if t.splan.Strategy.switch_on_congestion then trigger_switch t
  in
  let on_dsack () =
    match t.strategy.Strategy.dupack with
    | Strategy.Adaptive _ ->
      if t.dupack_threshold < t.dupack_cap then
        t.dupack_threshold <- t.dupack_threshold + 1
    | Strategy.Static _ | Strategy.Topology_aware -> ()
  in
  let ps_tx =
    Tcp_tx.create ~host:src ~peer:(Host.addr dst) ~conn ~subflow:0 ~params
      ~src_port:scatter_port ~dst_port:5001 ~source:(ps_source t)
      ~cc:Sim_tcp.Reno.make
      ~dupack_threshold:(fun () -> t.dupack_threshold)
      ~on_dsack ~on_first_congestion ()
  in
  t.ps_tx <- Some ps_tx;
  Host.bind src ~conn (fun pkt ->
      let i = pkt.Packet.subflow in
      if i = 0 then Tcp_tx.handle ps_tx pkt
      else if i >= 1 && i <= Array.length t.mp_txs then
        Tcp_tx.handle t.mp_txs.(i - 1) pkt);
  Host.bind dst ~conn (fun pkt ->
      let i = pkt.Packet.subflow in
      if i >= 0 && i < Array.length t.rxs then Tcp_rx.handle t.rxs.(i) pkt);
  if size = 0 then Dataplane.deliver t.plane ~dsn:0 ~len:0;
  (match splan.Strategy.switch_after_time with
  | Some deadline ->
    let tm = Scheduler.Timer.create sched trigger_switch t in
    t.switch_timer <- Some tm;
    Scheduler.Timer.schedule_after tm deadline
  | None -> ());
  Tcp_tx.connect ps_tx;
  t

let conn t = t.conn
let size t = t.size
let phase t = t.phase
let started_at t = t.started_at
let completed_at t = Dataplane.completed_at t.plane
let switched_at t = t.switched_at

let fct t =
  match completed_at t with
  | None -> None
  | Some c -> Some (Time.diff c t.started_at)

let is_complete t = Dataplane.is_complete t.plane
let bytes_received t = Dataplane.received_bytes t.plane

let all_txs t =
  match t.ps_tx with
  | None -> Array.to_list t.mp_txs
  | Some tx -> tx :: Array.to_list t.mp_txs

let sum_stats t f =
  List.fold_left (fun acc tx -> acc + f (Tcp_tx.stats tx)) 0 (all_txs t)

let rto_events t = sum_stats t (fun s -> s.Tcp_tx.rto_events)
let fast_rtx_events t = sum_stats t (fun s -> s.Tcp_tx.fast_rtx_events)

let spurious_rtx_signals t =
  (Tcp_tx.stats (scatter_tx t)).Tcp_tx.dsacks_received

let multipath_txs t = t.mp_txs
let current_dupack_threshold t = t.dupack_threshold

let total_cwnd t =
  List.fold_left (fun acc tx -> acc +. Tcp_tx.cwnd tx) 0. (all_txs t)
