(** Fluid flow-level model: flows as rate processes over shared link
    capacities ({!Sim_fluid.Engine}); analytic FCTs, no packets.
    Requires a topology with a static {!Sim_net.Topology.route_oracle}
    ([build] fails on valiant/multihomed routing). *)

type net = {
  topo : Sim_net.Topology.t;
  oracle : Sim_net.Topology.route_oracle;
  engine : Sim_fluid.Engine.t;
}

include Flow_model.BACKEND with type net := net

val transport_plan :
  Flow_model.config ->
  net ->
  rng:Sim_engine.Rng.t ->
  src:int ->
  dst:int ->
  assume_switched:bool ->
  Sim_fluid.Engine.leg_spec array * Sim_fluid.Engine.switch_spec option
(** Legs (and MMPTCP's optional scatter→multipath switch) for one
    transfer under [cfg.protocol]. [assume_switched] starts MMPTCP
    directly in its multipath phase — the hybrid model passes the
    packet stage's exit phase. Shared with {!Model_hybrid}. *)
