(* Fluid flow-level model: flows are rate processes over shared link
   capacities instead of packet exchanges. The packet topology is
   still built — the engine reads link capacities and delays off it,
   and the route oracle enumerates forward paths — but no packet ever
   enters a queue. Each flow costs O(log size) events end to end,
   which is what makes 10^5-flow FatTrees tractable (DESIGN.md §4k).

   Protocol mapping:
   - TCP / DCTCP: one leg, unit weight, on a random ECMP path. The
     fluid abstraction has no queues, so ECN-vs-loss differences
     vanish; both reduce to a fair-share rate process.
   - MPTCP: [subflows] legs on random ECMP paths. Coupled gets
     LIA-equilibrium weights (sum 1, biased to low-RTT legs,
     {!Sim_mptcp.Lia.fluid_weights}); uncoupled gets unit weight per
     leg, i.e. one fair share each.
   - MMPTCP: phase 1 spreads one aggregate share across min(paths, 8)
     scatter legs (weight 1/P each — packet scatter sprays a single
     window, it does not multiply aggressiveness); the engine swaps in
     LIA-weighted subflow legs when {!Mmptcp.Strategy.plan} says so. *)

module Time = Sim_engine.Sim_time
module Rng = Sim_engine.Rng
module Topology = Sim_net.Topology
module Link = Sim_net.Link
module Engine = Sim_fluid.Engine

type net = {
  topo : Topology.t;
  oracle : Topology.route_oracle;
  engine : Engine.t;
}

let build ~sched (cfg : Flow_model.config) =
  let topo = Flow_model.build_topology ~sched cfg.Flow_model.topo in
  let oracle =
    match topo.Topology.routes with
    | Some o -> o
    | None ->
      failwith
        (Printf.sprintf
           "flow model fluid/hybrid: topology %s routes packet by packet and \
            exposes no static path oracle; use --model packet"
           topo.Topology.name)
  in
  (* The engine indexes capacity by link id; builder ids are dense in
     creation order, so the links array is the id->capacity map. *)
  Array.iteri
    (fun i l -> if Link.id l <> i then invalid_arg "fluid: non-dense link ids")
    topo.Topology.links;
  let cap_bps = Array.map Link.rate_bps topo.Topology.links in
  let engine = Engine.make ~sched ~cap_bps ~params:cfg.Flow_model.params () in
  { topo; oracle; engine }

let host_count net = Topology.host_count net.topo
let name net = net.topo.Topology.name

(* One-way traversal time of [path] for a [bytes]-long frame:
   store-and-forward serialisation plus propagation at every hop. *)
let path_time net ~bytes path =
  Array.fold_left
    (fun acc li ->
      let l = net.topo.Topology.links.(li) in
      acc
      +. Time.to_sec (Link.delay l)
      +. (float_of_int (bytes * 8) /. Link.rate_bps l))
    0. path

let ack_bytes = 40

let rtt_s (cfg : Flow_model.config) net ~src ~dst ~choice =
  let rev_paths = max 1 (net.oracle.Topology.ro_paths ~src:dst ~dst:src) in
  let fwd = net.oracle.Topology.ro_path ~src ~dst ~choice in
  let rev =
    net.oracle.Topology.ro_path ~src:dst ~dst:src ~choice:(choice mod rev_paths)
  in
  let data = cfg.Flow_model.params.Sim_tcp.Tcp_params.mss + ack_bytes in
  path_time net ~bytes:data fwd +. path_time net ~bytes:ack_bytes rev

let leg cfg net ~src ~dst ~choice ~weight =
  {
    Engine.path = net.oracle.Topology.ro_path ~src ~dst ~choice;
    weight;
    rtt_s = rtt_s cfg net ~src ~dst ~choice;
  }

let scatter_cap = 8

(* Legs (and the optional scatter->multipath switch) for one transfer
   of [cfg.protocol] between [src] and [dst]. [assume_switched] makes
   MMPTCP start directly in its multipath phase — the hybrid model
   passes the packet stage's exit phase here. *)
let transport_plan (cfg : Flow_model.config) net ~rng ~src ~dst ~assume_switched
    =
  let paths = max 1 (net.oracle.Topology.ro_paths ~src ~dst) in
  let mptcp_legs ~subflows ~coupled =
    let choices = Array.init subflows (fun _ -> Rng.int rng paths) in
    let rtts =
      Array.map (fun choice -> rtt_s cfg net ~src ~dst ~choice) choices
    in
    let weights =
      if coupled then Sim_mptcp.Lia.fluid_weights ~rtts
      else Array.make subflows 1.
    in
    Array.init subflows (fun i ->
        {
          Engine.path = net.oracle.Topology.ro_path ~src ~dst ~choice:choices.(i);
          weight = weights.(i);
          rtt_s = rtts.(i);
        })
  in
  match cfg.Flow_model.protocol with
  | Flow_model.Tcp_proto | Flow_model.Dctcp_proto ->
    ([| leg cfg net ~src ~dst ~choice:(Rng.int rng paths) ~weight:1. |], None)
  | Flow_model.Mptcp_proto { subflows; coupled } ->
    (mptcp_legs ~subflows ~coupled, None)
  | Flow_model.Mmptcp_proto strategy ->
    let subflows = strategy.Mmptcp.Strategy.subflows in
    if assume_switched then (mptcp_legs ~subflows ~coupled:true, None)
    else begin
      let p = min paths scatter_cap in
      let w = 1. /. float_of_int p in
      let scatter =
        (* <= cap: one leg per path, the fluid image of spraying every
           packet; beyond the cap, sample. *)
        Array.init p (fun i ->
            let choice = if paths <= scatter_cap then i else Rng.int rng paths in
            leg cfg net ~src ~dst ~choice ~weight:w)
      in
      let plan = Mmptcp.Strategy.plan strategy.Mmptcp.Strategy.switch in
      match
        (plan.Mmptcp.Strategy.switch_after_bytes,
         plan.Mmptcp.Strategy.switch_after_time)
      with
      | None, None ->
        (* Never, or Congestion_event — loss has no fluid analogue. *)
        (scatter, None)
      | _ ->
        ( scatter,
          Some
            {
              Engine.sw_plan = plan;
              sw_legs = mptcp_legs ~subflows ~coupled:true;
            } )
    end

let live_of ~src_id ~dst_id ~size ~is_long ~start c =
  {
    Flow_model.l_conn = Engine.conn_id c;
    l_src = src_id;
    l_dst = dst_id;
    l_size = size;
    l_long = is_long;
    l_start = start;
    l_fct = (fun () -> Engine.conn_fct c);
    l_rtos = (fun () -> 0);
    l_frtx = (fun () -> 0);
    l_bytes = (fun () -> Engine.conn_bytes c);
  }

let start_flow (cfg : Flow_model.config) net ~rng ~src_id ~dst_id ~size
    ~is_long =
  let start = Sim_engine.Scheduler.now net.topo.Topology.sched in
  let legs, switch =
    transport_plan cfg net ~rng ~src:src_id ~dst:dst_id ~assume_switched:false
  in
  let c =
    Engine.start net.engine ?switch ~legs ~size ~on_complete:(fun _ -> ()) ()
  in
  live_of ~src_id ~dst_id ~size ~is_long ~start c

let net_stats net =
  Engine.finalize net.engine;
  let layer_util layer =
    match Topology.layer_links net.topo layer with
    | [] -> 0.
    | ls ->
      List.fold_left
        (fun acc l ->
          acc +. Engine.link_utilisation net.engine ~link:(Link.id l))
        0. ls
      /. float_of_int (List.length ls)
  in
  {
    (* No queues, no drops: fluid loss is identically zero. *)
    Flow_model.ns_core_loss = 0.;
    ns_agg_loss = 0.;
    ns_core_utilisation = layer_util Sim_net.Layer.Core_layer;
  }
