(** Packet-level flow model (reference fidelity): the full
    TCP / DCTCP / MPTCP / MMPTCP stacks over queues and switches. *)

include Flow_model.BACKEND with type net = Sim_net.Topology.t

val start_flow_ext :
  Flow_model.config ->
  net ->
  rng:Sim_engine.Rng.t ->
  src_id:int ->
  dst_id:int ->
  size:int ->
  is_long:bool ->
  on_complete:(switched:bool -> unit) ->
  Flow_model.live
(** [start_flow] plus a completion hook — the hybrid model's handoff
    point. [switched] reports whether an MMPTCP connection finished in
    its multipath phase (always [false] for the other protocols), so
    the fluid continuation can resume in the matching phase. *)
