module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

(* The flow-mechanics types live in {!Flow_model}; re-exported here by
   equation so experiment code keeps writing [Scenario.Tcp_proto] and
   [{ default_config with ... }] unchanged. *)

type model = Flow_model.kind =
  | Packet
  | Fluid
  | Hybrid of { handoff_bytes : int }

type protocol = Flow_model.protocol =
  | Tcp_proto
  | Dctcp_proto
  | Mptcp_proto of { subflows : int; coupled : bool }
  | Mmptcp_proto of Mmptcp.Strategy.t

type topology_kind = Flow_model.topology_kind =
  | Fattree_topo of Sim_net.Fattree.params
  | Multihomed_topo of Sim_net.Multihomed.params
  | Vl2_topo of Sim_net.Vl2.params
  | Dumbbell_topo of { pairs : int; bottleneck : Sim_net.Topology.link_spec }

type obs_cfg = Flow_model.obs_cfg = {
  probe_interval : Time.t option;
  probe_conns : int list option;
  trace_level : Sim_engine.Trace.level option;
  trace_components : string list option;
  ledger : bool;
}

let default_obs = Flow_model.default_obs

type config = Flow_model.config = {
  model : model;
  topo : topology_kind;
  protocol : protocol;
  seed : int;
  tm : Traffic_matrix.kind;
  long_fraction : float;
  long_size : int;
  short_size : int;
  short_flows : int;
  short_rate : float;
  horizon : Time.t;
  params : Sim_tcp.Tcp_params.t;
  obs : obs_cfg;
}

let paper_link_spec = Flow_model.paper_link_spec
let paper_fattree = Flow_model.paper_fattree
let default_config = Flow_model.default_config
let protocol_name = Flow_model.protocol_name
let model_name = Flow_model.kind_to_string

type flow_result = {
  id : int;
  src : int;
  dst : int;
  flow_size : int;
  is_long : bool;
  start : Time.t;
  fct : Time.t option;
  rtos : int;
  fast_rtxs : int;
  bytes_received : int;
}

type net_stats = Flow_model.net_stats = {
  ns_core_loss : float;
  ns_agg_loss : float;
  ns_core_utilisation : float;
}

type result = {
  config : config;
  shorts : flow_result array;
  longs : flow_result array;
  net : net_stats;
  events : int;
  duration : Time.t;
  obs : Sim_obs.Capture.t option;
  ledger : Sim_obs.Flow_ledger.dump option;
}

let backend : model -> (module Flow_model.BACKEND) = function
  | Packet -> (module Model_packet)
  | Fluid -> (module Model_fluid)
  | Hybrid _ -> (module Model_hybrid)

(* Payload of one pooled arrival event: which host fires, how much it
   sends. The destination is drawn from the traffic matrix at fire
   time (so it reflects matrix state in arrival order), exactly as the
   per-event closures this pool replaced did. *)
type arrival = { ar_host : int; ar_size : int; ar_long : bool }

let run ?(progress = fun _ -> ()) (cfg : config) =
  (* The scheduler owns all per-simulation state (clock, event heap,
     and the Sim_ctx identifier counters), so a run is self-contained:
     same [cfg] in, same result out, regardless of what else runs in
     this process — or concurrently on other domains. *)
  let (module B : Flow_model.BACKEND) = backend cfg.model in
  let sched = Scheduler.create () in
  let trace = Sim_engine.Sim_ctx.trace (Scheduler.ctx sched) in
  (match cfg.obs.trace_level with
   | Some _ as l -> Sim_engine.Trace.set_level trace l
   | None -> ());
  (match cfg.obs.trace_components with
   | Some _ as cs -> Sim_engine.Trace.set_components trace cs
   | None -> ());
  (* The probe must exist before the network: queue and engine gauges
     register at construction, and the registry is consulted only
     then. *)
  let probe =
    match cfg.obs.probe_interval with
    | Some interval ->
      let p =
        Sim_engine.Probe.create ?conns:cfg.obs.probe_conns sched ~interval
      in
      Sim_engine.Probe.start p;
      Some p
    | None -> None
  in
  let ledger = Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched) in
  if cfg.obs.ledger then
    Sim_obs.Flow_ledger.enable ledger ~clock_ns:(fun () ->
        Time.to_ns (Scheduler.now sched));
  let rng = Rng.create ~seed:cfg.seed in
  let net = B.build ~sched cfg in
  let n = B.host_count net in
  let tm = Traffic_matrix.create ~rng:(Rng.split rng) ~hosts:n cfg.tm in
  (* Role assignment: shuffle, take the first fraction as long hosts.
     Incast matrices constrain short senders to the fan-in set. *)
  let ids = Array.init n (fun i -> i) in
  Rng.shuffle rng ids;
  let long_count =
    int_of_float (Float.round (cfg.long_fraction *. float_of_int n))
  in
  let long_hosts = Array.sub ids 0 long_count in
  let short_hosts =
    match Traffic_matrix.incast_senders tm with
    | [] -> Array.sub ids long_count (n - long_count)
    | senders ->
      Array.of_list
        (List.filter (fun s -> not (Array.exists (( = ) s) long_hosts)) senders)
  in
  let lives = ref [] in
  let note l = lives := l :: !lives in
  let arrivals =
    Scheduler.Event.pool sched ~fire:(fun a ->
        let dst = Traffic_matrix.dest tm ~src:a.ar_host in
        let l =
          B.start_flow cfg net ~rng ~src_id:a.ar_host ~dst_id:dst
            ~size:a.ar_size ~is_long:a.ar_long
        in
        (* The arrival is the model-agnostic ledger anchor: it knows
           the flow's full size (the hybrid model's packet stage only
           sees its handoff slice) and runs before any transport event
           can fire. *)
        Sim_obs.Flow_ledger.on_start ledger ~conn:l.Flow_model.l_conn
          ~src:l.Flow_model.l_src ~dst:l.Flow_model.l_dst
          ~size:l.Flow_model.l_size ~long:l.Flow_model.l_long;
        note l)
  in
  (* Long background flows start near t=0 with a little jitter so their
     slow starts do not synchronise. *)
  Array.iter
    (fun h ->
      let jitter = Time.of_us (Rng.float rng 10_000.) in
      ignore
        (Scheduler.Event.schedule_after arrivals jitter
           { ar_host = h; ar_size = cfg.long_size; ar_long = true }))
    long_hosts;
  (* Short flows: Poisson process per short host; the global flow
     budget is spread evenly across hosts. *)
  let num_short = Array.length short_hosts in
  if cfg.short_flows > 0 && num_short = 0 then
    invalid_arg "Scenario.run: no short hosts available";
  if cfg.short_flows > 0 then begin
    let base = cfg.short_flows / num_short in
    let extra = cfg.short_flows mod num_short in
    Array.iteri
      (fun idx h ->
        let flows = base + (if idx < extra then 1 else 0) in
        let t = ref Time.zero in
        for _ = 1 to flows do
          let gap = Rng.exponential rng ~mean:(1. /. cfg.short_rate) in
          t := Time.add !t (Time.of_sec gap);
          ignore
            (Scheduler.Event.schedule_at arrivals !t
               { ar_host = h; ar_size = cfg.short_size; ar_long = false })
        done)
      short_hosts
  end;
  progress
    (Printf.sprintf "scenario: %s on %s, %d hosts (%d long, %d short senders)"
       (protocol_name cfg.protocol) (B.name net) n long_count num_short);
  Scheduler.run ~until:cfg.horizon sched;
  (* A --probe CONN list that matched nothing under this model would
     render perfectly empty per-connection artifacts; fail loudly with
     what the model actually built instead. *)
  (match (probe, cfg.obs.probe_conns) with
  | Some _, Some (_ :: _ as want) ->
    let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched) in
    if not (Sim_obs.Metrics.conn_filter_matched m) then
      failwith
        (Printf.sprintf
           "--probe %s matched no connection under --model %s; components \
            this model registers: %s"
           (String.concat "," (List.map string_of_int want))
           (model_name cfg.model)
           (match Sim_obs.Metrics.components m with
           | [] -> "(none)"
           | cs -> String.concat ", " cs))
  | _ -> ());
  let collect (l : Flow_model.live) =
    (* Finalize the ledger's byte counters from the live handle — the
       transports count bytes in model-specific places; the handle is
       the one uniform view. *)
    Sim_obs.Flow_ledger.note_bytes ledger ~conn:l.Flow_model.l_conn
      (l.Flow_model.l_bytes ());
    {
      id = 0;
      src = l.Flow_model.l_src;
      dst = l.l_dst;
      flow_size = l.l_size;
      is_long = l.l_long;
      start = l.l_start;
      fct = l.l_fct ();
      rtos = l.l_rtos ();
      fast_rtxs = l.l_frtx ();
      bytes_received = l.l_bytes ();
    }
  in
  let all = List.rev_map collect !lives in
  let by_start a b = Time.compare a.start b.start in
  let shorts =
    List.filter (fun f -> not f.is_long) all |> List.sort by_start
    |> List.mapi (fun i f -> { f with id = i })
    |> Array.of_list
  in
  let longs =
    List.filter (fun f -> f.is_long) all |> List.sort by_start
    |> List.mapi (fun i f -> { f with id = i })
    |> Array.of_list
  in
  {
    config = cfg;
    shorts;
    longs;
    net = B.net_stats net;
    events = Scheduler.events_processed sched;
    duration = Scheduler.now sched;
    obs = Option.map Sim_engine.Probe.capture probe;
    ledger =
      (if cfg.obs.ledger then Some (Sim_obs.Flow_ledger.dump ledger) else None);
  }

let short_fcts_ms r =
  Array.to_list r.shorts
  |> List.filter_map (fun f -> Option.map Time.to_ms f.fct)
  |> Array.of_list

let incomplete_shorts r =
  Array.fold_left (fun acc f -> if f.fct = None then acc + 1 else acc) 0 r.shorts

let shorts_with_rto r =
  Array.fold_left (fun acc f -> if f.rtos > 0 then acc + 1 else acc) 0 r.shorts

let long_goodput_mbps r =
  Array.map
    (fun f ->
      let active =
        match f.fct with
        | Some t -> Time.to_sec t
        | None -> Time.to_sec (Time.diff r.duration f.start)
      in
      if active <= 0. then 0.
      else float_of_int f.bytes_received *. 8. /. active /. 1e6)
    r.longs

let core_loss r = r.net.ns_core_loss
let agg_loss r = r.net.ns_agg_loss
let core_utilisation r = r.net.ns_core_utilisation
