module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Topology = Sim_net.Topology
module Host = Sim_net.Host

type protocol =
  | Tcp_proto
  | Dctcp_proto
  | Mptcp_proto of { subflows : int; coupled : bool }
  | Mmptcp_proto of Mmptcp.Strategy.t

type topology_kind =
  | Fattree_topo of Sim_net.Fattree.params
  | Multihomed_topo of Sim_net.Multihomed.params
  | Vl2_topo of Sim_net.Vl2.params
  | Dumbbell_topo of { pairs : int; bottleneck : Sim_net.Topology.link_spec }

type obs_cfg = {
  probe_interval : Time.t option;
  probe_conns : int list option;
  trace_level : Sim_engine.Trace.level option;
  trace_components : string list option;
}

let default_obs =
  {
    probe_interval = None;
    probe_conns = None;
    trace_level = None;
    trace_components = None;
  }

type config = {
  topo : topology_kind;
  protocol : protocol;
  seed : int;
  tm : Traffic_matrix.kind;
  long_fraction : float;
  long_size : int;
  short_size : int;
  short_flows : int;
  short_rate : float;
  horizon : Time.t;
  params : Sim_tcp.Tcp_params.t;
  obs : obs_cfg;
}

(* Link configuration for the paper experiments: 100 Mb/s with
   50-packet drop-tail queues. Shallower than ns-3's 100-packet
   default — at 100 Mb/s a full 100-packet queue adds 12 ms of skew,
   deeper than the shared-memory switches of the paper's era; 50
   packets keeps queueing delay in the regime where the paper's
   observed FCT distributions (most shorts < 100 ms) are achievable. *)
let paper_link_spec =
  { Sim_net.Topology.default_link_spec with queue_capacity = 50 }

let paper_fattree ?(k = 4) ?(oversub = 4) () =
  {
    (Sim_net.Fattree.default_params ~k ~oversub ()) with
    Sim_net.Fattree.host_spec = paper_link_spec;
    fabric_spec = paper_link_spec;
  }

let default_config =
  {
    topo = Fattree_topo (paper_fattree ());
    protocol = Mptcp_proto { subflows = 8; coupled = true };
    seed = 1;
    tm = Traffic_matrix.Permutation;
    long_fraction = 1. /. 3.;
    long_size = 1_000_000_000;
    short_size = 70_000;
    short_flows = 1_000;
    short_rate = 25.;
    horizon = Time.of_sec 20.;
    params = Sim_tcp.Tcp_params.default;
    obs = default_obs;
  }

let protocol_name = function
  | Tcp_proto -> "tcp"
  | Dctcp_proto -> "dctcp"
  | Mptcp_proto { subflows; coupled } ->
    Printf.sprintf "mptcp-%d%s" subflows (if coupled then "" else "-uncoupled")
  | Mmptcp_proto s ->
    Printf.sprintf "mmptcp-%d[%s]" s.Mmptcp.Strategy.subflows
      (Mmptcp.Strategy.switch_to_string s.Mmptcp.Strategy.switch)

type flow_result = {
  id : int;
  src : int;
  dst : int;
  flow_size : int;
  is_long : bool;
  start : Time.t;
  fct : Time.t option;
  rtos : int;
  fast_rtxs : int;
  bytes_received : int;
}

type net_stats = {
  ns_core_loss : float;
  ns_agg_loss : float;
  ns_core_utilisation : float;
}

type result = {
  config : config;
  shorts : flow_result array;
  longs : flow_result array;
  net : net_stats;
  events : int;
  duration : Time.t;
  obs : Sim_obs.Capture.t option;
}

(* A live flow: how to read its outcome after the run. *)
type live = {
  l_src : int;
  l_dst : int;
  l_size : int;
  l_long : bool;
  l_start : Time.t;
  l_fct : unit -> Time.t option;
  l_rtos : unit -> int;
  l_frtx : unit -> int;
  l_bytes : unit -> int;
}

let build_topology ~sched = function
  | Fattree_topo p -> Sim_net.Fattree.create ~sched p
  | Multihomed_topo p -> Sim_net.Multihomed.create ~sched p
  | Vl2_topo p -> Sim_net.Vl2.create ~sched p
  | Dumbbell_topo { pairs; bottleneck } ->
    Sim_net.Dumbbell.create ~sched ~bottleneck_spec:bottleneck ~pairs ()

let start_flow cfg ~net ~rng ~src_id ~dst_id ~size ~is_long =
  let sched = net.Topology.sched in
  let src = Topology.host net src_id and dst = Topology.host net dst_id in
  let start = Scheduler.now sched in
  match cfg.protocol with
  | Tcp_proto ->
    let f = Sim_tcp.Flow.start ~src ~dst ~size ~params:cfg.params () in
    {
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_tcp.Flow.fct f);
      l_rtos = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.rto_events);
      l_frtx = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.fast_rtx_events);
      l_bytes = (fun () -> Sim_tcp.Flow.bytes_received f);
    }
  | Dctcp_proto ->
    let f =
      Sim_tcp.Flow.start ~src ~dst ~size ~params:cfg.params
        ~cc:(fun w -> Sim_dctcp.Dctcp.make w)
        ()
    in
    {
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_tcp.Flow.fct f);
      l_rtos = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.rto_events);
      l_frtx = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.fast_rtx_events);
      l_bytes = (fun () -> Sim_tcp.Flow.bytes_received f);
    }
  | Mptcp_proto { subflows; coupled } ->
    let c =
      Sim_mptcp.Mptcp_conn.start ~src ~dst ~size ~subflows ~params:cfg.params
        ~coupled ()
    in
    {
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_mptcp.Mptcp_conn.fct c);
      l_rtos = (fun () -> Sim_mptcp.Mptcp_conn.rto_events c);
      l_frtx = (fun () -> Sim_mptcp.Mptcp_conn.fast_rtx_events c);
      l_bytes = (fun () -> Sim_mptcp.Mptcp_conn.bytes_received c);
    }
  | Mmptcp_proto strategy ->
    let paths =
      net.Topology.path_count (Host.addr src) (Host.addr dst)
    in
    let c =
      Mmptcp.Mmptcp_conn.start ~src ~dst ~size ~rng:(Rng.split rng) ~strategy
        ~params:cfg.params ~paths ()
    in
    {
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Mmptcp.Mmptcp_conn.fct c);
      l_rtos = (fun () -> Mmptcp.Mmptcp_conn.rto_events c);
      l_frtx = (fun () -> Mmptcp.Mmptcp_conn.fast_rtx_events c);
      l_bytes = (fun () -> Mmptcp.Mmptcp_conn.bytes_received c);
    }

let run ?(progress = fun _ -> ()) (cfg : config) =
  (* The scheduler owns all per-simulation state (clock, event heap,
     and the Sim_ctx identifier counters), so a run is self-contained:
     same [cfg] in, same result out, regardless of what else runs in
     this process — or concurrently on other domains. *)
  let sched = Scheduler.create () in
  let trace = Sim_engine.Sim_ctx.trace (Scheduler.ctx sched) in
  (match cfg.obs.trace_level with
   | Some _ as l -> Sim_engine.Trace.set_level trace l
   | None -> ());
  (match cfg.obs.trace_components with
   | Some _ as cs -> Sim_engine.Trace.set_components trace cs
   | None -> ());
  (* The probe must exist before the topology: queue gauges register at
     queue construction, and the registry is consulted only then. *)
  let probe =
    match cfg.obs.probe_interval with
    | Some interval ->
      let p =
        Sim_engine.Probe.create ?conns:cfg.obs.probe_conns sched ~interval
      in
      Sim_engine.Probe.start p;
      Some p
    | None -> None
  in
  let rng = Rng.create ~seed:cfg.seed in
  let net = build_topology ~sched cfg.topo in
  let n = Topology.host_count net in
  let tm = Traffic_matrix.create ~rng:(Rng.split rng) ~hosts:n cfg.tm in
  (* Role assignment: shuffle, take the first fraction as long hosts.
     Incast matrices constrain short senders to the fan-in set. *)
  let ids = Array.init n (fun i -> i) in
  Rng.shuffle rng ids;
  let long_count =
    int_of_float (Float.round (cfg.long_fraction *. float_of_int n))
  in
  let long_hosts = Array.sub ids 0 long_count in
  let short_hosts =
    match Traffic_matrix.incast_senders tm with
    | [] -> Array.sub ids long_count (n - long_count)
    | senders ->
      Array.of_list
        (List.filter (fun s -> not (Array.exists (( = ) s) long_hosts)) senders)
  in
  let lives = ref [] in
  let note l = lives := l :: !lives in
  (* Long background flows start near t=0 with a little jitter so their
     slow starts do not synchronise. *)
  Array.iter
    (fun h ->
      let jitter = Time.of_us (Rng.float rng 10_000.) in
      ignore
        (Scheduler.schedule_after sched jitter (fun () ->
             let dst = Traffic_matrix.dest tm ~src:h in
             note
               (start_flow cfg ~net ~rng ~src_id:h ~dst_id:dst
                  ~size:cfg.long_size ~is_long:true))))
    long_hosts;
  (* Short flows: Poisson process per short host; the global flow
     budget is spread evenly across hosts. *)
  let num_short = Array.length short_hosts in
  if cfg.short_flows > 0 && num_short = 0 then
    invalid_arg "Scenario.run: no short hosts available";
  if cfg.short_flows > 0 then begin
    let base = cfg.short_flows / num_short in
    let extra = cfg.short_flows mod num_short in
    Array.iteri
      (fun idx h ->
        let flows = base + (if idx < extra then 1 else 0) in
        let t = ref Time.zero in
        for _ = 1 to flows do
          let gap = Rng.exponential rng ~mean:(1. /. cfg.short_rate) in
          t := Time.add !t (Time.of_sec gap);
          ignore
            (Scheduler.schedule_at sched !t (fun () ->
                 let dst = Traffic_matrix.dest tm ~src:h in
                 note
                   (start_flow cfg ~net ~rng ~src_id:h ~dst_id:dst
                      ~size:cfg.short_size ~is_long:false)))
        done)
      short_hosts
  end;
  progress
    (Printf.sprintf "scenario: %s on %s, %d hosts (%d long, %d short senders)"
       (protocol_name cfg.protocol) net.Topology.name n long_count num_short);
  Scheduler.run ~until:cfg.horizon sched;
  let collect l =
    {
      id = 0;
      src = l.l_src;
      dst = l.l_dst;
      flow_size = l.l_size;
      is_long = l.l_long;
      start = l.l_start;
      fct = l.l_fct ();
      rtos = l.l_rtos ();
      fast_rtxs = l.l_frtx ();
      bytes_received = l.l_bytes ();
    }
  in
  let all = List.rev_map collect !lives in
  let by_start a b = Time.compare a.start b.start in
  let shorts =
    List.filter (fun f -> not f.is_long) all |> List.sort by_start
    |> List.mapi (fun i f -> { f with id = i })
    |> Array.of_list
  in
  let longs =
    List.filter (fun f -> f.is_long) all |> List.sort by_start
    |> List.mapi (fun i f -> { f with id = i })
    |> Array.of_list
  in
  {
    config = cfg;
    shorts;
    longs;
    net =
      {
        ns_core_loss = Topology.layer_loss_rate net Sim_net.Layer.Core_layer;
        ns_agg_loss = Topology.layer_loss_rate net Sim_net.Layer.Agg_layer;
        ns_core_utilisation =
          Topology.layer_utilisation net Sim_net.Layer.Core_layer;
      };
    events = Scheduler.events_processed sched;
    duration = Scheduler.now sched;
    obs = Option.map Sim_engine.Probe.capture probe;
  }

let short_fcts_ms r =
  Array.to_list r.shorts
  |> List.filter_map (fun f -> Option.map Time.to_ms f.fct)
  |> Array.of_list

let incomplete_shorts r =
  Array.fold_left (fun acc f -> if f.fct = None then acc + 1 else acc) 0 r.shorts

let shorts_with_rto r =
  Array.fold_left (fun acc f -> if f.rtos > 0 then acc + 1 else acc) 0 r.shorts

let long_goodput_mbps r =
  Array.map
    (fun f ->
      let active =
        match f.fct with
        | Some t -> Time.to_sec t
        | None -> Time.to_sec (Time.diff r.duration f.start)
      in
      if active <= 0. then 0.
      else float_of_int f.bytes_received *. 8. /. active /. 1e6)
    r.longs

let core_loss r = r.net.ns_core_loss
let agg_loss r = r.net.ns_agg_loss
let core_utilisation r = r.net.ns_core_utilisation
