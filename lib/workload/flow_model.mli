(** Flow-model abstraction: how a scenario turns an arrival into a
    simulated transfer.

    The scenario driver (roles, traffic matrix, Poisson arrivals,
    result collection) is model-agnostic; everything transport- and
    network-mechanics-specific sits behind {!BACKEND}:

    - {b packet} — the full packet-level stacks (TCP / DCTCP / MPTCP /
      MMPTCP over queues and switches). Reference fidelity.
    - {b fluid} — flows as rate processes over shared link capacities
      ({!Sim_fluid.Engine}); analytic FCTs, O(log size) events per
      flow. Orders of magnitude faster at large scale.
    - {b hybrid} — flows start packet-level and promote to fluid once
      they have carried [handoff_bytes]; the two engines share link
      capacity through residual coupling (see DESIGN.md §4k).

    All three models consume the same {!config} and produce the same
    {!live} handles, so experiments, sinks and probes work unchanged
    across models. *)

module Time = Sim_engine.Sim_time

(** Which engine serves the flows. *)
type kind =
  | Packet
  | Fluid
  | Hybrid of { handoff_bytes : int }
      (** packet until [handoff_bytes] delivered, fluid after *)

val default_handoff_bytes : int
(** 100 KB: paper-sized short flows (70 KB) stay fully packet-level,
    long flows promote shortly after slow-start. *)

val kind_to_string : kind -> string
(** ["packet"], ["fluid"], ["hybrid:BYTES"] — inverse of
    {!kind_of_string}. *)

val kind_of_string : string -> (kind, string) result
(** Accepts ["packet"], ["fluid"], ["hybrid"] (default handoff) and
    ["hybrid:BYTES"]. *)

val pp_kind : Format.formatter -> kind -> unit

type protocol =
  | Tcp_proto
  | Dctcp_proto  (** requires ECN-enabled link specs in the topology *)
  | Mptcp_proto of { subflows : int; coupled : bool }
  | Mmptcp_proto of Mmptcp.Strategy.t

type topology_kind =
  | Fattree_topo of Sim_net.Fattree.params
  | Multihomed_topo of Sim_net.Multihomed.params
  | Vl2_topo of Sim_net.Vl2.params
  | Dumbbell_topo of { pairs : int; bottleneck : Sim_net.Topology.link_spec }

(** Observability switches, all off by default. *)
type obs_cfg = {
  probe_interval : Time.t option;
  probe_conns : int list option;
  trace_level : Sim_engine.Trace.level option;
  trace_components : string list option;
  ledger : bool;  (** record per-flow lifecycles in the flow ledger *)
}

val default_obs : obs_cfg

type config = {
  model : kind;
  topo : topology_kind;
  protocol : protocol;
  seed : int;
  tm : Traffic_matrix.kind;
  long_fraction : float;
  long_size : int;
  short_size : int;
  short_flows : int;
  short_rate : float;
  horizon : Time.t;
  params : Sim_tcp.Tcp_params.t;
  obs : obs_cfg;
}

val paper_link_spec : Sim_net.Topology.link_spec
val paper_fattree : ?k:int -> ?oversub:int -> unit -> Sim_net.Fattree.params
val default_config : config
val protocol_name : protocol -> string

type net_stats = {
  ns_core_loss : float;
  ns_agg_loss : float;
  ns_core_utilisation : float;
}

(** A live flow: how to read its outcome after the run. The closures
    are model-specific; the fluid engine has no retransmissions, so
    its [l_rtos]/[l_frtx] are constant 0. *)
type live = {
  l_conn : int;  (** transport connection id (ledger key) *)
  l_src : int;
  l_dst : int;
  l_size : int;
  l_long : bool;
  l_start : Time.t;
  l_fct : unit -> Time.t option;
  l_rtos : unit -> int;
  l_frtx : unit -> int;
  l_bytes : unit -> int;
}

val build_topology :
  sched:Sim_engine.Scheduler.t -> topology_kind -> Sim_net.Topology.t

(** One flow model. [build] constructs whatever network state the
    model needs (always includes the packet topology — the fluid
    model reads capacities and delays off it); [start_flow] launches
    one transfer at the current virtual time and returns its outcome
    handle; [net_stats] is read once after the horizon. *)
module type BACKEND = sig
  type net

  val build : sched:Sim_engine.Scheduler.t -> config -> net
  val host_count : net -> int
  val name : net -> string

  val start_flow :
    config ->
    net ->
    rng:Sim_engine.Rng.t ->
    src_id:int ->
    dst_id:int ->
    size:int ->
    is_long:bool ->
    live

  val net_stats : net -> net_stats
end
