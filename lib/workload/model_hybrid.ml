(* Hybrid flow model: every flow starts on the packet stacks and, once
   it has carried [handoff_bytes], continues as a fluid rate process.
   Short flows (below the threshold) live and die packet-level —
   keeping the latency phenomena the paper studies (queueing, loss,
   RTO) at full fidelity — while the long background flows that
   dominate simulation cost promote to O(log size)-event fluid
   transfers shortly after slow-start.

   The two engines share link capacity through residual coupling,
   sampled on a periodic timer (2 ms virtual):
   - packet -> fluid: the allocator's per-link available capacity is
     the nominal rate minus an EWMA of measured packet throughput
     ({!Sim_fluid.Alloc.set_avail} via the engine);
   - fluid -> packet: each link's committed fluid allocation is
     mirrored into {!Sim_net.Link.set_reserved_bps}, stretching packet
     serialisation onto the residual rate.
   The sampler runs only while fluid connections exist; reservations
   are cleared when the last one drains, so a hybrid run with no
   promotions is packet-identical. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Link = Sim_net.Link
module Engine = Sim_fluid.Engine

type net = {
  fnet : Model_fluid.net;
  handoff : int;
  (* residual-coupling state, indexed by link id *)
  prev_tx : int array;  (* tx_bytes at the previous sample *)
  pkt_rate : float array;  (* EWMA packet throughput, bps *)
  avail_set : float array;  (* last value pushed into the allocator *)
  mutable sampler : Scheduler.Timer.t option;
}

let couple_interval_s = 2e-3
let couple_interval = Time.of_sec couple_interval_s
let ewma_alpha = 0.3

(* Only disturb the allocator when a link's residual moved by more
   than this fraction of capacity: set_avail dirties every member
   flow, and re-waterfilling the whole population every 2 ms would
   defeat the scoped-recomputation design. *)
let avail_quantum = 0.005

let rec build ~sched (cfg : Flow_model.config) =
  let fnet = Model_fluid.build ~sched cfg in
  let handoff =
    match cfg.Flow_model.model with
    | Flow_model.Hybrid { handoff_bytes } -> handoff_bytes
    | Flow_model.Packet | Flow_model.Fluid -> Flow_model.default_handoff_bytes
  in
  let nlinks = Array.length fnet.Model_fluid.topo.Topology.links in
  let net =
    {
      fnet;
      handoff;
      prev_tx = Array.make nlinks 0;
      pkt_rate = Array.make nlinks 0.;
      avail_set = Array.map Link.rate_bps fnet.Model_fluid.topo.Topology.links;
      sampler = None;
    }
  in
  net.sampler <- Some (Scheduler.Timer.create sched sample net);
  net

and sample net =
  let topo = net.fnet.Model_fluid.topo in
  let engine = net.fnet.Model_fluid.engine in
  let links = topo.Topology.links in
  for i = 0 to Array.length links - 1 do
    let l = links.(i) in
    let tx = (Link.stats l).Link.tx_bytes in
    let inst =
      float_of_int ((tx - net.prev_tx.(i)) * 8) /. couple_interval_s
    in
    net.prev_tx.(i) <- tx;
    net.pkt_rate.(i) <-
      (ewma_alpha *. inst) +. ((1. -. ewma_alpha) *. net.pkt_rate.(i));
    let cap = Link.rate_bps l in
    let avail = cap -. net.pkt_rate.(i) in
    if Float.abs (avail -. net.avail_set.(i)) > avail_quantum *. cap then begin
      Engine.set_link_avail engine ~link:i avail;
      net.avail_set.(i) <- avail
    end;
    Link.set_reserved_bps l (Engine.link_alloc_bps engine ~link:i)
  done;
  Engine.flush engine;
  if Engine.active engine > 0 then
    match net.sampler with
    | Some t -> Scheduler.Timer.schedule_after t couple_interval
    | None -> ()
  else
    (* Last fluid connection drained: stop sampling and hand the full
       link rates back to the packet engine. *)
    Array.iter (fun l -> Link.set_reserved_bps l 0.) links

let ensure_sampling net =
  match net.sampler with
  | Some t when not (Scheduler.Timer.is_pending t) ->
    Scheduler.Timer.schedule_after t couple_interval
  | _ -> ()

let host_count net = Model_fluid.host_count net.fnet
let name net = Model_fluid.name net.fnet

let start_flow (cfg : Flow_model.config) net ~rng ~src_id ~dst_id ~size
    ~is_long =
  let topo = net.fnet.Model_fluid.topo in
  let start = Scheduler.now topo.Topology.sched in
  if size <= net.handoff then
    (* Whole flow fits the packet stage: run it there, untouched. *)
    Model_packet.start_flow cfg topo ~rng ~src_id ~dst_id ~size ~is_long
  else begin
    let stage1 = net.handoff in
    let fluid = ref None in
    let ctx = Scheduler.ctx topo.Topology.sched in
    let ledger = Sim_engine.Sim_ctx.ledger ctx in
    (* Set once start_flow_ext returns, read when the packet stage
       completes (always after start: the stage transfers >= 1 byte). *)
    let pkt_conn = ref (-1) in
    let promote ~switched =
      let legs, switch =
        Model_fluid.transport_plan cfg net.fnet ~rng ~src:src_id ~dst:dst_id
          ~assume_switched:switched
      in
      let c =
        Engine.start net.fnet.Model_fluid.engine ~done_bytes:stage1
          ~slow_start:false ~handshake:false ?switch ~legs ~size:(size - stage1)
          ~on_complete:(fun _ -> ())
          ()
      in
      fluid := Some c;
      (* The fluid continuation's conn id becomes an alias of the
         packet-stage ledger record, so stage-2 events land on the one
         flow entry. [Engine.start ~handshake:false] runs [go_running]
         synchronously, but its handshake hook hits an unaliased conn
         and is dropped — the record keeps the packet-stage handshake
         timestamp, which is the real one. *)
      Sim_obs.Flow_ledger.on_promote ledger ~conn:!pkt_conn
        ~cont:(Engine.conn_id c);
      (let m = Sim_engine.Sim_ctx.metrics ctx in
       (* The info list would allocate before [emit]'s own guard. *)
       if Sim_obs.Metrics.active m then
         Sim_obs.Metrics.emit m ~kind:"promotion" ~conn:!pkt_conn
           ~info:
             [
               ("cont", string_of_int (Engine.conn_id c));
               ("done_bytes", string_of_int stage1);
               ("switched", string_of_bool switched);
             ]
           ());
      ensure_sampling net
    in
    let pl =
      Model_packet.start_flow_ext cfg topo ~rng ~src_id ~dst_id ~size:stage1
        ~is_long ~on_complete:(fun ~switched -> promote ~switched)
    in
    pkt_conn := pl.Flow_model.l_conn;
    {
      Flow_model.l_conn = pl.Flow_model.l_conn;
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct =
        (fun () ->
          match !fluid with
          | Some c ->
            Option.map (fun at -> Time.diff at start) (Engine.conn_completed c)
          | None -> None);
      l_rtos = pl.Flow_model.l_rtos;
      l_frtx = pl.Flow_model.l_frtx;
      l_bytes =
        (fun () ->
          pl.Flow_model.l_bytes ()
          + match !fluid with Some c -> Engine.conn_bytes c | None -> 0);
    }
  end

let net_stats net =
  let p = Model_packet.net_stats net.fnet.Model_fluid.topo in
  let f = Model_fluid.net_stats net.fnet in
  {
    p with
    (* Utilisation is additive: the packet side measures transmitter
       busy fraction (serialisation runs on the residual rate), the
       fluid side allocated fraction of nominal capacity. *)
    Flow_model.ns_core_utilisation =
      Float.min 1.
        (p.Flow_model.ns_core_utilisation +. f.Flow_model.ns_core_utilisation);
  }
