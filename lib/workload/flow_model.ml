module Time = Sim_engine.Sim_time

type kind =
  | Packet
  | Fluid
  | Hybrid of { handoff_bytes : int }

(* Paper-sized shorts (70 KB) stay fully packet-level; longs promote
   shortly after slow-start has filled their window. *)
let default_handoff_bytes = 100_000

let kind_to_string = function
  | Packet -> "packet"
  | Fluid -> "fluid"
  | Hybrid { handoff_bytes } -> Printf.sprintf "hybrid:%d" handoff_bytes

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "packet" -> Ok Packet
  | "fluid" -> Ok Fluid
  | "hybrid" -> Ok (Hybrid { handoff_bytes = default_handoff_bytes })
  | s when String.length s > 7 && String.sub s 0 7 = "hybrid:" -> (
    let arg = String.sub s 7 (String.length s - 7) in
    match int_of_string_opt arg with
    | Some b when b > 0 -> Ok (Hybrid { handoff_bytes = b })
    | _ -> Error (Printf.sprintf "invalid hybrid handoff %S (want bytes > 0)" arg))
  | _ ->
    Error
      (Printf.sprintf "unknown flow model %S (expected packet|fluid|hybrid[:BYTES])" s)

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

type protocol =
  | Tcp_proto
  | Dctcp_proto
  | Mptcp_proto of { subflows : int; coupled : bool }
  | Mmptcp_proto of Mmptcp.Strategy.t

type topology_kind =
  | Fattree_topo of Sim_net.Fattree.params
  | Multihomed_topo of Sim_net.Multihomed.params
  | Vl2_topo of Sim_net.Vl2.params
  | Dumbbell_topo of { pairs : int; bottleneck : Sim_net.Topology.link_spec }

type obs_cfg = {
  probe_interval : Time.t option;
  probe_conns : int list option;
  trace_level : Sim_engine.Trace.level option;
  trace_components : string list option;
  ledger : bool;
}

let default_obs =
  {
    probe_interval = None;
    probe_conns = None;
    trace_level = None;
    trace_components = None;
    ledger = false;
  }

type config = {
  model : kind;
  topo : topology_kind;
  protocol : protocol;
  seed : int;
  tm : Traffic_matrix.kind;
  long_fraction : float;
  long_size : int;
  short_size : int;
  short_flows : int;
  short_rate : float;
  horizon : Time.t;
  params : Sim_tcp.Tcp_params.t;
  obs : obs_cfg;
}

(* Link configuration for the paper experiments: 100 Mb/s with
   50-packet drop-tail queues. Shallower than ns-3's 100-packet
   default — at 100 Mb/s a full 100-packet queue adds 12 ms of skew,
   deeper than the shared-memory switches of the paper's era; 50
   packets keeps queueing delay in the regime where the paper's
   observed FCT distributions (most shorts < 100 ms) are achievable. *)
let paper_link_spec =
  { Sim_net.Topology.default_link_spec with queue_capacity = 50 }

let paper_fattree ?(k = 4) ?(oversub = 4) () =
  {
    (Sim_net.Fattree.default_params ~k ~oversub ()) with
    Sim_net.Fattree.host_spec = paper_link_spec;
    fabric_spec = paper_link_spec;
  }

let default_config =
  {
    model = Packet;
    topo = Fattree_topo (paper_fattree ());
    protocol = Mptcp_proto { subflows = 8; coupled = true };
    seed = 1;
    tm = Traffic_matrix.Permutation;
    long_fraction = 1. /. 3.;
    long_size = 1_000_000_000;
    short_size = 70_000;
    short_flows = 1_000;
    short_rate = 25.;
    horizon = Time.of_sec 20.;
    params = Sim_tcp.Tcp_params.default;
    obs = default_obs;
  }

let protocol_name = function
  | Tcp_proto -> "tcp"
  | Dctcp_proto -> "dctcp"
  | Mptcp_proto { subflows; coupled } ->
    Printf.sprintf "mptcp-%d%s" subflows (if coupled then "" else "-uncoupled")
  | Mmptcp_proto s ->
    Printf.sprintf "mmptcp-%d[%s]" s.Mmptcp.Strategy.subflows
      (Mmptcp.Strategy.switch_to_string s.Mmptcp.Strategy.switch)

type net_stats = {
  ns_core_loss : float;
  ns_agg_loss : float;
  ns_core_utilisation : float;
}

type live = {
  l_conn : int;
  l_src : int;
  l_dst : int;
  l_size : int;
  l_long : bool;
  l_start : Time.t;
  l_fct : unit -> Time.t option;
  l_rtos : unit -> int;
  l_frtx : unit -> int;
  l_bytes : unit -> int;
}

let build_topology ~sched = function
  | Fattree_topo p -> Sim_net.Fattree.create ~sched p
  | Multihomed_topo p -> Sim_net.Multihomed.create ~sched p
  | Vl2_topo p -> Sim_net.Vl2.create ~sched p
  | Dumbbell_topo { pairs; bottleneck } ->
    Sim_net.Dumbbell.create ~sched ~bottleneck_spec:bottleneck ~pairs ()

module type BACKEND = sig
  type net

  val build : sched:Sim_engine.Scheduler.t -> config -> net
  val host_count : net -> int
  val name : net -> string

  val start_flow :
    config ->
    net ->
    rng:Sim_engine.Rng.t ->
    src_id:int ->
    dst_id:int ->
    size:int ->
    is_long:bool ->
    live

  val net_stats : net -> net_stats
end
