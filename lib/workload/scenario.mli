(** Experiment driver: topology + roles + traffic + one transport.

    Reproduces the paper's Figure 1 setup: a fraction of hosts run
    long (background) flows; the rest emit fixed-size short flows
    scheduled by a Poisson process; everyone follows a traffic matrix;
    a single transport protocol serves the whole data centre.

    The driver is flow-model-agnostic: [config.model] selects the
    engine that serves the flows (packet stacks, fluid rate processes,
    or the hybrid handoff — see {!Flow_model}), and results carry the
    same shape for all three. *)

module Time = Sim_engine.Sim_time

type model = Flow_model.kind =
  | Packet  (** full packet-level stacks (reference fidelity) *)
  | Fluid  (** flows as rate processes, analytic FCTs *)
  | Hybrid of { handoff_bytes : int }
      (** packet until the threshold, fluid after *)

type protocol = Flow_model.protocol =
  | Tcp_proto
  | Dctcp_proto  (** requires ECN-enabled link specs in the topology *)
  | Mptcp_proto of { subflows : int; coupled : bool }
  | Mmptcp_proto of Mmptcp.Strategy.t

type topology_kind = Flow_model.topology_kind =
  | Fattree_topo of Sim_net.Fattree.params
  | Multihomed_topo of Sim_net.Multihomed.params
  | Vl2_topo of Sim_net.Vl2.params
  | Dumbbell_topo of { pairs : int; bottleneck : Sim_net.Topology.link_spec }

(** Observability switches, all off by default. Probing and tracing
    are read-only taps: they never change flow behaviour, only add
    sampler timer events to the schedule. *)
type obs_cfg = Flow_model.obs_cfg = {
  probe_interval : Time.t option;
      (** sample registered gauges every this much virtual time *)
  probe_conns : int list option;
      (** restrict connection-scoped instruments to these conn ids *)
  trace_level : Sim_engine.Trace.level option;
  trace_components : string list option;
      (** restrict trace output to these component tags *)
  ledger : bool;
      (** record every flow's lifecycle in the flow ledger
          ({!Sim_obs.Flow_ledger}); the dump lands in [result.ledger] *)
}

val default_obs : obs_cfg

type config = Flow_model.config = {
  model : model;  (** which engine serves the flows *)
  topo : topology_kind;
  protocol : protocol;
  seed : int;
  tm : Traffic_matrix.kind;
  long_fraction : float;  (** fraction of hosts running background flows *)
  long_size : int;  (** bytes; large enough never to finish *)
  short_size : int;  (** bytes per short flow (paper: 70 KB) *)
  short_flows : int;  (** total short flows to schedule *)
  short_rate : float;  (** Poisson arrival rate per short host, flows/s *)
  horizon : Time.t;  (** hard stop *)
  params : Sim_tcp.Tcp_params.t;
  obs : obs_cfg;
}

val paper_link_spec : Sim_net.Topology.link_spec
(** 100 Mb/s, 20 us delay, 50-packet drop-tail queues — the calibrated
    configuration all paper experiments run on. *)

val paper_fattree : ?k:int -> ?oversub:int -> unit -> Sim_net.Fattree.params
(** FatTree parameters using {!paper_link_spec} everywhere. *)

val default_config : config
(** k=4 oversub=4 FatTree on {!paper_link_spec}, packet model, MPTCP 8
    subflows, permutation TM, 1/3 long hosts, 70 KB shorts. *)

val protocol_name : protocol -> string

val model_name : model -> string
(** ["packet"], ["fluid"], ["hybrid:BYTES"]. *)

type flow_result = {
  id : int;  (** ordinal by start time within its class *)
  src : int;
  dst : int;
  flow_size : int;
  is_long : bool;
  start : Time.t;
  fct : Time.t option;  (** completion time, [None] if unfinished *)
  rtos : int;
  fast_rtxs : int;
  bytes_received : int;
}

type net_stats = Flow_model.net_stats = {
  ns_core_loss : float;
  ns_agg_loss : float;
  ns_core_utilisation : float;
}
(** Network-side aggregates, read off the topology before it is
    discarded. Precomputed (rather than keeping the topology handle in
    the result) so a [result] is pure data end to end — process-mode
    workers marshal results back to the coordinating process. *)

type result = {
  config : config;
  shorts : flow_result array;  (** sorted by start time *)
  longs : flow_result array;
  net : net_stats;
  events : int;
  duration : Time.t;  (** simulated time actually elapsed *)
  obs : Sim_obs.Capture.t option;
      (** probe capture, when [config.obs.probe_interval] was set *)
  ledger : Sim_obs.Flow_ledger.dump option;
      (** per-flow lifecycle records in arrival order, when
          [config.obs.ledger] was set — identical across flow models,
          job counts and exec modes *)
}

val run : ?progress:(string -> unit) -> config -> result
(** Raises [Failure] when [config.obs.probe_conns] names only
    connections that never existed under the selected model — the
    message lists the components the model actually registered. *)

(** {1 Result accessors} *)

val short_fcts_ms : result -> float array
(** FCTs of completed short flows, milliseconds, in start order. *)

val incomplete_shorts : result -> int
val shorts_with_rto : result -> int
val long_goodput_mbps : result -> float array
(** Per long flow: received bytes over its active time, Mb/s. *)

val core_loss : result -> float
val agg_loss : result -> float
val core_utilisation : result -> float
