(* Packet-level flow model: the full TCP/DCTCP/MPTCP/MMPTCP stacks
   over queues and switches. This is the reference-fidelity backend;
   the code is the scenario driver's original start_flow, unchanged,
   so packet-model runs remain byte-identical across the flow-model
   refactor. *)

module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Topology = Sim_net.Topology
module Host = Sim_net.Host

type net = Topology.t

let build ~sched (cfg : Flow_model.config) =
  Flow_model.build_topology ~sched cfg.Flow_model.topo

let host_count = Topology.host_count
let name (net : net) = net.Topology.name

(* [on_complete] additionally reports whether an MMPTCP connection had
   already switched to its multipath phase when it finished — the
   hybrid model resumes the fluid stage in the matching phase. *)
let start_flow_ext (cfg : Flow_model.config) (net : net) ~rng ~src_id ~dst_id
    ~size ~is_long ~on_complete =
  let sched = net.Topology.sched in
  let src = Topology.host net src_id and dst = Topology.host net dst_id in
  let start = Scheduler.now sched in
  match cfg.Flow_model.protocol with
  | Flow_model.Tcp_proto ->
    let f =
      Sim_tcp.Flow.start ~src ~dst ~size ~params:cfg.Flow_model.params
        ~on_complete:(fun _ -> on_complete ~switched:false)
        ()
    in
    {
      Flow_model.l_conn = Sim_tcp.Flow.conn f;
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_tcp.Flow.fct f);
      l_rtos = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.rto_events);
      l_frtx = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.fast_rtx_events);
      l_bytes = (fun () -> Sim_tcp.Flow.bytes_received f);
    }
  | Flow_model.Dctcp_proto ->
    let f =
      Sim_tcp.Flow.start ~src ~dst ~size ~params:cfg.Flow_model.params
        ~cc:(fun w -> Sim_dctcp.Dctcp.make w)
        ~on_complete:(fun _ -> on_complete ~switched:false)
        ()
    in
    {
      Flow_model.l_conn = Sim_tcp.Flow.conn f;
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_tcp.Flow.fct f);
      l_rtos = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.rto_events);
      l_frtx = (fun () -> (Sim_tcp.Tcp_tx.stats (Sim_tcp.Flow.tx f)).Sim_tcp.Tcp_tx.fast_rtx_events);
      l_bytes = (fun () -> Sim_tcp.Flow.bytes_received f);
    }
  | Flow_model.Mptcp_proto { subflows; coupled } ->
    let c =
      Sim_mptcp.Mptcp_conn.start ~src ~dst ~size ~subflows
        ~params:cfg.Flow_model.params ~coupled
        ~on_complete:(fun _ -> on_complete ~switched:false)
        ()
    in
    {
      Flow_model.l_conn = Sim_mptcp.Mptcp_conn.conn c;
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Sim_mptcp.Mptcp_conn.fct c);
      l_rtos = (fun () -> Sim_mptcp.Mptcp_conn.rto_events c);
      l_frtx = (fun () -> Sim_mptcp.Mptcp_conn.fast_rtx_events c);
      l_bytes = (fun () -> Sim_mptcp.Mptcp_conn.bytes_received c);
    }
  | Flow_model.Mmptcp_proto strategy ->
    let paths = net.Topology.path_count (Host.addr src) (Host.addr dst) in
    let c =
      Mmptcp.Mmptcp_conn.start ~src ~dst ~size ~rng:(Rng.split rng) ~strategy
        ~params:cfg.Flow_model.params ~paths
        ~on_complete:(fun c ->
          on_complete
            ~switched:(Mmptcp.Mmptcp_conn.phase c = Mmptcp.Mmptcp_conn.Multipath))
        ()
    in
    {
      Flow_model.l_conn = Mmptcp.Mmptcp_conn.conn c;
      l_src = src_id;
      l_dst = dst_id;
      l_size = size;
      l_long = is_long;
      l_start = start;
      l_fct = (fun () -> Mmptcp.Mmptcp_conn.fct c);
      l_rtos = (fun () -> Mmptcp.Mmptcp_conn.rto_events c);
      l_frtx = (fun () -> Mmptcp.Mmptcp_conn.fast_rtx_events c);
      l_bytes = (fun () -> Mmptcp.Mmptcp_conn.bytes_received c);
    }

let start_flow cfg net ~rng ~src_id ~dst_id ~size ~is_long =
  start_flow_ext cfg net ~rng ~src_id ~dst_id ~size ~is_long
    ~on_complete:(fun ~switched:_ -> ())

let net_stats (net : net) =
  {
    Flow_model.ns_core_loss =
      Topology.layer_loss_rate net Sim_net.Layer.Core_layer;
    ns_agg_loss = Topology.layer_loss_rate net Sim_net.Layer.Agg_layer;
    ns_core_utilisation =
      Topology.layer_utilisation net Sim_net.Layer.Core_layer;
  }
