(** Hybrid flow model: packet-level until [handoff_bytes] have been
    carried, fluid after, with bidirectional residual-capacity
    coupling between the engines (see DESIGN.md §4k). Flows at or
    below the threshold run purely packet-level. *)

include Flow_model.BACKEND
