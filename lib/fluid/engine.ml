(* Event-driven fluid transport engine.

   A connection is a small timer-driven state machine over the rate
   allocator instead of a packet exchange:

     Handshake --1 RTT--> Running --last byte sent--> Draining
                                        --RTT/2 tail--> Finished

   While Running, the connection owns one allocator flow per leg
   (subflow); the effective send rate is the aggregate allocation
   capped by a doubling slow-start window model (IW * mss / RTT,
   doubling each RTT until it reaches the allocated share — the
   regime that dominates short-flow FCT). Remaining bytes are
   integrated in closed form between rate changes, so the engine
   costs O(log(size)) timer events per flow: handshake, a few
   slow-start doublings, optional phase switch, completion, drain.

   Multipath: a connection carries several legs with allocator
   weights from {!Sim_mptcp.Lia.fluid_weights} (coupled) or unit
   weights (uncoupled). MMPTCP's two-phase shape reuses
   {!Mmptcp.Strategy.plan}: the scatter legs are swapped for the
   MPTCP legs when the byte or time trigger fires
   ([switch_on_congestion] has no fluid analogue — congestion is
   never a discrete event here — and behaves as [Never]).

   Everything hangs off [t]; per-run timers only (D001/D002/D008
   clean by construction). *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler

type leg_spec = { path : int array; weight : float; rtt_s : float }

type switch_spec = {
  sw_plan : Mmptcp.Strategy.switch_plan;
  sw_legs : leg_spec array;
}

type state = Handshake | Running | Draining | Finished

type conn = {
  c_id : int;
  c_t : t;
  c_size : int;  (* bytes this stage transfers *)
  c_rtt : float;  (* representative RTT: min over initial legs, s *)
  c_slow_start : bool;
  c_on_complete : conn -> unit;
  c_started : Time.t;
  mutable c_state : state;
  mutable c_leg_specs : leg_spec array;  (* pending until Running *)
  mutable c_legs : conn Alloc.flow array;
  mutable c_remaining : float;  (* bytes *)
  mutable c_done : float;  (* bytes, includes [done_bytes] offset *)
  mutable c_rate : float;  (* effective send rate, bytes/s *)
  mutable c_alloc_bps : float;  (* aggregate allocation, bits/s *)
  mutable c_last_t : float;  (* seconds of last integration *)
  mutable c_ss_cap : float;  (* slow-start rate cap, bytes/s *)
  mutable c_next_double : float;  (* absolute s; infinity when done *)
  mutable c_switch : switch_spec option;
  mutable c_switched : bool;
  mutable c_timer : Scheduler.Timer.t option;
  mutable c_completed : Time.t option;
}

and t = {
  sched : Scheduler.t;
  alloc : conn Alloc.t;
  metrics : Sim_obs.Metrics.t;  (* per-sim registry; emits are one branch when off *)
  ledger : Sim_obs.Flow_ledger.t;  (* per-sim flow ledger; same discipline *)
  mss : int;
  iw : int;
  flush_interval : float;  (* rate-rebalance quantum, seconds *)
  mutable flush_timer : Scheduler.Timer.t option;
  mutable active : int;
  mutable started : int;
  mutable completed : int;
  mutable switched : int;
}

let byte_tol = 1.0

let now_s t = Time.to_sec (Scheduler.now t.sched)

let aggregate_bps c =
  Array.fold_left (fun acc f -> acc +. Alloc.rate f) 0. c.c_legs

let effective_rate c = Float.min (c.c_alloc_bps /. 8.) c.c_ss_cap

let integrate c ~now =
  if now > c.c_last_t then begin
    (match c.c_state with
    | Running ->
      let sent = Float.min (c.c_rate *. (now -. c.c_last_t)) c.c_remaining in
      c.c_remaining <- c.c_remaining -. sent;
      c.c_done <- c.c_done +. sent
    | Handshake | Draining | Finished -> ());
    c.c_last_t <- now
  end

let the_timer c = match c.c_timer with Some tm -> tm | None -> assert false

(* Global rebalances are quantised: mutations mark the allocator
   dirty and this timer drains it every [flush_interval] of virtual
   time, so a burst of arrivals/departures pays for one ripple pass
   instead of one per event. A starting connection still gets an
   accurate initial rate from the local [Alloc.settle] pass; the
   quantum only delays redistribution among the incumbents, an error
   below the one-RTT adaptation lag the packet model has anyway. *)
let request_flush t =
  let tm = match t.flush_timer with Some tm -> tm | None -> assert false in
  if not (Scheduler.Timer.is_pending tm) then
    Scheduler.Timer.schedule_after tm (Time.of_sec t.flush_interval)

let on_flush_timer t =
  let dirty = Alloc.pending_dirty t.alloc in
  Alloc.flush t.alloc ~now:(now_s t);
  if dirty > 0 && Sim_obs.Metrics.active t.metrics then
    Sim_obs.Metrics.emit t.metrics ~kind:"fluid_rebalance"
      ~info:
        [
          ("dirty", string_of_int dirty);
          ("carried", string_of_int (Alloc.pending_dirty t.alloc));
        ]
      ();
  if Alloc.pending_dirty t.alloc > 0 then request_flush t

(* Arm the connection's timer at an absolute float-second deadline
   (clamped to now; +1 ns absorbs of_sec truncation so the fire lands
   at-or-after the analytic instant). *)
let arm_at c time_s =
  let target =
    Time.max
      (Time.add (Time.of_sec time_s) (Time.of_ns 1))
      (Scheduler.now c.c_t.sched)
  in
  Scheduler.Timer.schedule_at (the_timer c) target

let switch_bytes_trigger c =
  if c.c_switched then None
  else
    match c.c_switch with
    | Some { sw_plan = { Mmptcp.Strategy.switch_after_bytes = Some v; _ }; _ }
      ->
      Some (float_of_int v)
    | Some _ | None -> None

let switch_time_trigger c =
  if c.c_switched then None
  else
    match c.c_switch with
    | Some { sw_plan = { Mmptcp.Strategy.switch_after_time = Some d; _ }; _ } ->
      Some (Time.to_sec c.c_started +. Time.to_sec d)
    | Some _ | None -> None

let re_arm c ~now =
  match c.c_state with
  | Running ->
    let dl = ref infinity in
    if c.c_rate > 0. then
      dl := Float.min !dl (now +. (c.c_remaining /. c.c_rate));
    dl := Float.min !dl c.c_next_double;
    (match switch_bytes_trigger c with
    | Some v when c.c_rate > 0. && c.c_done < v ->
      dl := Float.min !dl (now +. ((v -. c.c_done) /. c.c_rate))
    | Some _ | None -> ());
    (match switch_time_trigger c with
    | Some at -> dl := Float.min !dl at
    | None -> ());
    if !dl < infinity then arm_at c !dl
    else Scheduler.Timer.cancel (the_timer c)
  | Handshake | Draining | Finished -> ()

let refresh_rate c ~now =
  integrate c ~now;
  c.c_alloc_bps <- aggregate_bps c;
  c.c_rate <- effective_rate c

let add_legs c specs =
  let t = c.c_t in
  c.c_legs <-
    Array.map
      (fun s -> Alloc.add t.alloc ~weight:s.weight ~path:s.path ~data:c)
      specs

let remove_legs c ~now =
  let t = c.c_t in
  Array.iter (fun f -> Alloc.remove t.alloc ~now f) c.c_legs;
  c.c_legs <- [||]

let emit_switch c =
  let t = c.c_t in
  Sim_obs.Metrics.emit
    (Sim_engine.Sim_ctx.metrics (Scheduler.ctx t.sched))
    ~kind:"phase_switch" ~conn:c.c_id
    ~info:
      [
        ("to", "multipath");
        ("model", "fluid");
        ("subflows", string_of_int (Array.length c.c_legs));
      ]
    ()

let do_switch c ~now =
  match c.c_switch with
  | None -> ()
  | Some { sw_legs; _ } ->
    c.c_switched <- true;
    c.c_switch <- None;
    c.c_t.switched <- c.c_t.switched + 1;
    Sim_obs.Flow_ledger.on_phase_switch c.c_t.ledger ~conn:c.c_id;
    remove_legs c ~now;
    c.c_leg_specs <- sw_legs;
    add_legs c sw_legs;
    emit_switch c;
    Alloc.settle c.c_t.alloc ~now c.c_legs;
    request_flush c.c_t;
    refresh_rate c ~now

let complete c =
  let t = c.c_t in
  c.c_state <- Finished;
  c.c_completed <- Some (Scheduler.now t.sched);
  Scheduler.Timer.cancel (the_timer c);
  t.active <- t.active - 1;
  t.completed <- t.completed + 1;
  Sim_obs.Flow_ledger.on_complete t.ledger ~conn:c.c_id;
  c.c_on_complete c

let enter_drain c ~now =
  remove_legs c ~now;
  c.c_state <- Draining;
  c.c_rate <- 0.;
  (* The freed capacity reaches the survivors at the next quantum. *)
  request_flush c.c_t;
  (* Tail: the last byte is in flight for half an RTT. *)
  arm_at c (now +. (c.c_rtt /. 2.))

let step c ~now =
  integrate c ~now;
  if c.c_remaining <= byte_tol then enter_drain c ~now
  else begin
    (match (switch_bytes_trigger c, switch_time_trigger c) with
    | Some v, _ when c.c_done +. 0.5 >= v -> do_switch c ~now
    | _, Some at when now +. 1e-12 >= at -> do_switch c ~now
    | _ -> ());
    if c.c_state = Running then begin
      while now +. 1e-12 >= c.c_next_double do
        c.c_ss_cap <- c.c_ss_cap *. 2.;
        if c.c_ss_cap >= c.c_alloc_bps /. 8. then begin
          c.c_ss_cap <- infinity;
          c.c_next_double <- infinity
        end
        else c.c_next_double <- c.c_next_double +. c.c_rtt
      done;
      c.c_rate <- effective_rate c;
      re_arm c ~now
    end
  end

let go_running c =
  let t = c.c_t in
  let now = now_s t in
  c.c_state <- Running;
  c.c_last_t <- now;
  Sim_obs.Flow_ledger.on_handshake t.ledger ~conn:c.c_id;
  add_legs c c.c_leg_specs;
  (if c.c_slow_start then begin
     c.c_ss_cap <- float_of_int (t.iw * t.mss) /. c.c_rtt;
     c.c_next_double <- now +. c.c_rtt
   end
   else begin
     c.c_ss_cap <- infinity;
     c.c_next_double <- infinity
   end);
  Alloc.settle t.alloc ~now c.c_legs;
  (* The info list would allocate before [emit]'s own guard ran. *)
  if Sim_obs.Metrics.active t.metrics then
    Sim_obs.Metrics.emit t.metrics ~kind:"fluid_settle" ~conn:c.c_id
      ~info:[ ("legs", string_of_int (Array.length c.c_legs)) ]
      ();
  request_flush t;
  refresh_rate c ~now;
  step c ~now

let on_timer c =
  let now = now_s c.c_t in
  match c.c_state with
  | Handshake -> go_running c
  | Running ->
    refresh_rate c ~now;
    step c ~now
  | Draining -> complete c
  | Finished -> ()

(* Allocator rate-change callback: re-integrate at the old rate, then
   adopt the new aggregate and move the deadlines. *)
let on_leg_rate flow =
  let c = Alloc.data flow in
  match c.c_state with
  | Running ->
    let now = now_s c.c_t in
    refresh_rate c ~now;
    re_arm c ~now
  | Handshake | Draining | Finished -> ()

let make ~sched ~cap_bps ?(params = Sim_tcp.Tcp_params.default)
    ?(flush_interval = 2e-3) () =
  let t =
    {
      sched;
      (* One relaxation wave per quantum: under churn the ripple
         re-dirties the population anyway, so extra waves per flush
         redo the same work; convergence continues next quantum. *)
      alloc = Alloc.create ~max_waves:1 ~caps:cap_bps ~on_rate:on_leg_rate ();
      metrics = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched);
      ledger = Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched);
      mss = params.Sim_tcp.Tcp_params.mss;
      iw = params.Sim_tcp.Tcp_params.initial_window;
      flush_interval;
      flush_timer = None;
      active = 0;
      started = 0;
      completed = 0;
      switched = 0;
    }
  in
  t.flush_timer <- Some (Scheduler.Timer.create sched on_flush_timer t);
  let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched) in
  (if Sim_obs.Metrics.active m then begin
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"fluid" ~id:"engine" ~name ~units
         read
     in
     reg "active_conns" "conns" (fun () -> float_of_int t.active);
     reg "conns_completed" "conns" (fun () -> float_of_int t.completed);
     reg "phase_switches" "conns" (fun () -> float_of_int t.switched);
     reg "rebalance_pending" "flows" (fun () ->
         float_of_int (Alloc.pending_dirty t.alloc));
     (* Allocator work counters: how hard the incremental max-min
        machinery is running (see Alloc's self-profiling section). *)
     reg "alloc_live_flows" "flows" (fun () ->
         float_of_int (Alloc.live_flows t.alloc));
     reg "alloc_flushes" "flushes" (fun () ->
         float_of_int (Alloc.flushes_run t.alloc));
     reg "alloc_waves" "waves" (fun () ->
         float_of_int (Alloc.waves_run t.alloc));
     reg "alloc_settles" "settles" (fun () ->
         float_of_int (Alloc.settles_run t.alloc));
     reg "alloc_heap_pops" "pops" (fun () ->
         float_of_int (Alloc.heap_pops t.alloc))
   end);
  t

let start t ?(done_bytes = 0) ?(slow_start = true) ?(handshake = true) ?switch
    ~legs ~size ~on_complete () =
  if Array.length legs = 0 then invalid_arg "Engine.start: no legs";
  let rtt =
    Array.fold_left (fun acc s -> Float.min acc s.rtt_s) infinity legs
  in
  if not (rtt > 0. && rtt < 1e3) then
    invalid_arg "Engine.start: leg rtt out of range";
  let conn_id = Sim_tcp.Conn_id.fresh (Scheduler.ctx t.sched) in
  let c =
    {
      c_id = conn_id;
      c_t = t;
      c_size = size;
      c_rtt = rtt;
      c_slow_start = slow_start;
      c_on_complete = on_complete;
      c_started = Scheduler.now t.sched;
      c_state = Handshake;
      c_leg_specs = legs;
      c_legs = [||];
      c_remaining = float_of_int size;
      c_done = float_of_int done_bytes;
      c_rate = 0.;
      c_alloc_bps = 0.;
      c_last_t = now_s t;
      c_ss_cap = infinity;
      c_next_double = infinity;
      c_switch = switch;
      c_switched = false;
      c_timer = None;
      c_completed = None;
    }
  in
  c.c_timer <- Some (Scheduler.Timer.create t.sched on_timer c);
  t.active <- t.active + 1;
  t.started <- t.started + 1;
  (let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx t.sched) in
   if Sim_obs.Metrics.want_conn m conn_id then begin
     let reg name units read =
       Sim_obs.Metrics.register m ~component:"fluid"
         ~id:(Printf.sprintf "c%d" conn_id)
         ~name ~units read
     in
     reg "rate_mbps" "Mb/s" (fun () -> c.c_rate *. 8. /. 1e6);
     reg "remaining_bytes" "bytes" (fun () -> c.c_remaining);
     reg "legs" "legs" (fun () -> float_of_int (Array.length c.c_legs))
   end);
  (* Legs join the allocator only at [go_running]; registering them
     during the handshake would let it consume bandwidth. *)
  if handshake then arm_at c (now_s t +. rtt) else go_running c;
  c

let flush t = Alloc.flush t.alloc ~now:(now_s t)
let set_link_avail t ~link bps = Alloc.set_avail t.alloc ~link bps
let link_alloc_bps t ~link = Alloc.link_alloc t.alloc ~link
let finalize t = Alloc.finalize t.alloc ~now:(now_s t)
let link_utilisation t ~link = Alloc.link_utilisation t.alloc ~link ~now:(now_s t)

let conn_id c = c.c_id
let conn_size c = c.c_size
let conn_started c = c.c_started
let conn_completed c = c.c_completed
let conn_is_complete c = c.c_state = Finished
let conn_switched c = c.c_switched

let conn_fct c =
  match c.c_completed with
  | None -> None
  | Some at -> Some (Time.diff at c.c_started)

let conn_bytes c =
  int_of_float (Float.max 0. (float_of_int c.c_size -. c.c_remaining))

let active t = t.active
let started t = t.started
let completed t = t.completed
let switched t = t.switched
