(* Incremental weighted max-min rate allocator over shared link
   capacities — the core of the fluid flow-level engine.

   Links are capacity buckets indexed by the topology's dense link
   ids; flows are weighted demands over a fixed path (an id array from
   the topology's route oracle). Rates are in bits per second.

   The allocation is progressive filling (water-filling): all unfrozen
   flows grow proportionally to their weight until some link
   saturates; flows crossing that link freeze at [weight * level];
   repeat. Run over the whole population this yields the weighted
   max-min fair allocation. To keep arrival/departure events cheap at
   10^5-flow scale the recomputation is *scoped*: a mutation dirties
   only the flows sharing a link with the mutated flow, and [flush]
   water-fills the dirty set against the remaining population frozen
   at its current rates. Second-order effects (a rate change freeing
   capacity a 2-hop neighbour could claim) propagate through the
   ripple pass: committing a materially-changed rate re-dirties the
   flow's link neighbours, which are processed in a later wave of the
   same flush (bounded by [max_waves]) or at the next flush. From an
   all-dirty start — every [add] dirties the new flow — one flush is
   exact weighted max-min, which is what the qcheck properties pin.

   Determinism: worklists are processed in deterministic queue order
   (no hashing anywhere), and the water-filling heap
   breaks level ties by link id, so allocation and callback order are
   pure functions of the mutation history. No wall clock, no ambient
   randomness, all state hangs off ['a t].

   Representation: per-link numeric state lives in parallel float
   arrays indexed by link id, and per-flow rate state in an all-float
   subrecord — both unboxed, so the water-filling inner loops do
   plain float stores. Mixed int/float records would box every float
   field and turn each residual update into an allocation plus write
   barrier, which dominated the profile at fat-tree scale. *)

(* All-float: stored flat, mutated in place without boxing. *)
type fstate = {
  mutable fs_weight : float;
  mutable fs_rate : float;  (* committed allocation, bps *)
  mutable fs_newrate : float;  (* water-filling scratch *)
}

type 'a flow = {
  f_data : 'a;
  f_st : fstate;
  f_path : int array;
  f_slots : int array;  (* index of this flow in each path link's members *)
  mutable f_dirty : bool;
  mutable f_dead : bool;
  (* water-filling scratch *)
  mutable f_wave : int;
  mutable f_stamp : int;
  mutable f_frozen : bool;
}

type 'a t = {
  on_rate : 'a flow -> unit;
  eps : float;  (* relative rate-change threshold for commit/callback *)
  max_waves : int;
  nlinks : int;
  (* per-link state, parallel arrays indexed by dense link id *)
  l_cap : float array;
  l_avail : float array;  (* capacity visible to the allocator *)
  l_alloc : float array;  (* sum of committed member rates *)
  l_dalloc : float array;  (* net alloc change this flush, ripple gate *)
  l_residual : float array;  (* water-filling scratch *)
  l_wsum : float array;  (* water-filling scratch *)
  l_busy : float array;  (* utilisation: integral of alloc, bit *)
  l_last : float array;  (* utilisation: last advance, seconds *)
  l_touched : bool array;
  l_members : 'a flow array array;
  l_n : int array;
  mutable stamp : int;  (* flush counter, ripple guard *)
  mutable wave : int;  (* wave counter, in-set membership *)
  (* dirty queue: append-only vector deduplicated by [f_dirty]; the
     wave/touched/changed vectors below are per-flush scratch. All
     reusable storage so steady-state flushes allocate next to
     nothing — at population-wide wave sizes list churn was a GC
     hotspot. *)
  mutable d_arr : 'a flow array;
  mutable d_n : int;
  mutable w_arr : 'a flow array;
  mutable w_n : int;
  mutable t_arr : int array;
  mutable t_n : int;
  mutable c_arr : 'a flow array;
  mutable c_n : int;
  (* water-filling scratch: min-heap of candidate bottleneck links
     keyed by (fill level, link id). Entries go stale as freezing
     raises levels; levels only rise within a wave, so a popped entry
     lagging the link's current level is re-pushed, never lost. *)
  mutable h_lvl : float array;
  mutable h_li : int array;
  mutable h_n : int;
  (* self-profiling counters (monotonic; read by the engine's fluid
     gauges — plain int stores, free enough to maintain unconditionally) *)
  mutable s_live : int;  (* constrained flows currently registered *)
  mutable s_flushes : int;
  mutable s_waves : int;
  mutable s_settles : int;
  mutable s_heap_pops : int;
}

(* A flow whose path is empty (src = dst degenerate case) is never
   constrained; it gets this rate and never enters water-filling. *)
let unconstrained_rate = 1e15

let create ?(eps = 1e-3) ?(max_waves = 3) ~caps ~on_rate () =
  Array.iter
    (fun cap ->
      if cap <= 0. then invalid_arg "Alloc.create: non-positive capacity")
    caps;
  let n = Array.length caps in
  {
    on_rate;
    eps;
    max_waves;
    nlinks = n;
    l_cap = Array.copy caps;
    l_avail = Array.copy caps;
    l_alloc = Array.make n 0.;
    l_dalloc = Array.make n 0.;
    l_residual = Array.make n 0.;
    l_wsum = Array.make n 0.;
    l_busy = Array.make n 0.;
    l_last = Array.make n 0.;
    l_touched = Array.make n false;
    l_members = Array.make n [||];
    l_n = Array.make n 0;
    stamp = 0;
    wave = 0;
    d_arr = [||];
    d_n = 0;
    w_arr = [||];
    w_n = 0;
    t_arr = Array.make 256 0;
    t_n = 0;
    c_arr = [||];
    c_n = 0;
    h_lvl = Array.make 256 0.;
    h_li = Array.make 256 0;
    h_n = 0;
    s_live = 0;
    s_flushes = 0;
    s_waves = 0;
    s_settles = 0;
    s_heap_pops = 0;
  }

let data f = f.f_data
let rate f = f.f_st.fs_rate
let weight f = f.f_st.fs_weight
let link_cap t ~link = t.l_cap.(link)
let link_avail t ~link = t.l_avail.(link)
let link_alloc t ~link = t.l_alloc.(link)
let link_count t = t.nlinks

let advance_integral t li ~now =
  if now > t.l_last.(li) then begin
    t.l_busy.(li) <- t.l_busy.(li) +. (t.l_alloc.(li) *. (now -. t.l_last.(li)));
    t.l_last.(li) <- now
  end

let finalize t ~now =
  for li = 0 to t.nlinks - 1 do
    advance_integral t li ~now
  done

let link_utilisation t ~link ~now =
  if now <= 0. then 0. else t.l_busy.(link) /. (t.l_cap.(link) *. now)

let mark_dirty t f =
  if (not f.f_dirty) && not f.f_dead then begin
    f.f_dirty <- true;
    if t.d_n = Array.length t.d_arr then begin
      let bigger = Array.make (max 16 (2 * t.d_n)) f in
      Array.blit t.d_arr 0 bigger 0 t.d_n;
      t.d_arr <- bigger
    end;
    t.d_arr.(t.d_n) <- f;
    t.d_n <- t.d_n + 1
  end

let mark_members_dirty t li =
  let members = t.l_members.(li) in
  for j = 0 to t.l_n.(li) - 1 do
    mark_dirty t members.(j)
  done

let push_member t li f =
  let n = t.l_n.(li) in
  if n = Array.length t.l_members.(li) then begin
    let bigger = Array.make (max 4 (2 * n)) f in
    Array.blit t.l_members.(li) 0 bigger 0 n;
    t.l_members.(li) <- bigger
  end;
  t.l_members.(li).(n) <- f;
  t.l_n.(li) <- n + 1;
  n

(* Swap-remove member at [slot]; the displaced flow's back-index for
   [link_idx] is patched by scanning its (short) path. *)
let remove_member t ~link_idx ~slot =
  let last = t.l_n.(link_idx) - 1 in
  if slot <> last then begin
    let moved = t.l_members.(link_idx).(last) in
    t.l_members.(link_idx).(slot) <- moved;
    let patched = ref false in
    Array.iteri
      (fun j li ->
        if (not !patched) && li = link_idx && moved.f_slots.(j) = last then begin
          moved.f_slots.(j) <- slot;
          patched := true
        end)
      moved.f_path
  end;
  t.l_n.(link_idx) <- last

let add t ~weight ~path ~data =
  if weight <= 0. then invalid_arg "Alloc.add: weight must be positive";
  let f =
    {
      f_data = data;
      f_st = { fs_weight = weight; fs_rate = 0.; fs_newrate = 0. };
      f_path = Array.copy path;
      f_slots = Array.make (Array.length path) 0;
      f_dirty = false;
      f_dead = false;
      f_wave = 0;
      f_stamp = 0;
      f_frozen = false;
    }
  in
  if Array.length f.f_path = 0 then f.f_st.fs_rate <- unconstrained_rate
  else begin
    t.s_live <- t.s_live + 1;
    Array.iteri
      (fun j li ->
        f.f_slots.(j) <- push_member t li f;
        mark_members_dirty t li)
      f.f_path;
    mark_dirty t f
  end;
  f

let remove t ~now f =
  if not f.f_dead then begin
    f.f_dead <- true;
    if Array.length f.f_path > 0 then t.s_live <- t.s_live - 1;
    Array.iteri
      (fun j li ->
        remove_member t ~link_idx:li ~slot:f.f_slots.(j);
        advance_integral t li ~now;
        t.l_alloc.(li) <- t.l_alloc.(li) -. f.f_st.fs_rate;
        mark_members_dirty t li)
      f.f_path;
    f.f_st.fs_rate <- 0.
  end

let set_weight t f w =
  if w <= 0. then invalid_arg "Alloc.set_weight: weight must be positive";
  if (not f.f_dead) && f.f_st.fs_weight <> w then begin
    f.f_st.fs_weight <- w;
    Array.iter (fun li -> mark_members_dirty t li) f.f_path;
    mark_dirty t f
  end

let set_avail t ~link bps =
  let v = Float.max 0. (Float.min bps t.l_cap.(link)) in
  if t.l_avail.(link) <> v then begin
    t.l_avail.(link) <- v;
    mark_members_dirty t link
  end

let tiny = 1e-9

(* The current fill level a link offers its unfrozen wave members;
   [infinity] once no unfrozen weight remains. *)
let link_level t li =
  if t.l_wsum.(li) > tiny then
    Float.max 0. t.l_residual.(li) /. t.l_wsum.(li)
  else infinity

let heap_less t i j =
  t.h_lvl.(i) < t.h_lvl.(j)
  || (t.h_lvl.(i) = t.h_lvl.(j) && t.h_li.(i) < t.h_li.(j))

let heap_swap t i j =
  let lvl = t.h_lvl.(i) and li = t.h_li.(i) in
  t.h_lvl.(i) <- t.h_lvl.(j);
  t.h_li.(i) <- t.h_li.(j);
  t.h_lvl.(j) <- lvl;
  t.h_li.(j) <- li

let heap_push t lvl li =
  if t.h_n = Array.length t.h_lvl then begin
    let n = 2 * t.h_n in
    let lvls = Array.make n 0. and lis = Array.make n 0 in
    Array.blit t.h_lvl 0 lvls 0 t.h_n;
    Array.blit t.h_li 0 lis 0 t.h_n;
    t.h_lvl <- lvls;
    t.h_li <- lis
  end;
  t.h_lvl.(t.h_n) <- lvl;
  t.h_li.(t.h_n) <- li;
  t.h_n <- t.h_n + 1;
  let i = ref (t.h_n - 1) in
  while !i > 0 && heap_less t !i ((!i - 1) / 2) do
    heap_swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* Pops the min entry into (h_lvl.(h_n), h_li.(h_n)) — read it right
   after the call; the slot is reused by the next push. *)
let heap_pop t =
  t.s_heap_pops <- t.s_heap_pops + 1;
  heap_swap t 0 (t.h_n - 1);
  t.h_n <- t.h_n - 1;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.h_n && heap_less t l !m then m := l;
    if r < t.h_n && heap_less t r !m then m := r;
    if !m = !i then continue := false
    else begin
      heap_swap t !i !m;
      i := !m
    end
  done

let touch_link t li =
  if not t.l_touched.(li) then begin
    t.l_touched.(li) <- true;
    if t.t_n = Array.length t.t_arr then begin
      let bigger = Array.make (2 * t.t_n) 0 in
      Array.blit t.t_arr 0 bigger 0 t.t_n;
      t.t_arr <- bigger
    end;
    t.t_arr.(t.t_n) <- li;
    t.t_n <- t.t_n + 1
  end

let push_changed t f =
  if t.c_n = Array.length t.c_arr then begin
    let bigger = Array.make (max 16 (2 * t.c_n)) f in
    Array.blit t.c_arr 0 bigger 0 t.c_n;
    t.c_arr <- bigger
  end;
  t.c_arr.(t.c_n) <- f;
  t.c_n <- t.c_n + 1

(* One wave: water-fill the [n]-prefix of [flows] (all alive) against
   the rest of the population frozen at its committed rates. Leaves
   the flows whose committed rate materially changed in [t.c_arr]
   (queue order).

   The progressive filling runs off the scratch heap: pop the lowest
   candidate level, discard it if stale (freezing only raises levels,
   so current < entry is impossible and current > entry means
   re-push), otherwise saturate that link — freeze its unfrozen wave
   members at [weight * level] and charge their paths. Neighbour
   levels rise as paths are charged; their old (lower) heap entries
   stay valid as lower bounds and are lazily re-pushed at pop time.
   Cost is O(freezes * path * log) instead of a full touched-link
   scan per freezing round, which is what made population-wide waves
   on big fat-trees quadratic in the link count. *)
let run_wave t ~now flows n =
  t.s_waves <- t.s_waves + 1;
  t.wave <- t.wave + 1;
  let wave = t.wave in
  for i = 0 to n - 1 do
    let f = flows.(i) in
    f.f_wave <- wave;
    f.f_stamp <- t.stamp;
    f.f_frozen <- false;
    f.f_st.fs_newrate <- f.f_st.fs_rate
  done;
  (* Collect touched links, set up residual capacity and unfrozen
     weight. Members outside the wave are reservations; rather than
     scanning every member array, start from the maintained committed
     sum: residual = avail - alloc + (wave members' own rates), which
     is O(path) per flow even when the wave is a small slice of a
     heavily-shared link. The heap's (level, id) keys are unique, so
     pop order — and with it the allocation — is independent of the
     order links enter here. *)
  t.t_n <- 0;
  for i = 0 to n - 1 do
    let f = flows.(i) in
    let path = f.f_path in
    for j = 0 to Array.length path - 1 do
      let li = path.(j) in
      if not t.l_touched.(li) then begin
        touch_link t li;
        t.l_residual.(li) <- t.l_avail.(li) -. t.l_alloc.(li);
        t.l_wsum.(li) <- 0.
      end;
      t.l_residual.(li) <- t.l_residual.(li) +. f.f_st.fs_rate;
      t.l_wsum.(li) <- t.l_wsum.(li) +. f.f_st.fs_weight
    done
  done;
  t.h_n <- 0;
  for i = 0 to t.t_n - 1 do
    let li = t.t_arr.(i) in
    t.l_residual.(li) <- Float.min t.l_residual.(li) t.l_avail.(li);
    let lvl = link_level t li in
    if lvl < infinity then heap_push t lvl li
  done;
  let unfrozen = ref n in
  while !unfrozen > 0 && t.h_n > 0 do
    heap_pop t;
    let elvl = t.h_lvl.(t.h_n) and li = t.h_li.(t.h_n) in
    let cur = link_level t li in
    if cur = infinity then ()  (* every wave member already frozen *)
    else if cur > (elvl *. (1. +. 1e-9)) +. tiny then heap_push t cur li
    else begin
      let lvl = cur in
      let members = t.l_members.(li) in
      for j = 0 to t.l_n.(li) - 1 do
        let f = members.(j) in
        if f.f_wave = wave && not f.f_frozen then begin
          f.f_frozen <- true;
          decr unfrozen;
          let nr = f.f_st.fs_weight *. lvl in
          f.f_st.fs_newrate <- nr;
          let path = f.f_path in
          for p = 0 to Array.length path - 1 do
            let li' = path.(p) in
            t.l_residual.(li') <- t.l_residual.(li') -. nr;
            t.l_wsum.(li') <- t.l_wsum.(li') -. f.f_st.fs_weight
          done
        end
      done
    end
  done;
  (* Numerical corner: weight sums cancelled to ~0 with flows still
     unfrozen. Freeze the stragglers at their per-path bottleneck
     share and stop. *)
  if !unfrozen > 0 then
    for i = 0 to n - 1 do
      let f = flows.(i) in
      if not f.f_frozen then begin
        let share = ref infinity in
        Array.iter
          (fun li ->
            share :=
              Float.min !share
                (Float.max 0. t.l_residual.(li)
                /. Float.max f.f_st.fs_weight tiny))
          f.f_path;
        f.f_st.fs_newrate <-
          (if !share = infinity then 0. else f.f_st.fs_weight *. !share);
        f.f_frozen <- true;
        decr unfrozen
      end
    done;
  for i = 0 to t.t_n - 1 do
    t.l_touched.(t.t_arr.(i)) <- false
  done;
  (* Commit: update link sums and report materially-changed rates. *)
  t.c_n <- 0;
  for i = 0 to n - 1 do
    let f = flows.(i) in
    let nr = f.f_st.fs_newrate and old = f.f_st.fs_rate in
    if Float.abs (nr -. old) > t.eps *. Float.max 1. (Float.max nr old)
    then begin
      let path = f.f_path in
      for p = 0 to Array.length path - 1 do
        let li = path.(p) in
        advance_integral t li ~now;
        t.l_alloc.(li) <- t.l_alloc.(li) -. old +. nr;
        t.l_dalloc.(li) <- t.l_dalloc.(li) -. old +. nr
      done;
      f.f_st.fs_rate <- nr;
      push_changed t f
    end
  done

let flush t ~now =
  if t.d_n > 0 then t.s_flushes <- t.s_flushes + 1;
  t.stamp <- t.stamp + 1;
  let waves = ref 0 in
  while t.d_n > 0 && !waves < t.max_waves do
    incr waves;
    (* Drain the dirty queue into the wave scratch: drop dead flows,
       sort by id. The queue is duplicate-free by the [f_dirty] flag. *)
    t.w_n <- 0;
    for i = 0 to t.d_n - 1 do
      let f = t.d_arr.(i) in
      f.f_dirty <- false;
      if not f.f_dead then begin
        if t.w_n = Array.length t.w_arr then begin
          let bigger = Array.make (max 16 (2 * t.w_n)) f in
          Array.blit t.w_arr 0 bigger 0 t.w_n;
          t.w_arr <- bigger
        end;
        t.w_arr.(t.w_n) <- f;
        t.w_n <- t.w_n + 1
      end
    done;
    t.d_n <- 0;
    if t.w_n > 0 then begin
      (* Queue order is itself a pure function of the mutation
         history (no hashing anywhere), so the wave runs in insertion
         order — a creation-order sort here cost ~20% of flush at
         population-wide wave sizes and bought no determinism. *)
      run_wave t ~now t.w_arr t.w_n;
      (* Ripple: a changed rate frees or claims capacity its link
         neighbours should see. Flows already processed this flush are
         settled; only outsiders re-enter (next wave or next flush).
         Deduplicate by link, and only links whose *total* allocation
         moved materially propagate — members swapping shares among
         themselves leave the residual outsiders see unchanged, so
         re-dirtying them would only churn. *)
      t.t_n <- 0;
      for i = 0 to t.c_n - 1 do
        Array.iter (fun li -> touch_link t li) t.c_arr.(i).f_path
      done;
      for i = 0 to t.t_n - 1 do
        let li = t.t_arr.(i) in
        t.l_touched.(li) <- false;
        if Float.abs t.l_dalloc.(li) > t.eps *. t.l_cap.(li) then begin
          let members = t.l_members.(li) in
          for j = 0 to t.l_n.(li) - 1 do
            let m = members.(j) in
            if m.f_stamp <> t.stamp then mark_dirty t m
          done
        end;
        t.l_dalloc.(li) <- 0.
      done;
      (* Callbacks last, in queue order, after all rates of the wave are
         committed — a callback reading a sibling leg sees final
         values. *)
      for i = 0 to t.c_n - 1 do
        t.on_rate t.c_arr.(i)
      done
    end
  done

(* Local pass: level just [flows] against the frozen rest and fire
   their callbacks. No ripple — the mutation that preceded this
   already queued the first-order neighbours for the next [flush];
   resetting the touched links' [l_dalloc] here keeps the flush-time
   ripple gate measuring only changes it has not yet seen. *)
let settle t ~now flows =
  let n = Array.length flows in
  if n > 0 then begin
    t.s_settles <- t.s_settles + 1;
    t.stamp <- t.stamp + 1;
    run_wave t ~now flows n;
    for i = 0 to t.t_n - 1 do
      t.l_dalloc.(t.t_arr.(i)) <- 0.
    done;
    for i = 0 to t.c_n - 1 do
      t.on_rate t.c_arr.(i)
    done
  end

let pending_dirty t =
  let n = ref 0 in
  for i = 0 to t.d_n - 1 do
    if not t.d_arr.(i).f_dead then incr n
  done;
  !n

let live_flows t = t.s_live
let flushes_run t = t.s_flushes
let waves_run t = t.s_waves
let settles_run t = t.s_settles
let heap_pops t = t.s_heap_pops
