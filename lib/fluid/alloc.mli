(** Incremental weighted max-min rate allocator.

    The flow-level engine's capacity model: links are buckets indexed
    by the topology's dense link ids, flows are weighted demands over
    a fixed path of link ids, and the allocator assigns each flow a
    rate (bits/second) by progressive filling — the weighted max-min
    fair allocation when run over the whole population.

    Mutations ([add], [remove], [set_weight], [set_avail]) are cheap:
    they only mark the flows sharing a link with the mutation as
    dirty. [flush] then water-fills the dirty set against the rest of
    the population frozen at its committed rates, propagating
    second-order effects through bounded ripple waves. From an
    all-dirty start a single flush is exact weighted max-min; under
    incremental churn the allocation tracks it to within the ripple
    horizon (see DESIGN.md §4k).

    Invariants maintained (and pinned by [test/test_fluid.ml]):
    per-link conservation (sum of member rates never exceeds
    [link_avail]) and the bottleneck condition from an all-dirty
    flush (every flow is rate-limited by at least one saturated path
    link).

    Determinism: worklists run in deterministic queue order (no
    hashing anywhere) and water-filling breaks level ties by link id,
    so allocation and callback order are pure functions of the
    mutation history. All state lives in ['a t]. *)

type 'a t
type 'a flow

val create :
  ?eps:float ->
  ?max_waves:int ->
  caps:float array ->
  on_rate:('a flow -> unit) ->
  unit ->
  'a t
(** [caps.(id)] is the capacity in bps of link [id] (positive).
    [on_rate] is invoked from [flush] for every flow whose committed
    rate changed by more than [eps] (relative, default 1e-3), after
    the whole wave is committed. [eps] also gates ripple: a link
    whose total allocation moved by less than [eps * cap] does not
    re-dirty its members. [max_waves] (default 3) bounds ripple
    propagation per flush; residual dirtiness carries over to the
    next flush. *)

val add : 'a t -> weight:float -> path:int array -> data:'a -> 'a flow
(** Register a flow. [path] is the link-id array from the topology
    route oracle (copied). An empty path means unconstrained: the
    flow gets a practically infinite rate and never enters
    water-filling. Rates materialise at the next [flush]. *)

val remove : 'a t -> now:float -> 'a flow -> unit
(** Unregister (idempotent). [now] (seconds) timestamps the capacity
    release for the utilisation integrals. *)

val set_weight : 'a t -> 'a flow -> float -> unit

val set_avail : 'a t -> link:int -> float -> unit
(** Capacity visible to the allocator on one link, clamped to
    [\[0, cap\]] — the hybrid model's residual-coupling hook (nominal
    capacity minus measured packet-level throughput). *)

val flush : 'a t -> now:float -> unit
(** Recompute rates for everything dirty, firing [on_rate] for
    material changes. [now] in seconds timestamps utilisation
    integrals. *)

val settle : 'a t -> now:float -> 'a flow array -> unit
(** Water-fill just [flows] (in array order, alive) against the rest of the
    population frozen at its committed rates, firing their [on_rate]
    callbacks — the cheap local pass a connection start runs to get
    an accurate initial rate without paying for global ripple.
    Neighbours dirtied by the mutation stay queued for the next
    [flush]. At light load (no competition on the touched links) the
    result already is the max-min rate. *)

val data : 'a flow -> 'a
val rate : 'a flow -> float
(** Committed allocation, bps (0 until the first flush). *)

val weight : 'a flow -> float
val link_cap : 'a t -> link:int -> float
val link_avail : 'a t -> link:int -> float

val link_alloc : 'a t -> link:int -> float
(** Sum of committed member rates — what the hybrid model writes back
    into {!Sim_net.Link.set_reserved_bps}. *)

val link_count : 'a t -> int

val finalize : 'a t -> now:float -> unit
(** Advance every link's utilisation integral to [now] (call once at
    the horizon before reading utilisations). *)

val link_utilisation : 'a t -> link:int -> now:float -> float
(** Mean allocated fraction of capacity over [\[0, now\]]. *)

val pending_dirty : 'a t -> int
(** Live flows awaiting recomputation (diagnostic). *)

(** {2 Self-profiling counters}

    Monotonic work counters maintained unconditionally (plain int
    stores) and exposed as fluid-engine gauges — the allocator-health
    view of a run: how many rebalance waves it took, how often the
    quantum timer actually flushed, and how hard the water-filling
    heap worked. *)

val live_flows : 'a t -> int
(** Constrained (non-empty-path) flows currently registered. *)

val flushes_run : 'a t -> int
(** [flush] calls that found dirty flows to process. *)

val waves_run : 'a t -> int
(** Water-filling waves executed (across [flush] ripple and [settle]). *)

val settles_run : 'a t -> int
(** Local [settle] passes executed. *)

val heap_pops : 'a t -> int
(** Bottleneck-heap pop operations — the water-filling inner-loop
    work measure. *)
