(** Event-driven fluid transport engine.

    Connections are rate processes over {!Alloc} instead of packet
    exchanges: Handshake (1 RTT) → Running (closed-form byte
    integration between allocator rate changes, under a doubling
    slow-start cap) → Draining (RTT/2 last-byte tail) → Finished.
    Each connection costs O(log size) scheduler events end to end,
    which is what lets k=16 FatTrees carry 10^5 flows under the
    wall-clock of a packet-level k=4 run (see DESIGN.md §4k).

    The engine is topology-free: callers resolve paths (link-id
    arrays) and RTTs via {!Sim_net.Topology.route_oracle} and pass
    them as {!leg_spec}s. Multipath couples legs through weights from
    {!Sim_mptcp.Lia.fluid_weights}; MMPTCP's scatter→multipath shape
    reuses {!Mmptcp.Strategy.plan} ([switch_on_congestion] has no
    fluid analogue and behaves as [Never]). *)

type t
type conn

type leg_spec = {
  path : int array;  (** forward-path link ids (route oracle) *)
  weight : float;  (** allocator weight (LIA-coupled or unit) *)
  rtt_s : float;  (** round-trip time of this leg, seconds *)
}

type switch_spec = {
  sw_plan : Mmptcp.Strategy.switch_plan;
  sw_legs : leg_spec array;  (** legs to swap in at the switch *)
}

val make :
  sched:Sim_engine.Scheduler.t ->
  cap_bps:float array ->
  ?params:Sim_tcp.Tcp_params.t ->
  ?flush_interval:float ->
  unit ->
  t
(** [cap_bps.(id)] is link [id]'s capacity. [params] supplies the
    slow-start model's [mss] and [initial_window]. [flush_interval]
    (seconds of virtual time, default 2 ms) is the rate-rebalance
    quantum: arrivals and departures mark the allocator dirty and a
    single engine timer drains it once per quantum, so event bursts
    share one global ripple pass. A starting connection still gets
    its initial rate immediately from a local water-fill. Registers
    engine-level gauges (component ["fluid"]) when the metrics
    registry is enabled. *)

val start :
  t ->
  ?done_bytes:int ->
  ?slow_start:bool ->
  ?handshake:bool ->
  ?switch:switch_spec ->
  legs:leg_spec array ->
  size:int ->
  on_complete:(conn -> unit) ->
  unit ->
  conn
(** Launch a transfer of [size] bytes. [done_bytes] (default 0) seeds
    the byte counter consulted by [switch_after_bytes] — the hybrid
    model passes the packet-stage bytes here. [slow_start:false] and
    [handshake:false] start at full allocated rate immediately
    (hybrid stage 2: the connection is already established and open).
    [on_complete] fires when the last byte lands. *)

val flush : t -> unit
(** Drain pending allocator recomputation at the current virtual
    time (call after a batch of [set_link_avail]). *)

val set_link_avail : t -> link:int -> float -> unit
(** Residual capacity coupling (hybrid): capacity the allocator may
    hand out on one link. *)

val link_alloc_bps : t -> link:int -> float
(** Current fluid allocation on a link — what the hybrid model
    mirrors into {!Sim_net.Link.set_reserved_bps}. *)

val finalize : t -> unit
(** Advance utilisation integrals to the current virtual time. *)

val link_utilisation : t -> link:int -> float

(** {1 Connection accessors} *)

val conn_id : conn -> int
val conn_size : conn -> int
val conn_started : conn -> Sim_engine.Sim_time.t
val conn_completed : conn -> Sim_engine.Sim_time.t option
val conn_fct : conn -> Sim_engine.Sim_time.t option
val conn_is_complete : conn -> bool
val conn_switched : conn -> bool

val conn_bytes : conn -> int
(** Bytes delivered so far in this stage (excludes [done_bytes]). *)

(** {1 Engine counters} *)

val active : t -> int
val started : t -> int
val completed : t -> int
val switched : t -> int
