(** Minimal CSV writing (RFC 4180 quoting) for exporting figure data
    series to external plotting tools. *)

val escape : string -> string
(** Quote a cell if it contains commas, quotes or newlines. *)

val to_string : header:string list -> string list list -> string
(** Raises [Invalid_argument] if any row's arity differs from the
    header's. *)

val write : path:string -> header:string list -> string list list -> unit
(** Raises [Sys_error] on unwritable paths, [Invalid_argument] on a
    header/row arity mismatch. *)

val float_cell : float -> string
(** [%.6g]; non-finite values render as [nan], [inf] and [-inf]. *)
