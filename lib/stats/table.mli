(** Aligned-column text tables for benchmark output. *)

type t

val create : columns:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val render : t -> string
(** The stats layer never prints (simlint rule D004): render to a
    string and emit through the experiments' [Report] channel. *)

(** {1 Cell formatting helpers} *)

val fms : float -> string
(** Milliseconds with 1 decimal. *)

val fnum : float -> string
val pct : float -> string
(** Fraction rendered as a percentage with 3 decimals. *)

val mbps : float -> string
(** Bits/s rendered as Mb/s. *)
