type t = {
  lo : float;
  hi : float;
  buckets : int;
  counts : int array;  (* buckets + 1, last = overflow *)
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; buckets; counts = Array.make (buckets + 1) 0; total = 0 }

let add t v =
  let i =
    if v >= t.hi then t.buckets
    else if v < t.lo then 0
    else begin
      let w = (t.hi -. t.lo) /. float_of_int t.buckets in
      min (t.buckets - 1) (int_of_float ((v -. t.lo) /. w))
    end
  in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total
let bucket_counts t = Array.copy t.counts
let overflow t = t.counts.(t.buckets)

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || a.buckets <> b.buckets then
    invalid_arg "Histogram.merge: mismatched bucket layout";
  let t = create ~lo:a.lo ~hi:a.hi ~buckets:a.buckets in
  for i = 0 to a.buckets do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- a.total + b.total;
  t

let bucket_bounds t i =
  if i < 0 || i > t.buckets then invalid_arg "Histogram.bucket_bounds";
  if i = t.buckets then (t.hi, infinity)
  else begin
    let w = (t.hi -. t.lo) /. float_of_int t.buckets in
    (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))
  end

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bucket_bounds t i in
        let bar = String.make (max 1 (c * width / maxc)) '#' in
        if i = t.buckets then
          Buffer.add_string buf (Printf.sprintf "%10.1f+      %6d %s\n" lo c bar)
        else
          Buffer.add_string buf
            (Printf.sprintf "%10.1f-%-10.1f %6d %s\n" lo hi c bar)
      end)
    t.counts;
  Buffer.contents buf
