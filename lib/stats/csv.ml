let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape row)

let to_string ~header rows =
  let arity = List.length header in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row_to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Csv.to_string: row arity mismatch";
      Buffer.add_string buf (row_to_string row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ~path ~header rows =
  (* Render before opening so an arity error cannot truncate an
     existing file. *)
  let contents = to_string ~header rows in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let float_cell v = Printf.sprintf "%.6g" v
