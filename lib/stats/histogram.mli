(** Fixed-width histograms (for FCT distributions à la Figure 1(b/c)). *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Values below [lo] land in the first bucket, values at or above
    [hi] in a dedicated overflow bucket. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> int array
(** [buckets + 1] entries; the last is the overflow bucket. *)

val bucket_bounds : t -> int -> float * float
(** Bounds of bucket [i]; the overflow bucket is [(hi, infinity)]. *)

val overflow : t -> int

val merge : t -> t -> t
(** [merge a b] is a fresh histogram whose counts are the bucket-wise
    sum of [a] and [b]. Both inputs are left untouched.

    @raise Invalid_argument if the two histograms disagree on [lo],
    [hi] or [buckets] — bucket-wise addition is only meaningful over
    an identical layout. *)

val render : ?width:int -> t -> string
(** ASCII rendering, one line per non-empty bucket. *)
