type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  emit (List.mapi (fun i _ -> String.make widths.(i) '-') t.columns);
  List.iter emit rows;
  Buffer.contents buf


let fms v = Printf.sprintf "%.1f" v
let fnum v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.3f%%" (v *. 100.)
let mbps v = Printf.sprintf "%.1f" (v /. 1e6)
