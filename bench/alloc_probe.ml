(* Minor-allocation probe: Gc.minor_words around the packet-path
   benches, independent of bechamel so the number is comparable across
   trees whose micro.ml differ. *)

module Stime = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler

let tcp_transfer () =
  let sched = Scheduler.create () in
  let net = Sim_net.Dumbbell.direct ~sched () in
  let f =
    Sim_tcp.Flow.start
      ~src:(Sim_net.Topology.host net 0)
      ~dst:(Sim_net.Topology.host net 1)
      ~size:70_000 ()
  in
  Scheduler.run ~until:(Stime.of_sec 5.) sched;
  assert (Sim_tcp.Flow.is_complete f)

let measure name f =
  f ();
  let rounds = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    f ()
  done;
  let w1 = Gc.minor_words () in
  Printf.printf "%-24s %12.0f minor words/run\n" name
    ((w1 -. w0) /. float_of_int rounds)

let () = measure "packet:tcp-70KB" tcp_transfer

let fig1a_inner () =
  let cfg =
    Sim_experiments.Scale.scenario_config Sim_experiments.Scale.tiny
      ~protocol:(Sim_workload.Scenario.Mmptcp_proto Mmptcp.Strategy.default)
  in
  ignore (Sim_workload.Scenario.run cfg)

let () =
  let rounds = 5 in
  fig1a_inner ();
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    fig1a_inner ()
  done;
  let w1 = Gc.minor_words () in
  Printf.printf "%-24s %12.0f minor words/run\n" "fig1a:inner"
    ((w1 -. w0) /. float_of_int rounds)
