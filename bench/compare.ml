(* Regression gate over BENCH_engine.json files.

   Usage: compare BASELINE.json CURRENT.json
            [--threshold PCT] [--mw-threshold PCT]

   Exits 1 if any benchmark present in both files regressed by more
   than the time threshold (default 10%) in ns/run, or by more than
   the allocation threshold (default 10%) in minor words/run.
   Benchmarks that exist in only one file are reported but never fail
   the gate, so adding or retiring a benchmark does not need a
   baseline refresh in the same commit.

   Minor words are gated as well as printed: the typed event path
   exists to hold allocation down, and a "faster but allocates more"
   trade must fail loudly. Since micro.ml pins its batching (warmup +
   fixed sampling), mw/run is reproducible run-to-run; tiny baselines
   (< 1000 words/run) are still exempt, where one boxed value moves
   the percentage more than any real change.

   The parser is matched to micro.ml's writer: a flat object, one
   benchmark per line, first quoted string the name, numeric fields
   given as `"key": value`. *)

let fail_usage () =
  prerr_endline
    "usage: compare BASELINE.json CURRENT.json [--threshold PCT] \
     [--mw-threshold PCT]";
  exit 2

(* Extract the float following `"key": ` in [line], if any. *)
let field_value line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      while !j < llen && line.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < llen
        && (match line.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub line !j (!k - !j))
    end
    else find (i + 1)
  in
  find 0

let quoted_name line =
  match String.split_on_char '"' line with
  | _ :: name :: _ -> Some name
  | _ -> None

let parse_file path =
  let ic =
    try open_in path
    with Sys_error m ->
      prerr_endline ("compare: " ^ m);
      exit 2
  in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (quoted_name line, field_value line "ns_per_run") with
       | Some name, Some ns when name <> "ns_per_run" ->
         let mw = Option.value ~default:0. (field_value line "mw_per_run") in
         rows := (name, (ns, mw)) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(* Minor-words baselines below this are pure noise territory. *)
let mw_floor = 1000.

let () =
  let rec parse_args (pos, thr, mw_thr) = function
    | [] -> (List.rev pos, thr, mw_thr)
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0. -> parse_args (pos, t, mw_thr) rest
      | _ -> fail_usage ())
    | "--mw-threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0. -> parse_args (pos, thr, t) rest
      | _ -> fail_usage ())
    | a :: _ when String.length a > 1 && a.[0] = '-' -> fail_usage ()
    | a :: rest -> parse_args (a :: pos, thr, mw_thr) rest
  in
  let positional, threshold, mw_threshold =
    parse_args ([], 10., 10.) (List.tl (Array.to_list Sys.argv))
  in
  let baseline_path, current_path =
    match positional with [ b; c ] -> (b, c) | _ -> fail_usage ()
  in
  let baseline = parse_file baseline_path in
  let current = parse_file current_path in
  let regressions = ref 0 in
  Printf.printf "%-32s %12s %12s %8s\n" "benchmark" "baseline ns" "current ns"
    "delta";
  print_endline (String.make 68 '-');
  List.iter
    (fun (name, (cur_ns, cur_mw)) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "%-32s %12s %12.1f %8s\n" name "(new)" cur_ns ""
      | Some (base_ns, base_mw) ->
        let delta = (cur_ns -. base_ns) /. base_ns *. 100. in
        let mw_delta =
          if base_mw > mw_floor then (cur_mw -. base_mw) /. base_mw *. 100.
          else 0.
        in
        let flag =
          if delta > threshold then begin
            incr regressions;
            "  REGRESSED"
          end
          else if mw_delta > mw_threshold then begin
            incr regressions;
            "  MW-REGRESSED"
          end
          else ""
        in
        Printf.printf "%-32s %12.1f %12.1f %+7.1f%%%s  (mw %.0f, %+.1f%%)\n"
          name base_ns cur_ns delta flag cur_mw mw_delta)
    current;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name current) then
        Printf.printf "%-32s (removed)\n" name)
    baseline;
  if !regressions > 0 then begin
    Printf.printf
      "\n%d benchmark(s) regressed more than %.0f%% (time) / %.0f%% (minor \
       words)\n"
      !regressions threshold mw_threshold;
    exit 1
  end
  else
    Printf.printf "\nno regression beyond %.0f%% (time) / %.0f%% (minor words)\n"
      threshold mw_threshold
