(* Engine micro-benchmarks: the three hot paths the timer-wheel work
   targets, measured in isolation so a regression shows up here before
   it shows up as minutes on the full fig1a run.

   - churn:*      schedule/cancel/re-arm cost of the timer population,
                  heap-only (tombstones) vs scheduler (wheel + Timer)
   - packet:*     one serialise-then-deliver hop through a Link, and a
                  complete short TCP transfer
   - fig1a:inner  one tiny-scale MMPTCP scenario — the inner loop the
                  fig1a experiment repeats per (size, protocol) point

   Default mode runs bechamel and writes per-benchmark estimates to
   BENCH_engine.json (override with --out FILE). --smoke executes every
   benchmark body once and exits — CI uses it to keep the suite
   compiling and running without paying measurement time. *)

module Stime = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Event_heap = Sim_engine.Event_heap
module Scale = Sim_experiments.Scale
module Scenario = Sim_workload.Scenario

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* churn: the RTO pattern — arm a timer far out, cancel or re-arm it
   shortly after, so almost nothing ever fires. *)

let timers = 512
let rounds = 8

(* Heap-only churn: every cancel leaves a tombstone behind, every
   re-arm is a fresh push; this is what the scheduler did before the
   wheel, minus closure allocation. *)
let churn_heap () =
  let h = Event_heap.create () in
  let seq = ref 0 in
  for round = 0 to rounds - 1 do
    for i = 0 to timers - 1 do
      let due = ((round * timers) + i + 200) * 1_000 in
      Event_heap.push h ~time:due ~seq:!seq i;
      incr seq
    done
  done;
  (* Drain: all but the last round's cells are stale. *)
  while Event_heap.top_time h <> max_int do
    Event_heap.drop h
  done

(* Scheduler churn: same pattern through the real API — one re-armable
   Timer per flow, re-armed [rounds] times; cancels unlink from the
   wheel in O(1) instead of leaving tombstones. *)
let churn_sched () =
  let sched = Scheduler.create () in
  let tms =
    Array.init timers (fun _ -> Scheduler.Timer.create sched ignore ())
  in
  for round = 0 to rounds - 1 do
    for i = 0 to timers - 1 do
      let due = ((round * timers) + i + 200) * 1_000 in
      Scheduler.Timer.schedule_at tms.(i) (Stime.of_ns due)
    done
  done;
  Array.iter Scheduler.Timer.cancel tms;
  Scheduler.run sched

(* ------------------------------------------------------------------ *)
(* packet path *)

let packet_hop () =
  let sched = Scheduler.create () in
  let queue =
    Sim_net.Pktqueue.create
      ~ctx:(Scheduler.ctx sched)
      ~capacity:128 ~layer:Sim_net.Layer.Edge_layer ()
  in
  let link =
    Sim_net.Link.create ~jitter:Stime.zero ~sched ~rate_bps:10e9
      ~delay:(Stime.of_us 1.) ~queue ~id:0 ()
  in
  let got = ref 0 in
  Sim_net.Link.attach link (fun _ -> incr got);
  let ctx = Scheduler.ctx sched in
  for _ = 0 to 63 do
    let pkt =
      Sim_net.Packet.make ~ctx ~src:(Sim_net.Addr.of_int 1)
        ~dst:(Sim_net.Addr.of_int 2) ~conn:1 ~subflow:0 ~src_port:1234
        ~dst_port:80 ~seq:0 ~ack_seq:0 ~len:1400
        ~bits:Sim_net.Packet.data_bits ~dsn:0
    in
    Sim_net.Link.send link pkt
  done;
  Scheduler.run sched;
  assert (!got = 64)

let tcp_transfer () =
  let sched = Scheduler.create () in
  let net = Sim_net.Dumbbell.direct ~sched () in
  let f =
    Sim_tcp.Flow.start
      ~src:(Sim_net.Topology.host net 0)
      ~dst:(Sim_net.Topology.host net 1)
      ~size:70_000 ()
  in
  Scheduler.run ~until:(Stime.of_sec 5.) sched;
  assert (Sim_tcp.Flow.is_complete f)

(* Same transfer with the probe sampler armed at 100 us: bounds the
   cost of observing a simulation. The unprobed tcp-70KB case above is
   the disabled-registry baseline — every component now carries its
   one [active]/[want_conn] branch, so any drift in that number
   against the recorded BENCH_engine.json is the overhead of having
   the metrics registry present but off (target: within noise). *)
let tcp_transfer_probed () =
  let sched = Scheduler.create () in
  let probe =
    Sim_engine.Probe.create sched ~interval:(Stime.of_us 100.)
  in
  Sim_engine.Probe.start probe;
  let net = Sim_net.Dumbbell.direct ~sched () in
  let f =
    Sim_tcp.Flow.start
      ~src:(Sim_net.Topology.host net 0)
      ~dst:(Sim_net.Topology.host net 1)
      ~size:70_000 ()
  in
  Scheduler.run ~until:(Stime.of_sec 5.) sched;
  assert (Sim_tcp.Flow.is_complete f);
  let c = Sim_engine.Probe.capture probe in
  assert (Array.length c.Sim_obs.Capture.samples > 0)

(* Same transfer with the flow ledger recording: bounds the cost of
   per-flow lifecycle accounting on the packet path. The unledgered
   packet:tcp-70KB case is the A side of the A/B — the ledger hooks
   are present but disabled there, so any drift in that number against
   the recorded BENCH_engine.json is the price of having the ledger
   compiled in and off (target: within noise). *)
let tcp_transfer_ledgered () =
  let sched = Scheduler.create () in
  let ledger = Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched) in
  Sim_obs.Flow_ledger.enable ledger ~clock_ns:(fun () ->
      Stime.to_ns (Scheduler.now sched));
  let net = Sim_net.Dumbbell.direct ~sched () in
  let f =
    Sim_tcp.Flow.start
      ~src:(Sim_net.Topology.host net 0)
      ~dst:(Sim_net.Topology.host net 1)
      ~size:70_000 ()
  in
  Sim_obs.Flow_ledger.on_start ledger ~conn:(Sim_tcp.Flow.conn f) ~src:0 ~dst:1
    ~size:70_000 ~long:false;
  Scheduler.run ~until:(Stime.of_sec 5.) sched;
  assert (Sim_tcp.Flow.is_complete f);
  assert (Sim_obs.Flow_ledger.count ledger = 1)

(* ------------------------------------------------------------------ *)
(* fig1a inner loop: one MMPTCP scenario at tiny scale — what the
   fig1a experiment runs once per (flow-size, protocol) point. *)

let fig1a_inner () =
  let cfg =
    Scale.scenario_config Scale.tiny
      ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default)
  in
  ignore (Scenario.run cfg)

(* ------------------------------------------------------------------ *)
(* fluid path: the flow-level engine end to end — 10k short transfers
   over 64 shared links, staggered arrivals, light load. Exercises the
   allocator's incremental water-fill, the quantum-batched flush timer
   and the closed-form byte integration; this is the per-flow cost the
   ext-scale experiment multiplies by 10^5. *)

let fluid_flows () =
  let sched = Scheduler.create () in
  let eng = Sim_fluid.Engine.make ~sched ~cap_bps:(Array.make 64 1e9) () in
  let completed = ref 0 in
  for i = 0 to 9_999 do
    let at = Stime.of_us (float_of_int i *. 100.) in
    ignore
      (Scheduler.schedule_at sched at (fun () ->
           ignore
             (Sim_fluid.Engine.start eng
                ~legs:
                  [|
                    {
                      Sim_fluid.Engine.path = [| i mod 32; 32 + (i * 7 mod 32) |];
                      weight = 1.;
                      rtt_s = 1e-4;
                    };
                  |]
                ~size:70_000
                ~on_complete:(fun _ -> incr completed)
                ())))
  done;
  Scheduler.run sched;
  assert (!completed = 10_000)

(* The same 10k-flow fluid drive with the ledger recording every
   lifecycle: per-flow cost of a ledger cell plus the hook writes the
   engine makes (handshake, completion) — what `--ledger` adds to an
   ext-scale-sized run. *)
let ledger_fluid_flows () =
  let sched = Scheduler.create () in
  let ledger = Sim_engine.Sim_ctx.ledger (Scheduler.ctx sched) in
  Sim_obs.Flow_ledger.enable ledger ~clock_ns:(fun () ->
      Stime.to_ns (Scheduler.now sched));
  let eng = Sim_fluid.Engine.make ~sched ~cap_bps:(Array.make 64 1e9) () in
  let completed = ref 0 in
  for i = 0 to 9_999 do
    let at = Stime.of_us (float_of_int i *. 100.) in
    ignore
      (Scheduler.schedule_at sched at (fun () ->
           let c =
             Sim_fluid.Engine.start eng
               ~legs:
                 [|
                   {
                     Sim_fluid.Engine.path = [| i mod 32; 32 + (i * 7 mod 32) |];
                     weight = 1.;
                     rtt_s = 1e-4;
                   };
                 |]
               ~size:70_000
               ~on_complete:(fun _ -> incr completed)
               ()
           in
           Sim_obs.Flow_ledger.on_start ledger
             ~conn:(Sim_fluid.Engine.conn_id c) ~src:(i mod 32)
             ~dst:(32 + (i * 7 mod 32))
             ~size:70_000 ~long:false))
  done;
  Scheduler.run sched;
  assert (!completed = 10_000);
  assert (Sim_obs.Flow_ledger.count ledger = 10_000)

(* hybrid path: a tiny-scale FatTree scenario where every 70 KB short
   flow starts packet-level and promotes to fluid at 10 KB — the
   handoff machinery (byte-threshold watch, leg re-resolution,
   residual-capacity coupling) exercised 1000 times. *)

let hybrid_handoff () =
  let cfg =
    {
      (Scale.scenario_config Scale.tiny
         ~protocol:(Scenario.Mptcp_proto { subflows = 8; coupled = true }))
      with
      Scenario.model = Scenario.Hybrid { handoff_bytes = 10_000 };
      short_flows = 1_000;
    }
  in
  let r = Scenario.run cfg in
  assert (Array.length r.Scenario.shorts = 1_000)

(* ------------------------------------------------------------------ *)

let benchmarks =
  [
    ("churn:heap-4k-arms", churn_heap);
    ("churn:sched-4k-arms", churn_sched);
    ("packet:link-hop-64", packet_hop);
    ("packet:tcp-70KB", tcp_transfer);
    ("obs:tcp-70KB-probed", tcp_transfer_probed);
    ("obs:tcp-70KB-ledgered", tcp_transfer_ledgered);
    ("fig1a:inner-loop", fig1a_inner);
    ("fluid:10k-flows", fluid_flows);
    ("obs:ledger-10k-flows", ledger_fluid_flows);
    ("hybrid:handoff-1k", hybrid_handoff);
  ]

(* Benchmarks whose single run is heavyweight (hundreds of ms and up).
   Under the adaptive sampler a ~2 s body gets one or two samples
   whose iteration counts differ run to run, which alone moved
   fig1a:inner-loop ~15% between otherwise identical invocations.
   These get a pinned config instead: every sample executes the body
   exactly once ([~start:1 ~sampling:(`Linear 0)]), a fixed number of
   times, so two invocations of the suite do identical work. *)
let heavy =
  [
    "fig1a:inner-loop";
    "fluid:10k-flows";
    "obs:ledger-10k-flows";
    "hybrid:handoff-1k";
  ]

(* Per benchmark: (name, ns/run, minor words/run). Minor words are the
   allocation-pressure number the packet-pool and typed-event work
   targets; tracking them next to time catches "faster but allocates
   more" trades (compare.ml gates both). *)
let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  (* Warmup: run every body once before any measurement so lazy
     initialisation, code page-in and heap growth land outside the
     measured window, then start each group from a compacted heap. *)
  List.iter (fun (_, f) -> f ()) benchmarks;
  let measure cfg tests_list =
    match tests_list with
    | [] -> []
    | _ ->
      Gc.compact ();
      let tests =
        List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests_list
      in
      let grouped = Test.make_grouped ~name:"engine" ~fmt:"%s/%s" tests in
      let raw = Benchmark.all cfg instances grouped in
      let estimates instance =
        let results = Analyze.all ols instance raw in
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
        |> List.sort compare
        |> List.filter_map (fun (name, ols) ->
               match Analyze.OLS.estimates ols with
               | Some (est :: _) -> Some (name, est)
               | Some [] | None -> None)
      in
      let ns = estimates Instance.monotonic_clock in
      let mw = estimates Instance.minor_allocated in
      List.map
        (fun (name, t) ->
          (name, t, Option.value ~default:0. (List.assoc_opt name mw)))
        ns
  in
  let light_cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false
      ()
  in
  let heavy_cfg =
    Benchmark.cfg ~start:1 ~sampling:(`Linear 0) ~limit:4
      ~quota:(Time.second 15.0) ~kde:None ~stabilize:false ()
  in
  let is_heavy (name, _) = List.mem name heavy in
  let rows =
    measure light_cfg (List.filter (fun b -> not (is_heavy b)) benchmarks)
    @ measure heavy_cfg (List.filter is_heavy benchmarks)
  in
  List.sort compare rows

let pretty ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Hand-rolled: the JSON is flat and bechamel has no serialiser we can
   rely on being present. *)
let write_json path rows =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns, mw) ->
      Printf.fprintf oc "  %S: { \"ns_per_run\": %.1f, \"mw_per_run\": %.1f }%s\n"
        name ns mw
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* One JSONL line per invocation, appended to the committed
   BENCH_history.jsonl. Commit and date arrive as arguments — sampling
   them here would make reruns of the same tree disagree — so the line
   is a pure function of (tree, machine). *)
let append_history path ~commit ~date rows =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Printf.fprintf oc "{\"commit\": %S, \"date\": %S, \"results\": {" commit date;
  List.iteri
    (fun i (name, ns, mw) ->
      Printf.fprintf oc "%s%S: {\"ns_per_run\": %.1f, \"mw_per_run\": %.1f}"
        (if i = 0 then "" else ", ")
        name ns mw)
    rows;
  output_string oc "}}\n";
  close_out oc

let () =
  Gc.set { (Gc.get ()) with minor_heap_size = 262_144; space_overhead = 120 };
  let args = Array.to_list Sys.argv in
  let opt name =
    let rec find = function
      | flag :: v :: _ when flag = name -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if List.mem "--smoke" args then begin
    List.iter
      (fun (name, f) ->
        f ();
        Printf.printf "smoke %-24s ok\n%!" name)
      benchmarks;
    print_endline "smoke: all benchmarks ran"
  end
  else begin
    let out = Option.value ~default:"BENCH_engine.json" (opt "--out") in
    let rows = run_bechamel () in
    Printf.printf "%-32s %16s %16s\n" "benchmark" "time/run" "minor words/run";
    print_endline (String.make 66 '-');
    List.iter
      (fun (name, ns, mw) ->
        Printf.printf "%-32s %16s %16.0f\n" name (pretty ns) mw)
      rows;
    write_json out rows;
    Printf.printf "\nwrote %s\n" out;
    match opt "--history" with
    | None -> ()
    | Some path ->
      let commit = Option.value ~default:"unknown" (opt "--commit") in
      let date = Option.value ~default:"unknown" (opt "--date") in
      append_history path ~commit ~date rows;
      Printf.printf "appended %s\n" path
  end
