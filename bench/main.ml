(* Benchmark harness.

   Two halves:

   1. Regeneration of every table and figure in the paper (DESIGN.md
      experiment index F1a, F1b, F1c, T1, E1..E6), printed in
      paper-style rows at the default benchmark scale. Pass [--full]
      for the 512-server paper-scale configuration, [--tiny] for a
      seconds-long smoke run. [--jobs N] fans each experiment's
      independent simulations over N domains (default: recommended
      domain count minus one); stdout is byte-identical for any N,
      per-experiment wall-clock goes to stderr.

   2. A Bechamel suite with one [Test.make] per table/figure (timing
      the regeneration of that artefact's data at a tiny scale) plus
      micro-benchmarks of the simulator's hot paths. Pass [--micro] to
      run only this suite, [--no-micro] to skip it. *)

module Scale = Sim_experiments.Scale
module Scenario = Sim_workload.Scenario

(* ------------------------------------------------------------------ *)
(* Part 1: paper-style tables and figures, straight from the registry *)

module Registry = Sim_experiments.Registry
module Experiment = Sim_experiments.Experiment

(* Timing goes to stderr: stdout carries only the regenerated tables
   and figures, which must be byte-identical whatever [jobs] is. The
   bench harness keeps the per-experiment barrier on purpose — it
   reports per-experiment wall-clock; `mmptcp_sim all` is the
   barrier-free path. *)
let regenerate ~jobs scale =
  let t_suite = Unix.gettimeofday () in
  List.iter
    (fun e ->
      Printf.printf "\n######## experiment %s ########\n%!" (Experiment.name e);
      let t0 = Unix.gettimeofday () in
      Registry.run ~clock:Unix.gettimeofday ~jobs scale [ e ];
      flush stdout;
      Printf.eprintf "[%s done in %.1fs at jobs=%d]\n%!" (Experiment.name e)
        (Unix.gettimeofday () -. t0)
        jobs)
    Registry.all;
  Printf.eprintf "[full suite done in %.1fs at jobs=%d]\n%!"
    (Unix.gettimeofday () -. t_suite)
    jobs

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel suite *)

open Bechamel
open Toolkit

(* Tiny scale: each regeneration sample stays under a second so the
   suite finishes quickly. *)
let tiny = Scale.tiny

let run_scenario protocol =
  let cfg = Scale.scenario_config tiny ~protocol in
  let r = Scenario.run cfg in
  ignore (Scenario.short_fcts_ms r)

let table_tests =
  (* One Test.make per paper artefact: it measures regenerating that
     artefact's underlying data (output suppressed). *)
  [
    Test.make ~name:"F1a:mptcp-sweep-point"
      (Staged.stage (fun () ->
           run_scenario (Scenario.Mptcp_proto { subflows = 8; coupled = true })));
    Test.make ~name:"F1b:mptcp8-scatterplot"
      (Staged.stage (fun () ->
           run_scenario (Scenario.Mptcp_proto { subflows = 8; coupled = true })));
    Test.make ~name:"F1c:mmptcp-scatterplot"
      (Staged.stage (fun () ->
           run_scenario (Scenario.Mmptcp_proto Mmptcp.Strategy.default)));
    Test.make ~name:"T1:summary-row"
      (Staged.stage (fun () ->
           run_scenario (Scenario.Mmptcp_proto Mmptcp.Strategy.default)));
    Test.make ~name:"E1:switching-point"
      (Staged.stage (fun () ->
           run_scenario
             (Scenario.Mmptcp_proto
                { Mmptcp.Strategy.default with
                  Mmptcp.Strategy.switch = Mmptcp.Strategy.Congestion_event })));
    Test.make ~name:"E2:load-point"
      (Staged.stage (fun () ->
           let cfg =
             Scale.scenario_config { tiny with Scale.rate = 100. }
               ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default)
           in
           ignore (Scenario.run cfg)));
    Test.make ~name:"E3:hotspot-point"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Scale.scenario_config tiny
                  ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default))
               with
               Scenario.tm =
                 Sim_workload.Traffic_matrix.Hotspot { targets = 2; fraction = 0.5 };
             }
           in
           ignore (Scenario.run cfg)));
    Test.make ~name:"E4:multihomed-point"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Scale.scenario_config tiny
                  ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default))
               with
               Scenario.topo =
                 Scenario.Multihomed_topo
                   {
                     Sim_net.Multihomed.k = 4;
                     oversub = 2;
                     host_spec = Scenario.paper_link_spec;
                     fabric_spec = Scenario.paper_link_spec;
                   };
             }
           in
           ignore (Scenario.run cfg)));
    Test.make ~name:"E5:coexist-bottleneck"
      (Staged.stage (fun () ->
           let sched = Sim_engine.Scheduler.create () in
           let net =
             Sim_net.Dumbbell.create ~sched
               ~bottleneck_spec:Scenario.paper_link_spec ~pairs:3 ()
           in
           let open Sim_net.Topology in
           let _tcp =
             Sim_tcp.Flow.start ~src:(host net 0) ~dst:(host net 3)
               ~size:1_000_000 ()
           in
           let _mp =
             Sim_mptcp.Mptcp_conn.start ~src:(host net 1) ~dst:(host net 4)
               ~size:1_000_000 ~subflows:8 ()
           in
           Sim_engine.Scheduler.run
             ~until:(Sim_engine.Sim_time.of_sec 1.) sched));
    Test.make ~name:"E6:dupack-point"
      (Staged.stage (fun () ->
           run_scenario
             (Scenario.Mmptcp_proto
                { Mmptcp.Strategy.default with
                  Mmptcp.Strategy.dupack = Mmptcp.Strategy.Static 3 })));
    Test.make ~name:"E7:vl2-point"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Scale.scenario_config tiny
                  ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default))
               with
               Scenario.topo =
                 Scenario.Vl2_topo
                   {
                     (Sim_net.Vl2.default_params ~tors:8 ~hosts_per_tor:4 ()) with
                     Sim_net.Vl2.host_spec = Scenario.paper_link_spec;
                     fabric_spec = Scenario.paper_link_spec;
                   };
             }
           in
           ignore (Scenario.run cfg)));
    Test.make ~name:"E9:sack-point"
      (Staged.stage (fun () ->
           let base =
             Scale.scenario_config tiny
               ~protocol:(Scenario.Mptcp_proto { subflows = 8; coupled = true })
           in
           let cfg =
             {
               base with
               Scenario.params =
                 { base.Scenario.params with Sim_tcp.Tcp_params.sack = true };
             }
           in
           ignore (Scenario.run cfg)));
    Test.make ~name:"E8:matrix-point"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Scale.scenario_config tiny
                  ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default))
               with
               Scenario.tm = Sim_workload.Traffic_matrix.Random;
             }
           in
           ignore (Scenario.run cfg)));
  ]

let micro_tests =
  let heap () =
    let h = Sim_engine.Event_heap.create () in
    for i = 0 to 999 do
      Sim_engine.Event_heap.push h ~time:((i * 7919) mod 4096) ~seq:i i
    done;
    let rec drain () =
      match Sim_engine.Event_heap.pop h with Some _ -> drain () | None -> ()
    in
    drain ()
  in
  let rng = Sim_engine.Rng.create ~seed:1 in
  let ecmp_pkt =
    Sim_net.Packet.make
      ~ctx:(Sim_engine.Sim_ctx.create ())
      ~src:(Sim_net.Addr.of_int 1) ~dst:(Sim_net.Addr.of_int 2) ~conn:1
      ~subflow:0 ~src_port:1234 ~dst_port:80 ~seq:0 ~ack_seq:0 ~len:1400
      ~bits:Sim_net.Packet.data_bits ~dsn:0
  in
  [
    Test.make ~name:"micro:event-heap-1k" (Staged.stage heap);
    Test.make ~name:"micro:rng-draw" (Staged.stage (fun () -> Sim_engine.Rng.int rng 65536));
    Test.make ~name:"micro:ecmp-select"
      (Staged.stage (fun () -> Sim_net.Ecmp.select ecmp_pkt ~salt:7 ~n:8));
    Test.make ~name:"micro:intervals-insert"
      (Staged.stage (fun () ->
           let iv = Sim_tcp.Intervals.create () in
           for i = 0 to 63 do
             ignore
               (Sim_tcp.Intervals.add iv
                  ~start:(((i * 37) mod 64) * 100)
                  ~stop:((((i * 37) mod 64) * 100) + 100))
           done));
    Test.make ~name:"micro:fattree-build"
      (Staged.stage (fun () ->
           let sched = Sim_engine.Scheduler.create () in
           ignore
             (Sim_net.Fattree.create ~sched
                (Sim_net.Fattree.default_params ~k:4 ~oversub:2 ()))));
    Test.make ~name:"micro:tcp-70KB-direct"
      (Staged.stage (fun () ->
           let sched = Sim_engine.Scheduler.create () in
           let net = Sim_net.Dumbbell.direct ~sched () in
           let f =
             Sim_tcp.Flow.start
               ~src:(Sim_net.Topology.host net 0)
               ~dst:(Sim_net.Topology.host net 1)
               ~size:70_000 ()
           in
           Sim_engine.Scheduler.run ~until:(Sim_engine.Sim_time.of_sec 5.) sched;
           assert (Sim_tcp.Flow.is_complete f)));
  ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.8) ~kde:None ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"bench" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  Printf.printf "\n%-32s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 49 '-');
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        in
        Printf.printf "%-32s %16s\n" name pretty
      | Some [] | None -> Printf.printf "%-32s %16s\n" name "n/a")
    rows

(* ------------------------------------------------------------------ *)

(* Same pinned-from-measurement GC settings as bin/mmptcp_sim.ml:
   benchmark numbers must not depend on an inherited OCAMLRUNPARAM. *)
let () =
  Gc.set { (Gc.get ()) with minor_heap_size = 262_144; space_overhead = 120 }

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ ->
        (match int_of_string_opt v with
         | Some n when n >= 1 -> n
         | Some _ | None ->
           prerr_endline "bench: --jobs expects a positive integer";
           exit 2)
      | _ :: rest -> find rest
      | [] -> Sim_experiments.Runner.default_jobs ()
    in
    find args
  in
  let scale =
    if has "--full" then Scale.full
    else if has "--tiny" then Scale.tiny
    else Scale.small
  in
  if has "--micro" then run_bechamel (micro_tests @ table_tests)
  else begin
    Printf.printf "MMPTCP reproduction benchmark suite (scale: %s)\n"
      (Format.asprintf "%a" Scale.pp scale);
    Printf.eprintf "[parallel runner: jobs=%d]\n%!" jobs;
    regenerate ~jobs scale;
    if not (has "--no-micro") then begin
      Printf.printf
        "\n######## bechamel: per-artefact regeneration + micro ########\n%!";
      run_bechamel (micro_tests @ table_tests)
    end
  end
