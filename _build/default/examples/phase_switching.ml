(* A single MMPTCP connection under the microscope: sample the
   congestion windows over time and print a timeline showing the
   packet-scatter phase, the switch, and the MPTCP phase.

   Run with: dune exec examples/phase_switching.exe *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Fattree = Sim_net.Fattree
module Host = Sim_net.Host
module Conn = Mmptcp.Mmptcp_conn
module Strategy = Mmptcp.Strategy

let () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  let src = Topology.host net 0 and dst = Topology.host net 28 in
  let paths = net.Topology.path_count (Host.addr src) (Host.addr dst) in
  let rng = Sim_engine.Rng.create ~seed:9 in
  let conn =
    Conn.start ~src ~dst ~size:3_000_000 ~rng ~paths
      ~strategy:{ Strategy.default with Strategy.switch = Strategy.Data_volume 200_000 }
      ()
  in
  Printf.printf "3 MB MMPTCP flow, switch after 200 KB, %d ECMP paths\n\n" paths;
  Printf.printf "%8s  %-14s %10s %12s %10s\n" "time(ms)" "phase" "cwnd(pkts)"
    "received(KB)" "rtos";
  (* Sample every 2 ms until the flow completes. *)
  let rec sample () =
    if not (Conn.is_complete conn) then begin
      let phase =
        match Conn.phase conn with
        | Conn.Packet_scatter -> "packet-scatter"
        | Conn.Multipath -> "multipath"
      in
      Printf.printf "%8.1f  %-14s %10.1f %12.1f %10d\n"
        (Time.to_ms (Scheduler.now sched))
        phase
        (Conn.total_cwnd conn /. 1400.)
        (float_of_int (Conn.bytes_received conn) /. 1000.)
        (Conn.rto_events conn);
      ignore (Scheduler.schedule_after sched (Time.of_ms 2.) sample)
    end
  in
  ignore (Scheduler.schedule_after sched Time.zero sample);
  Scheduler.run ~until:(Time.of_sec 30.) sched;
  (match Conn.switched_at conn with
   | Some t -> Printf.printf "\nswitched to MPTCP at %s\n" (Time.to_string t)
   | None -> print_endline "\nnever switched");
  match Conn.fct conn with
  | Some t -> Printf.printf "completed in %s\n" (Time.to_string t)
  | None -> print_endline "did not complete"
