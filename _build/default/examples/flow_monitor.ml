(* Observability demo: attach the passive flow monitor to a loaded
   fabric and inspect who used which layer, who suffered drops, and who
   retransmitted - without touching the flows themselves.

   Run with: dune exec examples/flow_monitor.exe *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Fattree = Sim_net.Fattree
module Flowmon = Sim_net.Flowmon
module Layer = Sim_net.Layer

let () =
  let sched = Scheduler.create () in
  let spec = Sim_workload.Scenario.paper_link_spec in
  let net =
    Fattree.create ~sched
      { (Fattree.default_params ~k:4 ~oversub:2 ()) with
        Fattree.host_spec = spec;
        fabric_spec = spec }
  in
  let monitor = Flowmon.attach net in

  (* A few competing transfers: two bulk MPTCP connections and a burst
     of short TCP flows crossing the same pod uplinks. *)
  let bulk1 =
    Sim_mptcp.Mptcp_conn.start ~src:(Topology.host net 0)
      ~dst:(Topology.host net 17) ~size:3_000_000 ~subflows:4 ()
  in
  let bulk2 =
    Sim_mptcp.Mptcp_conn.start ~src:(Topology.host net 1)
      ~dst:(Topology.host net 25) ~size:3_000_000 ~subflows:4 ()
  in
  let shorts =
    List.init 6 (fun i ->
        Sim_tcp.Flow.start
          ~src:(Topology.host net (2 + i))
          ~dst:(Topology.host net (24 + i))
          ~size:70_000 ())
  in
  Scheduler.run ~until:(Time.of_sec 5.) sched;

  Printf.printf "bulk transfers: %s / %s\n"
    (match Sim_mptcp.Mptcp_conn.fct bulk1 with
     | Some t -> Time.to_string t
     | None -> "unfinished")
    (match Sim_mptcp.Mptcp_conn.fct bulk2 with
     | Some t -> Time.to_string t
     | None -> "unfinished");
  Printf.printf "short flows completed: %d/6\n\n"
    (List.length (List.filter Sim_tcp.Flow.is_complete shorts));

  Printf.printf "%-6s %10s %10s %7s %6s  per-layer packets\n" "conn"
    "pkts" "bytes" "drops" "rtx";
  List.iter
    (fun (conn, s) ->
      let layers =
        s.Flowmon.per_layer_packets
        |> List.map (fun (l, n) -> Printf.sprintf "%s:%d" (Layer.to_string l) n)
        |> String.concat " "
      in
      Printf.printf "%-6d %10d %10d %7d %6d  %s\n" conn s.Flowmon.tx_packets
        s.Flowmon.tx_bytes s.Flowmon.drops s.Flowmon.retransmitted_segments
        layers)
    (Flowmon.top_talkers monitor ~n:8);
  Printf.printf "\ntotal drops observed anywhere: %d\n"
    (Flowmon.total_drops monitor)
