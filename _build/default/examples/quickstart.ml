(* Quickstart: build a FatTree, send one MMPTCP flow across it, and
   watch the two phases.

   Run with: dune exec examples/quickstart.exe *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Fattree = Sim_net.Fattree
module Host = Sim_net.Host

let () =
  (* 1. A scheduler owns virtual time; every component hangs off it. *)
  let sched = Scheduler.create () in

  (* 2. A 4-ary FatTree with 4:1 over-subscription - 64 hosts, the
     scaled-down version of the paper's 512-server fabric. *)
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:4 ()) in
  Printf.printf "built %s: %d hosts, %d switches, %d links\n"
    net.Topology.name
    (Array.length net.Topology.hosts)
    (Array.length net.Topology.switches)
    (Array.length net.Topology.links);

  (* 3. Pick two hosts in different pods and ask the topology how many
     equal-cost paths ECMP has between them: MMPTCP's topology-aware
     dup-ACK threshold is derived from this number. *)
  let src = Topology.host net 0 and dst = Topology.host net 60 in
  let paths = net.Topology.path_count (Host.addr src) (Host.addr dst) in
  Printf.printf "host 0 -> host 60: %d equal-cost paths\n" paths;

  (* 4. Start a 2 MB MMPTCP connection. It begins in the packet-scatter
     phase (one window, random source port per packet) and switches to
     MPTCP with 8 subflows after 100 KB. *)
  let rng = Sim_engine.Rng.create ~seed:42 in
  let conn =
    Mmptcp.Mmptcp_conn.start ~src ~dst ~size:2_000_000 ~rng ~paths
      ~on_switch:(fun c ->
        Printf.printf "  [%.3f ms] switched to MPTCP phase (8 subflows)\n"
          (Time.to_ms (Scheduler.now sched));
        ignore c)
      ()
  in
  Printf.printf "scatter-phase dup-ACK threshold: %d\n"
    (Mmptcp.Mmptcp_conn.current_dupack_threshold conn);

  (* 5. Run the simulation and report. *)
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  (match Mmptcp.Mmptcp_conn.fct conn with
   | Some t ->
     Printf.printf "flow completed in %s (%d bytes received)\n"
       (Time.to_string t)
       (Mmptcp.Mmptcp_conn.bytes_received conn)
   | None -> print_endline "flow did not complete (raise the horizon?)");
  Printf.printf "events processed: %d\n" (Scheduler.events_processed sched)
