(* Incast: many servers answer one aggregator at once - the classic
   burst that drives short TCP flows into retransmission timeouts.
   Compares TCP, MPTCP-8 and MMPTCP on the same synchronized burst.

   Run with: dune exec examples/incast.exe *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Fattree = Sim_net.Fattree
module Host = Sim_net.Host
module Summary = Sim_stats.Summary

let fanin = 24
let reply_size = 70_000

(* Senders spread over the whole fabric answer host 0 simultaneously. *)
let pick_senders net =
  let n = Topology.host_count net in
  List.init fanin (fun i -> 1 + (i * (n - 1) / fanin))

type starter = {
  start : Sim_net.Host.t -> Sim_net.Host.t -> int -> (unit -> Time.t option) * (unit -> int);
}

let run_burst name { start } =
  let sched = Scheduler.create () in
  let spec = Sim_workload.Scenario.paper_link_spec in
  let net =
    Fattree.create ~sched
      { (Fattree.default_params ~k:4 ~oversub:4 ()) with
        Fattree.host_spec = spec;
        fabric_spec = spec }
  in
  let dst = Topology.host net 0 in
  let flows =
    List.map
      (fun s -> start (Topology.host net s) dst reply_size)
      (pick_senders net)
  in
  Scheduler.run ~until:(Time.of_sec 30.) sched;
  let fcts =
    List.filter_map (fun (fct, _) -> Option.map Time.to_ms (fct ())) flows
  in
  let rtos = List.fold_left (fun a (_, r) -> a + r ()) 0 flows in
  let s = Summary.of_list fcts in
  Printf.printf
    "%-22s %d/%d done | mean %7.1f ms | p99 %8.1f ms | worst %8.1f ms | rtos %d\n"
    name (List.length fcts) fanin s.Summary.mean s.Summary.p99 s.Summary.max
    rtos

let tcp_starter =
  {
    start =
      (fun src dst size ->
        let f = Sim_tcp.Flow.start ~src ~dst ~size () in
        ( (fun () -> Sim_tcp.Flow.fct f),
          fun () -> Sim_tcp.Flow.rto_events f ));
  }

let mptcp_starter =
  {
    start =
      (fun src dst size ->
        let c = Sim_mptcp.Mptcp_conn.start ~src ~dst ~size ~subflows:8 () in
        ( (fun () -> Sim_mptcp.Mptcp_conn.fct c),
          fun () -> Sim_mptcp.Mptcp_conn.rto_events c ));
  }

let mmptcp_starter =
  let seeds = ref 0 in
  {
    start =
      (fun src dst size ->
        incr seeds;
        let rng = Sim_engine.Rng.create ~seed:(1000 + !seeds) in
        let paths = 4 in
        let c = Mmptcp.Mmptcp_conn.start ~src ~dst ~size ~rng ~paths () in
        ( (fun () -> Mmptcp.Mmptcp_conn.fct c),
          fun () -> Mmptcp.Mmptcp_conn.rto_events c ));
  }

let () =
  Printf.printf "incast: %d senders -> 1 aggregator, %d KB each, all at t=0\n\n"
    fanin (reply_size / 1000);
  run_burst "tcp" tcp_starter;
  run_burst "mptcp-8" mptcp_starter;
  run_burst "mmptcp" mmptcp_starter;
  print_endline
    "\nThe scatter phase spreads each response over every available path\n\
     under one congestion window, so the synchronized burst does not\n\
     concentrate on a handful of (subflow-pinned) queues."
