(* The paper's motivating workload: latency-sensitive short flows
   compete with bandwidth-hungry long flows on an over-subscribed
   FatTree. Runs the same seeded workload under MPTCP-8 and MMPTCP and
   prints the trade-off both protocols are fighting over.

   Run with: dune exec examples/short_vs_long.exe *)

module Scenario = Sim_workload.Scenario
module Summary = Sim_stats.Summary

let describe name protocol =
  let cfg =
    {
      Scenario.default_config with
      Scenario.protocol;
      short_flows = 200;
      seed = 21;
    }
  in
  let r = Scenario.run cfg in
  let fcts = Scenario.short_fcts_ms r in
  let s = Summary.of_array fcts in
  let goodputs = Scenario.long_goodput_mbps r in
  let long_mean =
    if Array.length goodputs = 0 then 0. else Summary.mean goodputs
  in
  Printf.printf "%s:\n" name;
  Printf.printf "  short flows : mean %.1f ms, sd %.1f ms, p99 %.1f ms, worst %.1f ms\n"
    s.Summary.mean s.Summary.stddev s.Summary.p99 s.Summary.max;
  Printf.printf "  flows hit by RTO: %d of %d\n"
    (Scenario.shorts_with_rto r)
    (Array.length r.Scenario.shorts);
  Printf.printf "  long flows  : mean goodput %.1f Mb/s across %d flows\n"
    long_mean (Array.length goodputs);
  Printf.printf "  core loss %.3f%%, agg loss %.3f%%\n\n"
    (100. *. Scenario.core_loss r)
    (100. *. Scenario.agg_loss r)

let () =
  print_endline "Short vs. long flows on a 64-host 4:1 FatTree";
  print_endline "(1/3 of hosts run long flows; the rest send 70 KB shorts)\n";
  describe "MPTCP, 8 subflows"
    (Scenario.Mptcp_proto { subflows = 8; coupled = true });
  describe "MMPTCP (packet scatter, then 8 subflows)"
    (Scenario.Mmptcp_proto Mmptcp.Strategy.default);
  print_endline
    "MMPTCP should show a comparable mean, a much smaller deviation and\n\
     fewer RTO-bound flows - short flows win - while long-flow goodput\n\
     stays level - long flows win too."
