examples/flow_monitor.ml: List Printf Sim_engine Sim_mptcp Sim_net Sim_tcp Sim_workload String
