examples/incast.ml: List Mmptcp Option Printf Sim_engine Sim_mptcp Sim_net Sim_stats Sim_tcp Sim_workload
