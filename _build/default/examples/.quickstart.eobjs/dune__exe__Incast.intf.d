examples/incast.mli:
