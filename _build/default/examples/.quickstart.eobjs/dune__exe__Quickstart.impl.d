examples/quickstart.ml: Array Mmptcp Printf Sim_engine Sim_net
