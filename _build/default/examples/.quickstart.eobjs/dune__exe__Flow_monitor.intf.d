examples/flow_monitor.mli:
