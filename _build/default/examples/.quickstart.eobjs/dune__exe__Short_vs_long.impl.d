examples/short_vs_long.ml: Array Mmptcp Printf Sim_stats Sim_workload
