examples/phase_switching.mli:
