examples/phase_switching.ml: Mmptcp Printf Sim_engine Sim_net
