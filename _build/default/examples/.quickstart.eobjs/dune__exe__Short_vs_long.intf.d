examples/short_vs_long.mli:
