examples/quickstart.mli:
