module Rng = Sim_engine.Rng

type kind =
  | Permutation
  | Random
  | Stride of int
  | Hotspot of { targets : int; fraction : float }
  | Incast of { target : int; fanin : int }

type impl =
  | Fixed of int array  (* partner per host *)
  | Uniform of Rng.t
  | Hot of { partner : int array; hot : int array; is_hot_sender : bool array; rng : Rng.t }
  | In of { target : int; senders : int array }

type t = { kind : kind; hosts : int; impl : impl }

let create ~rng ~hosts kind =
  if hosts < 2 then invalid_arg "Traffic_matrix.create: need >= 2 hosts";
  let impl =
    match kind with
    | Permutation -> Fixed (Rng.derangement rng hosts)
    | Random -> Uniform (Rng.split rng)
    | Stride s ->
      if s mod hosts = 0 then
        invalid_arg "Traffic_matrix.create: stride maps hosts to themselves";
      Fixed (Array.init hosts (fun i -> (i + s) mod hosts))
    | Hotspot { targets; fraction } ->
      if targets < 1 || targets >= hosts then
        invalid_arg "Traffic_matrix.create: bad hotspot target count";
      if fraction < 0. || fraction > 1. then
        invalid_arg "Traffic_matrix.create: bad hotspot fraction";
      let ids = Array.init hosts (fun i -> i) in
      Rng.shuffle rng ids;
      let hot = Array.sub ids 0 targets in
      let is_hot = Array.make hosts false in
      Array.iter (fun h -> is_hot.(h) <- true) hot;
      let is_hot_sender = Array.make hosts false in
      (* Non-hot hosts become hot senders with the given probability. *)
      for i = 0 to hosts - 1 do
        if (not is_hot.(i)) && Rng.float rng 1.0 < fraction then
          is_hot_sender.(i) <- true
      done;
      Hot
        {
          partner = Rng.derangement rng hosts;
          hot;
          is_hot_sender;
          rng = Rng.split rng;
        }
    | Incast { target; fanin } ->
      if target < 0 || target >= hosts then
        invalid_arg "Traffic_matrix.create: incast target out of range";
      if fanin < 1 || fanin > hosts - 1 then
        invalid_arg "Traffic_matrix.create: bad incast fan-in";
      let others = Array.of_list (List.filter (fun i -> i <> target) (List.init hosts Fun.id)) in
      Rng.shuffle rng others;
      In { target; senders = Array.sub others 0 fanin }
  in
  { kind; hosts; impl }

let dest t ~src =
  if src < 0 || src >= t.hosts then invalid_arg "Traffic_matrix.dest: bad src";
  match t.impl with
  | Fixed partner -> partner.(src)
  | Uniform rng ->
    let d = ref (Rng.int rng t.hosts) in
    while !d = src do
      d := Rng.int rng t.hosts
    done;
    !d
  | Hot { partner; hot; is_hot_sender; rng } ->
    if is_hot_sender.(src) then begin
      let d = ref (Rng.pick rng hot) in
      while !d = src do
        d := Rng.pick rng hot
      done;
      !d
    end
    else partner.(src)
  | In { target; senders } ->
    if Array.exists (fun s -> s = src) senders then target
    else invalid_arg "Traffic_matrix.dest: host is not an incast sender"

let kind t = t.kind

let incast_senders t =
  match t.impl with
  | In { senders; _ } -> List.sort compare (Array.to_list senders)
  | Fixed _ | Uniform _ | Hot _ -> []

let kind_to_string = function
  | Permutation -> "permutation"
  | Random -> "random"
  | Stride s -> Printf.sprintf "stride(%d)" s
  | Hotspot { targets; fraction } ->
    Printf.sprintf "hotspot(%d targets, %.0f%%)" targets (fraction *. 100.)
  | Incast { target; fanin } -> Printf.sprintf "incast(%d<-%d)" target fanin
