(** Traffic matrices: who talks to whom.

    The paper's Figure 1 uses a permutation matrix (every host has one
    fixed partner, nobody sends to itself); the Roadmap adds hotspot
    matrices. All matrices are deterministic given the generator. *)

type kind =
  | Permutation  (** random derangement over all hosts *)
  | Random  (** fresh uniform non-self destination per flow *)
  | Stride of int  (** host [i] sends to [(i + s) mod n] *)
  | Hotspot of { targets : int; fraction : float }
      (** [fraction] of senders all pick partners among [targets]
          randomly-chosen hot hosts; the rest follow a permutation. *)
  | Incast of { target : int; fanin : int }
      (** [fanin] distinct senders all send to [target]. *)

type t

val create : rng:Sim_engine.Rng.t -> hosts:int -> kind -> t

val dest : t -> src:int -> int
(** Destination for a new flow from [src]. [Permutation]/[Stride]
    always answer the same host; [Random] redraws per call. Raises
    [Invalid_argument] for a 1-host network or an [Incast] source
    outside the fan-in set. *)

val kind : t -> kind

val incast_senders : t -> int list
(** For [Incast]: the selected senders, in id order; [] otherwise. *)

val kind_to_string : kind -> string
