lib/workload/traffic_matrix.mli: Sim_engine
