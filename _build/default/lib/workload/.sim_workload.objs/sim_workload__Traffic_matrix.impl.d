lib/workload/traffic_matrix.ml: Array Fun List Printf Sim_engine
