lib/workload/scenario.ml: Array Float List Mmptcp Option Printf Sim_dctcp Sim_engine Sim_mptcp Sim_net Sim_tcp Traffic_matrix
