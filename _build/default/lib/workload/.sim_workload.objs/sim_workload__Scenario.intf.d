lib/workload/scenario.mli: Mmptcp Sim_engine Sim_net Sim_tcp Traffic_matrix
