module Scenario = Sim_workload.Scenario
module Table = Sim_stats.Table

let run scale =
  Report.header "E9: NewReno vs SACK loss recovery (extension)";
  Printf.printf "workload: %s\n" (Format.asprintf "%a" Scale.pp scale);
  let table =
    Table.create
      ~columns:
        [ "recovery"; "protocol"; "mean(ms)"; "sd(ms)"; "p99(ms)"; "rto-flows" ]
  in
  List.iter
    (fun (rname, sack) ->
      List.iter
        (fun (pname, protocol) ->
          let base = Scale.scenario_config scale ~protocol in
          let cfg =
            {
              base with
              Scenario.params = { base.Scenario.params with Sim_tcp.Tcp_params.sack };
            }
          in
          let r = Scenario.run cfg in
          let s = Report.fct_stats r in
          Table.add_row table
            [
              rname;
              pname;
              Table.fms s.Report.mean_ms;
              Table.fms s.Report.sd_ms;
              Table.fms s.Report.p99_ms;
              string_of_int s.Report.flows_with_rto;
            ])
        [
          ("mptcp-8", Scenario.Mptcp_proto { subflows = 8; coupled = true });
          ("mmptcp", Scenario.Mmptcp_proto Mmptcp.Strategy.default);
        ])
    [ ("newreno", false); ("sack", true) ];
  Table.print table
