lib/experiments/ext_matrices.mli: Scale
