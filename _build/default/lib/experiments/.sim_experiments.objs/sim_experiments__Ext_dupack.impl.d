lib/experiments/ext_dupack.ml: Array Format List Mmptcp Printf Report Scale Sim_stats Sim_workload
