lib/experiments/fig1bc.ml: Array Filename Format List Mmptcp Printf Report Scale Sim_engine Sim_stats Sim_workload
