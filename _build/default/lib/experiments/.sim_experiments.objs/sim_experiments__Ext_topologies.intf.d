lib/experiments/ext_topologies.mli: Scale
