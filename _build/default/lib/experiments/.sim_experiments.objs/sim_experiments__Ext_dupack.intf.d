lib/experiments/ext_dupack.mli: Scale
