lib/experiments/ext_multihomed.mli: Scale
