lib/experiments/fig1a.mli: Scale
