lib/experiments/scale.ml: Format Sim_engine Sim_workload
