lib/experiments/fig1bc.mli: Scale Sim_workload
