lib/experiments/ext_load.mli: Scale
