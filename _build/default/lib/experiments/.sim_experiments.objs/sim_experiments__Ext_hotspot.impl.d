lib/experiments/ext_hotspot.ml: Format List Mmptcp Printf Report Scale Sim_stats Sim_workload
