lib/experiments/report.ml: Array Printf Sim_stats Sim_workload String
