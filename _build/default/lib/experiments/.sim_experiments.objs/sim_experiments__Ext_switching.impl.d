lib/experiments/ext_switching.ml: Format List Mmptcp Printf Report Scale Sim_stats Sim_workload
