lib/experiments/ext_load.ml: Format List Mmptcp Printf Report Scale Sim_stats Sim_workload
