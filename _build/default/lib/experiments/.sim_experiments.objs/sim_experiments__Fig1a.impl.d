lib/experiments/fig1a.ml: Filename Format List Printf Report Scale Sim_stats Sim_workload
