lib/experiments/ext_hotspot.mli: Scale
