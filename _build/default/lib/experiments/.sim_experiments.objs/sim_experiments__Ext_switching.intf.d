lib/experiments/ext_switching.mli: Scale
