lib/experiments/ext_topologies.ml: Format List Mmptcp Printf Report Scale Sim_net Sim_stats Sim_workload
