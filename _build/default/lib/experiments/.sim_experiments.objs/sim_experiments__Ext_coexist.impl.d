lib/experiments/ext_coexist.ml: Array Float List Mmptcp Printf Report Scale Sim_engine Sim_mptcp Sim_net Sim_stats Sim_tcp Sim_workload
