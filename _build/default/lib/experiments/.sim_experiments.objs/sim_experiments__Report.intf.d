lib/experiments/report.mli: Sim_workload
