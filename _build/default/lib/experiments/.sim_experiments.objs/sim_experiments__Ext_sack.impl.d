lib/experiments/ext_sack.ml: Format List Mmptcp Printf Report Scale Sim_stats Sim_tcp Sim_workload
