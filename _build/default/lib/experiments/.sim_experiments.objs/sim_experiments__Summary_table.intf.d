lib/experiments/summary_table.mli: Scale
