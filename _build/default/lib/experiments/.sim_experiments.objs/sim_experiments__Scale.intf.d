lib/experiments/scale.mli: Format Sim_workload
