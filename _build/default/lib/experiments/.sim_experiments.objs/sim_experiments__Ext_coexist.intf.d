lib/experiments/ext_coexist.mli: Scale
