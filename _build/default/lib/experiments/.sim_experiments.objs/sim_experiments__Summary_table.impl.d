lib/experiments/summary_table.ml: Format Mmptcp Printf Report Scale Sim_stats Sim_workload
