lib/experiments/ext_sack.mli: Scale
