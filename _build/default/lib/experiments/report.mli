(** Shared result-reporting helpers for the experiment suite. *)

type fct_stats = {
  completed : int;
  incomplete : int;
  mean_ms : float;
  sd_ms : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  within_100ms : float;  (** fraction of completed shorts *)
  flows_with_rto : int;
}

val fct_stats : Sim_workload.Scenario.result -> fct_stats
(** Short-flow statistics of a finished scenario run. *)

val header : string -> unit
(** Print an experiment banner. *)

val sub_header : string -> unit

val long_mean_mbps : Sim_workload.Scenario.result -> float
(** Mean long-flow goodput; 0 when there are no long flows. *)
