lib/engine/rng.mli:
