lib/engine/sim_time.ml: Format Int64 Stdlib
