lib/engine/trace.ml: Format
