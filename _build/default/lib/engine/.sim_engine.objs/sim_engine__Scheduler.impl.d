lib/engine/scheduler.ml: Event_heap Int64 Sim_time
