(* Array-backed binary min-heap. Three parallel-ish arrays are avoided:
   each slot stores an immutable cell so that [pop]'s sift-down moves a
   single word. Ordering key is (time, seq). *)

type 'a cell = { time : int64; seq : int; value : 'a }

type 'a t = {
  mutable cells : 'a cell option array;
  mutable size : int;
}

let create () = { cells = Array.make 64 None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let cell_lt a b =
  let c = Int64.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow t =
  let cells = Array.make (2 * Array.length t.cells) None in
  Array.blit t.cells 0 cells 0 t.size;
  t.cells <- cells

let get t i =
  match t.cells.(i) with
  | Some c -> c
  | None -> assert false

let push t ~time ~seq value =
  if t.size = Array.length t.cells then grow t;
  let cell = { time; seq; value } in
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pc = get t parent in
    if cell_lt cell pc then begin
      t.cells.(!i) <- Some pc;
      i := parent
    end
    else continue := false
  done;
  t.cells.(!i) <- Some cell

let pop t =
  if t.size = 0 then None
  else begin
    let root = get t 0 in
    t.size <- t.size - 1;
    let last = get t t.size in
    t.cells.(t.size) <- None;
    if t.size > 0 then begin
      (* Sift the former last element down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let sc = ref last in
        if l < t.size then begin
          let lc = get t l in
          if cell_lt lc !sc then begin
            smallest := l;
            sc := lc
          end
        end;
        if r < t.size then begin
          let rc = get t r in
          if cell_lt rc !sc then begin
            smallest := r;
            sc := rc
          end
        end;
        if !smallest = !i then begin
          t.cells.(!i) <- Some last;
          continue := false
        end
        else begin
          t.cells.(!i) <- Some !sc;
          i := !smallest
        end
      done
    end;
    Some (root.time, root.seq, root.value)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let clear t =
  Array.fill t.cells 0 t.size None;
  t.size <- 0
