(** Lightweight component-tagged tracing.

    Tracing is off by default and costs one branch per call site when
    disabled, so stacks can trace per-packet events without slowing
    down full-scale benchmark runs. *)

type level = Error | Warn | Info | Debug

val set_level : level option -> unit
(** [set_level (Some Debug)] enables everything; [set_level None]
    (the default) disables all output. *)

val level : unit -> level option

val enabled : level -> bool

val errorf : component:string -> ('a, Format.formatter, unit) format -> 'a
val warnf : component:string -> ('a, Format.formatter, unit) format -> 'a
val infof : component:string -> ('a, Format.formatter, unit) format -> 'a
val debugf : component:string -> ('a, Format.formatter, unit) format -> 'a
