type t = int64

let zero = 0L
let is_zero t = Int64.equal t 0L

let of_ns n =
  if Int64.compare n 0L < 0 then invalid_arg "Sim_time.of_ns: negative";
  n

let of_us f =
  if f < 0. then invalid_arg "Sim_time.of_us: negative";
  Int64.of_float (f *. 1e3)

let of_ms f =
  if f < 0. then invalid_arg "Sim_time.of_ms: negative";
  Int64.of_float (f *. 1e6)

let of_sec f =
  if f < 0. then invalid_arg "Sim_time.of_sec: negative";
  Int64.of_float (f *. 1e9)

let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9

let add = Int64.add

let diff a b =
  if Int64.compare b a > 0 then invalid_arg "Sim_time.diff: negative result";
  Int64.sub a b

let scale t f =
  if f < 0. then invalid_arg "Sim_time.scale: negative factor";
  Int64.of_float (Int64.to_float t *. f)

let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let pp ppf t =
  let ns = Int64.to_float t in
  if Stdlib.( < ) ns 1e3 then Format.fprintf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else Format.fprintf ppf "%.4fs" (ns /. 1e9)

let to_string t = Format.asprintf "%a" pp t
