(** Deterministic pseudo-random number generation.

    A SplitMix64 generator: tiny state, excellent statistical quality
    for simulation purposes, and cheap [split]ting so that independent
    components (flow arrival process, ECMP port randomisation, traffic
    matrix shuffling, ...) each get their own stream and stay
    reproducible regardless of the order in which they draw. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator whose stream is independent of (and deterministic
    given) the parent's current state. *)

val copy : t -> t

(** {1 Draws} *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (for Poisson
    inter-arrival times). *)

val pareto : t -> shape:float -> scale:float -> float
(** Bounded-shape Pareto draw (for heavy-tailed flow sizes). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val derangement : t -> int -> int array
(** [derangement t n] is a uniform-ish random permutation of [0..n-1]
    with no fixed point (used for permutation traffic matrices, where a
    host must never send to itself). For [n = 1] the identity is
    returned since no derangement exists. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
