(** Binary min-heap of timestamped events.

    Events are ordered by [(time, seq)] where [seq] is a strictly
    increasing insertion counter, so two events scheduled for the same
    instant fire in insertion order (FIFO tie-breaking, matching ns-3
    semantics). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

val pop : 'a t -> (int64 * int * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> int64 option

val clear : 'a t -> unit
