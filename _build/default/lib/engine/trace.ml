type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let label = function Error -> "ERROR" | Warn -> "WARN" | Info -> "INFO" | Debug -> "DEBUG"

let current : level option ref = ref None

let set_level l = current := l
let level () = !current

let enabled l =
  match !current with
  | None -> false
  | Some threshold -> severity l <= severity threshold

let logf lvl ~component fmt =
  if enabled lvl then
    Format.kfprintf
      (fun ppf -> Format.fprintf ppf "@.")
      Format.err_formatter
      ("[%s] %s: " ^^ fmt)
      (label lvl) component
  else Format.ifprintf Format.err_formatter fmt

let errorf ~component fmt = logf Error ~component fmt
let warnf ~component fmt = logf Warn ~component fmt
let infof ~component fmt = logf Info ~component fmt
let debugf ~component fmt = logf Debug ~component fmt
