type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the top bits; modulo bias is negligible for simulation bounds
     (bound << 2^62) but we mask to non-negative first. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  while !u = 0. do u := float t 1.0 done;
  -.mean *. log !u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: bad parameters";
  let u = ref (float t 1.0) in
  while !u = 0. do u := float t 1.0 done;
  scale /. (!u ** (1. /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let derangement t n =
  if n <= 0 then invalid_arg "Rng.derangement: n must be positive";
  if n = 1 then [| 0 |]
  else begin
    let a = Array.init n (fun i -> i) in
    (* Rejection sampling: shuffle until no fixed point. Expected number
       of attempts converges to e ~ 2.72, independent of n. *)
    let ok () =
      let good = ref true in
      for i = 0 to n - 1 do
        if a.(i) = i then good := false
      done;
      !good
    in
    shuffle t a;
    while not (ok ()) do
      shuffle t a
    done;
    a
  end

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
