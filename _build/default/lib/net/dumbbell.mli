(** Small reference topologies for unit tests and fairness experiments. *)

val direct :
  sched:Sim_engine.Scheduler.t -> ?spec:Topology.link_spec -> unit -> Topology.t
(** Two hosts joined by one duplex link. Host 0 and host 1. *)

val create :
  sched:Sim_engine.Scheduler.t ->
  ?edge_spec:Topology.link_spec ->
  ?bottleneck_spec:Topology.link_spec ->
  pairs:int ->
  unit ->
  Topology.t
(** Classic dumbbell: [pairs] senders (hosts [0 .. pairs-1]) on the left
    switch, [pairs] receivers (hosts [pairs .. 2*pairs-1]) on the right
    switch, one bottleneck link between the switches. The bottleneck's
    queues are tagged [Core_layer] so its statistics are separable from
    the access links ([Edge_layer]/[Host_layer]). *)

val parking_lot :
  sched:Sim_engine.Scheduler.t ->
  ?spec:Topology.link_spec ->
  hops:int ->
  unit ->
  Topology.t
(** A chain of [hops+1] switches; host [2*i] talks across hop [i] to
    host [2*i+1]... simplified: hosts 0..hops-1 send to host [hops]
    attached to the last switch, traversing increasing numbers of
    shared links. Used for multi-bottleneck CC tests. *)
