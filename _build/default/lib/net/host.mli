(** End host.

    A host owns one or more NICs (uplinks to edge switches — more than
    one only in multi-homed topologies) and a demultiplexing table from
    connection id to handler. Transport endpoints bind their connection
    id on both hosts; packets whose connection id is not bound are
    counted and discarded. *)

type t

val create : sched:Sim_engine.Scheduler.t -> addr:Addr.t -> t

val addr : t -> Addr.t
val sched : t -> Sim_engine.Scheduler.t

val add_nic : t -> Link.t -> unit
(** Register an uplink. Called by topology builders. *)

val nic_count : t -> int

val send : t -> Packet.t -> unit
(** Transmit via the single NIC, or ECMP-select among NICs when
    multi-homed. Raises [Failure] if the host has no NIC. *)

val receive : t -> Packet.t -> unit
(** Deliver an incoming packet to the bound connection handler. *)

val bind : t -> conn:int -> (Packet.t -> unit) -> unit
(** Raises [Invalid_argument] if the connection id is already bound. *)

val unbind : t -> conn:int -> unit
val unmatched : t -> int
(** Packets that arrived for an unbound connection id. *)
