(** Dual-homed FatTree (paper Roadmap section).

    Identical fabric to {!Fattree} but every host has two NICs attached
    to two distinct edge switches of its pod ([e] and [(e+1) mod k/2]).
    More parallel paths at the access layer means higher burst
    tolerance: a short-flow burst no longer concentrates on a single
    host uplink / edge downlink. Requires [k >= 4] so each pod has at
    least two edge switches. *)

type params = {
  k : int;
  oversub : int;
  host_spec : Topology.link_spec;
  fabric_spec : Topology.link_spec;
}

val default_params : ?k:int -> ?oversub:int -> unit -> params
val host_count : params -> int
val create : sched:Sim_engine.Scheduler.t -> params -> Topology.t
