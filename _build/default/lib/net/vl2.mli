(** VL2-style Clos network (Greenberg et al., SIGCOMM 2009).

    Three tiers: ToR switches (each serving [hosts_per_tor] hosts and
    dual-homed to two aggregation switches), aggregation switches, and
    an intermediate tier forming a complete bipartite graph with the
    aggregation tier. Upward hops are ECMP-hashed (ToR picks one of its
    2 aggs, the agg picks any intermediate — the valiant load balancing
    of VL2 realised with per-flow ECMP); downward hops are hashed over
    the destination ToR's two aggs, then deterministic.

    The paper's §2 notes VL2's centralised directory can provide the
    path-count information MMPTCP's dup-ACK heuristic needs; here
    [Topology.path_count] answers it directly:
    2 (up-agg) x intermediates x 2 (down-agg) between distinct ToRs. *)

type params = {
  aggs : int;  (** aggregation switches, even, >= 4 *)
  intermediates : int;
  tors : int;
  hosts_per_tor : int;
  host_spec : Topology.link_spec;
  fabric_spec : Topology.link_spec;
}

val default_params : ?aggs:int -> ?intermediates:int -> ?tors:int -> ?hosts_per_tor:int -> unit -> params
(** Defaults: 4 aggs, 4 intermediates, 16 ToRs, 4 hosts/ToR = 64 hosts,
    matching the default FatTree scale. *)

val host_count : params -> int
val create : sched:Sim_engine.Scheduler.t -> params -> Topology.t
