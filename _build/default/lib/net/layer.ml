type t = Host_layer | Edge_layer | Agg_layer | Core_layer

let all = [ Host_layer; Edge_layer; Agg_layer; Core_layer ]

let to_string = function
  | Host_layer -> "host"
  | Edge_layer -> "edge"
  | Agg_layer -> "agg"
  | Core_layer -> "core"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b
