(** Output-queued switch.

    Forwarding is a pure function from packet to output link, installed
    by the topology builder (two-level FatTree routing with upward ECMP,
    for instance). Forwarding latency inside the switch is folded into
    link propagation delay, as in ns-3 point-to-point models. *)

type t

val create : id:int -> layer:Layer.t -> t

val id : t -> int
val layer : t -> Layer.t

val set_route : t -> (Packet.t -> Link.t) -> unit
val receive : t -> Packet.t -> unit
(** Forward a packet. Raises [Failure] if no routing function is
    installed. *)

val forwarded : t -> int
