type t = {
  id : int;
  layer : Layer.t;
  mutable route : (Packet.t -> Link.t) option;
  mutable forwarded : int;
}

let create ~id ~layer = { id; layer; route = None; forwarded = 0 }

let id t = t.id
let layer t = t.layer
let set_route t f = t.route <- Some f

let receive t pkt =
  match t.route with
  | None -> failwith "Switch.receive: no routing function installed"
  | Some route ->
    t.forwarded <- t.forwarded + 1;
    Link.send (route pkt) pkt

let forwarded t = t.forwarded
