(** Host addresses.

    An address is an opaque host identifier. Topologies define the
    mapping from addresses to physical positions (e.g. the FatTree
    [pod.edge.index] scheme from Al-Fares et al., which MMPTCP's
    topology-aware dup-ACK heuristic exploits to count equal-cost
    paths). *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative ids. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
