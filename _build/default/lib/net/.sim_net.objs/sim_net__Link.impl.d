lib/net/link.ml: Int64 List Packet Pktqueue Sim_engine
