lib/net/layer.mli: Format
