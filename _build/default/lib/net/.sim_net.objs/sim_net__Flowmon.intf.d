lib/net/flowmon.mli: Layer Topology
