lib/net/ecmp.ml: Addr Int64 Packet Stdlib
