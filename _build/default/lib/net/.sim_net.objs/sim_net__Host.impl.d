lib/net/host.ml: Addr Array Ecmp Hashtbl Link Packet Sim_engine
