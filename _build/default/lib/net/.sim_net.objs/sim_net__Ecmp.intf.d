lib/net/ecmp.mli: Packet
