lib/net/dumbbell.mli: Sim_engine Topology
