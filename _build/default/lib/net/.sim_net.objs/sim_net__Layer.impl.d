lib/net/layer.ml: Format
