lib/net/link.mli: Packet Pktqueue Sim_engine
