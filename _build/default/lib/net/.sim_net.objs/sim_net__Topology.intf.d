lib/net/topology.mli: Addr Host Layer Link Pktqueue Sim_engine Switch
