lib/net/fattree.mli: Addr Sim_engine Topology
