lib/net/fattree.ml: Addr Array Builder Ecmp Host Layer Packet Printf Switch Topology
