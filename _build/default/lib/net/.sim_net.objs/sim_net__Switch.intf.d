lib/net/switch.mli: Layer Link Packet
