lib/net/multihomed.ml: Addr Array Builder Ecmp Hashtbl Host Layer Packet Printf Switch Topology
