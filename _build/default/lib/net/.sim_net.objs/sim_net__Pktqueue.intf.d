lib/net/pktqueue.mli: Layer Packet
