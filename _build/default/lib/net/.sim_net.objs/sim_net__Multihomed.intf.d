lib/net/multihomed.mli: Sim_engine Topology
