lib/net/switch.ml: Layer Link Packet
