lib/net/topology.ml: Addr Array Host Layer Link List Pktqueue Sim_engine Switch
