lib/net/vl2.ml: Addr Array Builder Ecmp Hashtbl Host Layer List Packet Printf Switch Topology
