lib/net/vl2.mli: Sim_engine Topology
