lib/net/dumbbell.ml: Addr Array Host Layer Packet Printf Switch Topology
