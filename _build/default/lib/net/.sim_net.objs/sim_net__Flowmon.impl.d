lib/net/flowmon.ml: Array Hashtbl Layer Link List Packet Pktqueue Topology
