lib/net/host.mli: Addr Link Packet Sim_engine
