lib/net/pktqueue.ml: Layer Packet Queue Sim_engine
