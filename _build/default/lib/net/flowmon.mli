(** Per-flow network accounting (an ns-3 FlowMonitor analogue).

    Attach one monitor to a built topology and it taps every link and
    queue, aggregating per-connection counters: packets/bytes
    transmitted per layer, drops per layer, and retransmission
    estimates (data segments whose (subflow, sequence) was seen
    before). Passive — attaching a monitor never changes simulation
    behaviour, only adds constant work per forwarded packet. *)

type conn_stats = {
  mutable tx_packets : int;  (** data segments transmitted (all hops) *)
  mutable tx_bytes : int;
  mutable drops : int;
  mutable retransmitted_segments : int;
      (** distinct (subflow, seq) seen more than once at host uplinks *)
  mutable per_layer_packets : (Layer.t * int) list;
  mutable drops_per_layer : (Layer.t * int) list;
}

type t

val attach : Topology.t -> t
(** Install taps on every link and queue of the topology. *)

val conn_stats : t -> conn:int -> conn_stats option
val conns : t -> int list
(** Connections seen, unordered. *)

val total_drops : t -> int

val top_talkers : t -> n:int -> (int * conn_stats) list
(** The [n] connections with the most transmitted bytes, descending. *)
