(** Topology layer tags.

    Every queue/link is tagged with the layer of the device that
    transmits into it, so experiments can report per-layer statistics
    (the paper reports loss rates "at the core and aggregation
    layers"). *)

type t = Host_layer | Edge_layer | Agg_layer | Core_layer

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
