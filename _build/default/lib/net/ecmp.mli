(** Hash-based equal-cost multi-path selection.

    Switches hash the 5-tuple of each packet to pick among equal-cost
    next hops, as in RFC 2992-style ECMP. The hash is deterministic, so
    all packets of a (src, dst, sport, dport) flow follow one path —
    which is exactly why per-packet source-port randomisation in
    MMPTCP's packet-scatter phase sprays packets across all paths. *)

val flow_hash : Packet.t -> int
(** Non-negative hash of the packet's 5-tuple. *)

val select : Packet.t -> salt:int -> n:int -> int
(** [select pkt ~salt ~n] picks an index in [\[0, n)]. [salt] decorrelates
    the choice made by different switches on the same flow (real
    switches use distinct hash seeds; without this, hash polarisation
    would collapse path diversity). *)
