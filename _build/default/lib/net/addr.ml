type t = int

let of_int i =
  if i < 0 then invalid_arg "Addr.of_int: negative";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "h%d" t
