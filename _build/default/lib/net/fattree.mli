(** k-ary FatTree (Al-Fares et al., SIGCOMM 2008) with configurable
    over-subscription and hash-based ECMP.

    For even [k] the fabric has [k] pods, each with [k/2] edge and
    [k/2] aggregation switches, and [(k/2)^2] core switches. With
    over-subscription ratio [oversub], every edge switch serves
    [oversub * k/2] hosts behind its [k/2] uplinks, so the total host
    count is [oversub * k^3/4]. The paper's 512-server 4:1 topology is
    exactly [k = 8, oversub = 4].

    Routing is the standard two-level scheme: upward hops are selected
    by per-switch-salted ECMP hashing on the packet 5-tuple; downward
    hops are deterministic from the destination address. The number of
    equal-cost paths is 1 (same edge), [k/2] (same pod) or [(k/2)^2]
    (different pods); [Topology.path_count] exposes this, which is what
    MMPTCP's topology-aware dup-ACK threshold consumes. *)

type params = {
  k : int;  (** even, >= 2 *)
  oversub : int;  (** hosts per edge-switch uplink; 1 = full bisection *)
  host_spec : Topology.link_spec;  (** host-to-edge links *)
  fabric_spec : Topology.link_spec;  (** edge-agg and agg-core links *)
}

val default_params : ?k:int -> ?oversub:int -> unit -> params
(** Defaults: [k = 4], [oversub = 4], all links [default_link_spec]. *)

val host_count : params -> int

val create : sched:Sim_engine.Scheduler.t -> params -> Topology.t

(** {1 Address arithmetic} *)

val position : params -> Addr.t -> int * int * int
(** [(pod, edge, index)] of a host address. *)

val paths_between : params -> Addr.t -> Addr.t -> int
