lib/dctcp/dctcp.mli: Sim_tcp
