lib/dctcp/dctcp.ml: Float Hashtbl Option Printf Sim_tcp String
