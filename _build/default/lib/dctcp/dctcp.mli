(** DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

    The single-path, ECN-based protocol the paper's introduction
    positions MMPTCP against. Run it over links built with an
    [ecn_threshold] in their {!Sim_net.Topology.link_spec} (the switch
    marking side). The sender keeps the running fraction [alpha] of
    marked bytes, smoothed with gain [g], and once per window cuts
    cwnd by [alpha/2] if the window saw marks. Loss response and
    window growth are standard NewReno.

    Used by the extension benchmarks only; DCTCP is deliberately not
    part of the headline reproduction, which compares MPTCP and
    MMPTCP as the paper's Figure 1 does. *)

val recommended_marking_threshold : int
(** ~17 packets for 100 Mb/s links per the DCTCP guideline (K ≈
    RTT*C/7 rounded up for our defaults). *)

val make : ?g:float -> Sim_tcp.Cong.window -> Sim_tcp.Cong.t
(** [g] defaults to 1/16. *)

val alpha_of : Sim_tcp.Cong.t -> float option
(** Diagnostic: current alpha of a controller created by [make];
    [None] for foreign controllers. *)
