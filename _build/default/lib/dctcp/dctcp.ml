module Cong = Sim_tcp.Cong

let recommended_marking_threshold = 17

(* Alpha registry keyed by controller name instance: we instead embed
   the alpha in a ref captured by the closures and expose it through a
   weak map from the record's physical identity. Simpler: tag the name
   with a unique id and keep a table. *)
let alphas : (int, float ref) Hashtbl.t = Hashtbl.create 16
let next_id = ref 0

let make ?(g = 1. /. 16.) (w : Cong.window) =
  let id = !next_id in
  incr next_id;
  let alpha = ref 0. in
  Hashtbl.replace alphas id alpha;
  let bytes_acked = ref 0 in
  let bytes_marked = ref 0 in
  let window_target = ref 0. in
  let on_ack ~acked ~ece =
    bytes_acked := !bytes_acked + acked;
    if ece then bytes_marked := !bytes_marked + acked;
    (* Normal growth continues; DCTCP reduces proportionally to the
       marking fraction once per observation window (~one cwnd of
       ACKed bytes). *)
    if w.Cong.get_cwnd () < w.Cong.get_ssthresh () then
      Cong.slow_start_increase w ~acked
    else Cong.congestion_avoidance_increase w ~acked;
    if !window_target <= 0. then window_target := w.Cong.get_cwnd ();
    if float_of_int !bytes_acked >= !window_target then begin
      let f = float_of_int !bytes_marked /. float_of_int (max 1 !bytes_acked) in
      alpha := ((1. -. g) *. !alpha) +. (g *. f);
      if !bytes_marked > 0 then begin
        let cwnd = w.Cong.get_cwnd () in
        let reduced = cwnd *. (1. -. (!alpha /. 2.)) in
        w.Cong.set_cwnd (Float.max reduced (float_of_int w.Cong.mss));
        w.Cong.set_ssthresh (w.Cong.get_cwnd ())
      end;
      bytes_acked := 0;
      bytes_marked := 0;
      window_target := w.Cong.get_cwnd ()
    end
  in
  {
    Cong.name = Printf.sprintf "dctcp#%d" id;
    on_ack;
    on_loss = Cong.reno_on_loss w;
  }

let alpha_of (cc : Cong.t) =
  match String.index_opt cc.Cong.name '#' with
  | Some i when String.length cc.Cong.name > 5 && String.sub cc.Cong.name 0 5 = "dctcp" ->
    (try
       let id = int_of_string (String.sub cc.Cong.name (i + 1) (String.length cc.Cong.name - i - 1)) in
       Option.map ( ! ) (Hashtbl.find_opt alphas id)
     with _ -> None)
  | Some _ | None -> None
