(** TCP sender endpoint (one subflow).

    A NewReno sender over an abstract data source. The source
    abstraction is what makes the sender reusable across the three
    stacks in this repository:

    - plain TCP pulls a fixed-size sequential byte range;
    - each MPTCP subflow pulls data-level chunks from the connection
      scheduler and carries the DSN mapping in its segments;
    - MMPTCP's packet-scatter subflow additionally randomises the
      source port per transmitted packet (via [src_port]) and uses a
      topology-derived dup-ACK threshold (via [dupack_threshold]).

    Loss recovery: fast retransmit / NewReno fast recovery with partial
    ACKs, and RTO with exponential backoff followed by ACK-clocked
    retransmission of the remaining holes (no SACK, matching the
    paper-era ns-3 models). Karn's algorithm guards RTT samples. *)

module Time = Sim_engine.Sim_time

(** {1 Data sources} *)

type source = {
  pull : max:int -> (int * int) option;
      (** [pull ~max] allocates the next chunk to this subflow as
          [(dsn, len)] with [0 < len <= max], or [None] when nothing is
          available right now. *)
  has_more : unit -> bool;
      (** Whether the source may ever yield data again; [false] means
          the subflow is done once everything in flight is ACKed. *)
}

val fixed_size_source : int -> source
(** Sequential source of exactly [n] bytes (plain TCP: DSN = sequence
    number). *)

(** {1 Sender} *)

type stats = {
  mutable segments_sent : int;  (** data segments, including rtx *)
  mutable segments_rtx : int;
  mutable bytes_sent : int;
  mutable rto_events : int;
  mutable fast_rtx_events : int;
  mutable acks_received : int;
  mutable dsacks_received : int;
  mutable syn_sent : int;
}

type state = Closed | Syn_sent | Established | Failed

type t

val create :
  host:Sim_net.Host.t ->
  peer:Sim_net.Addr.t ->
  conn:int ->
  subflow:int ->
  params:Tcp_params.t ->
  src_port:(unit -> int) ->
  dst_port:int ->
  source:source ->
  cc:(Cong.window -> Cong.t) ->
  ?dupack_threshold:(unit -> int) ->
  ?on_established:(unit -> unit) ->
  ?on_dsn_acked:(dsn:int -> len:int -> unit) ->
  ?on_all_acked:(unit -> unit) ->
  ?on_dsack:(unit -> unit) ->
  ?on_first_congestion:(unit -> unit) ->
  unit ->
  t
(** [on_first_congestion] fires on the first fast retransmit or RTO —
    the trigger for MMPTCP's congestion-event switching strategy.
    [dupack_threshold] is sampled on every duplicate ACK, so it may be
    time-varying (adaptive thresholds). *)

val connect : t -> unit
(** Send the SYN and start the handshake. *)

val handle : t -> Sim_net.Packet.t -> unit
(** Process an incoming (SYN-)ACK for this subflow. *)

val notify_source_ready : t -> unit
(** Poke the sender after its source gained data (multipath schedulers
    call this when capacity frees up elsewhere). *)

(** {1 Introspection} *)

val state : t -> state
val cwnd : t -> float
val ssthresh : t -> float
val flight : t -> int
val snd_una : t -> int
val snd_nxt : t -> int
val in_recovery : t -> bool
val srtt : t -> Time.t option
val rto : t -> Time.t
val stats : t -> stats
val window : t -> Cong.window
(** The window view handed to congestion control (shared mutable
    state; used by MPTCP to build coupled controllers). *)

val set_cc : t -> (Cong.window -> Cong.t) -> unit
(** Swap the congestion controller (MMPTCP re-links subflows when the
    phase switches). *)
