(** Simulation-global connection identifiers.

    Stand-in for full (addr, port) connection lookup at hosts: each
    transport connection gets a unique id carried in every packet. *)

val fresh : unit -> int
val reset : unit -> unit
(** Restart numbering (test isolation). *)
