(** TCP NewReno congestion control (increase side).

    Slow start below ssthresh, byte-counted congestion avoidance above
    it. Loss response is the shared {!Cong.reno_on_loss}. This is the
    single-path congestion control the paper's PS phase runs ("a single
    congestion window"), and the per-subflow control MPTCP's LIA
    replaces on the increase side only. *)

val make : Cong.window -> Cong.t
