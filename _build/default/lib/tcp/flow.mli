(** A unidirectional single-path TCP flow between two hosts.

    Wires a {!Tcp_tx} on the source host to a {!Tcp_rx} on the
    destination host, binds the connection id in both hosts'
    demultiplexers, and reports completion when the receiver holds all
    [size] bytes (the paper's flow-completion-time definition). *)

module Time = Sim_engine.Sim_time

type t

val start :
  src:Sim_net.Host.t ->
  dst:Sim_net.Host.t ->
  size:int ->
  ?params:Tcp_params.t ->
  ?cc:(Cong.window -> Cong.t) ->
  ?dupack_threshold:(unit -> int) ->
  ?src_port:int ->
  ?dst_port:int ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** Starts the handshake immediately (schedule the call itself for
    deferred starts). Default congestion control is {!Reno.make};
    default source port is derived from the connection id so distinct
    flows hash to distinct ECMP paths. *)

val conn : t -> int
val size : t -> int
val started_at : t -> Time.t
val completed_at : t -> Time.t option
val fct : t -> Time.t option
(** Completion time minus start time, once complete. *)

val is_complete : t -> bool
val bytes_received : t -> int
val tx : t -> Tcp_tx.t
val rx : t -> Tcp_rx.t
val rto_events : t -> int
