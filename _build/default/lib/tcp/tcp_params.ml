module Time = Sim_engine.Sim_time

type t = {
  mss : int;
  initial_window : int;
  min_rto : Time.t;
  initial_rto : Time.t;
  max_rto : Time.t;
  dupack_threshold : int;
  max_syn_retries : int;
  delayed_ack : int;
  delack_timeout : Time.t;
  sack : bool;
}

let default =
  {
    mss = 1400;
    initial_window = 4;
    min_rto = Time.of_ms 200.;
    initial_rto = Time.of_ms 200.;
    max_rto = Time.of_sec 60.;
    dupack_threshold = 3;
    max_syn_retries = 8;
    delayed_ack = 1;
    delack_timeout = Time.of_ms 40.;
    sack = false;
  }

let pp ppf t =
  Format.fprintf ppf
    "mss=%d iw=%d min_rto=%a initial_rto=%a dupack=%d" t.mss t.initial_window
    Time.pp t.min_rto Time.pp t.initial_rto t.dupack_threshold
