(** TCP stack configuration.

    Defaults model the data-centre configuration the paper's ns-3 setup
    used: 1400-byte MSS (1440-byte wire segments), initial window of 4
    segments, and a 200 ms minimum RTO — the parameter whose
    interaction with sub-100 ms short flows produces the pathology
    MMPTCP removes. *)

module Time = Sim_engine.Sim_time

type t = {
  mss : int;  (** payload bytes per full segment *)
  initial_window : int;  (** initial congestion window, in segments *)
  min_rto : Time.t;  (** RTO floor (200 ms by default) *)
  initial_rto : Time.t;  (** RTO before the first RTT sample *)
  max_rto : Time.t;  (** RTO ceiling under exponential backoff *)
  dupack_threshold : int;  (** fast-retransmit threshold (static default) *)
  max_syn_retries : int;
  delayed_ack : int;
      (** ACK every Nth in-order segment; 1 (the default) disables
          coalescing. Out-of-order and duplicate arrivals are always
          acknowledged immediately (RFC 5681). *)
  delack_timeout : Time.t;  (** flush deadline for a withheld ACK *)
  sack : bool;
      (** selective-acknowledgement loss recovery at the sender
          (receivers always advertise SACK blocks). Off by default: the
          paper-era ns-3 MPTCP models recovered with NewReno only,
          which is part of why single losses on tiny subflow windows
          were so costly. The E9 benchmark ablates this. *)
}

val default : t

val pp : Format.formatter -> t -> unit
