lib/tcp/rtt_estimator.ml: Float Int64 Sim_engine Tcp_params
