lib/tcp/cong.mli: Sim_engine
