lib/tcp/intervals.mli:
