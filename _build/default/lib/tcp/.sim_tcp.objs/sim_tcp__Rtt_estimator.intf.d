lib/tcp/rtt_estimator.mli: Sim_engine Tcp_params
