lib/tcp/tcp_rx.mli: Sim_net Tcp_params
