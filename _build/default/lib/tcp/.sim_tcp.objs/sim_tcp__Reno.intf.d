lib/tcp/reno.mli: Cong
