lib/tcp/reno.ml: Cong
