lib/tcp/tcp_params.mli: Format Sim_engine
