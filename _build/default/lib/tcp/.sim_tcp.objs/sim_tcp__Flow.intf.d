lib/tcp/flow.mli: Cong Sim_engine Sim_net Tcp_params Tcp_rx Tcp_tx
