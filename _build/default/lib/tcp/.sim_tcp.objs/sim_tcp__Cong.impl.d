lib/tcp/cong.ml: Float Sim_engine
