lib/tcp/tcp_tx.ml: Cong Float List Queue Rtt_estimator Sim_engine Sim_net Tcp_params
