lib/tcp/tcp_params.ml: Format Sim_engine
