lib/tcp/tcp_rx.ml: Intervals List Sim_engine Sim_net Tcp_params
