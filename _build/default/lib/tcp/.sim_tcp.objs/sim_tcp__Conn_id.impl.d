lib/tcp/conn_id.ml:
