lib/tcp/tcp_tx.mli: Cong Sim_engine Sim_net Tcp_params
