lib/tcp/flow.ml: Conn_id Intervals Reno Sim_engine Sim_net Tcp_params Tcp_rx Tcp_tx
