lib/tcp/conn_id.mli:
