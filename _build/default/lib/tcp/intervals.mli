(** Sets of disjoint half-open byte ranges.

    Used by receivers to track out-of-order arrivals and by multipath
    connections to track data-level coverage. Ranges are normalised:
    disjoint, non-adjacent, sorted. *)

type t

val create : unit -> t

val add : t -> start:int -> stop:int -> int
(** Insert [\[start, stop)]; returns the number of bytes that were not
    already covered. Raises [Invalid_argument] if [stop < start]. *)

val total : t -> int
(** Total covered bytes. *)

val contiguous_from : t -> int -> int
(** [contiguous_from t x] is the largest [y >= x] with [\[x, y)] fully
    covered ([x] itself if [x] is uncovered). *)

val is_covered : t -> start:int -> stop:int -> bool
val spans : t -> (int * int) list
(** The normalised ranges, sorted. *)

val span_count : t -> int
