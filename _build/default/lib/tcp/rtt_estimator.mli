(** RFC 6298 round-trip-time estimation.

    SRTT/RTTVAR smoothing with the standard gains, RTO floored at
    [min_rto] and capped at [max_rto]. Samples from retransmitted
    segments must not be fed in (Karn's algorithm) — the caller
    enforces that. *)

module Time = Sim_engine.Sim_time

type t

val create : params:Tcp_params.t -> t

val observe : t -> Time.t -> unit
(** Feed one RTT sample. *)

val srtt : t -> Time.t option
(** Smoothed RTT; [None] before the first sample. *)

val rttvar : t -> Time.t option
val rto : t -> Time.t
(** Current retransmission timeout (before backoff), clamped to
    [\[min_rto, max_rto\]]; [initial_rto] before the first sample. *)

val samples : t -> int
