(** TCP receiver endpoint (one subflow).

    Answers SYNs with SYN-ACKs, buffers out-of-order data, and emits
    cumulative ACKs carrying up to three SACK blocks. Duplicate data
    arrivals set the [dup_seen] flag on the ACK (a DSACK stand-in that
    adaptive dup-ACK-threshold senders can exploit, cf. RR-TCP).

    ACKs are immediate by default; setting [params.delayed_ack > 1]
    coalesces in-order arrivals (flushed by count or by the delayed-ACK
    timer), while out-of-order, duplicate and hole-filling arrivals are
    always acknowledged immediately per RFC 5681.

    The receive window is unbounded — data-centre receivers are not the
    bottleneck in any of the paper's experiments. *)

type t

val create :
  ?params:Tcp_params.t ->
  host:Sim_net.Host.t ->
  peer:Sim_net.Addr.t ->
  conn:int ->
  subflow:int ->
  on_data:(dsn:int -> len:int -> unit) ->
  unit ->
  t
(** [on_data] fires for every data arrival (duplicates included) with
    the segment's data-level sequence; connection-level logic dedupes
    via its own interval set. *)

val handle : t -> Sim_net.Packet.t -> unit
val rcv_nxt : t -> int
val unique_bytes : t -> int
val acks_sent : t -> int
val dup_segments : t -> int
val reorder_spans : t -> int
(** Current number of disjoint out-of-order blocks (diagnostic). *)
