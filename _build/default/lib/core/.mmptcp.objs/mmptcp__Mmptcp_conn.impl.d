lib/core/mmptcp_conn.ml: Array Lazy List Sim_engine Sim_mptcp Sim_net Sim_tcp Strategy
