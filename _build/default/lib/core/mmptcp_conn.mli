(** MMPTCP: the paper's hybrid transport connection.

    Phase 1 — {b Packet Scatter}: one TCP congestion window whose
    packets each carry a fresh random source port, so hash-based ECMP
    sprays them across every available path (scatter is initiated at
    the end host, not in switches). Reordering-induced duplicate ACKs
    are absorbed by a configurable dup-ACK threshold, by default
    derived from the topology's equal-cost path count.

    Phase 2 — {b MPTCP}: when the switching strategy fires, [subflows]
    regular subflows are opened (full handshakes) and take over all
    unassigned data under LIA coupled congestion control. The scatter
    flow receives no new data and is deactivated once its window
    drains.

    Short flows complete inside phase 1 and enjoy scatter's burst
    tolerance; long flows spend their life in phase 2 and enjoy
    MPTCP's throughput — the "battle that both can win". *)

module Time = Sim_engine.Sim_time

type phase = Packet_scatter | Multipath

type t

val start :
  src:Sim_net.Host.t ->
  dst:Sim_net.Host.t ->
  size:int ->
  rng:Sim_engine.Rng.t ->
  ?strategy:Strategy.t ->
  ?params:Sim_tcp.Tcp_params.t ->
  ?paths:int ->
  ?on_complete:(t -> unit) ->
  ?on_switch:(t -> unit) ->
  unit ->
  t
(** [paths] is the number of equal-cost paths between the endpoints
    (callers get it from [Topology.path_count]); it feeds the
    [Topology_aware] dup-ACK strategy. [rng] drives per-packet source
    ports. *)

val conn : t -> int
val size : t -> int
val phase : t -> phase
val started_at : t -> Time.t
val completed_at : t -> Time.t option
val switched_at : t -> Time.t option
val fct : t -> Time.t option
val is_complete : t -> bool
val bytes_received : t -> int
val rto_events : t -> int
val fast_rtx_events : t -> int
val spurious_rtx_signals : t -> int
(** DSACK-style duplicate-arrival signals received by the scatter
    sender — a measure of how often reordering was mistaken for loss. *)

val scatter_tx : t -> Sim_tcp.Tcp_tx.t
val multipath_txs : t -> Sim_tcp.Tcp_tx.t array
(** Empty before the switch. *)

val current_dupack_threshold : t -> int
val total_cwnd : t -> float
