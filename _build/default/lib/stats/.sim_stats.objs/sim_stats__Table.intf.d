lib/stats/table.mli:
