lib/stats/histogram.mli:
