lib/stats/csv.mli:
