lib/stats/csv.ml: Buffer Fun List Printf String
