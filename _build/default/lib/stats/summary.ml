type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean a =
  if Array.length a = 0 then invalid_arg "Summary.mean: empty";
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0. || q > 100. then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let of_array a =
  if Array.length a = 0 then invalid_arg "Summary.of_array: empty";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p50 = percentile sorted 50.;
    p90 = percentile sorted 90.;
    p99 = percentile sorted 99.;
  }

let of_list l = of_array (Array.of_list l)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f" t.n
    t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
