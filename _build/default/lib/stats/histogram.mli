(** Fixed-width histograms (for FCT distributions à la Figure 1(b/c)). *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Values below [lo] land in the first bucket, values at or above
    [hi] in a dedicated overflow bucket. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> int array
(** [buckets + 1] entries; the last is the overflow bucket. *)

val bucket_bounds : t -> int -> float * float
(** Bounds of bucket [i]; the overflow bucket is [(hi, infinity)]. *)

val overflow : t -> int

val render : ?width:int -> t -> string
(** ASCII rendering, one line per non-empty bucket. *)
