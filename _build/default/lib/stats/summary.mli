(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1); 0 when n < 2 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val of_list : float list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 100\]]; linear
    interpolation between order statistics. The array must be sorted. *)

val mean : float array -> float
val stddev : float array -> float

val pp : Format.formatter -> t -> unit
