(** An MPTCP connection.

    [subflows] independent TCP subflows carry one byte stream. Each
    subflow gets a distinct source port, so hash-based ECMP (usually)
    routes it over a distinct path; LIA couples their congestion
    windows. This is the protocol whose short-flow behaviour Figure
    1(a)/(b) of the paper characterises: with many subflows each window
    is tiny, single losses cannot be recovered by fast retransmit, and
    the flow stalls for a full RTO. *)

module Time = Sim_engine.Sim_time

type t

val start :
  src:Sim_net.Host.t ->
  dst:Sim_net.Host.t ->
  size:int ->
  subflows:int ->
  ?params:Sim_tcp.Tcp_params.t ->
  ?coupled:bool ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** All subflows open (SYN) immediately. [coupled = false] replaces LIA
    with uncoupled per-subflow Reno (ablation baseline). *)

val conn : t -> int
val size : t -> int
val subflow_count : t -> int
val started_at : t -> Time.t
val completed_at : t -> Time.t option
val fct : t -> Time.t option
val is_complete : t -> bool
val bytes_received : t -> int
val rto_events : t -> int
(** Summed over subflows. *)

val fast_rtx_events : t -> int
val subflow_tx : t -> int -> Sim_tcp.Tcp_tx.t
val lia_alpha : t -> float option
(** [None] when running uncoupled. *)

val total_cwnd : t -> float
