(** Shared data-level state of a multipath connection.

    One side allocates data-sequence ranges to subflows on demand (the
    transmission opportunity *is* the scheduler: whichever subflow has
    congestion-window space pulls the next chunk); the other side
    tracks data-level coverage to detect completion — the paper's
    flow-completion definition (all bytes received, any subflow). *)

module Time = Sim_engine.Sim_time

type t

val create :
  sched:Sim_engine.Scheduler.t -> size:int -> on_complete:(unit -> unit) -> t

(** {1 Sender side} *)

val pull : t -> max:int -> (int * int) option
(** Allocate the next [(dsn, len)] chunk, [len <= max]. *)

val assigned : t -> int
(** Bytes allocated to subflows so far. *)

val unassigned : t -> bool
(** Whether unallocated data remains. *)

(** {1 Receiver side} *)

val deliver : t -> dsn:int -> len:int -> unit
(** Record received data (duplicates are fine); fires [on_complete]
    exactly once when coverage reaches [size]. *)

val received_bytes : t -> int
val is_complete : t -> bool
val completed_at : t -> Time.t option
val size : t -> int
