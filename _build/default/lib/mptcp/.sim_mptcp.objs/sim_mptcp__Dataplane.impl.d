lib/mptcp/dataplane.ml: Sim_engine Sim_tcp
