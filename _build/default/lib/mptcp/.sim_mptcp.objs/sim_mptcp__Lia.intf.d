lib/mptcp/lia.mli: Sim_tcp
