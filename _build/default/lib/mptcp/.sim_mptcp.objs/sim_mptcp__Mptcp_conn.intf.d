lib/mptcp/mptcp_conn.mli: Sim_engine Sim_net Sim_tcp
