lib/mptcp/dataplane.mli: Sim_engine
