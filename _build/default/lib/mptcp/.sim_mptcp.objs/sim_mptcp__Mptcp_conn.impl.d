lib/mptcp/mptcp_conn.ml: Array Dataplane Lazy Lia Option Sim_engine Sim_net Sim_tcp
