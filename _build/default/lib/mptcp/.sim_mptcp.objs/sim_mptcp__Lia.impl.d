lib/mptcp/lia.ml: Float List Sim_engine Sim_tcp
