module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Intervals = Sim_tcp.Intervals

type t = {
  sched : Scheduler.t;
  size : int;
  mutable next_dsn : int;
  received : Intervals.t;
  mutable completed_at : Time.t option;
  on_complete : unit -> unit;
}

let create ~sched ~size ~on_complete =
  if size < 0 then invalid_arg "Dataplane.create: negative size";
  {
    sched;
    size;
    next_dsn = 0;
    received = Intervals.create ();
    completed_at = None;
    on_complete;
  }

let pull t ~max =
  if max <= 0 then invalid_arg "Dataplane.pull: max must be positive";
  if t.next_dsn >= t.size then None
  else begin
    let len = min max (t.size - t.next_dsn) in
    let dsn = t.next_dsn in
    t.next_dsn <- t.next_dsn + len;
    Some (dsn, len)
  end

let assigned t = t.next_dsn
let unassigned t = t.next_dsn < t.size

let deliver t ~dsn ~len =
  if dsn >= 0 && t.completed_at = None then begin
    ignore (Intervals.add t.received ~start:dsn ~stop:(dsn + len));
    if Intervals.total t.received >= t.size then begin
      t.completed_at <- Some (Scheduler.now t.sched);
      t.on_complete ()
    end
  end

let received_bytes t = Intervals.total t.received
let is_complete t = t.completed_at <> None
let completed_at t = t.completed_at
let size t = t.size
