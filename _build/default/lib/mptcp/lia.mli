(** Linked-Increase congestion control (RFC 6356), the MPTCP coupled
    algorithm evaluated in the paper.

    All subflows of a connection share a {!group}. On every ACK the
    group computes

    {v alpha = cwnd_total * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2 v}

    and subflow [i] increases by
    [min(alpha * acked * mss / cwnd_total, acked * mss / w_i)] bytes in
    congestion avoidance — never more aggressive than an uncoupled TCP
    on its best path, and shifting load away from congested paths.
    Slow start and the loss response are the standard per-subflow
    mechanisms. *)

type group

val make_group : unit -> group

val attach : group -> Sim_tcp.Cong.window -> Sim_tcp.Cong.t
(** Join a subflow's window to the group and get its controller. *)

val subflow_count : group -> int

val alpha : group -> float
(** Current coupling factor (diagnostic; recomputed on demand). *)
