(* Integration tests: the paper's qualitative claims at miniature
   scale. These run full mixed workloads (tens of seconds of simulated
   time each) and assert the *shapes* the paper reports, not absolute
   numbers. Seeds are fixed; results are deterministic. *)

module Time = Sim_engine.Sim_time
module Scenario = Sim_workload.Scenario
module Summary = Sim_stats.Summary

let check_bool = Alcotest.(check bool)

let config protocol =
  {
    Scenario.default_config with
    Scenario.protocol;
    short_flows = 150;
    seed = 7;
    horizon = Time.of_sec 6.;
  }

(* Cache scenario runs: several tests interrogate the same three
   simulations. *)
let run_cached =
  let cache = Hashtbl.create 4 in
  fun name protocol ->
    match Hashtbl.find_opt cache name with
    | Some r -> r
    | None ->
      let r = Scenario.run (config protocol) in
      Hashtbl.replace cache name r;
      r

let mptcp1 () = run_cached "mptcp1" (Scenario.Mptcp_proto { subflows = 1; coupled = true })
let mptcp8 () = run_cached "mptcp8" (Scenario.Mptcp_proto { subflows = 8; coupled = true })
let mmptcp () = run_cached "mmptcp" (Scenario.Mmptcp_proto Mmptcp.Strategy.default)

let stats r = Summary.of_array (Scenario.short_fcts_ms r)

(* Figure 1(a) shape: more subflows, more RTO-bound short flows and a
   larger mean completion time. *)
let test_fig1a_shape () =
  let r1 = mptcp1 () and r8 = mptcp8 () in
  let s1 = stats r1 and s8 = stats r8 in
  check_bool
    (Printf.sprintf "rto flows grow with subflows (%d -> %d)"
       (Scenario.shorts_with_rto r1) (Scenario.shorts_with_rto r8))
    true
    (Scenario.shorts_with_rto r8 > Scenario.shorts_with_rto r1);
  check_bool
    (Printf.sprintf "mean grows with subflows (%.1f -> %.1f)" s1.Summary.mean
       s8.Summary.mean)
    true
    (s8.Summary.mean > s1.Summary.mean)

(* Figure 1(b) vs 1(c): MMPTCP suffers far fewer RTO-bound short flows
   than MPTCP-8 and improves the mean. *)
let test_fig1bc_shape () =
  let r8 = mptcp8 () and rm = mmptcp () in
  let s8 = stats r8 and sm = stats rm in
  check_bool
    (Printf.sprintf "fewer rto flows (%d vs %d)" (Scenario.shorts_with_rto rm)
       (Scenario.shorts_with_rto r8))
    true
    (2 * Scenario.shorts_with_rto rm < Scenario.shorts_with_rto r8);
  check_bool
    (Printf.sprintf "mean improves (%.1f vs %.1f)" sm.Summary.mean s8.Summary.mean)
    true
    (sm.Summary.mean < s8.Summary.mean)

(* Both protocols finish the workload. *)
let test_everything_completes () =
  List.iter
    (fun r ->
      check_bool "few incomplete shorts" true (Scenario.incomplete_shorts r <= 2))
    [ mptcp8 (); mmptcp () ]

(* The paper: "both protocols achieve the same average throughput for
   long flows and overall network utilisation". *)
let long_mean r =
  let g = Scenario.long_goodput_mbps r in
  if Array.length g = 0 then 0. else Summary.mean g

let test_long_flows_unhurt () =
  let g8 = long_mean (mptcp8 ()) in
  let gm = long_mean (mmptcp ()) in
  check_bool
    (Printf.sprintf "long goodput level (%.1f vs %.1f Mb/s)" gm g8)
    true
    (gm > 0.8 *. g8 && gm < 1.25 *. g8)

(* MMPTCP's worst case must not be dramatically worse than MPTCP's:
   the tail collapses or at least does not explode. *)
let test_tail_not_worse () =
  let s8 = stats (mptcp8 ()) and sm = stats (mmptcp ()) in
  check_bool
    (Printf.sprintf "p99 comparable or better (%.1f vs %.1f)" sm.Summary.p99
       s8.Summary.p99)
    true
    (sm.Summary.p99 < 1.5 *. s8.Summary.p99)

(* Short MMPTCP flows (70 KB < 100 KB threshold) must all have finished
   inside the scatter phase: no short flow should ever have opened
   subflows. This is checked indirectly: scatter-only flows never pay
   subflow handshakes, so their minimum FCT stays at the TCP level. *)
let test_mmptcp_shorts_stay_scatter () =
  let rm = mmptcp () in
  let sm = stats rm in
  check_bool "fast flows exist (scatter phase, no handshake penalty)" true
    (sm.Summary.min < 30.)

let run_seeded seed =
  let cfg =
    { (config (Scenario.Mmptcp_proto Mmptcp.Strategy.default)) with Scenario.seed }
  in
  let r = Scenario.run cfg in
  Array.fold_left ( +. ) 0. (Scenario.short_fcts_ms r)

(* Full-stack determinism: identical seeds give identical results for
   the complete MMPTCP scenario (scatter randomisation included). *)
let test_full_determinism () =
  Alcotest.(check (float 1e-9)) "deterministic" (run_seeded 123) (run_seeded 123)

let () =
  Alcotest.run "integration"
    [
      ( "paper-shapes",
        [
          Alcotest.test_case "fig1a shape" `Slow test_fig1a_shape;
          Alcotest.test_case "fig1b vs 1c shape" `Slow test_fig1bc_shape;
          Alcotest.test_case "workload completes" `Slow test_everything_completes;
          Alcotest.test_case "long flows unhurt" `Slow test_long_flows_unhurt;
          Alcotest.test_case "tail not worse" `Slow test_tail_not_worse;
          Alcotest.test_case "shorts stay in scatter" `Slow test_mmptcp_shorts_stay_scatter;
        ] );
      ( "determinism",
        [ Alcotest.test_case "full stack" `Slow test_full_determinism ] );
    ]
