(* MPTCP tests: LIA coupling maths, the shared dataplane, and full
   multipath connections over reference topologies. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Fattree = Sim_net.Fattree
module Multihomed = Sim_net.Multihomed
module Cong = Sim_tcp.Cong
module Lia = Sim_mptcp.Lia
module Dataplane = Sim_mptcp.Dataplane
module Mptcp_conn = Sim_mptcp.Mptcp_conn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A synthetic window over refs, for exercising controllers without a
   TCP stack behind them. *)
let fake_window ?(mss = 1400) ?(cwnd = 14_000.) ?(ssthresh = 7_000.)
    ?(rtt_ms = 1.) () =
  let c = ref cwnd and s = ref ssthresh in
  let w =
    {
      Cong.get_cwnd = (fun () -> !c);
      set_cwnd = (fun v -> c := v);
      get_ssthresh = (fun () -> !s);
      set_ssthresh = (fun v -> s := v);
      flight = (fun () -> int_of_float !c);
      mss;
      srtt = (fun () -> Some (Time.of_ms rtt_ms));
    }
  in
  (w, c, s)

(* ------------------------------------------------------------------ *)
(* LIA *)

let test_lia_alpha_empty () =
  let g = Lia.make_group () in
  Alcotest.(check (float 1e-9)) "empty group" 1. (Lia.alpha g)

let test_lia_alpha_symmetric () =
  (* Two identical subflows: alpha = total * (c/r^2) / (2c/r)^2 = 1/2. *)
  let g = Lia.make_group () in
  let w1, _, _ = fake_window () and w2, _, _ = fake_window () in
  ignore (Lia.attach g w1);
  ignore (Lia.attach g w2);
  check_int "count" 2 (Lia.subflow_count g);
  Alcotest.(check (float 1e-9)) "alpha" 0.5 (Lia.alpha g)

let test_lia_alpha_n_symmetric () =
  (* n identical subflows: alpha = 1/n, so the aggregate grows like one
     TCP - the design goal of LIA. *)
  let g = Lia.make_group () in
  for _ = 1 to 8 do
    let w, _, _ = fake_window () in
    ignore (Lia.attach g w)
  done;
  Alcotest.(check (float 1e-9)) "alpha 1/8" 0.125 (Lia.alpha g)

let test_lia_increase_capped_by_uncoupled () =
  (* In congestion avoidance the coupled increase can never exceed what
     a standalone TCP would do on the same subflow. *)
  let g = Lia.make_group () in
  let w1, c1, s1 = fake_window ~cwnd:14_000. ~ssthresh:7_000. () in
  let w2, _, _ = fake_window ~cwnd:140_000. ~ssthresh:7_000. () in
  let cc1 = Lia.attach g w1 in
  ignore (Lia.attach g w2);
  ignore s1;
  let before = !c1 in
  cc1.Cong.on_ack ~acked:1400 ~ece:false;
  let coupled_inc = !c1 -. before in
  (* Standalone byte-counted AIMD would add mss*mss/cwnd = 140 bytes. *)
  check_bool "capped" true (coupled_inc <= 140. +. 1e-9);
  check_bool "positive" true (coupled_inc > 0.)

let test_lia_slow_start_uncoupled () =
  let g = Lia.make_group () in
  let w, c, _ = fake_window ~cwnd:2_800. ~ssthresh:100_000. () in
  let cc = Lia.attach g w in
  cc.Cong.on_ack ~acked:1400 ~ece:false;
  Alcotest.(check (float 1e-9)) "slow start adds acked" 4_200. !c

let test_lia_loss_halves () =
  let g = Lia.make_group () in
  let w, c, s = fake_window ~cwnd:14_000. ~ssthresh:100_000. () in
  let cc = Lia.attach g w in
  cc.Cong.on_loss Cong.Fast_retransmit;
  Alcotest.(check (float 1e-9)) "ssthresh = flight/2" 7_000. !s;
  Alcotest.(check (float 1e-9)) "cwnd = ssthresh" 7_000. !c;
  cc.Cong.on_loss Cong.Timeout;
  Alcotest.(check (float 1e-9)) "timeout collapses to 1 mss" 1_400. !c

let test_lia_shifts_away_from_congested () =
  (* A subflow with a much larger RTT (a congested path) should receive
     a smaller coupled increase than the fast subflow. *)
  let g = Lia.make_group () in
  let wf, cf, _ = fake_window ~cwnd:14_000. ~ssthresh:1. ~rtt_ms:0.5 () in
  let ws, cs, _ = fake_window ~cwnd:14_000. ~ssthresh:1. ~rtt_ms:10. () in
  let ccf = Lia.attach g wf and ccs = Lia.attach g ws in
  let f0 = !cf and s0 = !cs in
  for _ = 1 to 10 do
    ccf.Cong.on_ack ~acked:1400 ~ece:false;
    ccs.Cong.on_ack ~acked:1400 ~ece:false
  done;
  (* Both windows are equal, so per-ack increases are equal; but the
     fast path gets 20x more ACKs per unit time in reality. Here we
     check the per-ack increase at least does not favour the slow
     path. *)
  check_bool "no bias to congested path" true (!cf -. f0 >= !cs -. s0 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Dataplane *)

let test_dataplane_sequential_pull () =
  let sched = Scheduler.create () in
  let p = Dataplane.create ~sched ~size:3_000 ~on_complete:(fun () -> ()) in
  Alcotest.(check (option (pair int int))) "first" (Some (0, 1400)) (Dataplane.pull p ~max:1400);
  Alcotest.(check (option (pair int int))) "second" (Some (1400, 1400)) (Dataplane.pull p ~max:1400);
  Alcotest.(check (option (pair int int))) "tail" (Some (2800, 200)) (Dataplane.pull p ~max:1400);
  Alcotest.(check (option (pair int int))) "drained" None (Dataplane.pull p ~max:1400);
  check_bool "nothing unassigned" false (Dataplane.unassigned p);
  check_int "assigned" 3_000 (Dataplane.assigned p)

let test_dataplane_completion_once () =
  let sched = Scheduler.create () in
  let fired = ref 0 in
  let p = Dataplane.create ~sched ~size:1_000 ~on_complete:(fun () -> incr fired) in
  Dataplane.deliver p ~dsn:0 ~len:500;
  check_int "not yet" 0 !fired;
  Dataplane.deliver p ~dsn:500 ~len:500;
  check_int "fired" 1 !fired;
  Dataplane.deliver p ~dsn:0 ~len:1000;
  check_int "idempotent" 1 !fired;
  check_bool "complete" true (Dataplane.is_complete p)

let test_dataplane_duplicates_ignored () =
  let sched = Scheduler.create () in
  let p = Dataplane.create ~sched ~size:2_000 ~on_complete:(fun () -> ()) in
  Dataplane.deliver p ~dsn:0 ~len:1000;
  Dataplane.deliver p ~dsn:0 ~len:1000;
  check_int "unique bytes only" 1000 (Dataplane.received_bytes p);
  check_bool "incomplete" false (Dataplane.is_complete p)

let test_dataplane_out_of_order_delivery () =
  let sched = Scheduler.create () in
  let done_ = ref false in
  let p = Dataplane.create ~sched ~size:3_000 ~on_complete:(fun () -> done_ := true) in
  Dataplane.deliver p ~dsn:2_000 ~len:1_000;
  Dataplane.deliver p ~dsn:0 ~len:1_000;
  Dataplane.deliver p ~dsn:1_000 ~len:1_000;
  check_bool "completes out of order" true !done_

(* ------------------------------------------------------------------ *)
(* Connections *)

let test_mptcp_completes_direct () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let c =
    Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:70_000 ~subflows:4 ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Mptcp_conn.is_complete c);
  check_int "bytes" 70_000 (Mptcp_conn.bytes_received c);
  check_int "subflows" 4 (Mptcp_conn.subflow_count c)

let test_mptcp_completes_fattree () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  let c =
    Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 20)
      ~size:200_000 ~subflows:8 ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Mptcp_conn.is_complete c);
  check_int "bytes" 200_000 (Mptcp_conn.bytes_received c)

let test_mptcp_single_subflow_close_to_tcp () =
  let run_mptcp () =
    let sched = Scheduler.create () in
    let net = Dumbbell.direct ~sched () in
    let c =
      Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
        ~size:100_000 ~subflows:1 ()
    in
    Scheduler.run ~until:(Time.of_sec 10.) sched;
    Option.get (Mptcp_conn.fct c)
  in
  let run_tcp () =
    let sched = Scheduler.create () in
    let net = Dumbbell.direct ~sched () in
    let f =
      Sim_tcp.Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
        ~size:100_000 ()
    in
    Scheduler.run ~until:(Time.of_sec 10.) sched;
    Option.get (Sim_tcp.Flow.fct f)
  in
  let tm = Time.to_ms (run_mptcp ()) and tt = Time.to_ms (run_tcp ()) in
  check_bool "within 10%" true (Float.abs (tm -. tt) /. tt < 0.1)

let test_mptcp_multihomed_beats_tcp () =
  (* On a dual-homed fat-tree an 8-subflow connection can use both host
     NICs; single-path TCP cannot. This is the Roadmap claim about
     multi-homed topologies. *)
  let size = 4_000_000 in
  let run_proto n_subflows =
    let sched = Scheduler.create () in
    let net =
      Multihomed.create ~sched (Multihomed.default_params ~k:4 ~oversub:1 ())
    in
    let c =
      Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 12)
        ~size ~subflows:n_subflows ()
    in
    Scheduler.run ~until:(Time.of_sec 30.) sched;
    (Mptcp_conn.is_complete c, Option.map Time.to_ms (Mptcp_conn.fct c))
  in
  let ok8, t8 = run_proto 8 in
  let ok1, t1 = run_proto 1 in
  check_bool "both complete" true (ok8 && ok1);
  match (t8, t1) with
  | Some t8, Some t1 -> check_bool "8 subflows faster" true (t8 < t1 *. 0.8)
  | _ -> Alcotest.fail "missing fct"

let test_mptcp_uncoupled_runs () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let c =
    Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:50_000 ~subflows:4 ~coupled:false ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Mptcp_conn.is_complete c);
  check_bool "no lia alpha" true (Mptcp_conn.lia_alpha c = None)

let test_mptcp_random_loss_property =
  QCheck.Test.make ~name:"mptcp completes under random loss" ~count:15
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, percent) ->
      let sched = Scheduler.create () in
      let net = Dumbbell.direct ~sched () in
      let rng = Sim_engine.Rng.create ~seed in
      (* Drop data packets on the forward link with the given
         probability. *)
      Sim_net.Link.attach net.Topology.links.(0) (fun pkt ->
          if
            (not (Sim_net.Packet.is_data pkt))
            || Sim_engine.Rng.int rng 100 >= percent
          then Sim_net.Host.receive (Topology.host net 1) pkt);
      let c =
        Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
          ~size:50_000 ~subflows:4 ()
      in
      Scheduler.run ~until:(Time.of_sec 200.) sched;
      Mptcp_conn.is_complete c && Mptcp_conn.bytes_received c = 50_000)

let test_mptcp_invalid_subflows () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  Alcotest.check_raises "zero subflows"
    (Invalid_argument "Mptcp_conn.start: subflows must be >= 1") (fun () ->
      ignore
        (Mptcp_conn.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
           ~size:1 ~subflows:0 ()))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_mptcp"
    [
      ( "lia",
        [
          Alcotest.test_case "alpha empty" `Quick test_lia_alpha_empty;
          Alcotest.test_case "alpha symmetric" `Quick test_lia_alpha_symmetric;
          Alcotest.test_case "alpha 1/n" `Quick test_lia_alpha_n_symmetric;
          Alcotest.test_case "capped by uncoupled" `Quick test_lia_increase_capped_by_uncoupled;
          Alcotest.test_case "slow start" `Quick test_lia_slow_start_uncoupled;
          Alcotest.test_case "loss response" `Quick test_lia_loss_halves;
          Alcotest.test_case "no bias to congested" `Quick test_lia_shifts_away_from_congested;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "sequential pull" `Quick test_dataplane_sequential_pull;
          Alcotest.test_case "completion once" `Quick test_dataplane_completion_once;
          Alcotest.test_case "duplicates" `Quick test_dataplane_duplicates_ignored;
          Alcotest.test_case "out of order" `Quick test_dataplane_out_of_order_delivery;
        ] );
      ( "connection",
        [
          Alcotest.test_case "completes direct" `Quick test_mptcp_completes_direct;
          Alcotest.test_case "completes fattree" `Quick test_mptcp_completes_fattree;
          Alcotest.test_case "1 subflow ~ tcp" `Quick test_mptcp_single_subflow_close_to_tcp;
          Alcotest.test_case "multihomed beats tcp" `Slow test_mptcp_multihomed_beats_tcp;
          Alcotest.test_case "uncoupled" `Quick test_mptcp_uncoupled_runs;
          Alcotest.test_case "invalid subflows" `Quick test_mptcp_invalid_subflows;
          qt test_mptcp_random_loss_property;
        ] );
    ]
