(* Workload tests: traffic matrices and small scenario runs. *)

module Time = Sim_engine.Sim_time
module Rng = Sim_engine.Rng
module Traffic_matrix = Sim_workload.Traffic_matrix
module Scenario = Sim_workload.Scenario

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Traffic matrices *)

let test_permutation_is_derangement () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:1) ~hosts:50
      Traffic_matrix.Permutation
  in
  let dests = List.init 50 (fun src -> Traffic_matrix.dest tm ~src) in
  List.iteri (fun src d -> check_bool "no self" true (src <> d)) dests;
  check_int "is a permutation" 50
    (List.length (List.sort_uniq compare dests))

let test_permutation_stable () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:2) ~hosts:20
      Traffic_matrix.Permutation
  in
  check_int "same partner every time"
    (Traffic_matrix.dest tm ~src:5)
    (Traffic_matrix.dest tm ~src:5)

let test_stride () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:3) ~hosts:10
      (Traffic_matrix.Stride 3)
  in
  check_int "stride" 8 (Traffic_matrix.dest tm ~src:5);
  check_int "wraps" 2 (Traffic_matrix.dest tm ~src:9)

let test_stride_self_rejected () =
  Alcotest.check_raises "stride 0 maps to self"
    (Invalid_argument "Traffic_matrix.create: stride maps hosts to themselves")
    (fun () ->
      ignore
        (Traffic_matrix.create ~rng:(Rng.create ~seed:4) ~hosts:10
           (Traffic_matrix.Stride 10)))

let test_random_never_self () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:5) ~hosts:5 Traffic_matrix.Random
  in
  for _ = 1 to 200 do
    check_bool "no self" true (Traffic_matrix.dest tm ~src:2 <> 2)
  done

let test_hotspot_senders_hit_targets () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:6) ~hosts:40
      (Traffic_matrix.Hotspot { targets = 2; fraction = 1.0 })
  in
  (* With fraction 1.0 every non-hot host sends to a hot target. *)
  let dests =
    List.init 40 (fun src -> (src, Traffic_matrix.dest tm ~src))
  in
  let hot =
    List.sort_uniq compare (List.map snd dests)
  in
  (* All destinations drawn from <= 2 + permutation fallbacks for the
     hot hosts themselves. *)
  check_bool "few distinct destinations" true (List.length hot <= 6);
  List.iter (fun (src, d) -> check_bool "no self" true (src <> d)) dests

let test_incast () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:7) ~hosts:20
      (Traffic_matrix.Incast { target = 3; fanin = 8 })
  in
  let senders = Traffic_matrix.incast_senders tm in
  check_int "fanin" 8 (List.length senders);
  check_bool "target not a sender" true (not (List.mem 3 senders));
  List.iter
    (fun s -> check_int "sends to target" 3 (Traffic_matrix.dest tm ~src:s))
    senders

let test_incast_non_sender_rejected () =
  let tm =
    Traffic_matrix.create ~rng:(Rng.create ~seed:8) ~hosts:20
      (Traffic_matrix.Incast { target = 3; fanin = 5 })
  in
  let senders = Traffic_matrix.incast_senders tm in
  let non_sender =
    List.find (fun i -> i <> 3 && not (List.mem i senders)) (List.init 20 Fun.id)
  in
  Alcotest.check_raises "non sender"
    (Invalid_argument "Traffic_matrix.dest: host is not an incast sender")
    (fun () -> ignore (Traffic_matrix.dest tm ~src:non_sender))

let prop_permutation_all_sizes =
  QCheck.Test.make ~name:"permutation valid for any size" ~count:100
    QCheck.(pair small_int (int_range 2 100))
    (fun (seed, n) ->
      let tm =
        Traffic_matrix.create ~rng:(Rng.create ~seed) ~hosts:n
          Traffic_matrix.Permutation
      in
      let dests = List.init n (fun src -> Traffic_matrix.dest tm ~src) in
      List.for_all2 (fun s d -> s <> d) (List.init n Fun.id) dests
      && List.length (List.sort_uniq compare dests) = n)

let test_kind_printing () =
  Alcotest.(check string) "permutation" "permutation"
    (Traffic_matrix.kind_to_string Traffic_matrix.Permutation);
  Alcotest.(check string) "incast" "incast(3<-8)"
    (Traffic_matrix.kind_to_string (Traffic_matrix.Incast { target = 3; fanin = 8 }))

(* ------------------------------------------------------------------ *)
(* Scenario runs (small but real) *)

let small_config proto =
  {
    Scenario.default_config with
    Scenario.topo =
      Scenario.Fattree_topo (Sim_net.Fattree.default_params ~k:4 ~oversub:1 ());
    protocol = proto;
    seed = 11;
    short_flows = 24;
    short_rate = 50.;
    horizon = Time.of_sec 3.;
  }

let test_scenario_tcp_completes () =
  let r = Scenario.run (small_config Scenario.Tcp_proto) in
  check_int "all shorts scheduled" 24 (Array.length r.Scenario.shorts);
  check_int "all complete" 0 (Scenario.incomplete_shorts r);
  check_bool "longs present" true (Array.length r.Scenario.longs > 0);
  check_bool "events processed" true (r.Scenario.events > 0)

let test_scenario_records_sorted_and_ids () =
  let r = Scenario.run (small_config Scenario.Tcp_proto) in
  Array.iteri
    (fun i f ->
      check_int "sequential ids" i f.Scenario.id;
      if i > 0 then
        check_bool "sorted by start" true
          (Time.compare r.Scenario.shorts.(i - 1).Scenario.start f.Scenario.start <= 0))
    r.Scenario.shorts

let test_scenario_deterministic () =
  let fct_sum cfg =
    let r = Scenario.run cfg in
    Array.fold_left ( +. ) 0. (Scenario.short_fcts_ms r)
  in
  let a = fct_sum (small_config Scenario.Tcp_proto) in
  let b = fct_sum (small_config Scenario.Tcp_proto) in
  Alcotest.(check (float 1e-9)) "same seed, same result" a b

let test_scenario_seed_changes_result () =
  let r1 = Scenario.run (small_config Scenario.Tcp_proto) in
  let r2 =
    Scenario.run { (small_config Scenario.Tcp_proto) with Scenario.seed = 99 }
  in
  let s1 = Array.fold_left ( +. ) 0. (Scenario.short_fcts_ms r1) in
  let s2 = Array.fold_left ( +. ) 0. (Scenario.short_fcts_ms r2) in
  check_bool "different" true (Float.abs (s1 -. s2) > 1e-9)

let test_scenario_mptcp () =
  let r =
    Scenario.run (small_config (Scenario.Mptcp_proto { subflows = 4; coupled = true }))
  in
  check_int "complete" 0 (Scenario.incomplete_shorts r)

let test_scenario_mmptcp () =
  let r = Scenario.run (small_config (Scenario.Mmptcp_proto Mmptcp.Strategy.default)) in
  check_int "complete" 0 (Scenario.incomplete_shorts r)

let test_scenario_vl2_topology () =
  let cfg =
    {
      (small_config (Scenario.Mmptcp_proto Mmptcp.Strategy.default)) with
      Scenario.topo =
        Scenario.Vl2_topo (Sim_net.Vl2.default_params ~tors:8 ~hosts_per_tor:2 ());
    }
  in
  let r = Scenario.run cfg in
  check_int "complete on vl2" 0 (Scenario.incomplete_shorts r)

let test_scenario_multihomed_topology () =
  let cfg =
    {
      (small_config Scenario.Tcp_proto) with
      Scenario.topo =
        Scenario.Multihomed_topo (Sim_net.Multihomed.default_params ~k:4 ~oversub:1 ());
    }
  in
  let r = Scenario.run cfg in
  check_int "complete on dual-homed" 0 (Scenario.incomplete_shorts r)

let test_scenario_flow_sizes () =
  let r = Scenario.run (small_config Scenario.Tcp_proto) in
  Array.iter
    (fun f ->
      check_int "short size" 70_000 f.Scenario.flow_size;
      check_bool "short not long" false f.Scenario.is_long)
    r.Scenario.shorts;
  Array.iter
    (fun f -> check_bool "long flagged" true f.Scenario.is_long)
    r.Scenario.longs

let test_scenario_long_goodput_positive () =
  let r = Scenario.run (small_config Scenario.Tcp_proto) in
  let g = Scenario.long_goodput_mbps r in
  check_bool "some longs" true (Array.length g > 0);
  Array.iter (fun m -> check_bool "positive goodput" true (m > 0.)) g

let test_protocol_names () =
  Alcotest.(check string) "tcp" "tcp" (Scenario.protocol_name Scenario.Tcp_proto);
  Alcotest.(check string) "mptcp" "mptcp-8"
    (Scenario.protocol_name (Scenario.Mptcp_proto { subflows = 8; coupled = true }));
  check_bool "mmptcp mentions strategy" true
    (String.length
       (Scenario.protocol_name (Scenario.Mmptcp_proto Mmptcp.Strategy.default))
     > 6)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_workload"
    [
      ( "traffic-matrix",
        [
          Alcotest.test_case "permutation derangement" `Quick test_permutation_is_derangement;
          Alcotest.test_case "permutation stable" `Quick test_permutation_stable;
          Alcotest.test_case "stride" `Quick test_stride;
          Alcotest.test_case "stride self rejected" `Quick test_stride_self_rejected;
          Alcotest.test_case "random never self" `Quick test_random_never_self;
          Alcotest.test_case "hotspot" `Quick test_hotspot_senders_hit_targets;
          Alcotest.test_case "incast" `Quick test_incast;
          Alcotest.test_case "incast non-sender" `Quick test_incast_non_sender_rejected;
          Alcotest.test_case "kind printing" `Quick test_kind_printing;
          qt prop_permutation_all_sizes;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "tcp completes" `Slow test_scenario_tcp_completes;
          Alcotest.test_case "sorted records" `Slow test_scenario_records_sorted_and_ids;
          Alcotest.test_case "deterministic" `Slow test_scenario_deterministic;
          Alcotest.test_case "seed sensitivity" `Slow test_scenario_seed_changes_result;
          Alcotest.test_case "mptcp" `Slow test_scenario_mptcp;
          Alcotest.test_case "mmptcp" `Slow test_scenario_mmptcp;
          Alcotest.test_case "vl2 topology" `Slow test_scenario_vl2_topology;
          Alcotest.test_case "multihomed topology" `Slow test_scenario_multihomed_topology;
          Alcotest.test_case "flow metadata" `Slow test_scenario_flow_sizes;
          Alcotest.test_case "long goodput" `Slow test_scenario_long_goodput_positive;
          Alcotest.test_case "protocol names" `Quick test_protocol_names;
        ] );
    ]
