test/test_net.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Sim_engine Sim_net Sim_tcp
