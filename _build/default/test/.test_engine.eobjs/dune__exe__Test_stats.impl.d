test/test_stats.ml: Alcotest Array Filename Fun Gen List QCheck QCheck_alcotest Sim_stats String Sys
