test/test_mptcp.ml: Alcotest Array Float Option QCheck QCheck_alcotest Sim_engine Sim_mptcp Sim_net Sim_tcp
