test/test_mmptcp.mli:
