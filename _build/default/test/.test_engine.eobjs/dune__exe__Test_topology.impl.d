test/test_topology.ml: Alcotest Array List QCheck QCheck_alcotest Sim_engine Sim_net
