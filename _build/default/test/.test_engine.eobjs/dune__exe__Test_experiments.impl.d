test/test_experiments.ml: Alcotest Array Gen List QCheck QCheck_alcotest Sim_engine Sim_experiments Sim_net Sim_workload
