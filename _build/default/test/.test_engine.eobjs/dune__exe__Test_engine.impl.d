test/test_engine.ml: Alcotest Array Float Fun Int64 List QCheck QCheck_alcotest Sim_engine
