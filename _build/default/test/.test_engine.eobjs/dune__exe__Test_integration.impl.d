test/test_integration.ml: Alcotest Array Hashtbl List Mmptcp Printf Sim_engine Sim_stats Sim_workload
