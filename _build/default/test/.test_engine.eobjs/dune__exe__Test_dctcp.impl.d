test/test_dctcp.ml: Alcotest Array Option Printf Sim_dctcp Sim_engine Sim_net Sim_tcp
