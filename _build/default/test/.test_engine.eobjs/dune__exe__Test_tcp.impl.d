test/test_tcp.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Sim_engine Sim_net Sim_tcp
