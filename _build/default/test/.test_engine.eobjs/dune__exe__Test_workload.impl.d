test/test_workload.ml: Alcotest Array Float Fun List Mmptcp QCheck QCheck_alcotest Sim_engine Sim_net Sim_workload String
