test/test_mmptcp.ml: Alcotest Array Hashtbl Mmptcp QCheck QCheck_alcotest Sim_engine Sim_net Sim_tcp
