(* Command-line front end: every experiment from DESIGN.md's index is a
   subcommand, parameterised by scale. *)

open Cmdliner
module Scale = Sim_experiments.Scale

let scale_term =
  let k =
    Arg.(value & opt int Scale.small.Scale.k & info [ "k" ] ~doc:"FatTree arity (even).")
  in
  let oversub =
    Arg.(
      value
      & opt int Scale.small.Scale.oversub
      & info [ "oversub" ] ~doc:"Hosts per edge uplink (1 = full bisection).")
  in
  let flows =
    Arg.(
      value
      & opt int Scale.small.Scale.flows
      & info [ "flows" ] ~doc:"Total short flows to schedule.")
  in
  let rate =
    Arg.(
      value
      & opt float Scale.small.Scale.rate
      & info [ "rate" ] ~doc:"Poisson arrival rate per short host (flows/s).")
  in
  let seed =
    Arg.(value & opt int Scale.small.Scale.seed & info [ "seed" ] ~doc:"Random seed.")
  in
  let horizon =
    Arg.(
      value
      & opt float Scale.small.Scale.horizon_s
      & info [ "horizon" ] ~doc:"Simulated seconds before the hard stop.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Run at paper scale (k=8, 512 servers, 20000 short flows). Takes \
             tens of minutes; overrides the other scale options.")
  in
  let make k oversub flows rate seed horizon_s full =
    if full then Scale.full
    else { Scale.k; oversub; flows; rate; seed; horizon_s }
  in
  Term.(const make $ k $ oversub $ flows $ rate $ seed $ horizon $ full)

let experiment name doc f =
  let run scale =
    f scale;
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ scale_term)

let csv_term =
  Arg.(
    value
    & opt (some dir) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write the figure's data series as CSV into $(docv).")

let fig1a_cmd =
  let lo = Arg.(value & opt int 1 & info [ "lo" ] ~doc:"Smallest subflow count.") in
  let hi = Arg.(value & opt int 9 & info [ "hi" ] ~doc:"Largest subflow count.") in
  let run lo hi csv_dir scale =
    Sim_experiments.Fig1a.run ~lo ~hi ?csv_dir scale;
    0
  in
  Cmd.v
    (Cmd.info "fig1a" ~doc:"Figure 1(a): MPTCP short-flow FCT vs subflow count.")
    Term.(const run $ lo $ hi $ csv_term $ scale_term)

let fig1bc_cmd name doc f =
  let run csv_dir scale =
    f ?csv_dir scale;
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ csv_term $ scale_term)

let cmds =
  [
    fig1a_cmd;
    fig1bc_cmd "fig1b" "Figure 1(b): per-flow FCT scatter, MPTCP 8 subflows."
      Sim_experiments.Fig1bc.run_fig1b;
    fig1bc_cmd "fig1c" "Figure 1(c): per-flow FCT scatter, MMPTCP."
      Sim_experiments.Fig1bc.run_fig1c;
    experiment "table1" "Text claims: MMPTCP vs MPTCP summary table."
      Sim_experiments.Summary_table.run;
    experiment "ext-switching" "E1: phase-switching strategies."
      Sim_experiments.Ext_switching.run;
    experiment "ext-load" "E2: network-load sweep." Sim_experiments.Ext_load.run;
    experiment "ext-hotspot" "E3: hotspot traffic matrices."
      Sim_experiments.Ext_hotspot.run;
    experiment "ext-multihomed" "E4: dual-homed FatTree."
      Sim_experiments.Ext_multihomed.run;
    experiment "ext-coexist" "E5: co-existence fairness."
      Sim_experiments.Ext_coexist.run;
    experiment "ext-dupack" "E6: dup-ACK threshold ablation."
      Sim_experiments.Ext_dupack.run;
    experiment "ext-topologies" "E7: FatTree vs VL2-style Clos."
      Sim_experiments.Ext_topologies.run;
    experiment "ext-matrices" "E8: traffic matrices."
      Sim_experiments.Ext_matrices.run;
    experiment "ext-sack" "E9: NewReno vs SACK loss recovery."
      Sim_experiments.Ext_sack.run;
    experiment "all" "Run every experiment in sequence." (fun scale ->
        Sim_experiments.Fig1a.run scale;
        Sim_experiments.Fig1bc.run_fig1b scale;
        Sim_experiments.Fig1bc.run_fig1c scale;
        Sim_experiments.Summary_table.run scale;
        Sim_experiments.Ext_switching.run scale;
        Sim_experiments.Ext_load.run scale;
        Sim_experiments.Ext_hotspot.run scale;
        Sim_experiments.Ext_multihomed.run scale;
        Sim_experiments.Ext_coexist.run scale;
        Sim_experiments.Ext_dupack.run scale;
        Sim_experiments.Ext_topologies.run scale;
        Sim_experiments.Ext_matrices.run scale;
        Sim_experiments.Ext_sack.run scale);
  ]

let () =
  let info =
    Cmd.info "mmptcp_sim" ~version:"1.0.0"
      ~doc:
        "Packet-level reproduction of 'Short vs. Long Flows: A Battle That \
         Both Can Win' (SIGCOMM 2015)."
  in
  exit (Cmd.eval' (Cmd.group info cmds))
