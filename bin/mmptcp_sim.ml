(* Command-line front end: every experiment from DESIGN.md's index is a
   subcommand, parameterised by scale. *)

open Cmdliner
module Scale = Sim_experiments.Scale
module Runner = Sim_experiments.Runner

let scale_term =
  let k =
    Arg.(value & opt int Scale.small.Scale.k & info [ "k" ] ~doc:"FatTree arity (even).")
  in
  let oversub =
    Arg.(
      value
      & opt int Scale.small.Scale.oversub
      & info [ "oversub" ] ~doc:"Hosts per edge uplink (1 = full bisection).")
  in
  let flows =
    Arg.(
      value
      & opt int Scale.small.Scale.flows
      & info [ "flows" ] ~doc:"Total short flows to schedule.")
  in
  let rate =
    Arg.(
      value
      & opt float Scale.small.Scale.rate
      & info [ "rate" ] ~doc:"Poisson arrival rate per short host (flows/s).")
  in
  let seed =
    Arg.(value & opt int Scale.small.Scale.seed & info [ "seed" ] ~doc:"Random seed.")
  in
  let horizon =
    Arg.(
      value
      & opt float Scale.small.Scale.horizon_s
      & info [ "horizon" ] ~doc:"Simulated seconds before the hard stop.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Run at paper scale (k=8, 512 servers, 20000 short flows). Takes \
             tens of minutes; overrides the other scale options.")
  in
  let make k oversub flows rate seed horizon_s full =
    if full then Scale.full
    else { Scale.k; oversub; flows; rate; seed; horizon_s }
  in
  Term.(const make $ k $ oversub $ flows $ rate $ seed $ horizon $ full)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "JOBS must be >= 1")
    | None -> Error (`Msg "expected an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_term =
  Arg.(
    value
    & opt jobs_conv (Runner.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run an experiment's independent simulations on $(docv) domains. \
           Output is identical for any value; the default is the recommended \
           domain count minus one.")

let experiment name doc f =
  let run jobs scale =
    f ~jobs scale;
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ jobs_term $ scale_term)

let csv_term =
  Arg.(
    value
    & opt (some dir) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write the figure's data series as CSV into $(docv).")

let fig1a_cmd =
  let lo = Arg.(value & opt int 1 & info [ "lo" ] ~doc:"Smallest subflow count.") in
  let hi = Arg.(value & opt int 9 & info [ "hi" ] ~doc:"Largest subflow count.") in
  let run lo hi csv_dir jobs scale =
    Sim_experiments.Fig1a.run ~lo ~hi ?csv_dir ~jobs scale;
    0
  in
  Cmd.v
    (Cmd.info "fig1a" ~doc:"Figure 1(a): MPTCP short-flow FCT vs subflow count.")
    Term.(const run $ lo $ hi $ csv_term $ jobs_term $ scale_term)

let fig1bc_cmd name doc f =
  let run csv_dir jobs scale =
    f ?csv_dir ~jobs scale;
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ csv_term $ jobs_term $ scale_term)

let cmds =
  [
    fig1a_cmd;
    fig1bc_cmd "fig1b" "Figure 1(b): per-flow FCT scatter, MPTCP 8 subflows."
      (fun ?csv_dir ~jobs s ->
        Sim_experiments.Fig1bc.run_fig1b ?csv_dir ~jobs s);
    fig1bc_cmd "fig1c" "Figure 1(c): per-flow FCT scatter, MMPTCP."
      (fun ?csv_dir ~jobs s ->
        Sim_experiments.Fig1bc.run_fig1c ?csv_dir ~jobs s);
    experiment "table1" "Text claims: MMPTCP vs MPTCP summary table."
      (fun ~jobs s -> Sim_experiments.Summary_table.run ~jobs s);
    experiment "ext-switching" "E1: phase-switching strategies."
      (fun ~jobs s -> Sim_experiments.Ext_switching.run ~jobs s);
    experiment "ext-load" "E2: network-load sweep."
      (fun ~jobs s -> Sim_experiments.Ext_load.run ~jobs s);
    experiment "ext-hotspot" "E3: hotspot traffic matrices."
      (fun ~jobs s -> Sim_experiments.Ext_hotspot.run ~jobs s);
    experiment "ext-multihomed" "E4: dual-homed FatTree."
      (fun ~jobs s -> Sim_experiments.Ext_multihomed.run ~jobs s);
    experiment "ext-coexist" "E5: co-existence fairness."
      (fun ~jobs s -> Sim_experiments.Ext_coexist.run ~jobs s);
    experiment "ext-dupack" "E6: dup-ACK threshold ablation."
      (fun ~jobs s -> Sim_experiments.Ext_dupack.run ~jobs s);
    experiment "ext-topologies" "E7: FatTree vs VL2-style Clos."
      (fun ~jobs s -> Sim_experiments.Ext_topologies.run ~jobs s);
    experiment "ext-matrices" "E8: traffic matrices."
      (fun ~jobs s -> Sim_experiments.Ext_matrices.run ~jobs s);
    experiment "ext-sack" "E9: NewReno vs SACK loss recovery."
      (fun ~jobs s -> Sim_experiments.Ext_sack.run ~jobs s);
    experiment "all" "Run every experiment in sequence." (fun ~jobs scale ->
        Sim_experiments.Fig1a.run ~jobs scale;
        Sim_experiments.Fig1bc.run_fig1b ~jobs scale;
        Sim_experiments.Fig1bc.run_fig1c ~jobs scale;
        Sim_experiments.Summary_table.run ~jobs scale;
        Sim_experiments.Ext_switching.run ~jobs scale;
        Sim_experiments.Ext_load.run ~jobs scale;
        Sim_experiments.Ext_hotspot.run ~jobs scale;
        Sim_experiments.Ext_multihomed.run ~jobs scale;
        Sim_experiments.Ext_coexist.run ~jobs scale;
        Sim_experiments.Ext_dupack.run ~jobs scale;
        Sim_experiments.Ext_topologies.run ~jobs scale;
        Sim_experiments.Ext_matrices.run ~jobs scale;
        Sim_experiments.Ext_sack.run ~jobs scale);
  ]

(* GC settings, pinned from measurement rather than left to the
   environment. On the fig1a suite the allocation-light event path
   (Sim_time as native int, reused timer entries) leaves the default
   minor heap (256k words) fastest: s=8M was 10-25% slower across
   three runs, s=32M and o=200 neutral-to-slower (see DESIGN.md §4e).
   Setting the measured-best values here keeps an inherited
   OCAMLRUNPARAM from silently changing benchmark numbers. *)
let () =
  Gc.set { (Gc.get ()) with minor_heap_size = 262_144; space_overhead = 120 }

let () =
  let info =
    Cmd.info "mmptcp_sim" ~version:"1.0.0"
      ~doc:
        "Packet-level reproduction of 'Short vs. Long Flows: A Battle That \
         Both Can Win' (SIGCOMM 2015)."
  in
  exit (Cmd.eval' (Cmd.group info cmds))
