(* Command-line front end, generated from the experiment registry:
   every subcommand, the `all` body, `--list` and `all --only` derive
   from Sim_experiments.Registry.all. Adding an experiment touches
   only its module plus one registry line — nothing here. *)

open Cmdliner
module Scale = Sim_experiments.Scale
module Runner = Sim_experiments.Runner
module Registry = Sim_experiments.Registry
module Experiment = Sim_experiments.Experiment
module Scenario = Sim_workload.Scenario
module Trace = Sim_engine.Trace

(* Virtual-time durations on the command line: a number with an ns,
   us, ms or s suffix, e.g. `--probe-interval 10ms`. *)
let duration_conv =
  let parse s =
    let suffixes = [ ("ns", 1.); ("us", 1e3); ("ms", 1e6); ("s", 1e9) ] in
    let matched =
      List.find_opt (fun (suf, _) -> String.ends_with ~suffix:suf s) suffixes
    in
    match matched with
    | None -> Error (`Msg "expected a duration such as 500us, 10ms or 1s")
    | Some (suf, mult) -> (
      let num = String.sub s 0 (String.length s - String.length suf) in
      match float_of_string_opt num with
      | Some v when v > 0. ->
        Ok (Sim_engine.Sim_time.of_ns (int_of_float (v *. mult)))
      | Some _ -> Error (`Msg "duration must be positive")
      | None -> Error (`Msg (Printf.sprintf "bad duration %S" s)))
  in
  let print ppf t =
    Format.fprintf ppf "%dns" (Sim_engine.Sim_time.to_ns t)
  in
  Arg.conv (parse, print)

let conns_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error (`Msg "empty connection list")
    else
      try Ok (List.map int_of_string parts)
      with Failure _ -> Error (`Msg "expected comma-separated connection ids")
  in
  Arg.conv
    ( parse,
      fun ppf cs ->
        Format.pp_print_string ppf
          (String.concat "," (List.map string_of_int cs)) )

let trace_level_conv =
  let parse = function
    | "error" -> Ok Trace.Error
    | "warn" -> Ok Trace.Warn
    | "info" -> Ok Trace.Info
    | "debug" -> Ok Trace.Debug
    | s -> Error (`Msg (Printf.sprintf "unknown trace level %S" s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with
      | Trace.Error -> "error"
      | Trace.Warn -> "warn"
      | Trace.Info -> "info"
      | Trace.Debug -> "debug")
  in
  Arg.conv (parse, print)

let components_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error (`Msg "empty component list") else Ok parts
  in
  Arg.conv (parse, fun ppf cs -> Format.pp_print_string ppf (String.concat "," cs))

let obs_term =
  let probe_interval =
    Arg.(
      value
      & opt (some duration_conv) None
      & info [ "probe-interval" ] ~docv:"DUR"
          ~doc:
            "Sample every registered metric (cwnd, queue depths, subflow \
             state, scheduler backlog) each $(docv) of virtual time and \
             export the time series via --out. Durations take an ns/us/ms/s \
             suffix, e.g. 10ms.")
  in
  let probe =
    Arg.(
      value
      & opt (some conns_conv) None
      & info [ "probe" ] ~docv:"CONN,..."
          ~doc:
            "Restrict connection-scoped probes and events to these \
             connection ids (default: all connections). Queue and scheduler \
             gauges are always included.")
  in
  let trace =
    Arg.(
      value
      & opt (some trace_level_conv) None
      & info [ "trace" ] ~docv:"LEVEL"
          ~doc:"Enable stderr tracing at error, warn, info or debug level.")
  in
  let trace_components =
    Arg.(
      value
      & opt (some components_conv) None
      & info [ "trace-components" ] ~docv:"COMP,..."
          ~doc:
            "Restrict --trace output to these component tags (e.g. \
             tcp_tx,pktqueue).")
  in
  let ledger =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Record every flow's lifecycle (arrival, handshake, phase \
             switch, hybrid promotion, RTO/fast-retransmit counts, bytes, \
             completion, FCT) in the flow ledger and export per-flow CSV \
             and JSONL plus an FCT-percentile summary via --out. Identical \
             across --model, --jobs and --exec-mode.")
  in
  let make probe_interval probe_conns trace_level trace_components ledger =
    {
      Scenario.probe_interval;
      probe_conns;
      trace_level;
      trace_components;
      ledger;
    }
  in
  Term.(
    const make $ probe_interval $ probe $ trace $ trace_components $ ledger)

let scale_term =
  let k =
    Arg.(value & opt int Scale.small.Scale.k & info [ "k" ] ~doc:"FatTree arity (even).")
  in
  let oversub =
    Arg.(
      value
      & opt int Scale.small.Scale.oversub
      & info [ "oversub" ] ~doc:"Hosts per edge uplink (1 = full bisection).")
  in
  let flows =
    Arg.(
      value
      & opt int Scale.small.Scale.flows
      & info [ "flows" ] ~doc:"Total short flows to schedule.")
  in
  let rate =
    Arg.(
      value
      & opt float Scale.small.Scale.rate
      & info [ "rate" ] ~doc:"Poisson arrival rate per short host (flows/s).")
  in
  let seed =
    Arg.(value & opt int Scale.small.Scale.seed & info [ "seed" ] ~doc:"Random seed.")
  in
  let horizon =
    Arg.(
      value
      & opt float Scale.small.Scale.horizon_s
      & info [ "horizon" ] ~doc:"Simulated seconds before the hard stop.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Run at paper scale (k=8, 512 servers, 20000 short flows). Takes \
             tens of minutes; overrides the other scale options.")
  in
  let tiny =
    Arg.(
      value & flag
      & info [ "tiny" ]
          ~doc:
            "Run at smoke scale (k=4 2:1, 40 flows, 2 s horizon — the CI \
             preset); overrides the other scale options.")
  in
  let model =
    let model_conv =
      Arg.conv
        ( (fun s ->
            match Sim_workload.Flow_model.kind_of_string s with
            | Ok m -> Ok m
            | Error e -> Error (`Msg e)),
          fun ppf m -> Format.pp_print_string ppf (Scenario.model_name m) )
    in
    Arg.(
      value
      & opt model_conv Scenario.Packet
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Flow model serving the simulated transfers: $(b,packet) (the \
             default; full packet-level stacks), $(b,fluid) (flows as \
             max-min rate processes with analytic FCTs — orders of \
             magnitude faster at large scale) or $(b,hybrid)[:BYTES] \
             (packet-level until BYTES have been carried, default 100000, \
             fluid after, with residual capacity coupling).")
  in
  let make k oversub flows rate seed horizon_s full tiny model obs =
    let base =
      if full then Scale.full
      else if tiny then Scale.tiny
      else
        { Scale.k; oversub; flows; rate; seed; horizon_s;
          model = Scenario.Packet; obs = Scenario.default_obs }
    in
    { base with Scale.model; obs }
  in
  Term.(
    const make $ k $ oversub $ flows $ rate $ seed $ horizon $ full $ tiny
    $ model $ obs_term)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "JOBS must be >= 1")
    | None -> Error (`Msg "expected an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_term =
  Arg.(
    value
    & opt jobs_conv (Runner.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the independent simulations on $(docv) domains. Output is \
           identical for any value; the default is the recommended domain \
           count minus one.")

let exec_mode_conv =
  let parse s =
    match Registry.exec_mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "expected domains or processes")
  in
  Arg.conv
    ( parse,
      fun ppf m -> Format.pp_print_string ppf (Registry.exec_mode_to_string m)
    )

let exec_mode_term =
  Arg.(
    value
    & opt exec_mode_conv Registry.Processes
    & info [ "exec-mode" ] ~docv:"MODE"
        ~doc:
          "How --jobs fans simulations out: $(b,processes) (the default) \
           re-executes this binary as worker processes with private heaps — \
           the mode that actually scales, since domains contend on the \
           shared major heap — while $(b,domains) keeps everything in one \
           process on OCaml domains. Output is byte-identical either way; \
           --jobs 1 runs sequentially in-process in both modes.")

(* Hidden protocol flag: `mmptcp_sim <cmd> <args> --worker` turns the
   invocation into a Proc_pool worker serving job indices on stdin for
   the identical parent command line. *)
let worker_term =
  Arg.(value & flag & info [ "worker" ] ~docs:Manpage.s_none)

let prof_term =
  Arg.(
    value & flag
    & info [ "prof" ]
        ~doc:
          "Self-profile the run: wrap every experiment point in a \
           wall-clock + GC allocation span (measured in whichever worker \
           domain or process ran the point) and write one \
           $(b,prof-EXPERIMENT) artifact per experiment with a TOTAL row. \
           Span values are host measurements, so they only render under \
           --out; without it a fixed note is printed instead.")

let out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Write each experiment's data series as CSV and JSON plus a run \
           manifest (scale, seeds, per-point wall-clock, git describe) into \
           $(docv), created if missing.")

(* Best-effort `git describe` for the manifest; None outside a work
   tree or without git. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when l <> "" -> Some l
    | _ -> None
  with _ -> None

(* The command line workers are spawned with: this invocation's argv
   (so they re-derive the same experiments, scale and seeds) plus the
   hidden --worker flag. argv.(0) is replaced by the executable's
   resolved path because Proc_pool does not search $PATH. *)
let worker_argv () =
  let argv = Array.copy Sys.argv in
  argv.(0) <- Sys.executable_name;
  Array.append argv [| "--worker" |]

let run_registry experiments jobs exec_mode worker out prof scale =
  if worker then begin
    Registry.worker ~clock:Unix.gettimeofday scale experiments;
    0
  end
  else begin
    Registry.run ~clock:Unix.gettimeofday ?out ?git:(git_describe ())
      ~exec_mode ~worker_argv:(worker_argv ()) ~prof ~jobs scale experiments;
    0
  end

let experiment_cmd e =
  let run jobs exec_mode worker out prof scale =
    run_registry [ e ] jobs exec_mode worker out prof scale
  in
  Cmd.v
    (Cmd.info (Experiment.name e) ~doc:(Experiment.doc e))
    Term.(
      const run $ jobs_term $ exec_mode_term $ worker_term $ out_term
      $ prof_term $ scale_term)

let only_conv =
  let parse s =
    let requested =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun n -> n <> "")
    in
    if requested = [] then Error (`Msg "empty experiment list")
    else
      match Registry.select requested with
      | Error unknown ->
        Error
          (`Msg
            (Printf.sprintf "unknown experiment %s (run `mmptcp_sim --list`)"
               unknown))
      | Ok _ -> Ok requested
  in
  Arg.conv
    (parse, fun ppf ns -> Format.pp_print_string ppf (String.concat "," ns))

let all_cmd =
  let only =
    Arg.(
      value
      & opt (some only_conv) None
      & info [ "only" ] ~docv:"NAME,..."
          ~doc:
            "Restrict to a comma-separated subset of experiments; they run \
             and render in registry order regardless of the order given.")
  in
  let run only jobs exec_mode worker out prof scale =
    let experiments =
      match only with
      | None -> Registry.all
      | Some requested -> (
        match Registry.select requested with
        | Ok es -> es
        | Error _ -> assert false (* validated by only_conv *))
    in
    run_registry experiments jobs exec_mode worker out prof scale
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every experiment (or an --only subset) on one shared job \
          queue: all simulation points fan out together with no barrier \
          between experiments, and results render in registry order.")
    Term.(
      const run $ only $ jobs_term $ exec_mode_term $ worker_term $ out_term
      $ prof_term $ scale_term)

let cmds = List.map experiment_cmd Registry.all @ [ all_cmd ]

(* `mmptcp_sim --list`: the registry, one name + doc per line. *)
let default_term =
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the registered experiments and exit.")
  in
  let act list =
    if list then begin
      List.iter
        (fun e ->
          Printf.printf "%-16s %s\n" (Experiment.name e) (Experiment.doc e))
        Registry.all;
      `Ok 0
    end
    else `Help (`Pager, None)
  in
  Term.(ret (const act $ list_flag))

(* GC settings, pinned from measurement rather than left to the
   environment. On the fig1a suite the allocation-light event path
   (Sim_time as native int, reused timer entries) leaves the default
   minor heap (256k words) fastest: s=8M was 10-25% slower across
   three runs, s=32M and o=200 neutral-to-slower (see DESIGN.md §4e).
   Setting the measured-best values here keeps an inherited
   OCAMLRUNPARAM from silently changing benchmark numbers. *)
let () =
  Gc.set { (Gc.get ()) with minor_heap_size = 262_144; space_overhead = 120 }

let () =
  let info =
    Cmd.info "mmptcp_sim" ~version:"1.0.0"
      ~doc:
        "Packet-level reproduction of 'Short vs. Long Flows: A Battle That \
         Both Can Win' (SIGCOMM 2015)."
  in
  exit (Cmd.eval' (Cmd.group ~default:default_term info cmds))
