(* D007: pooled-packet escape analysis (typed tree).

   `Sim_net.Packet.t` records are pooled per simulation: [Packet.make]
   may hand back a record freed earlier, and [Packet.free] returns it
   for reuse. The safety contract is a read-only lease — a component
   handed a packet may read it inside its handler but must not retain
   it, and anything that needs the packet past the handler must go
   through [Packet.copy]. This pass rejects, with types rather than
   names as evidence, every way a lease can outlive its handler:

   - storing a raw packet into a record field (mutation or literal);
   - inserting one into a mutable container (Queue/Hashtbl/Stack/
     Array/ref);
   - capturing one in a closure handed to the Scheduler or a Timer
     (the event may fire after the packet is freed and reused);
   - returning one from a packet handler;
   - freeing the same packet twice along one control path;
   - freeing through a copy-less alias (`let q = p in ... free q`).

   An expression that flows through [Packet.copy] (or is itself a
   fresh [Packet.make]) owns its record and may do any of the above.

   The analysis is deliberately shallow where deep would mean whole-
   program: it trusts only a *syntactically direct* copy/make at the
   escape site, tracks aliases only through plain `let x = y`
   bindings, and treats each function body as one linear path with
   branch intersection. That keeps it fast, deterministic and free of
   false negatives on the shapes the simulator actually uses; the
   runtime pool sanitizer (Packet.sanitizer, DESIGN.md §4i) covers
   whatever this pass cannot prove. *)

open Simlint_defs

let emit_at ~emit ~msg loc = emit (finding_at ~rule:D007 ~msg loc)

(* --- type and path recognisers ------------------------------------ *)

let is_packet_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match List.rev (components p) with
    | "t" :: "Packet" :: _ -> true
    | _ -> false)
  | _ -> false

let ident_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

let packet_fn e name =
  match ident_path e with
  | Some p -> (
    match List.rev (components p) with
    | n :: "Packet" :: _ -> n = name
    | _ -> false)
  | None -> false

let is_copy_or_make_app (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply (fn, _) -> packet_fn fn "copy" || packet_fn fn "make"
  | _ -> false

(* Closure sinks: anything reached through the Scheduler or its Timer
   sub-module defers execution past the current handler. *)
let deferred_sink e =
  match ident_path e with
  | Some p ->
    let comps = components p in
    let rec modules = function
      | [ _ ] | [] -> false
      | m :: rest -> m = "Scheduler" || m = "Timer" || modules rest
    in
    modules comps
  | None -> false

(* Container-insertion functions: (module, function) pairs that store
   their argument beyond the call. *)
let store_fn e =
  match ident_path e with
  | Some p -> (
    let name = path_string p in
    match List.rev (components p) with
    | f :: "Queue" :: _ when f = "push" || f = "add" -> Some name
    | f :: "Hashtbl" :: _ when f = "add" || f = "replace" -> Some name
    | "push" :: "Stack" :: _ -> Some name
    | f :: "Array" :: _ when f = "set" || f = "unsafe_set" || f = "fill" || f = "blit"
      -> Some name
    | [ f ] when (f = "ref" || f = ":=") && from_stdlib p -> Some name
    | _ -> None)
  | None -> false |> fun _ -> None

(* --- escape collection -------------------------------------------- *)

(* Raw (copy-less) packet subexpressions of [e] at value positions:
   the expression itself, or inside constructors/tuples/branch tails —
   the positions whose value is retained when [e] is. A direct
   [Packet.copy]/[Packet.make] application owns its record and is not
   an escape. *)
let raw_packet_escapes e =
  let acc = ref [] in
  let rec go (e : Typedtree.expression) =
    if is_copy_or_make_app e then ()
    else
      match e.exp_desc with
      | Typedtree.Texp_construct (_, _, args) -> List.iter go args
      | Typedtree.Texp_tuple es -> List.iter go es
      | Typedtree.Texp_variant (_, Some x) -> go x
      | Typedtree.Texp_let (_, _, body) -> go body
      | Typedtree.Texp_sequence (_, b) -> go b
      | Typedtree.Texp_ifthenelse (_, a, b) ->
        go a;
        Option.iter go b
      | _ -> if is_packet_ty e.exp_type then acc := e.exp_loc :: !acc
  in
  go e;
  List.rev !acc

(* --- closure capture ---------------------------------------------- *)

(* Free variables of [f] (a Texp_function) whose type is Packet.t: an
   identifier used inside the closure but bound outside it. *)
let packet_captures (f : Typedtree.expression) =
  let bound = Hashtbl.create 16 in
  let used = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) self (p : k Typedtree.general_pattern) ->
          List.iter
            (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
            (Typedtree.pat_bound_idents p);
          Tast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (Path.Pident id, _, _)
            when is_packet_ty e.exp_type ->
            used := (id, e.Typedtree.exp_loc) :: !used
          | Typedtree.Texp_let (_, vbs, _) ->
            (* let-bound names inside the closure are not captures *)
            List.iter
              (fun vb ->
                List.iter
                  (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
                  (Typedtree.pat_bound_idents vb.Typedtree.vb_pat))
              vbs
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it f;
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (id, loc) ->
      let u = Ident.unique_name id in
      if Hashtbl.mem bound u || Hashtbl.mem seen u then None
      else begin
        Hashtbl.replace seen u ();
        Some (Ident.name id, loc)
      end)
    (List.rev !used)

(* --- return-escape ------------------------------------------------ *)

let rec pat_binds_packet (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var _ -> is_packet_ty p.pat_type
  | Typedtree.Tpat_alias (q, _, _) -> is_packet_ty p.pat_type || pat_binds_packet q
  | Typedtree.Tpat_tuple ps -> List.exists pat_binds_packet ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.exists pat_binds_packet ps
  | Typedtree.Tpat_record (fs, _) ->
    List.exists (fun (_, _, q) -> pat_binds_packet q) fs
  | Typedtree.Tpat_or (a, b, _) -> pat_binds_packet a || pat_binds_packet b
  | Typedtree.Tpat_lazy q -> pat_binds_packet q
  | Typedtree.Tpat_array ps -> List.exists pat_binds_packet ps
  | _ -> false

(* Tail (result) expressions of a function body. *)
let rec tails (e : Typedtree.expression) k =
  match e.exp_desc with
  | Typedtree.Texp_let (_, _, b) -> tails b k
  | Typedtree.Texp_sequence (_, b) -> tails b k
  | Typedtree.Texp_ifthenelse (_, a, b) ->
    tails a k;
    Option.iter (fun b -> tails b k) b
  | Typedtree.Texp_match (_, cases, _) ->
    List.iter (fun (c : Typedtree.computation Typedtree.case) -> tails c.c_rhs k) cases
  | Typedtree.Texp_try (b, cases) ->
    tails b k;
    List.iter (fun (c : Typedtree.value Typedtree.case) -> tails c.c_rhs k) cases
  | Typedtree.Texp_function { cases; _ } ->
    List.iter (fun (c : Typedtree.value Typedtree.case) -> tails c.c_rhs k) cases
  | _ -> k e

(* --- free-path analysis (double free, alias free) ----------------- *)

module Sset = Set.Make (String)

type free_env = {
  aliases : (string, string * string) Hashtbl.t;
      (* alias unique-name -> (owner unique-name, owner display name) *)
  emit : finding -> unit;
}

let resolve_root env u =
  let rec go u = match Hashtbl.find_opt env.aliases u with
    | Some (owner, _) -> go owner
    | None -> u
  in
  go u

let record_alias env (vb : Typedtree.value_binding) =
  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
  | Typedtree.Tpat_var (id, _), Typedtree.Texp_ident (Path.Pident src, _, _)
    when is_packet_ty vb.vb_expr.exp_type ->
    Hashtbl.replace env.aliases (Ident.unique_name id)
      (Ident.unique_name src, Ident.name src)
  | _ -> ()

let free_packet_arg args =
  List.find_map
    (fun ((lbl : Asttypes.arg_label), arg) ->
      match (lbl, arg) with
      | Asttypes.Nolabel, Some (a : Typedtree.expression)
        when is_packet_ty a.exp_type ->
        Some a
      | _ -> None)
    args

(* Walk [e] in evaluation order, threading the set of packet roots
   already freed on this path. Branches are analysed independently and
   re-joined with set intersection (freed on *every* path), so a
   conditional free never poisons the other arm. Nested functions are
   separate temporal paths and are skipped here — the driver analyses
   every function body exactly once. *)
let rec free_scan env freed (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function _ -> freed
  | Typedtree.Texp_let (_, vbs, body) ->
    let freed =
      List.fold_left
        (fun fr (vb : Typedtree.value_binding) ->
          record_alias env vb;
          free_scan env fr vb.vb_expr)
        freed vbs
    in
    free_scan env freed body
  | Typedtree.Texp_sequence (a, b) -> free_scan env (free_scan env freed a) b
  | Typedtree.Texp_ifthenelse (c, a, b) -> (
    let f0 = free_scan env freed c in
    let fa = free_scan env f0 a in
    match b with
    | Some b -> Sset.inter fa (free_scan env f0 b)
    | None -> f0)
  | Typedtree.Texp_match (s, cases, _) -> (
    let f0 = free_scan env freed s in
    let branch (c : Typedtree.computation Typedtree.case) =
      let fg =
        match c.c_guard with Some g -> free_scan env f0 g | None -> f0
      in
      free_scan env fg c.c_rhs
    in
    match List.map branch cases with
    | [] -> f0
    | s :: rest -> List.fold_left Sset.inter s rest)
  | Typedtree.Texp_try (b, cases) ->
    let fb = free_scan env freed b in
    List.iter
      (fun (c : Typedtree.value Typedtree.case) ->
        ignore (free_scan env freed c.c_rhs))
      cases;
    fb
  | Typedtree.Texp_while (c, b) ->
    let f0 = free_scan env freed c in
    ignore (free_scan env f0 b);
    f0
  | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
    let f0 = free_scan env (free_scan env freed lo) hi in
    ignore (free_scan env f0 body);
    f0
  | Typedtree.Texp_apply (fn, args) when packet_fn fn "free" -> (
    let freed =
      List.fold_left
        (fun fr (_, a) ->
          match a with Some a -> free_scan env fr a | None -> fr)
        freed args
    in
    match free_packet_arg args with
    | Some
        ({ Typedtree.exp_desc = Typedtree.Texp_ident (Path.Pident id, _, _); _ }
         as a) ->
      let u = Ident.unique_name id in
      (match Hashtbl.find_opt env.aliases u with
      | Some (_, owner_name) ->
        emit_at ~emit:env.emit
          ~msg:
            (Printf.sprintf
               "Packet.free of `%s`, a copy-less alias of `%s`: an alias \
                never owns the record — free the owner exactly once, or \
                Packet.copy for an owned duplicate"
               (Ident.name id) owner_name)
          a.exp_loc
      | None -> ());
      let root = resolve_root env u in
      if Sset.mem root freed then
        emit_at ~emit:env.emit
          ~msg:
            (Printf.sprintf
               "double free: `%s` already returned to the pool on this path \
                (each packet has exactly one final owner)"
               (Ident.name id))
          a.exp_loc;
      Sset.add root freed
    | _ -> freed)
  | Typedtree.Texp_apply (fn, args) ->
    let freed = free_scan env freed fn in
    List.fold_left
      (fun fr (_, a) -> match a with Some a -> free_scan env fr a | None -> fr)
      freed args
  | Typedtree.Texp_construct (_, _, es) | Typedtree.Texp_tuple es
  | Typedtree.Texp_array es ->
    List.fold_left (free_scan env) freed es
  | Typedtree.Texp_variant (_, e) -> (
    match e with Some e -> free_scan env freed e | None -> freed)
  | Typedtree.Texp_field (a, _, _) | Typedtree.Texp_assert (a, _)
  | Typedtree.Texp_lazy a ->
    free_scan env freed a
  | Typedtree.Texp_setfield (a, _, _, b) ->
    free_scan env (free_scan env freed a) b
  | Typedtree.Texp_record { fields; extended_expression; _ } ->
    let freed =
      match extended_expression with
      | Some e -> free_scan env freed e
      | None -> freed
    in
    Array.fold_left
      (fun fr (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> free_scan env fr e
        | Typedtree.Kept _ -> fr)
      freed fields
  | _ -> freed

(* --- driver -------------------------------------------------------- *)

let scan ~emit (str : Typedtree.structure) =
  let check_stores (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_setfield (_, _, lbl, rhs) ->
      List.iter
        (emit_at ~emit
           ~msg:
             (Printf.sprintf
                "pooled Packet.t stored into mutable field `%s` escapes its \
                 handler: the pool may reuse the record after the handler \
                 returns — store a Packet.copy instead"
                lbl.Types.lbl_name))
        (raw_packet_escapes rhs)
    | Typedtree.Texp_record { fields; _ } ->
      Array.iter
        (fun ((lbl : Types.label_description), def) ->
          match def with
          | Typedtree.Overridden (_, v) ->
            List.iter
              (emit_at ~emit
                 ~msg:
                   (Printf.sprintf
                      "pooled Packet.t retained in record field `%s` at \
                       construction: the record outlives the handler's \
                       read-only lease — use a Packet.copy"
                      lbl.Types.lbl_name))
              (raw_packet_escapes v)
          | Typedtree.Kept _ -> ())
        fields
    | Typedtree.Texp_apply (fn, args) -> (
      match store_fn fn with
      | Some name ->
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some a ->
              List.iter
                (emit_at ~emit
                   ~msg:
                     (Printf.sprintf
                        "pooled Packet.t inserted into a container via %s: \
                         the pool may reuse it once the handler returns — \
                         insert a Packet.copy"
                        name))
                (raw_packet_escapes a)
            | None -> ())
          args
      | None ->
        if deferred_sink fn then
          let sink_name =
            match ident_path fn with
            | Some p -> path_string p
            | None -> "the scheduler"
          in
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some ({ Typedtree.exp_desc = Typedtree.Texp_function _; _ } as f) ->
                List.iter
                  (fun (name, loc) ->
                    emit_at ~emit
                      ~msg:
                        (Printf.sprintf
                           "pooled Packet.t `%s` captured by a closure handed \
                            to %s: the event may fire after the packet is \
                            freed and reused — capture a Packet.copy"
                           name sink_name)
                      loc)
                  (packet_captures f)
              | Some a ->
                (* A raw packet handed to the scheduler as a typed-event
                   payload (or timer state) is the same escape without
                   the closure: the cell outlives the handler's lease.
                   Only the link layer (D007-exempt) owns in-flight
                   payload slots. *)
                List.iter
                  (emit_at ~emit
                     ~msg:
                       (Printf.sprintf
                          "pooled Packet.t passed as deferred-event payload \
                           to %s: the event may fire after the packet is \
                           freed and reused — pass a Packet.copy (in-flight \
                           payload slots belong to the link layer)"
                          sink_name))
                  (raw_packet_escapes a)
              | None -> ())
            args)
    | _ -> ()
  in
  let check_return (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_function { cases; _ }
      when List.exists
             (fun (c : Typedtree.value Typedtree.case) ->
               pat_binds_packet c.c_lhs)
             cases ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          tails c.c_rhs (fun tail ->
              List.iter
                (emit_at ~emit
                   ~msg:
                     "pooled Packet.t returned from a packet handler: the \
                      caller would outlive the handler's read-only lease — \
                      return a Packet.copy")
                (raw_packet_escapes tail)))
        cases
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_stores e;
          check_return e;
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_function { cases; _ } ->
            List.iter
              (fun (c : Typedtree.value Typedtree.case) ->
                let env = { aliases = Hashtbl.create 8; emit } in
                ignore (free_scan env Sset.empty c.c_rhs))
              cases
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str
