(* simlint — determinism & parallel-safety lint for the simulator.

   Usage: simlint [--allow FILE] PATH...

   PATHs are .cmt files, .ml files or directories (scanned
   recursively; directories yield every .cmt below them, including
   dune's hidden `*.objs` dirs). The analysis runs on the typed trees
   in the .cmt files; .ml files are used only to check that each
   source is covered by some analysed cmt — build the tree first
   (`dune build`) so the cmts exist.

   Exit 0 when clean, 1 on findings, 2 on usage/read errors. Stale
   allowlist entries and uncovered sources warn on stderr but do not
   fail the run on their own. *)

let usage () =
  prerr_endline "usage: simlint [--allow FILE] PATH...";
  exit 2

let () =
  let allow_file = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse_args rest
    | "--allow" :: [] -> usage ()
    | ("-h" | "--help") :: _ -> usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let cmts, mls =
    let cs, ms =
      List.fold_left
        (fun (cs, ms) p ->
          let c, m = Simlint_core.scan_tree p in
          (c :: cs, m :: ms))
        ([], []) (List.rev !paths)
    in
    ( List.sort_uniq compare (List.concat cs),
      List.sort_uniq compare (List.concat ms) )
  in
  let read_errors = ref 0 in
  let lints =
    List.filter_map
      (fun cmt ->
        try Some (Simlint_core.lint_cmt cmt)
        with exn ->
          incr read_errors;
          Printf.eprintf "simlint: %s: %s\n" cmt (Printexc.to_string exn);
          None)
      cmts
  in
  let findings =
    List.sort Simlint_core.compare_finding
      (List.concat_map (fun l -> l.Simlint_core.cl_findings) lints)
  in
  let sources =
    List.filter_map (fun l -> l.Simlint_core.cl_source) lints
  in
  let uncovered =
    List.filter
      (fun ml -> not (List.exists (Simlint_core.same_source ml) sources))
      mls
  in
  List.iter
    (fun ml ->
      Printf.eprintf
        "simlint: warning: %s has no .cmt under the scanned paths — the file \
         was not analysed (build first, or lint its library's *.objs dir)\n"
        ml)
    uncovered;
  let entries =
    match !allow_file with
    | None -> []
    | Some f -> (
      try Simlint_core.parse_allow_file f
      with
      | Simlint_core.Allow_syntax msg ->
        Printf.eprintf "simlint: %s: %s\n" f msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "simlint: %s\n" msg;
        exit 2)
  in
  let kept, stale = Simlint_core.apply_allow entries findings in
  List.iter (fun f -> print_endline (Simlint_core.pp_finding f)) kept;
  List.iter
    (fun (e : Simlint_core.allow_entry) ->
      Printf.eprintf
        "simlint: warning: stale allow entry `%s:%s` (line %d) matched no \
         finding; remove it\n"
        e.a_file
        (Simlint_core.rule_id e.a_rule)
        e.a_line)
    stale;
  if kept <> [] then begin
    Printf.eprintf "simlint: %d violation%s in %d compilation unit%s analysed\n"
      (List.length kept)
      (if List.length kept = 1 then "" else "s")
      (List.length lints)
      (if List.length lints = 1 then "" else "s");
    exit 1
  end;
  if !read_errors > 0 then exit 2
