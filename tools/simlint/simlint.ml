(* simlint — determinism & parallel-safety lint for the simulator.

   Usage: simlint [--allow FILE] PATH...

   PATHs are .ml files or directories (scanned recursively). Exit 0
   when clean, 1 on findings, 2 on usage/parse errors. Stale allowlist
   entries warn on stderr but do not fail the run. *)

let usage () =
  prerr_endline "usage: simlint [--allow FILE] PATH...";
  exit 2

let () =
  let allow_file = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--allow" :: file :: rest ->
      allow_file := Some file;
      parse_args rest
    | "--allow" :: [] -> usage ()
    | ("-h" | "--help") :: _ -> usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files =
    List.concat_map Simlint_core.scan_tree (List.rev !paths)
    |> List.sort_uniq compare
  in
  let parse_errors = ref 0 in
  let findings =
    List.concat_map
      (fun file ->
        try Simlint_core.lint_file file
        with exn ->
          incr parse_errors;
          Location.report_exception Format.err_formatter exn;
          [])
      files
  in
  let entries =
    match !allow_file with
    | None -> []
    | Some f -> (
      try Simlint_core.parse_allow_file f
      with
      | Simlint_core.Allow_syntax msg ->
        Printf.eprintf "simlint: %s: %s\n" f msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "simlint: %s\n" msg;
        exit 2)
  in
  let kept, stale = Simlint_core.apply_allow entries findings in
  List.iter (fun f -> print_endline (Simlint_core.pp_finding f)) kept;
  List.iter
    (fun (e : Simlint_core.allow_entry) ->
      Printf.eprintf
        "simlint: warning: stale allow entry `%s:%s` (line %d) matched no \
         finding; remove it\n"
        e.a_file
        (Simlint_core.rule_id e.a_rule)
        e.a_line)
    stale;
  if kept <> [] then begin
    Printf.eprintf "simlint: %d violation%s in %d file%s scanned\n"
      (List.length kept)
      (if List.length kept = 1 then "" else "s")
      (List.length files)
      (if List.length files = 1 then "" else "s");
    exit 1
  end;
  if !parse_errors > 0 then exit 2
