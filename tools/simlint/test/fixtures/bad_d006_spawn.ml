(* Fixture: raw process spawning outside Proc_pool. *)
let clone () = Unix.fork ()

let spawn argv =
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr

let shell cmd = Unix.open_process_in cmd
