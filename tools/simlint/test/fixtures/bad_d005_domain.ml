(* Fixture: raw concurrency primitives outside Domain_pool. *)
let run_both f g =
  let d = Domain.spawn f in
  let y = g () in
  (Domain.join d, y)

let guard = Mutex.create

let cell v = Atomic.make v
