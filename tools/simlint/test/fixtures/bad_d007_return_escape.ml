(* Fixture: returning the leased packet hands the caller a reference
   that outlives the handler's read-only lease. *)
let peek_then_leak (pkt : Sim_net.Packet.t) =
  if Sim_net.Packet.is_data pkt then Some pkt else None
