(* Fixture: a toplevel ref hidden inside a nested module is still
   module-level state. *)
module Inner = struct
  let seen : int list ref = ref []
end

let remember (x : int) = Inner.seen := x :: !Inner.seen
