(* Fixture: a toplevel ref hidden inside a nested module is still
   module-level state. *)
module Inner = struct
  let seen = ref []
end

let remember x = Inner.seen := x :: !Inner.seen
