(* Fixture: closure-per-event scheduling — each arm allocates a fresh
   closure the scheduler must hold until it fires. Hot-path code must
   arm a re-armable Timer or fill a pooled Event cell instead. *)
let arm sched =
  ignore
    (Sim_engine.Scheduler.schedule_after sched
       (Sim_engine.Sim_time.of_ns 10)
       (fun () -> ()));
  ignore
    (Sim_engine.Scheduler.schedule_at sched
       (Sim_engine.Sim_time.of_ns 20)
       (fun () -> ()))
