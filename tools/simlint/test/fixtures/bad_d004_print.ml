(* Fixture: direct console output from library code. *)
let report x = Printf.printf "result: %d\n" x

let warn msg = prerr_endline msg

let banner () = print_endline "=== run ==="
