(* Fixture named like the exempt module: D001 must not fire here —
   sim_ctx.ml is the one place allowed to own per-simulation state. *)
let registry : (int, int) Hashtbl.t = Hashtbl.create 8
