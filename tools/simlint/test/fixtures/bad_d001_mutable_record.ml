(* Fixture: toplevel literal of a record this file declares mutable. *)
type stats = { mutable count : int; name : string }

let global_stats = { count = 0; name = "global" }

let observe () = global_stats.count <- global_stats.count + 1
