(* Fixture named like the exempt module: D006 must not fire here. *)
let spawn argv =
  Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr

let clone () = Unix.fork ()
