(* Fixture: two frees of the same packet on one control path. *)
let drop ~ctx (pkt : Sim_net.Packet.t) =
  Sim_net.Packet.free ~ctx pkt;
  Sim_net.Packet.free ~ctx pkt
