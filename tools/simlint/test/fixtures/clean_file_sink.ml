(* A file-writing result sink, the shape lib/experiments/sink.ml uses
   for --out artifacts: open_out, fprintf to an explicit channel,
   sprintf for formatting. D004 covers *console* output only
   (print_*/prerr_*/Printf.printf/...), so none of this may fire. *)

let write_rows path rows =
  let oc = open_out path in
  output_string oc "name,value\n";
  List.iter
    (fun (name, v) ->
      Printf.fprintf oc "%s,%s\n" name (Printf.sprintf "%.6g" v))
    rows;
  close_out oc
