(* Fixture: a closure handed to the scheduler may fire after the
   packet has been freed and reissued to a different segment. *)
let on_packet sched (pkt : Sim_net.Packet.t) =
  ignore
    (Sim_engine.Scheduler.schedule_after sched
       (Sim_engine.Sim_time.of_ns 10)
       (fun () -> ignore (Sim_net.Packet.sack_blocks pkt)))
