(* Fixture named like the exempt module: D005 must not fire here. *)
let spawn f = Domain.spawn f

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
