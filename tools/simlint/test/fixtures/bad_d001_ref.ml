(* Fixture: toplevel ref is cross-simulation shared state. *)
let counter = ref 0

let bump () =
  incr counter;
  !counter
