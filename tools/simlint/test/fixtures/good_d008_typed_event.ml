(* The sanctioned hot-path idioms: a re-armable Timer carrying a
   static fire function + state, and a pooled Event cell filled per
   arm. Neither allocates a closure per event, so D008 stays silent. *)
let tick (n : int ref) = incr n

let arm_timer sched n =
  let tm = Sim_engine.Scheduler.Timer.create sched tick n in
  Sim_engine.Scheduler.Timer.schedule_after tm (Sim_engine.Sim_time.of_ns 10)

let arm_cell (pool : int Sim_engine.Scheduler.Event.pool) v =
  ignore (Sim_engine.Scheduler.Event.schedule_after pool
            (Sim_engine.Sim_time.of_ns 10) v)
