(* Reading the packet inside the handler is exactly the lease the
   pool grants — nothing here may fire. *)
let bytes_if_data (pkt : Sim_net.Packet.t) =
  if Sim_net.Packet.is_data pkt then pkt.Sim_net.Packet.len else 0

let sack_spans (pkt : Sim_net.Packet.t) =
  List.fold_left
    (fun acc (lo, hi) -> acc + (hi - lo))
    0
    (Sim_net.Packet.sack_blocks pkt)
