(* Fixture: wall-clock reads. *)
let stamp () = Unix.gettimeofday ()

let cpu () = Sys.time ()
