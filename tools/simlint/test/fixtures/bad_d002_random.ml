(* Fixture: ambient PRNG calls. *)
let init () = Random.self_init ()

let jitter () = Random.float 1.0
