(* Fixture: inserting a leased packet into a container retains it
   past the handler. *)
let stash (q : Sim_net.Packet.t Queue.t) (pkt : Sim_net.Packet.t) =
  Queue.push pkt q
