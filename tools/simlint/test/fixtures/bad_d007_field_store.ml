(* Fixture: storing a leased packet into a mutable field retains it
   past the handler; the pool may recycle the record underneath. *)
type box = { mutable last : Sim_net.Packet.t option }

let on_packet box (pkt : Sim_net.Packet.t) = box.last <- Some pkt
