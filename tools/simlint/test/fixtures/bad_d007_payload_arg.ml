(* Fixture: a leased packet handed to the scheduler as a typed-event
   payload escapes its handler exactly like a closure capture would —
   the cell may fire after the pool has reissued the record. Only the
   link layer (D007-exempt) owns in-flight payload slots. *)
let on_packet (pool : Sim_net.Packet.t Sim_engine.Scheduler.Event.pool)
    (pkt : Sim_net.Packet.t) =
  ignore
    (Sim_engine.Scheduler.Event.schedule_after pool
       (Sim_engine.Sim_time.of_ns 10)
       pkt)
