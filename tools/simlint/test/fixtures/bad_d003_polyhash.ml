(* Fixture: polymorphic hash in a path-selection helper. *)
let pick_path ~paths flow = Hashtbl.hash flow mod paths

let seeded flow = Hashtbl.seeded_hash 42 flow
