(* Fixture: freeing through a copy-less alias — the alias never owns
   the record, so this free is either a double free in waiting or a
   theft from the true owner. *)
let drop ~ctx (pkt : Sim_net.Packet.t) =
  let alias = pkt in
  Sim_net.Packet.free ~ctx alias
