(* Fixture: mutable state is fine when allocated per call — nothing
   here may produce a finding. *)
type acc = { mutable total : int }

let sum xs =
  let a = { total = 0 } in
  List.iter (fun x -> a.total <- a.total + x) xs;
  a.total

let histogram xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let n = match Hashtbl.find_opt tbl x with Some n -> n | None -> 0 in
      Hashtbl.replace tbl x (n + 1))
    xs;
  tbl

let render x = Printf.sprintf "%d" x

let immutable_toplevel = [ 1; 2; 3 ]
