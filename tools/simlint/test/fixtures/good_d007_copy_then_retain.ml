(* A component that retains a packet must retain a copy it owns:
   Packet.copy at the escape site satisfies D007. *)
type box = { mutable last : Sim_net.Packet.t option }

let on_packet ~ctx box (pkt : Sim_net.Packet.t) =
  box.last <- Some (Sim_net.Packet.copy ~ctx pkt)
