(* Fixture: toplevel mutable containers, including one captured by a
   closure (allocated at module init, so still global state). *)
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let pending : int Queue.t = Queue.create ()
let scratch = Buffer.create 64
let cells = Array.make 8 0

let memoized =
  let cache : (int, int) Hashtbl.t = Hashtbl.create 4 in
  fun k -> Hashtbl.find_opt cache k
