(* Fixture: toplevel mutable containers, including one captured by a
   closure (allocated at module init, so still global state). *)
let table = Hashtbl.create 16
let pending = Queue.create ()
let scratch = Buffer.create 64
let cells = Array.make 8 0

let memoized =
  let cache = Hashtbl.create 4 in
  fun k -> Hashtbl.find_opt cache k
