(* A drop hook that wants to keep the dropped packet must copy it:
   the queue frees the original immediately after the hooks return
   (see Pktqueue.add_drop_hook). Copying inside the hook is the
   sanctioned pattern. *)
type box = { mutable last : Sim_net.Packet.t option }

let install ~ctx q box =
  Sim_net.Pktqueue.add_drop_hook q (fun pkt ->
      box.last <- Some (Sim_net.Packet.copy ~ctx pkt))
