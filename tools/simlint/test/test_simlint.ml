(* Fixture-driven tests for the determinism lint: every rule must trip
   on its known-bad snippet, clean code and exempt modules must pass,
   and the allowlist must suppress (and report staleness) correctly.

   The fixtures compile as the [simlint_fixtures] library (so they are
   well-typed programs, wrong only in the ways the lint catches), and
   the tests analyse the resulting .cmt files — the same input the
   `@lint` alias feeds the tool. *)

module L = Simlint_core

(* Where dune puts the fixture library's cmts, relative to the test's
   working directory. *)
let cmt_of name =
  let modname = String.capitalize_ascii (Filename.remove_extension name) in
  String.concat Filename.dir_sep
    [ "fixtures"; ".simlint_fixtures.objs"; "byte";
      "simlint_fixtures__" ^ modname ^ ".cmt" ]

let src_of name = "tools/simlint/test/fixtures/" ^ name

let findings_of name = (L.lint_cmt (cmt_of name)).L.cl_findings
let rules_of name = List.map (fun (f : L.finding) -> f.rule) (findings_of name)

let rule = Alcotest.testable (Fmt.of_to_string L.rule_id) ( = )

let check_rules name file expected =
  Alcotest.(check (list rule)) name expected (rules_of file)

(* --- each rule has at least one failing fixture --- *)

let test_d001_ref () = check_rules "toplevel ref" "bad_d001_ref.ml" [ L.D001 ]

let test_d001_containers () =
  (* Four direct toplevel allocations plus one captured by a closure. *)
  check_rules "toplevel containers" "bad_d001_containers.ml"
    [ L.D001; L.D001; L.D001; L.D001; L.D001 ]

let test_d001_mutable_record () =
  check_rules "mutable record literal" "bad_d001_mutable_record.ml" [ L.D001 ]

let test_d001_nested_module () =
  check_rules "nested module ref" "bad_d001_nested_module.ml" [ L.D001 ]

let test_d002_random () =
  check_rules "Random calls" "bad_d002_random.ml" [ L.D002; L.D002 ]

let test_d002_clock () =
  check_rules "wall clock" "bad_d002_clock.ml" [ L.D002; L.D002 ]

let test_d003_polyhash () =
  check_rules "polymorphic hash" "bad_d003_polyhash.ml" [ L.D003; L.D003 ]

let test_d004_print () =
  check_rules "console output" "bad_d004_print.ml" [ L.D004; L.D004; L.D004 ]

let test_d005_domain () =
  (* Domain.spawn, Domain.join, Mutex.create, Atomic.make *)
  check_rules "concurrency primitives" "bad_d005_domain.ml"
    [ L.D005; L.D005; L.D005; L.D005 ]

let test_d006_spawn () =
  (* Unix.fork, Unix.create_process, Unix.open_process_in *)
  check_rules "process spawning" "bad_d006_spawn.ml"
    [ L.D006; L.D006; L.D006 ]

(* --- D007: pooled-packet escapes --- *)

(* Each bad fixture must produce exactly one D007 finding at the
   escape site (file, line and column all checked), and each good
   fixture — the sanctioned Packet.copy patterns — none at all.
   Filtered by rule: the closure-capture fixture legitimately also
   trips D008 (it schedules a closure), asserted separately below. *)
let check_d007 file ~line ~col () =
  match
    List.filter (fun (f : L.finding) -> f.rule = L.D007) (findings_of file)
  with
  | [ f ] ->
    Alcotest.(check string) "file" (src_of file) f.L.file;
    Alcotest.(check int) "line" line f.L.line;
    Alcotest.(check int) "col" col f.L.col
  | fs ->
    Alcotest.failf "%s: expected exactly one D007 finding, got %d:\n%s" file
      (List.length fs)
      (String.concat "\n" (List.map L.pp_finding fs))

let test_d007_field_store = check_d007 "bad_d007_field_store.ml" ~line:5 ~col:62
let test_d007_closure = check_d007 "bad_d007_closure_capture.ml" ~line:7 ~col:53

let test_d007_container =
  check_d007 "bad_d007_container_insert.ml" ~line:4 ~col:13

let test_d007_return = check_d007 "bad_d007_return_escape.ml" ~line:4 ~col:42
let test_d007_double_free = check_d007 "bad_d007_double_free.ml" ~line:4 ~col:27
let test_d007_free_alias = check_d007 "bad_d007_free_alias.ml" ~line:6 ~col:27

let test_d007_good_copy () =
  check_rules "copy-then-retain is sanctioned" "good_d007_copy_then_retain.ml"
    []

let test_d007_good_readonly () =
  check_rules "read-only handler is the contract" "good_d007_readonly_handler.ml"
    []

let test_d007_good_drop_hook () =
  check_rules "drop hook that copies" "good_d007_drop_hook_copy.ml" []

let test_d007_payload_arg =
  check_d007 "bad_d007_payload_arg.ml" ~line:10 ~col:7

(* --- D008: closure-per-event scheduling --- *)

(* The bad fixture arms two closure events; both must be flagged at
   the call identifier (exact line and column), in source order. *)
let test_d008_closure_event () =
  match findings_of "bad_d008_closure_event.ml" with
  | [ a; b ] ->
    Alcotest.(check (list rule)) "rules" [ L.D008; L.D008 ] [ a.L.rule; b.L.rule ];
    Alcotest.(check (list int)) "lines" [ 6; 10 ] [ a.L.line; b.L.line ];
    Alcotest.(check (list int)) "cols" [ 5; 5 ] [ a.L.col; b.L.col ]
  | fs ->
    Alcotest.failf "expected exactly two D008 findings, got %d:\n%s"
      (List.length fs)
      (String.concat "\n" (List.map L.pp_finding fs))

let test_d008_typed_event_clean () =
  check_rules "Timer/Event arms do not trip D008" "good_d008_typed_event.ml" []

(* Scheduling a closure that captures a packet is both escapes at
   once: the D007 capture and the D008 closure arm. *)
let test_d008_on_capture_fixture () =
  check_rules "closure capture also arms a closure"
    "bad_d007_closure_capture.ml" [ L.D008; L.D007 ]

(* --- clean code and built-in exemptions --- *)

let test_clean_local_state () =
  check_rules "per-call state is fine" "clean_local_state.ml" []

let test_exempt_sim_ctx () =
  check_rules "sim_ctx.ml may own state" "sim_ctx.ml" []

let test_exempt_domain_pool () =
  check_rules "domain_pool.ml may use Domain" "domain_pool.ml" []

let test_exempt_proc_pool () =
  check_rules "proc_pool.ml may spawn processes" "proc_pool.ml" []

let test_clean_file_sink () =
  (* D004 is scoped to console I/O: a file-writing sink (open_out,
     fprintf to a channel — the --out artifact layer) is deliberately
     outside the rule. *)
  check_rules "file sinks are not console output" "clean_file_sink.ml" []

(* --- typed-tree precision: cmt bookkeeping --- *)

let test_cmt_source_recorded () =
  let l = L.lint_cmt (cmt_of "bad_d001_ref.ml") in
  match l.L.cl_source with
  | Some s ->
    Alcotest.(check bool)
      "cmt records its .ml source" true
      (L.same_source s (src_of "bad_d001_ref.ml"))
  | None -> Alcotest.fail "implementation cmt must carry its source path"

let test_alias_module_skipped () =
  (* The library's generated alias module (built from a .ml-gen file)
     holds no user source: it must lint to nothing and claim no
     coverage. *)
  let l =
    L.lint_cmt
      (String.concat Filename.dir_sep
         [ "fixtures"; ".simlint_fixtures.objs"; "byte";
           "simlint_fixtures.cmt" ])
  in
  Alcotest.(check bool) "no source claimed" true (l.L.cl_source = None);
  Alcotest.(check int) "no findings" 0 (List.length l.L.cl_findings)

let test_same_source () =
  Alcotest.(check bool)
    "suffix match" true
    (L.same_source "fixtures/bad_d001_ref.ml"
       "tools/simlint/test/fixtures/bad_d001_ref.ml");
  Alcotest.(check bool)
    "component boundaries respected" false
    (L.same_source "res/bad_d001_ref.ml"
       "tools/simlint/test/fixtures/bad_d001_ref.ml");
  Alcotest.(check bool)
    "different basenames differ" false
    (L.same_source "fixtures/bad_d001_ref.ml" "fixtures/bad_d002_clock.ml")

(* --- finding formatting --- *)

let test_finding_format () =
  match findings_of "bad_d001_ref.ml" with
  | [ f ] ->
    Alcotest.(check string)
      "file:line:col [RULE] prefix"
      "tools/simlint/test/fixtures/bad_d001_ref.ml:2:14 [D001]"
      (String.concat " "
         (match String.split_on_char ' ' (L.pp_finding f) with
         | loc :: rule :: _ -> [ loc; rule ]
         | _ -> []))
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* --- allowlist --- *)

let entry ?(line = 1) file r : L.allow_entry =
  { a_file = file; a_rule = r; a_line = line }

let test_allow_suppresses () =
  let findings = findings_of "bad_d001_ref.ml" in
  let kept, stale =
    L.apply_allow [ entry (src_of "bad_d001_ref.ml") L.D001 ] findings
  in
  Alcotest.(check int) "suppressed" 0 (List.length kept);
  Alcotest.(check int) "entry used" 0 (List.length stale)

let test_allow_wrong_rule_is_stale () =
  let findings = findings_of "bad_d001_ref.ml" in
  let kept, stale =
    L.apply_allow [ entry (src_of "bad_d001_ref.ml") L.D004 ] findings
  in
  Alcotest.(check int) "finding kept" 1 (List.length kept);
  Alcotest.(check int) "entry stale" 1 (List.length stale)

let test_allow_file_parsing () =
  let tmp = Filename.temp_file "simlint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc
        "# comment\n\n  lib/experiments/report.ml:D004  # trailing\n./x.ml:D001\n";
      close_out oc;
      match L.parse_allow_file tmp with
      | [ a; b ] ->
        Alcotest.(check string) "path" "lib/experiments/report.ml" a.L.a_file;
        Alcotest.(check bool) "rule" true (a.L.a_rule = L.D004);
        Alcotest.(check string) "./ stripped" "x.ml" b.L.a_file;
        Alcotest.(check bool) "rule 2" true (b.L.a_rule = L.D001)
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_allow_rejects_garbage () =
  let tmp = Filename.temp_file "simlint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "lib/foo.ml:D999\n";
      close_out oc;
      Alcotest.check_raises "unknown rule"
        (L.Allow_syntax "line 1: unknown rule \"D999\" (expected D001-D008)")
        (fun () -> ignore (L.parse_allow_file tmp)))

(* --- tree scanning --- *)

let test_scan_tree () =
  let cmts, mls = L.scan_tree "fixtures" in
  Alcotest.(check bool) "finds all fixture sources" true (List.length mls >= 20);
  Alcotest.(check bool)
    "finds the cmts inside .objs" true
    (List.length cmts >= List.length mls);
  Alcotest.(check (list string)) "cmts sorted" (List.sort compare cmts) cmts;
  Alcotest.(check (list string)) "mls sorted" (List.sort compare mls) mls;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("cmt file: " ^ f) true (Filename.check_suffix f ".cmt"))
    cmts;
  (* every fixture source is covered by some analysed cmt — the
     invariant the CLI's coverage warning enforces for lib/ *)
  let sources =
    List.filter_map (fun c -> (L.lint_cmt c).L.cl_source) cmts
  in
  List.iter
    (fun ml ->
      Alcotest.(check bool)
        ("covered: " ^ ml) true
        (List.exists (L.same_source ml) sources))
    mls

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "D001 toplevel ref" `Quick test_d001_ref;
          Alcotest.test_case "D001 containers" `Quick test_d001_containers;
          Alcotest.test_case "D001 mutable record" `Quick test_d001_mutable_record;
          Alcotest.test_case "D001 nested module" `Quick test_d001_nested_module;
          Alcotest.test_case "D002 Random" `Quick test_d002_random;
          Alcotest.test_case "D002 wall clock" `Quick test_d002_clock;
          Alcotest.test_case "D003 polymorphic hash" `Quick test_d003_polyhash;
          Alcotest.test_case "D004 console output" `Quick test_d004_print;
          Alcotest.test_case "D005 concurrency" `Quick test_d005_domain;
          Alcotest.test_case "D006 process spawning" `Quick test_d006_spawn;
        ] );
      ( "d007",
        [
          Alcotest.test_case "field store" `Quick test_d007_field_store;
          Alcotest.test_case "closure capture" `Quick test_d007_closure;
          Alcotest.test_case "container insert" `Quick test_d007_container;
          Alcotest.test_case "return escape" `Quick test_d007_return;
          Alcotest.test_case "double free" `Quick test_d007_double_free;
          Alcotest.test_case "free of alias" `Quick test_d007_free_alias;
          Alcotest.test_case "good: copy then retain" `Quick test_d007_good_copy;
          Alcotest.test_case "good: read-only handler" `Quick
            test_d007_good_readonly;
          Alcotest.test_case "good: drop hook copies" `Quick
            test_d007_good_drop_hook;
          Alcotest.test_case "deferred payload arg" `Quick test_d007_payload_arg;
        ] );
      ( "d008",
        [
          Alcotest.test_case "closure events flagged" `Quick
            test_d008_closure_event;
          Alcotest.test_case "typed arms clean" `Quick
            test_d008_typed_event_clean;
          Alcotest.test_case "capture fixture trips both" `Quick
            test_d008_on_capture_fixture;
        ] );
      ( "exemptions",
        [
          Alcotest.test_case "local state clean" `Quick test_clean_local_state;
          Alcotest.test_case "sim_ctx exempt from D001" `Quick test_exempt_sim_ctx;
          Alcotest.test_case "domain_pool exempt from D005" `Quick test_exempt_domain_pool;
          Alcotest.test_case "proc_pool exempt from D006" `Quick test_exempt_proc_pool;
          Alcotest.test_case "file sinks outside D004" `Quick test_clean_file_sink;
        ] );
      ( "cmt",
        [
          Alcotest.test_case "source recorded" `Quick test_cmt_source_recorded;
          Alcotest.test_case "alias module skipped" `Quick
            test_alias_module_skipped;
          Alcotest.test_case "same_source" `Quick test_same_source;
        ] );
      ( "output",
        [ Alcotest.test_case "finding format" `Quick test_finding_format ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppresses matching" `Quick test_allow_suppresses;
          Alcotest.test_case "wrong rule stays + stale" `Quick test_allow_wrong_rule_is_stale;
          Alcotest.test_case "file parsing" `Quick test_allow_file_parsing;
          Alcotest.test_case "rejects unknown rule" `Quick test_allow_rejects_garbage;
        ] );
      ( "scan",
        [ Alcotest.test_case "tree scan + coverage" `Quick test_scan_tree ] );
    ]
