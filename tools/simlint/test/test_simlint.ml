(* Fixture-driven tests for the determinism lint: every rule must trip
   on its known-bad snippet, clean code and exempt modules must pass,
   and the allowlist must suppress (and report staleness) correctly. *)

module L = Simlint_core

let fixture name = Filename.concat "fixtures" name

let rules_of file = List.map (fun (f : L.finding) -> f.rule) (L.lint_file file)

let rule = Alcotest.testable (Fmt.of_to_string L.rule_id) ( = )

let check_rules name file expected =
  Alcotest.(check (list rule)) name expected (rules_of (fixture file))

(* --- each rule has at least one failing fixture --- *)

let test_d001_ref () = check_rules "toplevel ref" "bad_d001_ref.ml" [ L.D001 ]

let test_d001_containers () =
  (* Four direct toplevel allocations plus one captured by a closure. *)
  check_rules "toplevel containers" "bad_d001_containers.ml"
    [ L.D001; L.D001; L.D001; L.D001; L.D001 ]

let test_d001_mutable_record () =
  check_rules "mutable record literal" "bad_d001_mutable_record.ml" [ L.D001 ]

let test_d001_nested_module () =
  check_rules "nested module ref" "bad_d001_nested_module.ml" [ L.D001 ]

let test_d002_random () =
  check_rules "Random calls" "bad_d002_random.ml" [ L.D002; L.D002 ]

let test_d002_clock () =
  check_rules "wall clock" "bad_d002_clock.ml" [ L.D002; L.D002 ]

let test_d003_polyhash () =
  check_rules "polymorphic hash" "bad_d003_polyhash.ml" [ L.D003; L.D003 ]

let test_d004_print () =
  check_rules "console output" "bad_d004_print.ml" [ L.D004; L.D004; L.D004 ]

let test_d005_domain () =
  (* Domain.spawn, Domain.join, Mutex.create, Atomic.make *)
  check_rules "concurrency primitives" "bad_d005_domain.ml"
    [ L.D005; L.D005; L.D005; L.D005 ]

let test_d006_spawn () =
  (* Unix.fork, Unix.create_process, Unix.open_process_in *)
  check_rules "process spawning" "bad_d006_spawn.ml"
    [ L.D006; L.D006; L.D006 ]

(* --- clean code and built-in exemptions --- *)

let test_clean_local_state () =
  check_rules "per-call state is fine" "clean_local_state.ml" []

let test_exempt_sim_ctx () =
  check_rules "sim_ctx.ml may own state" "sim_ctx.ml" []

let test_exempt_domain_pool () =
  check_rules "domain_pool.ml may use Domain" "domain_pool.ml" []

let test_exempt_proc_pool () =
  check_rules "proc_pool.ml may spawn processes" "proc_pool.ml" []

let test_clean_file_sink () =
  (* D004 is scoped to console I/O: a file-writing sink (open_out,
     fprintf to a channel — the --out artifact layer) is deliberately
     outside the rule. *)
  check_rules "file sinks are not console output" "clean_file_sink.ml" []

(* --- finding formatting --- *)

let test_finding_format () =
  match L.lint_file (fixture "bad_d001_ref.ml") with
  | [ f ] ->
    Alcotest.(check string)
      "file:line:col [RULE] prefix"
      "fixtures/bad_d001_ref.ml:2:14 [D001]"
      (String.concat " "
         (match String.split_on_char ' ' (L.pp_finding f) with
         | loc :: rule :: _ -> [ loc; rule ]
         | _ -> []))
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* --- allowlist --- *)

let entry ?(line = 1) file r : L.allow_entry =
  { a_file = file; a_rule = r; a_line = line }

let test_allow_suppresses () =
  let findings = L.lint_file (fixture "bad_d001_ref.ml") in
  let kept, stale =
    L.apply_allow [ entry "fixtures/bad_d001_ref.ml" L.D001 ] findings
  in
  Alcotest.(check int) "suppressed" 0 (List.length kept);
  Alcotest.(check int) "entry used" 0 (List.length stale)

let test_allow_wrong_rule_is_stale () =
  let findings = L.lint_file (fixture "bad_d001_ref.ml") in
  let kept, stale =
    L.apply_allow [ entry "fixtures/bad_d001_ref.ml" L.D004 ] findings
  in
  Alcotest.(check int) "finding kept" 1 (List.length kept);
  Alcotest.(check int) "entry stale" 1 (List.length stale)

let test_allow_file_parsing () =
  let tmp = Filename.temp_file "simlint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc
        "# comment\n\n  lib/experiments/report.ml:D004  # trailing\n./x.ml:D001\n";
      close_out oc;
      match L.parse_allow_file tmp with
      | [ a; b ] ->
        Alcotest.(check string) "path" "lib/experiments/report.ml" a.L.a_file;
        Alcotest.(check bool) "rule" true (a.L.a_rule = L.D004);
        Alcotest.(check string) "./ stripped" "x.ml" b.L.a_file;
        Alcotest.(check bool) "rule 2" true (b.L.a_rule = L.D001)
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_allow_rejects_garbage () =
  let tmp = Filename.temp_file "simlint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "lib/foo.ml:D999\n";
      close_out oc;
      Alcotest.check_raises "unknown rule"
        (L.Allow_syntax "line 1: unknown rule \"D999\" (expected D001-D006)")
        (fun () -> ignore (L.parse_allow_file tmp)))

(* --- tree scanning --- *)

let test_scan_tree_sorted () =
  let files = L.scan_tree "fixtures" in
  Alcotest.(check bool)
    "finds all fixtures" true
    (List.length files >= 12);
  Alcotest.(check (list string)) "sorted" (List.sort compare files) files;
  List.iter
    (fun f -> Alcotest.(check bool) ("ml file: " ^ f) true (Filename.check_suffix f ".ml"))
    files

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "D001 toplevel ref" `Quick test_d001_ref;
          Alcotest.test_case "D001 containers" `Quick test_d001_containers;
          Alcotest.test_case "D001 mutable record" `Quick test_d001_mutable_record;
          Alcotest.test_case "D001 nested module" `Quick test_d001_nested_module;
          Alcotest.test_case "D002 Random" `Quick test_d002_random;
          Alcotest.test_case "D002 wall clock" `Quick test_d002_clock;
          Alcotest.test_case "D003 polymorphic hash" `Quick test_d003_polyhash;
          Alcotest.test_case "D004 console output" `Quick test_d004_print;
          Alcotest.test_case "D005 concurrency" `Quick test_d005_domain;
          Alcotest.test_case "D006 process spawning" `Quick test_d006_spawn;
        ] );
      ( "exemptions",
        [
          Alcotest.test_case "local state clean" `Quick test_clean_local_state;
          Alcotest.test_case "sim_ctx exempt from D001" `Quick test_exempt_sim_ctx;
          Alcotest.test_case "domain_pool exempt from D005" `Quick test_exempt_domain_pool;
          Alcotest.test_case "proc_pool exempt from D006" `Quick test_exempt_proc_pool;
          Alcotest.test_case "file sinks outside D004" `Quick test_clean_file_sink;
        ] );
      ( "output",
        [ Alcotest.test_case "finding format" `Quick test_finding_format ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppresses matching" `Quick test_allow_suppresses;
          Alcotest.test_case "wrong rule stays + stale" `Quick test_allow_wrong_rule_is_stale;
          Alcotest.test_case "file parsing" `Quick test_allow_file_parsing;
          Alcotest.test_case "rejects unknown rule" `Quick test_allow_rejects_garbage;
        ] );
      ( "scan",
        [ Alcotest.test_case "tree scan sorted" `Quick test_scan_tree_sorted ] );
    ]
