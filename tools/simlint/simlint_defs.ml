(* Shared vocabulary of the lint: rule ids, findings, resolved-path
   helpers and the allowlist. Rule implementations live in
   Simlint_core (D001-D006, D008) and Simlint_pool (D007). *)

type rule = D001 | D002 | D003 | D004 | D005 | D006 | D007 | D008

let rule_id = function
  | D001 -> "D001"
  | D002 -> "D002"
  | D003 -> "D003"
  | D004 -> "D004"
  | D005 -> "D005"
  | D006 -> "D006"
  | D007 -> "D007"
  | D008 -> "D008"

let rule_of_id = function
  | "D001" -> Some D001
  | "D002" -> Some D002
  | "D003" -> Some D003
  | "D004" -> Some D004
  | "D005" -> Some D005
  | "D006" -> Some D006
  | "D007" -> Some D007
  | "D008" -> Some D008
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  msg : string;
}

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare (rule_id a.rule) (rule_id b.rule)

let pp_finding f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col (rule_id f.rule) f.msg

let finding_at ~rule ~msg (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

(* Built-in scopes: the modules allowed to own each class of state.
   Everything else goes through the allowlist file so exceptions stay
   visible in review. D007's scope is the data plane that legitimately
   owns packets between [make] and [free]: the pool itself
   (packet.ml), the queue a packet waits in (pktqueue.ml) and the link
   whose in-flight closures carry it across the wire (link.ml). *)
let exempt file rule =
  let base = Filename.basename file in
  match rule with
  | D001 -> base = "sim_ctx.ml"
  | D002 -> base = "rng.ml"
  | D005 -> base = "domain_pool.ml"
  | D006 -> base = "proc_pool.ml"
  | D007 -> base = "packet.ml" || base = "pktqueue.ml" || base = "link.ml"
  | D003 | D004 | D008 -> false

(* ------------------------------------------------------------------ *)
(* Resolved-path helpers (typed tree: paths are what the typechecker
   resolved, not what was written, so `open`/aliasing can no longer
   hide a forbidden call and local shadowing no longer false-fires). *)

let rec raw_components = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_components p @ [ s ]
  | Path.Papply (a, _) -> raw_components a
  | Path.Pextra_ty (p, _) -> raw_components p

(* Wrapped-library module names arrive as `Lib__Module`; the stdlib's
   as `Stdlib__Module` or `Stdlib.Module`. Normalise both to the bare
   module spelling so matching is stable across access paths. *)
let norm_component s =
  match String.rindex_opt s '_' with
  | Some i when i >= 1 && s.[i - 1] = '_' && i + 1 < String.length s ->
    String.sub s (i + 1) (String.length s - i - 1)
  | _ -> s

let components p =
  let comps = List.map norm_component (raw_components p) in
  match comps with "Stdlib" :: rest when rest <> [] -> rest | _ -> comps

let from_stdlib p =
  match raw_components p with
  | root :: _ -> root = "Stdlib" || String.length root >= 8 && String.sub root 0 8 = "Stdlib__"
  | [] -> false

let path_string p = String.concat "." (components p)

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

type allow_entry = { a_file : string; a_rule : rule; a_line : int }

let normalize_path p =
  let p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  String.concat "/" (String.split_on_char '\\' p)

exception Allow_syntax of string

let parse_allow_line ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    match String.rindex_opt line ':' with
    | None ->
      raise
        (Allow_syntax
           (Printf.sprintf "line %d: expected `path:RULE`, got %S" lineno line))
    | Some i -> (
      let path = normalize_path (String.trim (String.sub line 0 i)) in
      let rid = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match rule_of_id rid with
      | None ->
        raise
          (Allow_syntax
             (Printf.sprintf "line %d: unknown rule %S (expected D001-D008)"
                lineno rid))
      | Some r -> Some { a_file = path; a_rule = r; a_line = lineno })

let parse_allow_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match parse_allow_line ~lineno:!lineno line with
           | Some e -> entries := e :: !entries
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !entries)

(* Partition findings through the allowlist; also report entries that
   suppressed nothing so the file can't rot. Finding paths come from
   compiler locations and entry paths from the allow file, so both are
   compared relative to the project root. *)
let apply_allow entries findings =
  let used = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun f ->
        let matching =
          List.filter
            (fun e -> e.a_rule = f.rule && normalize_path f.file = e.a_file)
            entries
        in
        List.iter (fun e -> Hashtbl.replace used e.a_line ()) matching;
        matching = [])
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e.a_line)) entries in
  (kept, stale)
