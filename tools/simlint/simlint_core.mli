(** Determinism & parallel-safety lint over the simulator's Parsetree.

    Rules (see DESIGN.md, "Determinism invariants"):

    - [D001] no module-level mutable state (toplevel [ref],
      [Hashtbl.create], [Queue.create], [Buffer.create], [Stack.create],
      [Array.make]/[init]/[create_float], [Bytes.create]/[make], array
      literals, record literals with fields this file declares
      [mutable]) — such state leaks between simulations that share the
      process. Built-in exemption: [sim_ctx.ml], the one module whose
      job is to own per-simulation state.
    - [D002] no ambient nondeterminism ([Random.*], [Unix.gettimeofday],
      [Unix.time], [Sys.time]). Built-in exemption: [rng.ml].
    - [D003] no polymorphic [Hashtbl.hash] family — its output is not
      stable across compiler versions, so ECMP spraying (and therefore
      every figure) would silently change on upgrade.
    - [D004] no direct console I/O ([Printf.printf], [print_string],
      [prerr_*], [Format.printf], ...) — stdout discipline belongs to
      the report layer (allowlisted in [simlint.allow]).
    - [D005] no [Domain]/[Mutex]/[Condition]/[Atomic] use. Built-in
      exemption: [domain_pool.ml].
    - [D006] no raw process spawning ([Unix.fork],
      [Unix.create_process*], [Unix.open_process*], [Unix.system]) — a
      stray fork duplicates simulation state and bypasses the worker
      pipe protocol. Built-in exemption: [proc_pool.ml].

    The analysis is purely syntactic (compiler-libs parser, no typing):
    precise enough for a curated codebase, with [simlint.allow] as the
    escape hatch for deliberate exceptions. *)

type rule = D001 | D002 | D003 | D004 | D005 | D006

val rule_id : rule -> string
val rule_of_id : string -> rule option

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  msg : string;
}

val compare_finding : finding -> finding -> int

val pp_finding : finding -> string
(** [file:line:col [RULE] message] *)

val lint_structure : file:string -> Parsetree.structure -> finding list
(** Findings for an already-parsed implementation, sorted by position.
    Built-in per-rule exemptions (see above) are applied here. *)

val lint_file : string -> finding list
(** Parse [path] with compiler-libs and lint it. Raises the parser's
    exceptions on syntax errors (render with
    {!Location.report_exception}). *)

val scan_tree : string -> string list
(** All [.ml] files under a directory (or the path itself if it is a
    [.ml] file), sorted, skipping [_build] and dot-directories. *)

(** {2 Allowlist}

    One entry per line, [path:RULE], [#] comments allowed:
    {[
      # report.ml is the one module that may print
      lib/experiments/report.ml:D004
    ]} *)

type allow_entry = { a_file : string; a_rule : rule; a_line : int }

exception Allow_syntax of string

val parse_allow_file : string -> allow_entry list
(** Raises {!Allow_syntax} on malformed lines. *)

val apply_allow :
  allow_entry list -> finding list -> finding list * allow_entry list
(** [apply_allow entries findings] is [(kept, stale)]: findings not
    covered by any entry, and entries that suppressed nothing (stale
    entries should be warned about and removed). *)
