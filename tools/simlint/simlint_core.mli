(** Determinism & parallel-safety lint over the simulator's typed tree.

    Rules (see DESIGN.md, "Determinism invariants", and §4i for D007):

    - [D001] no module-level mutable state (toplevel [ref],
      [Hashtbl.create], [Queue.create], [Buffer.create], [Stack.create],
      [Array.make]/[init]/[create_float], [Bytes.create]/[make], array
      literals, record literals with [mutable] fields) — such state
      leaks between simulations that share the process. Built-in
      exemption: [sim_ctx.ml], the one module whose job is to own
      per-simulation state.
    - [D002] no ambient nondeterminism ([Random.*], [Unix.gettimeofday],
      [Unix.time], [Sys.time]). Built-in exemption: [rng.ml].
    - [D003] no polymorphic [Hashtbl.hash] family — its output is not
      stable across compiler versions, so ECMP spraying (and therefore
      every figure) would silently change on upgrade.
    - [D004] no direct console I/O ([Printf.printf], [print_string],
      [prerr_*], [Format.printf], ...) — stdout discipline belongs to
      the report layer (allowlisted in [simlint.allow]).
    - [D005] no [Domain]/[Mutex]/[Condition]/[Atomic] use. Built-in
      exemption: [domain_pool.ml].
    - [D006] no raw process spawning ([Unix.fork],
      [Unix.create_process*], [Unix.open_process*], [Unix.system]) — a
      stray fork duplicates simulation state and bypasses the worker
      pipe protocol. Built-in exemption: [proc_pool.ml].
    - [D007] no pooled [Sim_net.Packet.t] escaping its handler without
      [Packet.copy]: stores into fields/containers, capture by
      scheduler/timer closures, returns from packet handlers, double
      frees and frees through copy-less aliases (see {!Simlint_pool}).
      Built-in exemption: the owning data plane — [packet.ml],
      [pktqueue.ml], [link.ml]. Since the typed event path, a raw
      packet passed as a deferred-event payload (timer state, Event
      cell payload) outside those modules is the same escape and is
      flagged too.
    - [D008] no closure-per-event scheduling
      ([Scheduler.schedule_at]/[schedule_after]) — steady-state code
      must arm a re-armable {!Scheduler.Timer} or fill a pooled
      {!Scheduler.Event} cell; genuinely cold setup sites are
      allowlisted in [simlint.allow].

    Since v2 the analysis runs on [.cmt] files ([Cmt_format], produced
    by dune's default [-bin-annot]): identifiers are matched on
    typechecker-resolved paths, so [open]/aliases cannot hide a
    forbidden call, local shadowing cannot false-fire a rule, and D007
    keys on expression types. [simlint.allow] remains the escape hatch
    for deliberate exceptions. *)

type rule =
  Simlint_defs.rule =
  | D001
  | D002
  | D003
  | D004
  | D005
  | D006
  | D007
  | D008

val rule_id : rule -> string
val rule_of_id : string -> rule option

type finding = Simlint_defs.finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  msg : string;
}

val compare_finding : finding -> finding -> int

val pp_finding : finding -> string
(** [file:line:col [RULE] message] *)

val lint_structure : Typedtree.structure -> finding list
(** Findings for one typed implementation, sorted by position. Finding
    paths are the compile-time source paths recorded in locations.
    Built-in per-rule exemptions (see above) are applied here. *)

type cmt_lint = {
  cl_source : string option;
      (** the implementation's source path as recorded at compile
          time; [None] when the cmt holds no [.ml] implementation
          (interfaces, dune's generated alias modules) *)
  cl_findings : finding list;
}

val lint_cmt : string -> cmt_lint
(** Read a [.cmt] with [Cmt_format.read_cmt] and lint its
    implementation, if it has one. Raises on unreadable or
    wrong-magic files. *)

val same_source : string -> string -> bool
(** Whether two source paths name the same file, comparing normalised
    paths up to a leading-directory prefix (the lint may run from a
    different root than the compiler did). *)

val scan_tree : string -> string list * string list
(** [(cmts, mls)] under a directory (or the path itself when it is a
    [.cmt]/[.ml] file), each sorted: every [.cmt] below it — including
    inside dune's hidden [*.objs] dirs — and every visible [.ml]
    source, for coverage checking. [_build] and [.git] are skipped. *)

(** {2 Allowlist}

    One entry per line, [path:RULE], [#] comments allowed:
    {[
      # report.ml is the one module that may print
      lib/experiments/report.ml:D004
    ]} *)

type allow_entry = Simlint_defs.allow_entry = {
  a_file : string;
  a_rule : rule;
  a_line : int;
}

exception Allow_syntax of string

val parse_allow_file : string -> allow_entry list
(** Raises {!Allow_syntax} on malformed lines. *)

val apply_allow :
  allow_entry list -> finding list -> finding list * allow_entry list
(** [apply_allow entries findings] is [(kept, stale)]: findings not
    covered by any entry, and entries that suppressed nothing (stale
    entries should be warned about and removed). *)
