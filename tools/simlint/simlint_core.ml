(* Determinism & parallel-safety lint for the simulator libraries.

   The domain-parallel runner (Runner.par_map) relies on every
   simulation being a pure function of its inputs: no module-level
   mutable state, no ambient randomness or wall-clock reads, no
   unstable polymorphic hashing, console output confined to the
   report layer, raw concurrency primitives confined to Domain_pool,
   process spawning confined to Proc_pool, and — D007, Simlint_pool —
   no pooled packet escaping the handler it was leased to.

   Since v2 the pass runs on the *typed* tree: it reads the [.cmt]
   files dune already produces (dune passes [-bin-annot] by default)
   and walks the Typedtree, so every identifier is the path the
   typechecker resolved. `open Unix` no longer hides [gettimeofday],
   a local [let print_endline] no longer false-fires D004, and D007
   can key on expression *types* ([Sim_net.Packet.t]) rather than
   variable names. The [.ml] sources are still scanned, but only to
   verify cmt coverage: a source file with no corresponding cmt is a
   hole in the lint and is reported. *)

include Simlint_defs

(* ------------------------------------------------------------------ *)
(* D001: module-level mutable state                                    *)

let mutable_ctor p =
  let stdlib = from_stdlib p in
  match components p with
  | [ "ref" ] when stdlib -> Some "`ref`"
  | [ "Hashtbl"; ("create" | "of_seq") ] -> Some "`Hashtbl.create`"
  | [ "Queue"; "create" ] -> Some "`Queue.create`"
  | [ "Buffer"; "create" ] -> Some "`Buffer.create`"
  | [ "Stack"; "create" ] -> Some "`Stack.create`"
  | [ "Array"; ("make" | "init" | "create_float") ]
  | [ "Bytes"; ("create" | "make") ] ->
    Some ("`" ^ path_string p ^ "`")
  | _ -> None

(* Walk one module-initialisation expression; function bodies allocate
   at call time, not module init, so descent stops at lambdas. The
   typed tree tells us record mutability directly from the resolved
   label, wherever the type was declared. *)
let scan_toplevel_expr ~emit expr =
  let finding loc what =
    emit
      (finding_at ~rule:D001
         ~msg:
           (Printf.sprintf
              "module-level mutable state (%s) escapes Sim_ctx; allocate it \
               per-simulation instead"
              what)
         loc)
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_function _ -> ()
          | Typedtree.Texp_apply
              ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) ->
            (match mutable_ctor p with
            | Some what -> finding e.Typedtree.exp_loc what
            | None -> ());
            Tast_iterator.default_iterator.expr self e
          | Typedtree.Texp_record { fields; _ } ->
            if
              Array.exists
                (fun ((lbl : Types.label_description), _) ->
                  lbl.lbl_mut = Asttypes.Mutable)
                fields
            then finding e.Typedtree.exp_loc "record literal with mutable field(s)";
            Tast_iterator.default_iterator.expr self e
          | Typedtree.Texp_array _ ->
            finding e.Typedtree.exp_loc "array literal";
            Tast_iterator.default_iterator.expr self e
          | _ -> Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr

let rec scan_structure_d001 ~emit (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            scan_toplevel_expr ~emit vb.vb_expr)
          vbs
      | Typedtree.Tstr_eval (e, _) -> scan_toplevel_expr ~emit e
      | Typedtree.Tstr_module mb -> scan_module_d001 ~emit mb.mb_expr
      | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            scan_module_d001 ~emit mb.mb_expr)
          mbs
      | Typedtree.Tstr_include incl -> scan_module_d001 ~emit incl.incl_mod
      | _ -> ())
    str.str_items

and scan_module_d001 ~emit (mexpr : Typedtree.module_expr) =
  match mexpr.mod_desc with
  | Typedtree.Tmod_structure s -> scan_structure_d001 ~emit s
  | Typedtree.Tmod_constraint (me, _, _, _) -> scan_module_d001 ~emit me
  (* Functor bodies allocate per application; applications of opaque
     functors stay out of scope, as in v1. *)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* D002-D006: forbidden identifiers anywhere in the file               *)

let d004_toplevel =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

(* Bare names ([print_endline], [ref]) demand stdlib resolution so a
   local binding of the same name cannot fire the rule — the payoff of
   linting after the typechecker. Qualified names match on normalised
   resolved components, so they are caught through [open], module
   aliases and wrapped-library spellings alike. *)
let ident_rule p =
  let name = path_string p in
  match components p with
  | [ "Random"; "self_init" ] ->
    Some
      ( D002,
        "Random.self_init seeds from the environment and destroys \
         reproducibility; use Sim_engine.Rng with an explicit seed" )
  | "Random" :: _ :: _ ->
    Some
      ( D002,
        name
        ^ " draws from the ambient PRNG; thread a seeded Sim_engine.Rng \
           through instead" )
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    Some
      ( D002,
        name
        ^ " reads the wall clock; simulations must use virtual time \
           (Sim_time)" )
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param" | "seeded_hash_param") ]
    ->
    Some
      ( D003,
        name
        ^ " is the polymorphic hash, whose value may change across compiler \
           versions; use a dedicated stable hash (see Ecmp)" )
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] ->
    Some
      ( D004,
        name
        ^ " writes directly to the console; library code must stay silent \
           (route experiment output through Report)" )
  | [ n ] when from_stdlib p && List.mem n d004_toplevel ->
    Some
      ( D004,
        n
        ^ " writes directly to the console; library code must stay silent \
           (route experiment output through Report)" )
  | [ "Unix"; f ]
    when f = "fork" || f = "system"
         || String.starts_with ~prefix:"create_process" f
         || String.starts_with ~prefix:"open_process" f ->
    Some
      ( D006,
        name
        ^ " spawns a process; worker-process fan-out lives only in \
           Sim_engine.Proc_pool" )
  | m :: _ :: _ when m = "Domain" || m = "Mutex" || m = "Condition" || m = "Atomic"
    ->
    Some
      ( D005,
        name
        ^ " is a concurrency primitive; cross-domain coordination lives \
           only in Sim_engine.Domain_pool" )
  | comps
    when (match List.rev comps with
         | ("schedule_at" | "schedule_after") :: "Scheduler" :: _ -> true
         | _ -> false) ->
    Some
      ( D008,
        name
        ^ " allocates a closure per event; steady-state code must arm a \
           re-armable Scheduler.Timer or fill a Scheduler.Event pool cell \
           instead (allowlist genuinely cold setup sites)" )
  | _ -> None

let scan_idents ~emit (str : Typedtree.structure) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> (
            match ident_rule p with
            | Some (rule, msg) -> emit (finding_at ~rule ~msg e.Typedtree.exp_loc)
            | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let lint_structure (str : Typedtree.structure) =
  let acc = ref [] in
  let emit f = if not (exempt f.file f.rule) then acc := f :: !acc in
  scan_structure_d001 ~emit str;
  scan_idents ~emit str;
  Simlint_pool.scan ~emit str;
  List.sort compare_finding !acc

type cmt_lint = {
  cl_source : string option;
      (* the implementation's source path as recorded at compile time;
         None when the cmt holds no [.ml] implementation (interfaces,
         dune's generated alias modules) *)
  cl_findings : finding list;
}

let lint_cmt path =
  let info = Cmt_format.read_cmt path in
  let source =
    match info.cmt_sourcefile with
    | Some s when Filename.check_suffix s ".ml" -> Some s
    | _ -> None
  in
  match (info.cmt_annots, source) with
  | Cmt_format.Implementation str, Some _ ->
    { cl_source = source; cl_findings = lint_structure str }
  | _ -> { cl_source = None; cl_findings = [] }

(* A source file and a cmt_sourcefile name the same module when their
   normalised paths coincide up to a leading-directory prefix (the
   lint may be invoked from a different root than the compiler was). *)
let same_source a b =
  let a = normalize_path a and b = normalize_path b in
  let suffix ~of_:whole part =
    let lw = String.length whole and lp = String.length part in
    lw >= lp
    && String.sub whole (lw - lp) lp = part
    && (lw = lp || whole.[lw - lp - 1] = '/')
  in
  a = b || suffix ~of_:a b || suffix ~of_:b a

(* Collect the inputs under [root]: every [.cmt] (descending into
   dune's hidden [*.objs] dirs, where they live) and every visible
   [.ml] source (for coverage checking). *)
let scan_tree root =
  let cmts = ref [] and mls = ref [] in
  let rec walk dir ~hidden =
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    Array.iter
      (fun name ->
        if String.length name > 0 then begin
          let path = Filename.concat dir name in
          if Sys.is_directory path then begin
            if name = "_build" || name = ".git" then ()
            else if name.[0] = '.' then begin
              if Filename.check_suffix name ".objs" then walk path ~hidden:true
            end
            else walk path ~hidden
          end
          else if Filename.check_suffix name ".cmt" then cmts := path :: !cmts
          else if (not hidden) && Filename.check_suffix name ".ml" then
            mls := path :: !mls
        end)
      entries
  in
  if Sys.is_directory root then walk root ~hidden:false
  else if Filename.check_suffix root ".cmt" then cmts := [ root ]
  else if Filename.check_suffix root ".ml" then mls := [ root ];
  (List.sort compare !cmts, List.sort compare !mls)
