(* Determinism & parallel-safety lint for the simulator libraries.

   The domain-parallel runner (Runner.par_map) relies on every
   simulation being a pure function of its inputs: no module-level
   mutable state, no ambient randomness or wall-clock reads, no
   unstable polymorphic hashing, console output confined to the
   report layer, raw concurrency primitives confined to Domain_pool,
   and process spawning confined to Proc_pool (a stray fork would
   duplicate simulation state and break the worker pipe protocol).
   This pass parses each [.ml] with compiler-libs and
   walks the Parsetree; it sees syntax only (no typing), so the rules
   are name-based and an allowlist covers deliberate exceptions. *)

type rule = D001 | D002 | D003 | D004 | D005 | D006

let rule_id = function
  | D001 -> "D001"
  | D002 -> "D002"
  | D003 -> "D003"
  | D004 -> "D004"
  | D005 -> "D005"
  | D006 -> "D006"

let rule_of_id = function
  | "D001" -> Some D001
  | "D002" -> Some D002
  | "D003" -> Some D003
  | "D004" -> Some D004
  | "D005" -> Some D005
  | "D006" -> Some D006
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  msg : string;
}

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare (rule_id a.rule) (rule_id b.rule)

let pp_finding f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col (rule_id f.rule) f.msg

(* Built-in scopes: the one module allowed to own each class of state.
   Everything else goes through the allowlist file so exceptions stay
   visible in review. *)
let exempt file rule =
  let base = Filename.basename file in
  match rule with
  | D001 -> base = "sim_ctx.ml"
  | D002 -> base = "rng.ml"
  | D005 -> base = "domain_pool.ml"
  | D006 -> base = "proc_pool.ml"
  | D003 | D004 -> false

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

let rec lid_to_string = function
  | Longident.Lident s -> s
  | Longident.Ldot (t, s) -> lid_to_string t ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_to_string a ^ "(" ^ lid_to_string b ^ ")"

let strip_stdlib s =
  let prefix = "Stdlib." in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    String.sub s n (String.length s - n)
  else s

(* ------------------------------------------------------------------ *)
(* D001: module-level mutable state                                    *)

let mutable_ctor name =
  match name with
  | "ref" -> Some "`ref`"
  | "Hashtbl.create" | "Hashtbl.of_seq" -> Some "`Hashtbl.create`"
  | "Queue.create" -> Some "`Queue.create`"
  | "Buffer.create" -> Some "`Buffer.create`"
  | "Stack.create" -> Some "`Stack.create`"
  | "Array.make" | "Array.init" | "Array.create_float" -> Some ("`" ^ name ^ "`")
  | "Bytes.create" | "Bytes.make" -> Some ("`" ^ name ^ "`")
  | _ -> None

(* Labels declared [mutable] anywhere in this file; a toplevel record
   literal mentioning one of them is module-level mutable state. Label
   resolution is per-file (no typing), which is exactly the scope that
   matters: the state type and its global instance live together. *)
let mutable_labels structure =
  let labels = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.Parsetree.ptype_kind with
          | Parsetree.Ptype_record fields ->
            List.iter
              (fun ld ->
                if ld.Parsetree.pld_mutable = Asttypes.Mutable then
                  Hashtbl.replace labels ld.Parsetree.pld_name.txt ())
              fields
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it structure;
  labels

let scan_toplevel_expr ~file ~labels ~emit expr =
  let finding loc what =
    let p = loc.Location.loc_start in
    emit
      {
        file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule = D001;
        msg =
          Printf.sprintf
            "module-level mutable state (%s) escapes Sim_ctx; allocate it \
             per-simulation instead"
            what;
      }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          (* Function bodies allocate at call time, not module init:
             stop descending. *)
          | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _
          | Parsetree.Pexp_newtype _ ->
            ()
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) ->
            (match mutable_ctor (strip_stdlib (lid_to_string txt)) with
            | Some what -> finding e.Parsetree.pexp_loc what
            | None -> ());
            Ast_iterator.default_iterator.expr self e
          | Parsetree.Pexp_record (fields, _) ->
            if
              List.exists
                (fun ((lbl : Longident.t Location.loc), _) ->
                  let name =
                    match lbl.txt with
                    | Longident.Lident s | Longident.Ldot (_, s) -> s
                    | Longident.Lapply _ -> ""
                  in
                  Hashtbl.mem labels name)
                fields
            then finding e.Parsetree.pexp_loc "record literal with mutable field(s)";
            Ast_iterator.default_iterator.expr self e
          | Parsetree.Pexp_array _ ->
            finding e.Parsetree.pexp_loc "array literal";
            Ast_iterator.default_iterator.expr self e
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr

let rec scan_structure_d001 ~file ~labels ~emit structure =
  List.iter
    (fun item ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun vb -> scan_toplevel_expr ~file ~labels ~emit vb.Parsetree.pvb_expr)
          vbs
      | Parsetree.Pstr_eval (e, _) -> scan_toplevel_expr ~file ~labels ~emit e
      | Parsetree.Pstr_module mb -> scan_module_d001 ~file ~labels ~emit mb.Parsetree.pmb_expr
      | Parsetree.Pstr_recmodule mbs ->
        List.iter
          (fun mb -> scan_module_d001 ~file ~labels ~emit mb.Parsetree.pmb_expr)
          mbs
      | Parsetree.Pstr_include incl ->
        scan_module_d001 ~file ~labels ~emit incl.Parsetree.pincl_mod
      | _ -> ())
    structure

and scan_module_d001 ~file ~labels ~emit mexpr =
  match mexpr.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure s -> scan_structure_d001 ~file ~labels ~emit s
  | Parsetree.Pmod_constraint (me, _) -> scan_module_d001 ~file ~labels ~emit me
  (* Functor bodies allocate per application; applications are opaque
     without typing. *)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* D002-D005: forbidden identifiers anywhere in the file               *)

let d004_toplevel =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes";
  ]

let lid_root_of_string s =
  match String.index_opt s '.' with
  | None -> s
  | Some i -> String.sub s 0 i

let ident_rule name =
  let name = strip_stdlib name in
  if name = "Random.self_init" then
    Some
      ( D002,
        "Random.self_init seeds from the environment and destroys \
         reproducibility; use Sim_engine.Rng with an explicit seed" )
  else if lid_root_of_string name = "Random" then
    Some
      ( D002,
        name
        ^ " draws from the ambient PRNG; thread a seeded Sim_engine.Rng \
           through instead" )
  else if name = "Unix.gettimeofday" || name = "Unix.time" || name = "Sys.time"
  then
    Some
      ( D002,
        name
        ^ " reads the wall clock; simulations must use virtual time \
           (Sim_time)" )
  else if
    name = "Hashtbl.hash" || name = "Hashtbl.seeded_hash"
    || name = "Hashtbl.hash_param"
    || name = "Hashtbl.seeded_hash_param"
  then
    Some
      ( D003,
        name
        ^ " is the polymorphic hash, whose value may change across compiler \
           versions; use a dedicated stable hash (see Ecmp)" )
  else if
    name = "Printf.printf" || name = "Printf.eprintf" || name = "Format.printf"
    || name = "Format.eprintf"
    || List.mem name d004_toplevel
  then
    Some
      ( D004,
        name
        ^ " writes directly to the console; library code must stay silent \
           (route experiment output through Report)" )
  else if
    name = "Unix.fork" || name = "Unix.system"
    || String.starts_with ~prefix:"Unix.create_process" name
    || String.starts_with ~prefix:"Unix.open_process" name
  then
    Some
      ( D006,
        name
        ^ " spawns a process; worker-process fan-out lives only in \
           Sim_engine.Proc_pool" )
  else
    let root = lid_root_of_string name in
    if root = "Domain" || root = "Mutex" || root = "Condition" || root = "Atomic"
    then
      Some
        ( D005,
          name
          ^ " is a concurrency primitive; cross-domain coordination lives \
             only in Sim_engine.Domain_pool" )
    else None

let scan_idents ~file ~emit structure =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> (
            match ident_rule (lid_to_string txt) with
            | Some (rule, msg) ->
              let p = e.Parsetree.pexp_loc.Location.loc_start in
              emit
                {
                  file;
                  line = p.Lexing.pos_lnum;
                  col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
                  rule;
                  msg;
                }
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let lint_structure ~file structure =
  let acc = ref [] in
  let emit f = if not (exempt f.file f.rule) then acc := f :: !acc in
  let labels = mutable_labels structure in
  scan_structure_d001 ~file ~labels ~emit structure;
  scan_idents ~file ~emit structure;
  List.sort compare_finding !acc

let lint_file path =
  let structure = Pparse.parse_implementation ~tool_name:"simlint" path in
  lint_structure ~file:path structure

let scan_tree root =
  let acc = ref [] in
  let rec walk dir =
    let entries = Sys.readdir dir in
    Array.sort compare entries;
    Array.iter
      (fun name ->
        if String.length name > 0 && name.[0] <> '.' && name <> "_build" then begin
          let path = Filename.concat dir name in
          if Sys.is_directory path then walk path
          else if Filename.check_suffix name ".ml" then acc := path :: !acc
        end)
      entries
  in
  if Sys.is_directory root then walk root
  else if Filename.check_suffix root ".ml" then acc := [ root ];
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

type allow_entry = { a_file : string; a_rule : rule; a_line : int }

let normalize_path p =
  let p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  String.concat "/" (String.split_on_char '\\' p)

exception Allow_syntax of string

let parse_allow_line ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    match String.rindex_opt line ':' with
    | None ->
      raise
        (Allow_syntax
           (Printf.sprintf "line %d: expected `path:RULE`, got %S" lineno line))
    | Some i -> (
      let path = normalize_path (String.trim (String.sub line 0 i)) in
      let rid = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match rule_of_id rid with
      | None ->
        raise
          (Allow_syntax
             (Printf.sprintf "line %d: unknown rule %S (expected D001-D006)"
                lineno rid))
      | Some r -> Some { a_file = path; a_rule = r; a_line = lineno })

let parse_allow_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           match parse_allow_line ~lineno:!lineno line with
           | Some e -> entries := e :: !entries
           | None -> ()
         done
       with End_of_file -> ());
      List.rev !entries)

(* Partition findings through the allowlist; also report entries that
   suppressed nothing so the file can't rot. *)
let apply_allow entries findings =
  let used = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun f ->
        let matching =
          List.filter
            (fun e -> e.a_rule = f.rule && normalize_path f.file = e.a_file)
            entries
        in
        List.iter (fun e -> Hashtbl.replace used e.a_line ()) matching;
        matching = [])
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e.a_line)) entries in
  (kept, stale)
