(* Unit and property tests for packets, queues, links, ECMP. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Addr = Sim_net.Addr
module Packet = Sim_net.Packet
module Ecmp = Sim_net.Ecmp
module Pktqueue = Sim_net.Pktqueue
module Link = Sim_net.Link
module Layer = Sim_net.Layer
module Host = Sim_net.Host

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Hand-built packets/queues in these tests sit outside any one
   simulation; a file-level context supplies their ids. *)
let ctx = Sim_engine.Sim_ctx.create ()

let mk_pkt ?(src = 0) ?(dst = 1) ?(conn = 1) ?(subflow = 0) ?(src_port = 1000)
    ?(dst_port = 2000) ?(seq = 0) ?(ack_seq = 0) ?(len = 1000)
    ?(bits = Packet.data_bits) () =
  Packet.make ~ctx ~src:(Addr.of_int src) ~dst:(Addr.of_int dst) ~conn ~subflow
    ~src_port ~dst_port ~seq ~ack_seq ~len ~bits ~dsn:(-1)

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_size () =
  let p = mk_pkt ~len:1400 () in
  check_int "wire size includes header" (1400 + Packet.header_bytes) p.Packet.size

let test_packet_uids_unique () =
  let a = mk_pkt () and b = mk_pkt () in
  check_bool "distinct uids" true (a.Packet.uid <> b.Packet.uid)

let test_packet_classify () =
  let data = mk_pkt ~len:100 () in
  check_bool "data" true (Packet.is_data data);
  check_bool "data not ack" false (Packet.is_pure_ack data);
  let ack = mk_pkt ~len:0 ~bits:Packet.pure_ack_bits () in
  check_bool "pure ack" true (Packet.is_pure_ack ack)

(* --- pool ownership & sanitizer ---------------------------------- *)

let test_pool_copy_independent () =
  let p = mk_pkt ~seq:500 ~len:700 () in
  p.Packet.sack.(0) <- 100;
  p.Packet.sack.(1) <- 200;
  p.Packet.sack_count <- 1;
  let c = Packet.copy ~ctx p in
  Packet.free ~ctx p;
  (* The copy owns its record: freeing (and, in debug, poisoning) the
     original must not be observable through it. *)
  check_int "seq survives original's free" 500 c.Packet.seq;
  check_int "len survives original's free" 700 c.Packet.len;
  Alcotest.(check (list (pair int int)))
    "sack blocks survive original's free" [ (100, 200) ]
    (Packet.sack_blocks c)

let test_pool_fresh_uid_on_reuse () =
  let a = mk_pkt () in
  let uid_a = a.Packet.uid in
  Packet.free ~ctx a;
  let b = mk_pkt () in
  (* LIFO freelist: the record just freed is the one reissued... *)
  check_bool "record is physically reused" true (b == a);
  (* ...but with a fresh uid, so uid sequences are identical with or
     without reuse. *)
  check_bool "fresh uid on reuse" true (b.Packet.uid <> uid_a)

let test_pool_sack_isolation () =
  let a = mk_pkt () in
  a.Packet.sack.(0) <- 100;
  a.Packet.sack.(1) <- 200;
  a.Packet.sack_count <- 1;
  let c = Packet.copy ~ctx a in
  Packet.free ~ctx a;
  let b = mk_pkt () in
  (* [b] reuses [a]'s record: its SACK state must be reset, not the
     stale (in debug: poisoned) scratch contents. *)
  check_int "reused packet has no sack blocks" 0 b.Packet.sack_count;
  Alcotest.(check (list (pair int int)))
    "sack_blocks empty after reuse" [] (Packet.sack_blocks b);
  (* And the copy's scratch array is its own, not shared with the
     recycled record. *)
  b.Packet.sack.(0) <- 7;
  Alcotest.(check (list (pair int int)))
    "copy's sack unaffected by reuse" [ (100, 200) ]
    (Packet.sack_blocks c)

let test_pool_sanitizer_catches_uaf () =
  (* Plant a deliberate use-after-free and a double free; in debug
     profiles the sanitizer must turn both into Invalid_argument. In
     release (sanitizer compiled out) the test is vacuous — skip
     rather than corrupt the pool. *)
  if Packet.sanitizer then begin
    let p = mk_pkt () in
    Packet.free ~ctx p;
    check_bool "accessor raises on freed packet" true
      (match Packet.is_data p with
      | _ -> false
      | exception Invalid_argument _ -> true);
    check_bool "double free raises" true
      (match Packet.free ~ctx p with
      | () -> false
      | exception Invalid_argument _ -> true)
  end

let test_pool_live_counter () =
  if Packet.sanitizer then begin
    let ctx = Sim_engine.Sim_ctx.create () in
    let mk () =
      Packet.make ~ctx ~src:(Addr.of_int 0) ~dst:(Addr.of_int 1) ~conn:1
        ~subflow:0 ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0 ~len:0
        ~bits:Packet.data_bits ~dsn:(-1)
    in
    check_int "starts balanced" 0 (Sim_engine.Sim_ctx.pool_live ctx);
    let a = mk () in
    let b = mk () in
    check_int "two live" 2 (Sim_engine.Sim_ctx.pool_live ctx);
    Packet.free ~ctx a;
    Packet.free ~ctx b;
    check_int "clean teardown balances to zero" 0
      (Sim_engine.Sim_ctx.pool_live ctx)
  end

let test_addr () =
  check_int "round trip" 5 (Addr.to_int (Addr.of_int 5));
  check_bool "equal" true (Addr.equal (Addr.of_int 3) (Addr.of_int 3));
  Alcotest.check_raises "negative" (Invalid_argument "Addr.of_int: negative")
    (fun () -> ignore (Addr.of_int (-1)))

(* ------------------------------------------------------------------ *)
(* ECMP *)

let test_ecmp_deterministic () =
  let p = mk_pkt () in
  check_int "same packet, same choice"
    (Ecmp.select p ~salt:3 ~n:8)
    (Ecmp.select p ~salt:3 ~n:8)

let test_ecmp_flow_consistent () =
  (* Two packets of the same 5-tuple hash identically regardless of
     payload. *)
  let a = mk_pkt ~len:100 () and b = mk_pkt ~len:1400 () in
  check_int "flow-consistent" (Ecmp.select a ~salt:9 ~n:4) (Ecmp.select b ~salt:9 ~n:4)

let prop_ecmp_in_range =
  QCheck.Test.make ~name:"ecmp select in range" ~count:500
    QCheck.(quad small_int small_int small_int (int_range 1 64))
    (fun (sport, dport, salt, n) ->
      let p =
        mk_pkt ~src:1 ~dst:2 ~src_port:sport ~dst_port:dport ~len:10 ()
      in
      let v = Ecmp.select p ~salt ~n in
      v >= 0 && v < n)

let prop_ecmp_pure_function =
  (* Path selection is a pure function of (5-tuple, salt): distinct
     packet objects with distinct uids and payload sizes, and repeated
     evaluations, all agree. This is the property the domain-parallel
     runner leans on — spraying must not depend on allocation order or
     anything else ambient. *)
  QCheck.Test.make ~name:"ecmp pure function of (5-tuple, salt)" ~count:500
    QCheck.(
      pair
        (quad small_int small_int small_int small_int)
        (pair small_int (int_range 1 64)))
    (fun ((src, dst, sport, dport), (salt, n)) ->
      let mk len =
        mk_pkt ~src ~dst ~src_port:sport ~dst_port:dport ~len ()
      in
      let a = mk 10 and b = mk 1000 in
      let first = Ecmp.select a ~salt ~n in
      first = Ecmp.select b ~salt ~n
      && first = Ecmp.select a ~salt ~n
      && Ecmp.flow_hash a = Ecmp.flow_hash b)

let test_ecmp_hash_golden () =
  (* Pinned outputs of the stable hash (simlint rule D003 rationale):
     these exact values must survive compiler and stdlib upgrades. If
     one changes, every sprayed packet re-routes and every figure
     silently shifts — fail loudly here instead. *)
  List.iter
    (fun ((src, dst, sport, dport, salt), expected) ->
      check_int
        (Printf.sprintf "hash(%d,%d,%d,%d salt=%d)" src dst sport dport salt)
        expected
        (Ecmp.hash_fields ~src ~dst ~sport ~dport ~salt))
    [
      ((0, 0, 0, 0, 0), 0);
      ((1, 2, 1000, 2000, 0), 3557164111517134063);
      ((1, 2, 1000, 2000, 7), 263550837379141819);
      ((17, 3, 49152, 80, 1), 93383986432196622);
      ((511, 12, 60000, 443, 255), 4529278519970514627);
    ]

let prop_ecmp_not_polymorphic_hash =
  (* The stable hash must not delegate to [Hashtbl.hash]: tracking the
     polymorphic hash under any obvious packing would re-introduce the
     compiler-version dependence D003 exists to prevent. *)
  QCheck.Test.make ~name:"ecmp hash independent of Hashtbl.hash" ~count:200
    QCheck.(quad small_int small_int small_int small_int)
    (fun (src, dst, sport, dport) ->
      let h = Ecmp.hash_fields ~src ~dst ~sport ~dport ~salt:0 in
      h <> Hashtbl.hash (src, dst, sport, dport)
      && h <> Hashtbl.hash [| src; dst; sport; dport |]
      && h <> Hashtbl.hash [ src; dst; sport; dport ])

let test_ecmp_port_spread () =
  (* Per-packet source-port randomisation must spread over all
     next-hops: the core mechanism of the scatter phase. *)
  let n = 8 in
  let counts = Array.make n 0 in
  for sport = 1000 to 1999 do
    let p = mk_pkt ~src:1 ~dst:2 ~src_port:sport ~len:10 () in
    let i = Ecmp.select p ~salt:0 ~n in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d populated reasonably" i) true
        (c > 60 && c < 190))
    counts

let test_ecmp_salts_decorrelate () =
  (* The same flow should not pick the same index at every switch. *)
  let p = mk_pkt () in
  let choices = List.init 32 (fun salt -> Ecmp.select p ~salt ~n:4) in
  check_bool "not all equal" true
    (List.exists (fun c -> c <> List.hd choices) (List.tl choices))

(* ------------------------------------------------------------------ *)
(* Pktqueue *)

let test_queue_fifo () =
  let q = Pktqueue.create ~ctx ~capacity:10 ~layer:Layer.Core_layer () in
  let a = mk_pkt () and b = mk_pkt () in
  check_bool "enq a" true (Pktqueue.enqueue q a);
  check_bool "enq b" true (Pktqueue.enqueue q b);
  check_bool "fifo order" true
    (match Pktqueue.dequeue q with Some p -> p == a | None -> false);
  check_bool "fifo order 2" true
    (match Pktqueue.dequeue q with Some p -> p == b | None -> false);
  check_bool "drained" true (Pktqueue.dequeue q = None)

let test_queue_drop_tail () =
  let q = Pktqueue.create ~ctx ~capacity:2 ~layer:Layer.Core_layer () in
  check_bool "1 fits" true (Pktqueue.enqueue q (mk_pkt ()));
  check_bool "2 fits" true (Pktqueue.enqueue q (mk_pkt ()));
  check_bool "3 dropped" false (Pktqueue.enqueue q (mk_pkt ()));
  let st = Pktqueue.stats q in
  check_int "drop counted" 1 st.Pktqueue.dropped;
  check_int "enq counted" 2 st.Pktqueue.enqueued

let test_queue_backlog_accounting () =
  let q = Pktqueue.create ~ctx ~capacity:10 ~layer:Layer.Edge_layer () in
  let p = mk_pkt ~len:960 () in
  ignore (Pktqueue.enqueue q p);
  check_int "backlog pkts" 1 (Pktqueue.backlog_pkts q);
  check_int "backlog bytes" 1000 (Pktqueue.backlog_bytes q);
  ignore (Pktqueue.dequeue q);
  check_int "empty bytes" 0 (Pktqueue.backlog_bytes q)

let test_queue_ecn_marks () =
  let q = Pktqueue.create ~ctx ~ecn_threshold:2 ~capacity:10 ~layer:Layer.Core_layer () in
  let p1 = mk_pkt () and p2 = mk_pkt () and p3 = mk_pkt () in
  ignore (Pktqueue.enqueue q p1);
  ignore (Pktqueue.enqueue q p2);
  ignore (Pktqueue.enqueue q p3);
  check_bool "below threshold unmarked" false p1.Packet.ce;
  check_bool "below threshold unmarked 2" false p2.Packet.ce;
  check_bool "at threshold marked" true p3.Packet.ce;
  check_int "marked count" 1 (Pktqueue.stats q).Pktqueue.marked

let prop_queue_never_exceeds_capacity =
  QCheck.Test.make ~name:"queue backlog <= capacity" ~count:200
    QCheck.(pair (int_range 1 20) (list bool))
    (fun (cap, ops) ->
      let q = Pktqueue.create ~ctx ~capacity:cap ~layer:Layer.Host_layer () in
      List.iter
        (fun enq ->
          if enq then ignore (Pktqueue.enqueue q (mk_pkt ()))
          else ignore (Pktqueue.dequeue q))
        ops;
      Pktqueue.backlog_pkts q <= cap)

(* ------------------------------------------------------------------ *)
(* RED *)

let test_red_accepts_below_min () =
  let q =
    Pktqueue.create ~ctx ~red:Pktqueue.default_red ~capacity:100
      ~layer:Layer.Core_layer ()
  in
  for _ = 1 to 4 do
    check_bool "accepted below min_th" true (Pktqueue.enqueue q (mk_pkt ()))
  done;
  check_int "no drops" 0 (Pktqueue.stats q).Pktqueue.dropped

let test_red_drops_early () =
  (* Hold the instantaneous queue above max_th with a fast EWMA: RED
     must drop long before the physical capacity. *)
  let red = { Pktqueue.default_red with Pktqueue.weight = 1.0 } in
  let q = Pktqueue.create ~ctx ~red ~capacity:1_000 ~layer:Layer.Core_layer () in
  let accepted = ref 0 in
  for _ = 1 to 100 do
    if Pktqueue.enqueue q (mk_pkt ()) then incr accepted
  done;
  check_bool "dropped early" true ((Pktqueue.stats q).Pktqueue.dropped > 0);
  check_bool "backlog held near max_th" true (Pktqueue.backlog_pkts q < 30)

let test_red_mark_mode_marks_instead () =
  let red = { Pktqueue.default_red with Pktqueue.weight = 1.0; mark = true } in
  let q = Pktqueue.create ~ctx ~red ~capacity:1_000 ~layer:Layer.Core_layer () in
  for _ = 1 to 100 do
    ignore (Pktqueue.enqueue q (mk_pkt ()))
  done;
  check_int "nothing dropped" 0 (Pktqueue.stats q).Pktqueue.dropped;
  check_bool "packets marked" true ((Pktqueue.stats q).Pktqueue.marked > 0)

let test_red_average_tracks () =
  let red = { Pktqueue.default_red with Pktqueue.weight = 0.5 } in
  let q = Pktqueue.create ~ctx ~red ~capacity:1_000 ~layer:Layer.Core_layer () in
  check_bool "starts at zero" true (Pktqueue.red_average q = 0.);
  for _ = 1 to 5 do
    ignore (Pktqueue.enqueue q (mk_pkt ()))
  done;
  check_bool "average rose" true (Pktqueue.red_average q > 0.)

let test_red_invalid_params () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Pktqueue.create: bad RED thresholds") (fun () ->
      ignore
        (Pktqueue.create ~ctx
           ~red:{ Pktqueue.default_red with Pktqueue.min_th = 10; max_th = 10 }
           ~capacity:100 ~layer:Layer.Core_layer ()))

(* ------------------------------------------------------------------ *)
(* Link *)

(* Timing-sensitive tests use jitterless links so arrival instants are
   exact. *)
let make_link ?(rate = 100e6) ?(delay = Time.of_us 20.) ?(cap = 10) sched =
  let queue = Pktqueue.create ~ctx ~capacity:cap ~layer:Layer.Core_layer () in
  Link.create ~jitter:Time.zero ~sched ~rate_bps:rate ~delay ~queue ~id:0 ()

let test_link_delivery_time () =
  let sched = Scheduler.create () in
  let link = make_link sched in
  let arrival = ref Time.zero in
  Link.attach link (fun _ -> arrival := Scheduler.now sched);
  (* 1000B at 100 Mb/s = 80 us serialisation + 20 us propagation. *)
  Link.send link (mk_pkt ~len:960 ());
  Scheduler.run sched;
  Alcotest.(check (float 0.01)) "tx + prop delay" 100. (Time.to_us !arrival)

let test_link_pipelining () =
  let sched = Scheduler.create () in
  let link = make_link sched in
  let times = ref [] in
  Link.attach link (fun _ -> times := Time.to_us (Scheduler.now sched) :: !times);
  Link.send link (mk_pkt ~len:960 ());
  Link.send link (mk_pkt ~len:960 ());
  Scheduler.run sched;
  (* Second packet starts serialising when the first finishes: arrivals
     at 100 us and 180 us. *)
  Alcotest.(check (list (float 0.01))) "pipelined arrivals" [ 100.; 180. ]
    (List.rev !times)

let test_link_drop_when_full () =
  let sched = Scheduler.create () in
  let link = make_link ~cap:2 sched in
  let received = ref 0 in
  Link.attach link (fun _ -> incr received);
  (* First packet dequeues immediately into the transmitter, so
     capacity 2 queues two more; the 4th is dropped. *)
  for _ = 1 to 4 do
    Link.send link (mk_pkt ())
  done;
  Scheduler.run sched;
  check_int "3 delivered" 3 !received;
  check_int "1 dropped" 1 (Pktqueue.stats (Link.queue link)).Pktqueue.dropped

let test_link_utilisation () =
  let sched = Scheduler.create () in
  let link = make_link ~delay:Time.zero sched in
  let sink = ref 0 in
  Link.attach link (fun _ -> incr sink);
  for _ = 1 to 5 do
    Link.send link (mk_pkt ~len:960 ())
  done;
  Scheduler.run sched;
  (* 5 packets x 80us back to back: busy the whole time. *)
  let u = Link.utilisation link ~now:(Scheduler.now sched) in
  check_bool "fully utilised" true (u > 0.99 && u <= 1.01)

let test_link_requires_attach () =
  let sched = Scheduler.create () in
  let link = make_link sched in
  Alcotest.check_raises "unattached" (Failure "Link.send: no receiver attached")
    (fun () -> Link.send link (mk_pkt ()))

(* ------------------------------------------------------------------ *)
(* Host *)

let test_host_demux () =
  let sched = Scheduler.create () in
  let h = Host.create ~sched ~addr:(Addr.of_int 9) in
  let got = ref [] in
  Host.bind h ~conn:7 (fun p -> got := p.Packet.conn :: !got);
  let p7 = mk_pkt ~src:0 ~dst:9 ~conn:7 ~len:1 () in
  let p8 = mk_pkt ~src:0 ~dst:9 ~conn:8 ~len:1 () in
  Host.receive h p7;
  Host.receive h p8;
  Alcotest.(check (list int)) "bound conn delivered" [ 7 ] !got;
  check_int "unmatched counted" 1 (Host.unmatched h)

let test_host_double_bind_rejected () =
  let sched = Scheduler.create () in
  let h = Host.create ~sched ~addr:(Addr.of_int 1) in
  Host.bind h ~conn:1 ignore;
  Alcotest.check_raises "double bind"
    (Invalid_argument "Host.bind: connection id already bound") (fun () ->
      Host.bind h ~conn:1 ignore)

let test_host_unbind () =
  let sched = Scheduler.create () in
  let h = Host.create ~sched ~addr:(Addr.of_int 1) in
  Host.bind h ~conn:1 ignore;
  Host.unbind h ~conn:1;
  Host.bind h ~conn:1 ignore;
  check_int "no unmatched" 0 (Host.unmatched h)

let test_host_needs_nic () =
  let sched = Scheduler.create () in
  let h = Host.create ~sched ~addr:(Addr.of_int 1) in
  Alcotest.check_raises "no nic" (Failure "Host.send: host has no NIC") (fun () ->
      Host.send h (mk_pkt ()))

(* ------------------------------------------------------------------ *)
(* Flow monitor *)

module Flowmon = Sim_net.Flowmon
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Flow = Sim_tcp.Flow

let test_flowmon_accounts_bytes () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let fm = Flowmon.attach net in
  let f =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:70_000 ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "flow complete" true (Flow.is_complete f);
  match Flowmon.conn_stats fm ~conn:(Flow.conn f) with
  | None -> Alcotest.fail "no stats for connection"
  | Some s ->
    (* 50 segments, one hop, payload + headers. *)
    check_int "segments" 50 s.Flowmon.tx_packets;
    check_int "bytes include headers" (70_000 + (50 * 40)) s.Flowmon.tx_bytes;
    check_int "no drops" 0 s.Flowmon.drops;
    check_int "no retransmissions" 0 s.Flowmon.retransmitted_segments

let test_flowmon_counts_drops_and_rtx () =
  let sched = Scheduler.create () in
  let spec = { Topology.default_link_spec with queue_capacity = 5 } in
  let net = Dumbbell.direct ~sched ~spec () in
  let fm = Flowmon.attach net in
  let f =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:700_000 ()
  in
  Scheduler.run ~until:(Time.of_sec 30.) sched;
  check_bool "flow complete despite tiny queue" true (Flow.is_complete f);
  match Flowmon.conn_stats fm ~conn:(Flow.conn f) with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    check_bool "observed drops" true (s.Flowmon.drops > 0);
    check_bool "observed retransmissions" true (s.Flowmon.retransmitted_segments > 0);
    check_int "drops equal monitor total" (Flowmon.total_drops fm) s.Flowmon.drops

let test_flowmon_top_talkers () =
  let sched = Scheduler.create () in
  let net = Dumbbell.create ~sched ~pairs:2 () in
  let fm = Flowmon.attach net in
  let big =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 2)
      ~size:500_000 ()
  in
  let small =
    Flow.start ~src:(Topology.host net 1) ~dst:(Topology.host net 3)
      ~size:10_000 ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "both done" true (Flow.is_complete big && Flow.is_complete small);
  match Flowmon.top_talkers fm ~n:1 with
  | [ (conn, _) ] -> check_int "big flow leads" (Flow.conn big) conn
  | _ -> Alcotest.fail "expected exactly one top talker"

let test_flowmon_passive () =
  (* Attaching a monitor must not change outcomes. *)
  let run monitored =
    let sched = Scheduler.create () in
    let net = Dumbbell.direct ~sched () in
    if monitored then ignore (Flowmon.attach net);
    let f =
      Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
        ~size:70_000 ()
    in
    Scheduler.run ~until:(Time.of_sec 10.) sched;
    Option.map Time.to_ns (Flow.fct f)
  in
  check_bool "same fct" true (run true = run false)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_net"
    [
      ( "packet",
        [
          Alcotest.test_case "wire size" `Quick test_packet_size;
          Alcotest.test_case "unique uids" `Quick test_packet_uids_unique;
          Alcotest.test_case "classification" `Quick test_packet_classify;
          Alcotest.test_case "copy independent of freed original" `Quick
            test_pool_copy_independent;
          Alcotest.test_case "fresh uid on pool reuse" `Quick
            test_pool_fresh_uid_on_reuse;
          Alcotest.test_case "sack scratch isolation" `Quick
            test_pool_sack_isolation;
          Alcotest.test_case "sanitizer catches use-after-free" `Quick
            test_pool_sanitizer_catches_uaf;
          Alcotest.test_case "pool live counter balances" `Quick
            test_pool_live_counter;
          Alcotest.test_case "addresses" `Quick test_addr;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "deterministic" `Quick test_ecmp_deterministic;
          Alcotest.test_case "flow consistent" `Quick test_ecmp_flow_consistent;
          Alcotest.test_case "port randomisation spreads" `Quick test_ecmp_port_spread;
          Alcotest.test_case "salts decorrelate" `Quick test_ecmp_salts_decorrelate;
          Alcotest.test_case "stable hash golden values" `Quick test_ecmp_hash_golden;
          qt prop_ecmp_in_range;
          qt prop_ecmp_pure_function;
          qt prop_ecmp_not_polymorphic_hash;
        ] );
      ( "pktqueue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "drop tail" `Quick test_queue_drop_tail;
          Alcotest.test_case "backlog accounting" `Quick test_queue_backlog_accounting;
          Alcotest.test_case "ecn marking" `Quick test_queue_ecn_marks;
          qt prop_queue_never_exceeds_capacity;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery time" `Quick test_link_delivery_time;
          Alcotest.test_case "pipelining" `Quick test_link_pipelining;
          Alcotest.test_case "drop when full" `Quick test_link_drop_when_full;
          Alcotest.test_case "utilisation" `Quick test_link_utilisation;
          Alcotest.test_case "requires attach" `Quick test_link_requires_attach;
        ] );
      ( "host",
        [
          Alcotest.test_case "demux" `Quick test_host_demux;
          Alcotest.test_case "double bind rejected" `Quick test_host_double_bind_rejected;
          Alcotest.test_case "unbind" `Quick test_host_unbind;
          Alcotest.test_case "needs nic" `Quick test_host_needs_nic;
        ] );
      ( "red",
        [
          Alcotest.test_case "accepts below min" `Quick test_red_accepts_below_min;
          Alcotest.test_case "drops early" `Quick test_red_drops_early;
          Alcotest.test_case "mark mode" `Quick test_red_mark_mode_marks_instead;
          Alcotest.test_case "average tracks" `Quick test_red_average_tracks;
          Alcotest.test_case "invalid params" `Quick test_red_invalid_params;
        ] );
      ( "flowmon",
        [
          Alcotest.test_case "accounts bytes" `Quick test_flowmon_accounts_bytes;
          Alcotest.test_case "drops and rtx" `Quick test_flowmon_counts_drops_and_rtx;
          Alcotest.test_case "top talkers" `Quick test_flowmon_top_talkers;
          Alcotest.test_case "passive" `Quick test_flowmon_passive;
        ] );
    ]
