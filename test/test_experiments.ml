(* Tests for the experiment-harness helpers (scales, reporting,
   scatter decimation, fairness index). The experiments themselves are
   exercised end-to-end by the bench harness and integration tests. *)

module Time = Sim_engine.Sim_time
module Scenario = Sim_workload.Scenario
module Scale = Sim_experiments.Scale
module Report = Sim_experiments.Report
module Fig1bc = Sim_experiments.Fig1bc
module Ext_coexist = Sim_experiments.Ext_coexist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_scale_presets () =
  check_int "small k" 4 Scale.small.Scale.k;
  check_int "full k (paper)" 8 Scale.full.Scale.k;
  check_int "full oversub (paper 4:1)" 4 Scale.full.Scale.oversub;
  (* k=8 oversub=4 is the paper's 512 servers. *)
  check_int "full host count" 512
    (Sim_net.Fattree.host_count
       (Scenario.paper_fattree ~k:Scale.full.Scale.k ~oversub:Scale.full.Scale.oversub ()))

let test_scenario_config_carries_scale () =
  let scale = { Scale.small with Scale.flows = 123; seed = 55 } in
  let cfg = Scale.scenario_config scale ~protocol:Scenario.Tcp_proto in
  check_int "flows" 123 cfg.Scenario.short_flows;
  check_int "seed" 55 cfg.Scenario.seed;
  check_int "short size is the paper's 70KB" 70_000 cfg.Scenario.short_size;
  check_bool "permutation tm" true
    (cfg.Scenario.tm = Sim_workload.Traffic_matrix.Permutation)

let tiny_result () =
  let cfg =
    {
      (Scale.scenario_config
         { Scale.k = 4; oversub = 1; flows = 20; rate = 50.; seed = 5; horizon_s = 3.;
           model = Scenario.Packet; obs = Scenario.default_obs }
         ~protocol:Scenario.Tcp_proto)
      with
      Scenario.topo = Scenario.Fattree_topo (Scenario.paper_fattree ~k:4 ~oversub:1 ());
    }
  in
  Scenario.run cfg

let test_fct_stats_consistent () =
  let r = tiny_result () in
  let s = Report.fct_stats r in
  check_int "completed + incomplete = scheduled"
    (Array.length r.Scenario.shorts)
    (s.Report.completed + s.Report.incomplete);
  check_bool "mean within bounds" true
    (s.Report.mean_ms > 0. && s.Report.mean_ms <= s.Report.max_ms);
  check_bool "within_100ms is a fraction" true
    (s.Report.within_100ms >= 0. && s.Report.within_100ms <= 1.)

let test_scatter_decimation () =
  let r = tiny_result () in
  let series = Fig1bc.scatter r ~max_series:5 in
  check_bool "series non-empty" true (series <> []);
  check_bool "bounded" true (List.length series <= 5 + Array.length r.Scenario.shorts);
  (* Sorted by flow id. *)
  let ids = List.map fst series in
  check_bool "sorted" true (List.sort compare ids = ids);
  (* Every straggler (>500ms) must be present. *)
  let straggler_count =
    Array.to_list r.Scenario.shorts
    |> List.filter (fun f ->
        match f.Scenario.fct with Some t -> Time.to_ms t > 500. | None -> false)
    |> List.length
  in
  let series_stragglers = List.filter (fun (_, ms) -> ms > 500.) series in
  check_int "stragglers kept" straggler_count (List.length series_stragglers)

let test_jain_index () =
  check_float "equal shares" 1. (Ext_coexist.jain_index [| 5.; 5.; 5. |]);
  check_float "empty" 1. (Ext_coexist.jain_index [||]);
  check_float "single" 1. (Ext_coexist.jain_index [| 42. |]);
  check_float "total starvation" (1. /. 3.)
    (Ext_coexist.jain_index [| 9.; 0.; 0. |]);
  let mixed = Ext_coexist.jain_index [| 8.; 2.; 2. |] in
  check_bool "between" true (mixed > 1. /. 3. && mixed < 1.)

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain index in (0,1]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 10) (float_bound_inclusive 100.))
    (fun l ->
      let v = Ext_coexist.jain_index (Array.of_list l) in
      v > 0. && v <= 1. +. 1e-9)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_experiments"
    [
      ( "scale",
        [
          Alcotest.test_case "presets" `Quick test_scale_presets;
          Alcotest.test_case "config carries scale" `Quick test_scenario_config_carries_scale;
        ] );
      ( "report",
        [ Alcotest.test_case "fct stats consistent" `Slow test_fct_stats_consistent ] );
      ( "fig1bc",
        [ Alcotest.test_case "scatter decimation" `Slow test_scatter_decimation ] );
      ( "coexist",
        [ Alcotest.test_case "jain index" `Quick test_jain_index; qt prop_jain_bounds ] );
    ]
