(* Tests for the flow ledger: hook mechanics (first-wins, hybrid
   aliasing, unknown-conn drops), disabled-hook inertness, agreement
   between the ledger's FCTs and the scenario's own flow records,
   packet-vs-hybrid cross-model agreement, and rendering determinism
   of the ledger sink. *)

module Time = Sim_engine.Sim_time
module L = Sim_obs.Flow_ledger
module Scenario = Sim_workload.Scenario

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Hook mechanics on a hand-driven ledger *)

let test_mechanics () =
  let l = L.create () in
  Alcotest.(check bool) "fresh ledger off" false (L.active l);
  let now = ref 100 in
  L.enable l ~clock_ns:(fun () -> !now);
  Alcotest.(check bool) "enabled" true (L.active l);
  L.on_start l ~conn:7 ~src:1 ~dst:2 ~size:70_000 ~long:false;
  now := 200;
  L.on_start l ~conn:9 ~src:3 ~dst:4 ~size:1_000 ~long:true;
  L.on_start l ~conn:7 ~src:9 ~dst:9 ~size:1 ~long:true (* dup: ignored *);
  check_int "two flows" 2 (L.count l);
  now := 300;
  L.on_handshake l ~conn:7;
  now := 400;
  L.on_handshake l ~conn:7 (* second subflow: first wins *);
  L.on_rto l ~conn:7;
  L.on_rto l ~conn:7;
  L.on_fast_rtx l ~conn:7;
  L.on_rto l ~conn:555 (* never started: dropped *);
  now := 900;
  L.on_complete l ~conn:7;
  now := 950;
  L.on_complete l ~conn:7 (* first wins *);
  L.note_bytes l ~conn:7 70_000;
  let d = L.dump l in
  check_int "dump size" 2 (Array.length d);
  let e = d.(0) in
  check_int "conn" 7 e.L.e_conn;
  check_int "src" 1 e.L.e_src;
  check_int "dst" 2 e.L.e_dst;
  check_int "size" 70_000 e.L.e_size;
  Alcotest.(check bool) "class" false e.L.e_long;
  check_int "start" 100 e.L.e_start_ns;
  check_int "handshake first wins" 300 e.L.e_handshake_ns;
  check_int "complete first wins" 900 e.L.e_complete_ns;
  check_int "fct" 800 (Option.get (L.fct_ns e));
  check_int "rtos" 2 e.L.e_rtos;
  check_int "fast rtxs" 1 e.L.e_fast_rtxs;
  check_int "bytes" 70_000 e.L.e_bytes;
  check_int "arrival order" 9 d.(1).L.e_conn;
  Alcotest.(check (option int)) "unfinished fct" None (L.fct_ns d.(1))

let test_promote_alias () =
  let l = L.create () in
  let now = ref 10 in
  L.enable l ~clock_ns:(fun () -> !now);
  L.on_start l ~conn:1 ~src:0 ~dst:1 ~size:500_000 ~long:false;
  now := 20;
  L.on_handshake l ~conn:1;
  now := 30;
  (* The packet stage drains its handoff slice: transport-level
     completion fires before the promotion does. *)
  L.on_complete l ~conn:1;
  now := 40;
  L.on_promote l ~conn:1 ~cont:77;
  let e = (L.dump l).(0) in
  check_int "promotion recorded" 40 e.L.e_promote_ns;
  check_int "premature completion cleared" (-1) e.L.e_complete_ns;
  (* Stage-2 events on the fluid continuation land on the same row. *)
  now := 90;
  L.on_phase_switch l ~conn:77;
  now := 100;
  L.on_complete l ~conn:77;
  L.note_bytes l ~conn:77 500_000;
  let e = (L.dump l).(0) in
  check_int "one flow, not two" 1 (L.count l);
  check_int "switch via alias" 90 e.L.e_switch_ns;
  check_int "complete via alias" 100 e.L.e_complete_ns;
  check_int "fct spans both stages" 90 (Option.get (L.fct_ns e));
  check_int "bytes via alias" 500_000 e.L.e_bytes

(* Disabled hooks must be branch-only: no allocation, however many
   fire. Slack of a few words absorbs the Gc.minor_words boxes the
   measurement itself allocates. *)
let test_disabled_inert () =
  let l = L.create () in
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    L.on_start l ~conn:i ~src:0 ~dst:1 ~size:70_000 ~long:false;
    L.on_handshake l ~conn:i;
    L.on_rto l ~conn:i;
    L.on_fast_rtx l ~conn:i;
    L.on_phase_switch l ~conn:i;
    L.on_promote l ~conn:i ~cont:(i + 1);
    L.on_complete l ~conn:i;
    L.note_bytes l ~conn:i 1
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 64. then
    Alcotest.failf "disabled ledger allocated %.0f minor words" dw;
  check_int "recorded nothing" 0 (L.count l)

(* ------------------------------------------------------------------ *)
(* Scenario-level: the ledger agrees with the result records *)

let tiny_dumbbell ?(seed = 3) ?(rate = 3.) ?(size = 70_000) model =
  {
    Scenario.default_config with
    Scenario.model;
    topo =
      Scenario.Dumbbell_topo { pairs = 4; bottleneck = Scenario.paper_link_spec };
    protocol = Scenario.Tcp_proto;
    seed;
    long_fraction = 0.;
    short_size = size;
    short_flows = 40;
    short_rate = rate;
    horizon = Time.of_sec (12. /. rate);
    obs = { Scenario.default_obs with ledger = true };
  }

let ledger_fcts_ms d =
  Array.to_list d
  |> List.filter_map (fun e ->
         if e.L.e_long then None
         else Option.map (fun ns -> float_of_int ns /. 1e6) (L.fct_ns e))
  |> List.sort compare

(* Every short flow's FCT as the ledger recorded it equals the FCT the
   result records (the numbers behind every rendered table) — the two
   observation paths cannot drift. *)
let ledger_matches_result model () =
  let r = Scenario.run (tiny_dumbbell model) in
  let d = Option.get r.Scenario.ledger in
  check_int "every flow in the ledger" 40 (Array.length d);
  let from_ledger = ledger_fcts_ms d in
  let from_result =
    Array.to_list (Scenario.short_fcts_ms r) |> List.sort compare
  in
  check_int "same completion count" (List.length from_result)
    (List.length from_ledger);
  List.iter2
    (fun a b ->
      if Float.abs (a -. b) > 1e-9 then
        Alcotest.failf "FCT mismatch: ledger %.6fms vs result %.6fms" a b)
    from_ledger from_result

(* Packet and hybrid see the same arrival process, so their ledgers
   must list the same flows; FCTs agree within the ext-fluid-xval
   envelope. Like xval this needs the light-load regime (the fluid
   stage cannot represent RTO recovery), and flows long enough that
   the fluid engine's 2 ms rebalance quantum — a constant settling
   cost every promoted flow pays once — stays inside the relative
   envelope. A low handoff forces every short through promotion, so
   the aliasing path is exercised for real. *)
let test_packet_vs_hybrid () =
  let dump model =
    Option.get
      (Scenario.run (tiny_dumbbell ~rate:0.4 ~size:250_000 model)).Scenario.ledger
  in
  let p = dump Scenario.Packet
  and h = dump (Scenario.Hybrid { handoff_bytes = 20_000 }) in
  check_int "same flow set" (Array.length p) (Array.length h);
  Array.iteri
    (fun i (e : L.entry) ->
      let f = h.(i) in
      check_int "src" e.L.e_src f.L.e_src;
      check_int "dst" e.L.e_dst f.L.e_dst;
      check_int "size" e.L.e_size f.L.e_size;
      check_int "start" e.L.e_start_ns f.L.e_start_ns;
      if f.L.e_promote_ns >= 0 && f.L.e_promote_ns < f.L.e_start_ns then
        Alcotest.failf "flow %d promoted before it started" i)
    p;
  let promoted =
    Array.to_list h |> List.filter (fun e -> e.L.e_promote_ns >= 0)
  in
  check_int "every short promoted" (Array.length h) (List.length promoted);
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let mp = mean (ledger_fcts_ms p) and mh = mean (ledger_fcts_ms h) in
  let dev = Float.abs (mh -. mp) /. mp in
  if dev > 0.10 then
    Alcotest.failf "hybrid mean FCT off by %.1f%% (packet %.3fms, hybrid %.3fms)"
      (100. *. dev) mp mh

(* Same config, two runs: dumps equal, sink renderings byte-equal.
   This is the in-process face of the CI jobs-1-vs-4 artifact diff. *)
let test_render_deterministic () =
  let arts () =
    let r = Scenario.run (tiny_dumbbell Scenario.Packet) in
    Sim_experiments.Ledger_sink.artifacts ~experiment:"t"
      [ ("p", Option.get r.Scenario.ledger) ]
  in
  let a = arts () and b = arts () in
  check_int "artifact count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      match (x, y) with
      | Sim_experiments.Sink.Raw r1, Sim_experiments.Sink.Raw r2 ->
        Alcotest.(check string) "jsonl basename" r1.basename r2.basename;
        Alcotest.(check string) "jsonl bytes" r1.contents r2.contents
      | Sim_experiments.Sink.Table _, Sim_experiments.Sink.Table _ ->
        Alcotest.(check bool) "tables equal" true (x = y)
      | _ -> Alcotest.fail "artifact shape changed between runs")
    a b

(* ------------------------------------------------------------------ *)
(* qcheck: ledger FCTs == result FCTs over random seeds *)

let ledger_equivalence =
  QCheck.Test.make ~count:5 ~name:"ledger FCTs match result FCTs (any seed)"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let r = Scenario.run (tiny_dumbbell ~seed Scenario.Packet) in
      let d = Option.get r.Scenario.ledger in
      let a = ledger_fcts_ms d
      and b = Array.to_list (Scenario.short_fcts_ms r) |> List.sort compare in
      List.length a = List.length b
      && List.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-9) a b)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ledger"
    [
      ( "hooks",
        [
          Alcotest.test_case "lifecycle mechanics" `Quick test_mechanics;
          Alcotest.test_case "hybrid promotion alias" `Quick test_promote_alias;
          Alcotest.test_case "disabled hooks allocate nothing" `Quick
            test_disabled_inert;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "ledger matches result (packet)" `Quick
            (ledger_matches_result Scenario.Packet);
          Alcotest.test_case "ledger matches result (fluid)" `Quick
            (ledger_matches_result Scenario.Fluid);
          Alcotest.test_case "packet vs hybrid agreement" `Quick
            test_packet_vs_hybrid;
          Alcotest.test_case "rendering deterministic" `Quick
            test_render_deterministic;
        ] );
      ("qcheck", [ qt ledger_equivalence ]);
    ]
