(* Determinism and parallel-runner tests: a simulation is a pure
   function of its config (no cross-run state), par_map matches
   List.map element-for-element at any job count, and the domain pool
   shuts down cleanly even when jobs raise. *)

module Scenario = Sim_workload.Scenario
module Scale = Sim_experiments.Scale
module Fig1a = Sim_experiments.Fig1a
module Runner = Sim_experiments.Runner
module Domain_pool = Sim_engine.Domain_pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Everything observable about a run except the topology handle, which
   contains closures and cannot be compared structurally. *)
let results_identical (a : Scenario.result) (b : Scenario.result) =
  a.Scenario.shorts = b.Scenario.shorts
  && a.Scenario.longs = b.Scenario.longs
  && a.Scenario.events = b.Scenario.events
  && a.Scenario.duration = b.Scenario.duration

(* ------------------------------------------------------------------ *)
(* Determinism: same config + seed -> identical flow results. *)

let test_back_to_back_runs_identical () =
  let cfg =
    Scale.scenario_config Scale.tiny
      ~protocol:(Scenario.Mptcp_proto { subflows = 2; coupled = true })
  in
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  check_int "same short count" (Array.length r1.Scenario.shorts)
    (Array.length r2.Scenario.shorts);
  check_bool "identical flow results" true (results_identical r1 r2)

(* ------------------------------------------------------------------ *)
(* par_map semantics *)

let test_par_map_preserves_order () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) xs)
    (Runner.par_map ~jobs:3 (fun x -> x * x) xs)

let test_par_map_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Runner.par_map ~jobs:4 succ []);
  Alcotest.(check (list int)) "jobs=1" [ 2; 3 ] (Runner.par_map ~jobs:1 succ [ 1; 2 ]);
  Alcotest.(check (list int))
    "more jobs than items" [ 2 ]
    (Runner.par_map ~jobs:8 succ [ 1 ]);
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Runner.par_map: jobs must be >= 1") (fun () ->
      ignore (Runner.par_map ~jobs:0 succ [ 1 ]))

let test_par_map_matches_sequential_fig1a () =
  (* The acceptance check from the issue: the F1a sweep fanned over 4
     domains is element-for-element identical to the sequential map. *)
  let cfgs = List.map snd (Fig1a.configs ~lo:1 ~hi:2 Scale.tiny) in
  let seq = Runner.par_map ~jobs:1 Scenario.run cfgs in
  let par = Runner.par_map ~jobs:4 Scenario.run cfgs in
  check_int "lengths" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_bool
        (Printf.sprintf "sweep point %d identical" i)
        true (results_identical a b))
    (List.combine seq par)

let test_par_map_propagates_exception () =
  (match
     Runner.par_map ~jobs:2
       (fun x -> if x mod 2 = 0 then failwith (string_of_int x) else x)
       [ 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
    (* Earliest failed input wins, whatever order the domains ran in. *)
    Alcotest.(check string) "earliest failure" "2" m);
  (* The failing map joined its pool; a fresh map works immediately. *)
  Alcotest.(check (list int))
    "runner usable after failure" [ 2; 4; 6 ]
    (Runner.par_map ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Domain_pool lifecycle *)

let test_pool_runs_all_jobs () =
  let n = 100 in
  let hits = Array.make n false in
  Domain_pool.run ~domains:3 (fun pool ->
      for i = 0 to n - 1 do
        Domain_pool.submit pool (fun () -> hits.(i) <- true)
      done);
  check_bool "every job ran" true (Array.for_all Fun.id hits)

let test_pool_clean_shutdown_on_raise () =
  (* A job that raises must neither kill its worker nor hang shutdown:
     later jobs still run and [run] returns. *)
  let survived = ref false in
  Domain_pool.run ~domains:1 (fun pool ->
      Domain_pool.submit pool (fun () -> failwith "stray");
      Domain_pool.submit pool (fun () -> survived := true));
  check_bool "job after stray exception still ran" true !survived

let test_pool_submit_after_shutdown () =
  let pool = Domain_pool.create ~domains:2 in
  Domain_pool.submit pool ignore;
  Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      Domain_pool.submit pool ignore)

let test_pool_bad_domains () =
  Alcotest.check_raises "domains=0"
    (Invalid_argument "Domain_pool.create: domains must be >= 1") (fun () ->
      ignore (Domain_pool.create ~domains:0))

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "back-to-back runs identical" `Slow
            test_back_to_back_runs_identical;
        ] );
      ( "par_map",
        [
          Alcotest.test_case "preserves order" `Quick test_par_map_preserves_order;
          Alcotest.test_case "edge cases" `Quick test_par_map_edge_cases;
          Alcotest.test_case "matches sequential fig1a sweep" `Slow
            test_par_map_matches_sequential_fig1a;
          Alcotest.test_case "propagates exception" `Quick
            test_par_map_propagates_exception;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "runs all jobs" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "clean shutdown on raise" `Quick
            test_pool_clean_shutdown_on_raise;
          Alcotest.test_case "submit after shutdown" `Quick
            test_pool_submit_after_shutdown;
          Alcotest.test_case "bad domains" `Quick test_pool_bad_domains;
        ] );
    ]
