(* Determinism and parallel-runner tests: a simulation is a pure
   function of its config (no cross-run state), par_map matches
   List.map element-for-element at any job count, the domain pool
   shuts down cleanly even when jobs raise, and the process pool
   matches the sequential path byte-for-byte while surviving worker
   failures. *)

module Scenario = Sim_workload.Scenario
module Scale = Sim_experiments.Scale
module Fig1a = Sim_experiments.Fig1a
module Runner = Sim_experiments.Runner
module Experiment = Sim_experiments.Experiment
module Registry = Sim_experiments.Registry
module Sink = Sim_experiments.Sink
module Domain_pool = Sim_engine.Domain_pool
module Proc_pool = Sim_engine.Proc_pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Process-pool fixtures.

   The test binary doubles as its own worker: spawned with the hidden
   [--proc-worker MODE] flag it serves the named job function over the
   pipe protocol and never reaches Alcotest. The registry modes
   rebuild the same suites the coordinating test passes to
   [Registry.run] — parent and worker agreeing on what job index [i]
   means is exactly the [Processes] mode contract. *)

let worker_argv mode = [| Sys.executable_name; "--proc-worker"; mode |]

(* Two cheap synthetic experiments: the mini-suite exercises the whole
   Processes pipeline — shared queue, marshalling, render-in-registry-
   order, artifact sinks — in milliseconds. *)
let mini_suite =
  let squares =
    Experiment.make ~name:"squares" ~doc:"squares of small ints"
      ~points:(fun _ -> [ 1; 2; 3 ])
      ~point_label:string_of_int
      ~run_point:(fun _ i -> i * i)
      ~render:(fun _ pairs ->
        List.iter (fun (p, r) -> Printf.printf "%d^2 = %d\n" p r) pairs)
      ~sinks:(fun _ pairs ->
        [
          Sink.table ~name:"squares"
            ~columns:
              [
                ("x", fun (p, _) -> Sink.int p);
                ("x_squared", fun (_, r) -> Sink.int r);
              ]
            pairs;
        ])
      ()
  in
  let negations =
    Experiment.make ~name:"negations" ~doc:"negations of small ints"
      ~points:(fun _ -> [ 4; 5 ])
      ~point_label:string_of_int
      ~run_point:(fun _ i -> -i)
      ~render:(fun _ pairs ->
        List.iter (fun (p, r) -> Printf.printf "-%d = %d\n" p r) pairs)
      ~sinks:(fun _ pairs ->
        [
          Sink.table ~name:"negations"
            ~columns:[ ("neg", fun (_, r) -> Sink.int r) ]
            pairs;
        ])
      ()
  in
  [ squares; negations ]

let failing_suite =
  [
    Experiment.make ~name:"failing" ~doc:"raises on its second point"
      ~points:(fun _ -> [ 0; 1; 2 ])
      ~point_label:string_of_int
      ~run_point:(fun _ i ->
        if i = 1 then failwith "synthetic point failure" else i)
      ~render:(fun _ _ -> ())
      ()
  ]

let () =
  match Sys.argv with
  | [| _; "--proc-worker"; mode |] ->
    (match mode with
    | "square" -> Proc_pool.serve ~run:(fun i -> Ok (string_of_int (i * i)))
    | "die-at-1" ->
      Proc_pool.serve ~run:(fun i ->
          if i = 1 then exit 3 else Ok (string_of_int i))
    | "mini" -> Registry.worker Scale.tiny mini_suite
    | "failing" -> Registry.worker Scale.tiny failing_suite
    | m ->
      prerr_endline ("unknown proc worker mode: " ^ m);
      exit 2);
    exit 0
  | _ -> ()

(* Everything observable about a run except the topology handle, which
   contains closures and cannot be compared structurally. *)
let results_identical (a : Scenario.result) (b : Scenario.result) =
  a.Scenario.shorts = b.Scenario.shorts
  && a.Scenario.longs = b.Scenario.longs
  && a.Scenario.events = b.Scenario.events
  && a.Scenario.duration = b.Scenario.duration

(* ------------------------------------------------------------------ *)
(* Determinism: same config + seed -> identical flow results. *)

let test_back_to_back_runs_identical () =
  let cfg =
    Scale.scenario_config Scale.tiny
      ~protocol:(Scenario.Mptcp_proto { subflows = 2; coupled = true })
  in
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  check_int "same short count" (Array.length r1.Scenario.shorts)
    (Array.length r2.Scenario.shorts);
  check_bool "identical flow results" true (results_identical r1 r2)

(* ------------------------------------------------------------------ *)
(* par_map semantics *)

let test_par_map_preserves_order () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) xs)
    (Runner.par_map ~jobs:3 (fun x -> x * x) xs)

let test_par_map_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Runner.par_map ~jobs:4 succ []);
  Alcotest.(check (list int)) "jobs=1" [ 2; 3 ] (Runner.par_map ~jobs:1 succ [ 1; 2 ]);
  Alcotest.(check (list int))
    "more jobs than items" [ 2 ]
    (Runner.par_map ~jobs:8 succ [ 1 ]);
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Runner.par_map: jobs must be >= 1") (fun () ->
      ignore (Runner.par_map ~jobs:0 succ [ 1 ]))

let test_par_map_matches_sequential_fig1a () =
  (* The acceptance check from the issue: the F1a sweep fanned over 4
     domains is element-for-element identical to the sequential map. *)
  let cfgs = List.map snd (Fig1a.configs ~lo:1 ~hi:2 Scale.tiny) in
  let seq = Runner.par_map ~jobs:1 Scenario.run cfgs in
  let par = Runner.par_map ~jobs:4 Scenario.run cfgs in
  check_int "lengths" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_bool
        (Printf.sprintf "sweep point %d identical" i)
        true (results_identical a b))
    (List.combine seq par)

let test_par_map_propagates_exception () =
  (match
     Runner.par_map ~jobs:2
       (fun x -> if x mod 2 = 0 then failwith (string_of_int x) else x)
       [ 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
    (* Earliest failed input wins, whatever order the domains ran in. *)
    Alcotest.(check string) "earliest failure" "2" m);
  (* The failing map joined its pool; a fresh map works immediately. *)
  Alcotest.(check (list int))
    "runner usable after failure" [ 2; 4; 6 ]
    (Runner.par_map ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Domain_pool lifecycle *)

let test_pool_runs_all_jobs () =
  let n = 100 in
  let hits = Array.make n false in
  Domain_pool.run ~domains:3 (fun pool ->
      for i = 0 to n - 1 do
        Domain_pool.submit pool (fun () -> hits.(i) <- true)
      done);
  check_bool "every job ran" true (Array.for_all Fun.id hits)

let test_pool_clean_shutdown_on_raise () =
  (* A job that raises must neither kill its worker nor hang shutdown:
     later jobs still run and [run] returns. *)
  let survived = ref false in
  Domain_pool.run ~domains:1 (fun pool ->
      Domain_pool.submit pool (fun () -> failwith "stray");
      Domain_pool.submit pool (fun () -> survived := true));
  check_bool "job after stray exception still ran" true !survived

let test_pool_submit_after_shutdown () =
  let pool = Domain_pool.create ~domains:2 in
  Domain_pool.submit pool ignore;
  Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      Domain_pool.submit pool ignore)

let test_pool_bad_domains () =
  Alcotest.check_raises "domains=0"
    (Invalid_argument "Domain_pool.create: domains must be >= 1") (fun () ->
      ignore (Domain_pool.create ~domains:0))

(* ------------------------------------------------------------------ *)
(* Proc_pool: the raw pipe protocol *)

let test_proc_pool_runs_all_points () =
  let n = 20 in
  let results = Array.make n None in
  Proc_pool.run ~jobs:2 ~worker_argv:(worker_argv "square") ~n
    ~deliver:(fun i r ->
      check_bool (Printf.sprintf "point %d delivered once" i) true
        (results.(i) = None);
      results.(i) <- Some r);
  Array.iteri
    (fun i r ->
      match r with
      | Some (Ok s) ->
        Alcotest.(check string)
          (Printf.sprintf "point %d payload" i)
          (string_of_int (i * i))
          s
      | Some (Error m) -> Alcotest.fail ("unexpected error: " ^ m)
      | None -> Alcotest.fail (Printf.sprintf "point %d never delivered" i))
    results

let test_proc_pool_dead_worker_no_hang () =
  (* One worker exits mid-point without replying. The pool must report
     that point as failed, finish every other point on the survivor,
     and return — a hang here fails the suite by timeout. *)
  let n = 6 in
  let results = Array.make n None in
  Proc_pool.run ~jobs:2 ~worker_argv:(worker_argv "die-at-1") ~n
    ~deliver:(fun i r -> results.(i) <- Some r);
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 1, Some (Error m) ->
        check_bool "death reported" true (contains m "died")
      | 1, Some (Ok _) -> Alcotest.fail "dead worker's point reported Ok"
      | _, Some (Ok _) -> ()
      | _, Some (Error m) -> Alcotest.fail ("unexpected error: " ^ m)
      | _, None -> Alcotest.fail (Printf.sprintf "point %d never delivered" i))
    results

(* ------------------------------------------------------------------ *)
(* Registry Processes mode *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_dir_name prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_processes_artifacts_match_sequential () =
  let seq_dir = temp_dir_name "mmptcp_seq" in
  let par_dir = temp_dir_name "mmptcp_par" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf seq_dir;
      rm_rf par_dir)
    (fun () ->
      Registry.run ~out:seq_dir ~jobs:1 Scale.tiny mini_suite;
      Registry.run ~out:par_dir ~exec_mode:Registry.Processes
        ~worker_argv:(worker_argv "mini") ~jobs:2 Scale.tiny mini_suite;
      (* manifest.json legitimately differs (jobs count, timings);
         every experiment artifact must match byte-for-byte. *)
      let files dir =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> f <> "manifest.json")
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "same artifact set" (files seq_dir) (files par_dir);
      check_bool "suite produced artifacts" true (files seq_dir <> []);
      List.iter
        (fun f ->
          Alcotest.(check string)
            (f ^ " byte-identical")
            (read_file (Filename.concat seq_dir f))
            (read_file (Filename.concat par_dir f)))
        (files seq_dir))

let test_processes_point_failure_attributed () =
  match
    Registry.run ~exec_mode:Registry.Processes
      ~worker_argv:(worker_argv "failing") ~jobs:2 Scale.tiny failing_suite
  with
  | () -> Alcotest.fail "expected Point_failed"
  | exception Runner.Point_failed { experiment; point; exn } ->
    Alcotest.(check string) "experiment attributed" "failing" experiment;
    Alcotest.(check string) "point attributed" "1" point;
    let cause =
      match exn with Runner.Remote c -> c | e -> Printexc.to_string e
    in
    check_bool "cause carries the worker's exception" true
      (contains cause "synthetic point failure")

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "back-to-back runs identical" `Slow
            test_back_to_back_runs_identical;
        ] );
      ( "par_map",
        [
          Alcotest.test_case "preserves order" `Quick test_par_map_preserves_order;
          Alcotest.test_case "edge cases" `Quick test_par_map_edge_cases;
          Alcotest.test_case "matches sequential fig1a sweep" `Slow
            test_par_map_matches_sequential_fig1a;
          Alcotest.test_case "propagates exception" `Quick
            test_par_map_propagates_exception;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "runs all jobs" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "clean shutdown on raise" `Quick
            test_pool_clean_shutdown_on_raise;
          Alcotest.test_case "submit after shutdown" `Quick
            test_pool_submit_after_shutdown;
          Alcotest.test_case "bad domains" `Quick test_pool_bad_domains;
        ] );
      ( "proc_pool",
        [
          Alcotest.test_case "runs all points" `Quick
            test_proc_pool_runs_all_points;
          Alcotest.test_case "dead worker no hang" `Quick
            test_proc_pool_dead_worker_no_hang;
          Alcotest.test_case "processes artifacts match sequential" `Quick
            test_processes_artifacts_match_sequential;
          Alcotest.test_case "point failure attributed" `Quick
            test_processes_point_failure_attributed;
        ] );
    ]
