(* Tests for the observability stack: the metrics registry, the
   virtual-time probe sampler, capture rendering, and the guarantees
   the rest of the repo relies on — a disabled registry is inert, an
   enabled probe does not perturb simulation results, the sampler
   timer does not leak pending events, and probe artifacts are
   byte-identical at any job count. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Trace = Sim_engine.Trace
module Probe = Sim_engine.Probe
module Metrics = Sim_obs.Metrics
module Series = Sim_obs.Series
module Capture = Sim_obs.Capture
module Pktqueue = Sim_net.Pktqueue
module Layer = Sim_net.Layer
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Flowmon = Sim_net.Flowmon
module Flow = Sim_tcp.Flow
module Scenario = Sim_workload.Scenario
module Scale = Sim_experiments.Scale
module Sink = Sim_experiments.Sink
module Probe_sink = Sim_experiments.Probe_sink
module Runner = Sim_experiments.Runner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_disabled_registry_inert () =
  let m = Metrics.create () in
  check_bool "inactive" false (Metrics.active m);
  check_bool "no conn wanted" false (Metrics.want_conn m 1);
  Metrics.register m ~component:"x" ~id:"a" ~name:"g" ~units:"u" (fun () -> 1.);
  Metrics.emit m ~kind:"boom" ();
  check_int "no gauges" 0 (Metrics.gauge_count m);
  check_int "no events" 0 (Array.length (Metrics.events m));
  check_bool "no histogram" true
    (Metrics.histogram m ~component:"x" ~id:"a" ~name:"h" ~units:"u" ~lo:0.
       ~hi:1. ~buckets:4
    = None)

let test_registration_order () =
  let m = Metrics.create () in
  Metrics.enable m ~clock_ns:(fun () -> 0) ();
  List.iter
    (fun n ->
      Metrics.register m ~component:"c" ~id:"i" ~name:n ~units:"u" (fun () ->
          0.))
    [ "first"; "second"; "third" ];
  let names =
    Array.to_list (Metrics.gauges m)
    |> List.map (fun ((g : Metrics.meta), _) -> g.name)
  in
  Alcotest.(check (list string))
    "gauges in registration order"
    [ "first"; "second"; "third" ]
    names

let test_want_conn_filter () =
  let m = Metrics.create () in
  Metrics.enable m ~conns:[ 2; 5 ] ~clock_ns:(fun () -> 0) ();
  check_bool "conn 2 wanted" true (Metrics.want_conn m 2);
  check_bool "conn 3 filtered" false (Metrics.want_conn m 3);
  Metrics.emit m ~kind:"a" ~conn:3 ();
  Metrics.emit m ~kind:"b" ~conn:5 ();
  Metrics.emit m ~kind:"c" ();  (* not connection-scoped: always kept *)
  let kinds =
    Array.to_list (Metrics.events m)
    |> List.map (fun (e : Metrics.event) -> e.kind)
  in
  Alcotest.(check (list string)) "filtered events" [ "b"; "c" ] kinds

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_ticks_and_rows () =
  let sched = Scheduler.create () in
  let p = Probe.create sched ~interval:(Time.of_ms 10.) in
  let m = Sim_engine.Sim_ctx.metrics (Scheduler.ctx sched) in
  let counter = ref 0 in
  Metrics.register m ~component:"test" ~id:"t" ~name:"count" ~units:"n"
    (fun () -> float_of_int !counter);
  ignore
    (Scheduler.schedule_at sched (Time.of_ms 25.) (fun () -> counter := 7));
  Probe.start p;
  Scheduler.run ~until:(Time.of_ms 100.) sched;
  let c = Probe.capture p in
  check_int "10 ticks over 100ms" 10 (Probe.ticks p);
  (* 5 scheduler self-profiling gauges + ours, one row each per tick. *)
  check_int "rows = ticks * gauges" (10 * 6) (Array.length c.Capture.samples);
  let our_rows =
    Array.to_list c.Capture.samples
    |> List.filter (fun (_, i, _) ->
           c.Capture.gauges.(i).Metrics.component = "test")
  in
  check_int "one row per tick" 10 (List.length our_rows);
  let at ns =
    List.find_map
      (fun (t, _, v) -> if t = ns then Some v else None)
      our_rows
  in
  Alcotest.(check (option (float 0.)))
    "before the step" (Some 0.)
    (at 10_000_000);
  Alcotest.(check (option (float 0.)))
    "after the step" (Some 7.)
    (at 30_000_000)

let test_probe_stop_releases_timer () =
  let sched = Scheduler.create () in
  let p = Probe.create sched ~interval:(Time.of_ms 10.) in
  Probe.start p;
  Scheduler.run ~until:(Time.of_ms 50.) sched;
  (* The re-arming sampler is still pending at the horizon... *)
  check_bool "timer armed at horizon" true (Scheduler.pending_events sched > 0);
  (* ...and capture (which implies stop) must release it: a finished
     simulation reports a drained queue. *)
  ignore (Probe.capture p : Capture.t);
  check_int "no pending events after capture" 0
    (Scheduler.pending_events sched)

let test_probe_rejects_bad_interval () =
  let sched = Scheduler.create () in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Probe.create: interval must be positive") (fun () ->
      ignore (Probe.create sched ~interval:Time.zero))

(* ------------------------------------------------------------------ *)
(* Capture rendering *)

let test_events_jsonl_golden () =
  let m = Metrics.create () in
  let now = ref 0 in
  Metrics.enable m ~clock_ns:(fun () -> !now) ();
  now := 1500;
  Metrics.emit m ~kind:"rto_fired" ~conn:3 ~subflow:1
    ~info:[ ("backoff", "2") ]
    ();
  now := 2500;
  Metrics.emit m ~kind:"note" ~info:[ ("msg", "a \"quoted\"\nline") ] ();
  let c = Capture.of_series (Series.create m) in
  check_string "jsonl"
    ("{\"t_ns\":1500,\"kind\":\"rto_fired\",\"conn\":3,\"subflow\":1,\"backoff\":\"2\"}\n"
   ^ "{\"t_ns\":2500,\"kind\":\"note\",\"msg\":\"a \\\"quoted\\\"\\nline\"}\n")
    (Capture.events_jsonl c)

let test_histogram_through_registry () =
  let m = Metrics.create () in
  Metrics.enable m ~clock_ns:(fun () -> 0) ();
  (match
     Metrics.histogram m ~component:"c" ~id:"i" ~name:"h" ~units:"u" ~lo:0.
       ~hi:10. ~buckets:5
   with
  | None -> Alcotest.fail "expected a histogram"
  | Some h ->
    Sim_stats.Histogram.add h 3.;
    Sim_stats.Histogram.add h 42.);
  let c = Capture.of_series (Series.create m) in
  check_int "one histogram" 1 (Array.length c.Capture.hists);
  let h = c.Capture.hists.(0) in
  check_int "bucket 1" 1 h.Capture.bucket_counts.(1);
  check_int "overflow" 1 h.Capture.bucket_counts.(5);
  check_bool "not empty" false (Capture.is_empty c)

(* ------------------------------------------------------------------ *)
(* Queue instrumentation *)

let mk_pkt ctx ~conn =
  Sim_net.Packet.make ~ctx ~src:(Sim_net.Addr.of_int 0)
    ~dst:(Sim_net.Addr.of_int 1) ~conn ~subflow:0 ~src_port:1000
    ~dst_port:2000 ~seq:0 ~ack_seq:0 ~len:1000
    ~bits:Sim_net.Packet.data_bits ~dsn:(-1)

let test_drop_hooks_run_in_install_order () =
  let ctx = Sim_engine.Sim_ctx.create () in
  let q =
    Pktqueue.create ~ctx ~capacity:1 ~layer:Layer.Host_layer ()
  in
  let log = ref [] in
  Pktqueue.add_drop_hook q (fun _ -> log := "first" :: !log);
  Pktqueue.add_drop_hook q (fun _ -> log := "second" :: !log);
  check_bool "accepted" true (Pktqueue.enqueue q (mk_pkt ctx ~conn:1));
  check_bool "dropped" false (Pktqueue.enqueue q (mk_pkt ctx ~conn:1));
  Alcotest.(check (list string))
    "both hooks, installation order" [ "first"; "second" ]
    (List.rev !log)

let test_queue_gauges_and_drop_events () =
  let ctx = Sim_engine.Sim_ctx.create () in
  let m = Sim_engine.Sim_ctx.metrics ctx in
  Metrics.enable m ~clock_ns:(fun () -> 123) ();
  let q = Pktqueue.create ~ctx ~capacity:1 ~layer:Layer.Edge_layer () in
  ignore (Pktqueue.enqueue q (mk_pkt ctx ~conn:4));
  ignore (Pktqueue.enqueue q (mk_pkt ctx ~conn:4));
  let read name =
    Array.to_list (Metrics.gauges m)
    |> List.find_map (fun ((g : Metrics.meta), r) ->
           if g.component = "pktqueue" && g.name = name then Some (r ())
           else None)
  in
  Alcotest.(check (option (float 0.))) "depth" (Some 1.) (read "depth_pkts");
  Alcotest.(check (option (float 0.))) "drops" (Some 1.) (read "drops");
  let evs = Metrics.events m in
  check_int "one queue_drop event" 1 (Array.length evs);
  check_string "kind" "queue_drop" evs.(0).Metrics.kind;
  check_int "conn attributed" 4 evs.(0).Metrics.conn;
  check_int "stamped by the clock" 123 evs.(0).Metrics.t_ns

(* ------------------------------------------------------------------ *)
(* Trace component filter *)

let test_trace_component_filter () =
  let t = Trace.create () in
  Trace.set_level t (Some Trace.Debug);
  check_bool "no filter: any component" true
    (Trace.enabled_for t Trace.Debug ~component:"tcp_tx");
  Trace.set_components t (Some [ "tcp_tx"; "pktqueue" ]);
  check_bool "listed component passes" true
    (Trace.enabled_for t Trace.Info ~component:"pktqueue");
  check_bool "unlisted component blocked" false
    (Trace.enabled_for t Trace.Info ~component:"ecmp");
  check_bool "level still gates" false
    (Trace.enabled_for t Trace.Debug ~component:"tcp_tx"
    && Trace.level t = Some Trace.Info);
  Trace.set_components t None;
  check_bool "filter removable" true
    (Trace.enabled_for t Trace.Info ~component:"ecmp")

(* ------------------------------------------------------------------ *)
(* Co-installation with Flowmon *)

(* The metrics drop tap and Flowmon must observe the same drops
   without stealing each other's hook (the failure mode of the old
   single-slot set_drop_hook). *)
let flowmon_run ~probe () =
  let sched = Scheduler.create () in
  let p =
    if probe then Some (Probe.create sched ~interval:(Time.of_ms 10.))
    else None
  in
  Option.iter Probe.start p;
  let spec = { Topology.default_link_spec with queue_capacity = 5 } in
  let net = Dumbbell.direct ~sched ~spec () in
  let fm = Flowmon.attach net in
  let f =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:700_000 ()
  in
  Scheduler.run ~until:(Time.of_sec 30.) sched;
  check_bool "flow complete" true (Flow.is_complete f);
  let s = Option.get (Flowmon.conn_stats fm ~conn:(Flow.conn f)) in
  (s, Option.map Probe.capture p)

let test_flowmon_unaffected_by_probe () =
  let bare, _ = flowmon_run ~probe:false () in
  let probed, capture = flowmon_run ~probe:true () in
  check_bool "drops observed" true (bare.Flowmon.drops > 0);
  check_int "same drops with metrics tap installed" bare.Flowmon.drops
    probed.Flowmon.drops;
  check_int "same retransmitted segments" bare.Flowmon.retransmitted_segments
    probed.Flowmon.retransmitted_segments;
  match capture with
  | None -> Alcotest.fail "expected a capture"
  | Some c ->
    let drop_events =
      Array.to_list c.Capture.events
      |> List.filter (fun (e : Metrics.event) -> e.kind = "queue_drop")
    in
    check_int "metrics saw every drop too" probed.Flowmon.drops
      (List.length drop_events)

(* ------------------------------------------------------------------ *)
(* End-to-end scenario guarantees *)

let obs_scale ~seed ~obs =
  { Scale.k = 4; oversub = 2; flows = 10; rate = 50.; seed; horizon_s = 1.;
    model = Scenario.Packet; obs }

let scenario_cfg ~seed ~obs =
  Scale.scenario_config (obs_scale ~seed ~obs)
    ~protocol:(Scenario.Mmptcp_proto Mmptcp.Strategy.default)

let probe_obs =
  {
    Scenario.default_obs with
    Scenario.probe_interval = Some (Time.of_ms 50.);
  }

let flow_fingerprint (r : Scenario.result) =
  Array.to_list r.Scenario.shorts
  |> List.map (fun f ->
         Printf.sprintf "%d>%d fct=%d rtos=%d" f.Scenario.src f.Scenario.dst
           (match f.Scenario.fct with Some t -> Time.to_ns t | None -> -1)
           f.Scenario.rtos)

let test_probe_does_not_perturb () =
  let bare =
    Scenario.run (scenario_cfg ~seed:11 ~obs:Scenario.default_obs)
  in
  let probed = Scenario.run (scenario_cfg ~seed:11 ~obs:probe_obs) in
  check_bool "probed run captured something" true
    (match probed.Scenario.obs with
    | Some c -> Array.length c.Capture.samples > 0
    | None -> false);
  Alcotest.(check (list string))
    "flow outcomes identical with probing on"
    (flow_fingerprint bare) (flow_fingerprint probed)

(* Render a capture exactly as `--out` would and compare bytes. *)
let artifact_bytes (r : Scenario.result) =
  match r.Scenario.obs with
  | None -> []
  | Some c ->
    Probe_sink.artifacts ~experiment:"test" [ ("point", c) ]
    |> List.map (function
         | Sink.Table t -> Sink.csv_string t ^ Sink.json_string t
         | Sink.Raw { basename; contents } -> basename ^ contents)

let test_probe_artifacts_jobs_invariant () =
  let seeds = [ 11; 12; 13 ] in
  let at jobs =
    Runner.par_map ~jobs
      (fun seed -> artifact_bytes (Scenario.run (scenario_cfg ~seed ~obs:probe_obs)))
      seeds
  in
  let one = at 1 and three = at 3 in
  check_bool "artifact bytes identical at jobs 1 vs 3" true (one = three);
  check_bool "artifacts non-empty" true
    (List.for_all (fun a -> a <> []) one)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "disabled registry inert" `Quick
            test_disabled_registry_inert;
          Alcotest.test_case "registration order" `Quick
            test_registration_order;
          Alcotest.test_case "want_conn filter" `Quick test_want_conn_filter;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "ticks and rows" `Quick
            test_sampler_ticks_and_rows;
          Alcotest.test_case "stop releases timer" `Quick
            test_probe_stop_releases_timer;
          Alcotest.test_case "bad interval rejected" `Quick
            test_probe_rejects_bad_interval;
        ] );
      ( "capture",
        [
          Alcotest.test_case "events jsonl golden" `Quick
            test_events_jsonl_golden;
          Alcotest.test_case "histogram dump" `Quick
            test_histogram_through_registry;
        ] );
      ( "queue",
        [
          Alcotest.test_case "drop hooks in install order" `Quick
            test_drop_hooks_run_in_install_order;
          Alcotest.test_case "gauges and drop events" `Quick
            test_queue_gauges_and_drop_events;
        ] );
      ( "trace",
        [
          Alcotest.test_case "component filter" `Quick
            test_trace_component_filter;
        ] );
      ( "flowmon",
        [
          Alcotest.test_case "unaffected by probe" `Quick
            test_flowmon_unaffected_by_probe;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "probe does not perturb" `Quick
            test_probe_does_not_perturb;
          Alcotest.test_case "artifacts invariant under jobs" `Quick
            test_probe_artifacts_jobs_invariant;
        ] );
    ]
