(* Tests for the fluid flow-level engine: allocator invariants
   (qcheck), analytic-FCT sanity, and a golden fluid-vs-packet
   cross-check at tiny scale.

   The two allocator properties pinned here are the ones the design
   leans on (DESIGN.md §4k): per-link conservation under arbitrary
   mutation histories, and the weighted max-min bottleneck condition
   from an all-dirty flush. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Alloc = Sim_fluid.Alloc
module Engine = Sim_fluid.Engine
module Scenario = Sim_workload.Scenario

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Generators: a random link set plus flows over random paths. *)

type case = {
  caps : float array;
  specs : (float * int list * bool) list;
      (* weight, path (distinct link ids), removed-later flag *)
}

let gen_case =
  let open QCheck.Gen in
  int_range 2 6 >>= fun nlinks ->
  array_size (return nlinks) (float_range 1e6 1e8) >>= fun caps ->
  let gen_path =
    int_range 1 nlinks >>= fun len ->
    shuffle_l (List.init nlinks Fun.id) >>= fun perm ->
    return (List.filteri (fun i _ -> i < len) perm)
  in
  list_size (int_range 1 25) (triple (float_range 0.5 4.) gen_path bool)
  >>= fun specs -> return { caps; specs }

let print_case c =
  Printf.sprintf "links=%d caps=[%s] flows=[%s]" (Array.length c.caps)
    (String.concat ";"
       (Array.to_list (Array.map (Printf.sprintf "%.0f") c.caps)))
    (String.concat "; "
       (List.map
          (fun (w, p, rm) ->
            Printf.sprintf "w=%.2f path=%s%s" w
              (String.concat "," (List.map string_of_int p))
              (if rm then " rm" else ""))
          c.specs))

let arb_case = QCheck.make ~print:print_case gen_case

let build case =
  let t = Alloc.create ~caps:case.caps ~on_rate:(fun _ -> ()) () in
  let flows =
    List.map
      (fun (w, path, rm) ->
        (Alloc.add t ~weight:w ~path:(Array.of_list path) ~data:(), path, rm))
      case.specs
  in
  (t, flows)

(* Committed rates may lag the exact water-fill by the commit
   threshold (relative 1e-3), so invariants are checked with a little
   slack on top. *)
let tol = 1e-2

(* Per-link conservation: the sum of member rates never exceeds the
   link's capacity — including after removals and a second flush. *)
let prop_conservation =
  QCheck.Test.make ~name:"per-link rate conservation" ~count:200 arb_case
    (fun case ->
      let t, flows = build case in
      Alloc.flush t ~now:0.;
      let conserved alive =
        Array.for_all Fun.id
          (Array.init (Array.length case.caps) (fun li ->
               let sum =
                 List.fold_left
                   (fun acc (f, path, _) ->
                     if List.mem li path then acc +. Alloc.rate f else acc)
                   0. alive
               in
               sum <= (Alloc.link_avail t ~link:li *. (1. +. tol)) +. 1.))
      in
      let ok1 = conserved flows in
      let survivors = List.filter (fun (_, _, rm) -> not rm) flows in
      List.iter (fun (f, _, rm) -> if rm then Alloc.remove t ~now:1. f) flows;
      Alloc.flush t ~now:1.;
      ok1 && conserved survivors)

(* Max-min fairness, bottleneck form: after an all-dirty flush, every
   flow has a saturated path link on which its normalised rate
   (rate/weight) is maximal among the link's members — i.e. no flow
   could be raised without lowering a poorer one. *)
let prop_maxmin_bottleneck =
  QCheck.Test.make ~name:"max-min bottleneck condition" ~count:200 arb_case
    (fun case ->
      let t, flows = build case in
      Alloc.flush t ~now:0.;
      List.for_all
        (fun (f, path, _) ->
          List.exists
            (fun li ->
              let sum, norm_max =
                List.fold_left
                  (fun (s, m) (g, gpath, _) ->
                    if List.mem li gpath then
                      (s +. Alloc.rate g,
                       Float.max m (Alloc.rate g /. Alloc.weight g))
                    else (s, m))
                  (0., 0.) flows
              in
              let avail = Alloc.link_avail t ~link:li in
              sum >= avail *. (1. -. tol)
              && Alloc.rate f /. Alloc.weight f >= norm_max *. (1. -. tol))
            path)
        flows)

(* ------------------------------------------------------------------ *)
(* Engine: analytic FCT is monotone in flow size when uncontended. *)

let fct_of_size size =
  let sched = Scheduler.create () in
  let eng = Engine.make ~sched ~cap_bps:[| 1e8 |] () in
  let legs = [| { Engine.path = [| 0 |]; weight = 1.; rtt_s = 1e-4 } |] in
  let conn = Engine.start eng ~legs ~size ~on_complete:(fun _ -> ()) () in
  Scheduler.run sched;
  match Engine.conn_fct conn with
  | Some fct -> Time.to_sec fct
  | None -> Alcotest.failf "size %d never completed" size

let test_fct_monotone () =
  let sizes = [ 1_000; 10_000; 70_000; 500_000; 5_000_000 ] in
  let fcts = List.map fct_of_size sizes in
  List.iteri
    (fun i fct ->
      if i > 0 then
        check_bool
          (Printf.sprintf "fct(%d) < fct(%d)" (List.nth sizes (i - 1))
             (List.nth sizes i))
          true
          (List.nth fcts (i - 1) < fct))
    fcts

(* And bounded below by serialisation: size bytes over a 100 Mb/s
   link cannot land faster than wire speed. *)
let test_fct_above_serialisation () =
  List.iter
    (fun size ->
      let fct = fct_of_size size in
      check_bool
        (Printf.sprintf "fct(%d) >= serialisation" size)
        true
        (fct >= float_of_int (8 * size) /. 1e8))
    [ 10_000; 500_000 ]

(* ------------------------------------------------------------------ *)
(* Golden cross-check: tiny dumbbell, fluid within 10% of packet on
   mean short-flow FCT (the ext-fluid-xval gate, pinned in-tree). *)

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let tiny_dumbbell model =
  {
    Scenario.default_config with
    Scenario.model;
    topo =
      Scenario.Dumbbell_topo { pairs = 4; bottleneck = Scenario.paper_link_spec };
    protocol = Scenario.Tcp_proto;
    seed = 3;
    long_fraction = 0.;
    short_flows = 40;
    short_rate = 3.;
    horizon = Time.of_sec 4.;
  }

let test_golden_fluid_vs_packet () =
  let fcts model = Scenario.short_fcts_ms (Scenario.run (tiny_dumbbell model)) in
  let p = fcts Scenario.Packet and f = fcts Scenario.Fluid in
  Alcotest.(check int) "all complete" (Array.length p) (Array.length f);
  let dev = Float.abs (mean f -. mean p) /. mean p in
  if dev > 0.10 then
    Alcotest.failf "fluid mean FCT off by %.1f%% (packet %.3fms, fluid %.3fms)"
      (100. *. dev) (mean p) (mean f)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fluid"
    [
      ( "alloc",
        [ qt prop_conservation; qt prop_maxmin_bottleneck ] );
      ( "engine",
        [
          Alcotest.test_case "fct monotone in size" `Quick test_fct_monotone;
          Alcotest.test_case "fct above serialisation" `Quick
            test_fct_above_serialisation;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fluid tracks packet (tiny dumbbell)" `Quick
            test_golden_fluid_vs_packet;
        ] );
    ]
