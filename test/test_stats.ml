(* Tests for the statistics library. *)

module Summary = Sim_stats.Summary
module Histogram = Sim_stats.Histogram
module Table = Sim_stats.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_summary_known_values () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_int "n" 8 s.Summary.n;
  check_float "mean" 5. s.Summary.mean;
  check_float "min" 2. s.Summary.min;
  check_float "max" 9. s.Summary.max;
  (* Sample stddev of this classic dataset: sqrt(32/7). *)
  Alcotest.(check (float 1e-6)) "stddev" (sqrt (32. /. 7.)) s.Summary.stddev

let test_summary_single () =
  let s = Summary.of_array [| 42. |] in
  check_float "mean" 42. s.Summary.mean;
  check_float "stddev" 0. s.Summary.stddev;
  check_float "p99" 42. s.Summary.p99

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Summary.of_array [||]))

let test_percentiles () =
  let sorted = Array.init 101 float_of_int in
  check_float "p50" 50. (Summary.percentile sorted 50.);
  check_float "p0" 0. (Summary.percentile sorted 0.);
  check_float "p100" 100. (Summary.percentile sorted 100.);
  check_float "p90" 90. (Summary.percentile sorted 90.)

let test_percentile_interpolates () =
  let sorted = [| 10.; 20. |] in
  check_float "midpoint" 15. (Summary.percentile sorted 50.)

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun l ->
      let s = Summary.of_list l in
      s.Summary.min <= s.Summary.mean +. 1e-9
      && s.Summary.mean <= s.Summary.max +. 1e-9
      && s.Summary.p50 <= s.Summary.p90 +. 1e-9
      && s.Summary.p90 <= s.Summary.p99 +. 1e-9)

let prop_stddev_nonneg =
  QCheck.Test.make ~name:"stddev non-negative" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 100.))
    (fun l -> Summary.stddev (Array.of_list l) >= 0.)

let test_histogram_buckets () =
  let h = Histogram.create ~lo:0. ~hi:100. ~buckets:10 in
  Histogram.add h 5.;
  Histogram.add h 15.;
  Histogram.add h 15.5;
  Histogram.add h 99.9;
  Histogram.add h 150.;
  check_int "total" 5 (Histogram.count h);
  let counts = Histogram.bucket_counts h in
  check_int "bucket 0" 1 counts.(0);
  check_int "bucket 1" 2 counts.(1);
  check_int "bucket 9" 1 counts.(9);
  check_int "overflow" 1 (Histogram.overflow h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:5 in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "bucket 0" (0., 2.)
    (Histogram.bucket_bounds h 0);
  let lo, hi = Histogram.bucket_bounds h 5 in
  check_float "overflow lo" 10. lo;
  check_bool "overflow hi" true (hi = infinity)

let test_histogram_underflow_clamps () =
  let h = Histogram.create ~lo:10. ~hi:20. ~buckets:2 in
  Histogram.add h 3.;
  check_int "clamped to first bucket" 1 (Histogram.bucket_counts h).(0)

let test_histogram_merge () =
  let a = Histogram.create ~lo:0. ~hi:100. ~buckets:10 in
  let b = Histogram.create ~lo:0. ~hi:100. ~buckets:10 in
  List.iter (Histogram.add a) [ 5.; 15.; 150. ];
  List.iter (Histogram.add b) [ 5.; 25.; 99. ];
  let m = Histogram.merge a b in
  check_int "merged total" 6 (Histogram.count m);
  let counts = Histogram.bucket_counts m in
  check_int "bucket 0 summed" 2 counts.(0);
  check_int "bucket 1 from a" 1 counts.(1);
  check_int "bucket 2 from b" 1 counts.(2);
  check_int "overflow from a" 1 (Histogram.overflow m);
  (* Inputs untouched. *)
  check_int "a total unchanged" 3 (Histogram.count a);
  check_int "b total unchanged" 3 (Histogram.count b)

let test_histogram_merge_mismatch_rejected () =
  let err = Invalid_argument "Histogram.merge: mismatched bucket layout" in
  let base = Histogram.create ~lo:0. ~hi:100. ~buckets:10 in
  Alcotest.check_raises "different lo" err (fun () ->
      ignore
        (Histogram.merge base (Histogram.create ~lo:1. ~hi:100. ~buckets:10)));
  Alcotest.check_raises "different hi" err (fun () ->
      ignore
        (Histogram.merge base (Histogram.create ~lo:0. ~hi:50. ~buckets:10)));
  Alcotest.check_raises "different buckets" err (fun () ->
      ignore
        (Histogram.merge base (Histogram.create ~lo:0. ~hi:100. ~buckets:5)))

let prop_histogram_merge_is_concat =
  QCheck.Test.make ~name:"merge equals adding both sample sets" ~count:200
    QCheck.(
      pair (list (float_bound_exclusive 200.)) (list (float_bound_exclusive 200.)))
    (fun (la, lb) ->
      let a = Histogram.create ~lo:0. ~hi:100. ~buckets:7 in
      let b = Histogram.create ~lo:0. ~hi:100. ~buckets:7 in
      List.iter (Histogram.add a) la;
      List.iter (Histogram.add b) lb;
      let m = Histogram.merge a b in
      let direct = Histogram.create ~lo:0. ~hi:100. ~buckets:7 in
      List.iter (Histogram.add direct) (la @ lb);
      Histogram.bucket_counts m = Histogram.bucket_counts direct
      && Histogram.count m = Histogram.count direct)

let prop_histogram_conserves_count =
  QCheck.Test.make ~name:"histogram conserves count" ~count:200
    QCheck.(list (float_bound_exclusive 200.))
    (fun l ->
      let h = Histogram.create ~lo:0. ~hi:100. ~buckets:7 in
      List.iter (Histogram.add h) l;
      Array.fold_left ( + ) 0 (Histogram.bucket_counts h) = List.length l)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let t = Table.create ~columns:[ "proto"; "mean"; "sd" ] in
  Table.add_row t [ "mptcp"; "126"; "425" ];
  Table.add_row t [ "mmptcp"; "116"; "101" ];
  let s = Table.render t in
  check_bool "has header" true (String.length s > 5 && String.sub s 0 5 = "proto");
  check_bool "contains row" true (contains ~needle:"mmptcp" s);
  check_bool "rows in insertion order" true
    (contains ~needle:"mptcp" s)

let test_table_arity_check () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_formatters () =
  Alcotest.(check string) "fms" "12.3" (Table.fms 12.34);
  Alcotest.(check string) "pct" "1.000%" (Table.pct 0.01);
  Alcotest.(check string) "mbps" "94.5" (Table.mbps 94.5e6)

module Csv = Sim_stats.Csv

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_to_string () =
  Alcotest.(check string) "document" "x,y\n1,2\n3,4\n"
    (Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ])

let test_csv_float_cell () =
  Alcotest.(check string) "six significant digits" "3.14159"
    (Csv.float_cell Float.pi);
  Alcotest.(check string) "integer-valued" "42" (Csv.float_cell 42.);
  (* Non-finite values must render as parseable tokens, not crash:
     the sink layer feeds raw simulation output straight through. *)
  Alcotest.(check string) "nan" "nan" (Csv.float_cell Float.nan);
  Alcotest.(check string) "inf" "inf" (Csv.float_cell Float.infinity);
  Alcotest.(check string) "-inf" "-inf" (Csv.float_cell Float.neg_infinity)

let test_csv_arity_mismatch () =
  let arity_error = Invalid_argument "Csv.to_string: row arity mismatch" in
  Alcotest.check_raises "short row" arity_error (fun () ->
      ignore (Csv.to_string ~header:[ "a"; "b" ] [ [ "1" ] ]));
  Alcotest.check_raises "long row" arity_error (fun () ->
      ignore (Csv.to_string ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "1"; "2"; "3" ] ]))

let test_csv_write_arity_error_keeps_file () =
  (* write renders before open_out, so a bad row cannot truncate an
     artifact that already exists. *)
  let path = Filename.temp_file "simstats" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write ~path ~header:[ "a" ] [ [ "old" ] ];
      (try Csv.write ~path ~header:[ "a" ] [ [ "x"; "y" ] ]
       with Invalid_argument _ -> ());
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      close_in ic;
      Alcotest.(check string) "header intact" "a" l1;
      Alcotest.(check string) "row intact" "old" l2)

let test_csv_round_trip_file () =
  let path = Filename.temp_file "simstats" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write ~path ~header:[ "a" ] [ [ "hello, world" ] ];
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      close_in ic;
      Alcotest.(check string) "header" "a" l1;
      Alcotest.(check string) "quoted row" "\"hello, world\"" l2)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "known values" `Quick test_summary_known_values;
          Alcotest.test_case "single sample" `Quick test_summary_single;
          Alcotest.test_case "empty rejected" `Quick test_summary_empty_rejected;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "interpolation" `Quick test_percentile_interpolates;
          qt prop_summary_bounds;
          qt prop_stddev_nonneg;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "underflow clamps" `Quick test_histogram_underflow_clamps;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge mismatch rejected" `Quick
            test_histogram_merge_mismatch_rejected;
          qt prop_histogram_merge_is_concat;
          qt prop_histogram_conserves_count;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "arity" `Quick test_table_arity_check;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "to_string" `Quick test_csv_to_string;
          Alcotest.test_case "float cells" `Quick test_csv_float_cell;
          Alcotest.test_case "arity mismatch" `Quick test_csv_arity_mismatch;
          Alcotest.test_case "arity error keeps file" `Quick
            test_csv_write_arity_error_keeps_file;
          Alcotest.test_case "file round trip" `Quick test_csv_round_trip_file;
        ] );
    ]
