(* Tests for the experiment registry and the spec/instance machinery,
   using a synthetic experiment so they run in microseconds: results
   and sink rows are identical at any job count, render sees pairs in
   declaration order, failures carry experiment + point attribution
   (Runner.Point_failed), and Registry.select re-sorts any subset into
   canonical order. The real experiments' stdout determinism is
   enforced end-to-end in CI (all --jobs 1 vs 4 diff). *)

module Experiment = Sim_experiments.Experiment
module Registry = Sim_experiments.Registry
module Runner = Sim_experiments.Runner
module Scale = Sim_experiments.Scale
module Sink = Sim_experiments.Sink

let scale = { Scale.tiny with Scale.flows = 8; seed = 3 }

(* Points 0..flows-1; result is point * seed, logged by render. *)
let synthetic ~log ?(boom = fun _ -> false) () =
  Experiment.make ~name:"synthetic" ~doc:"test experiment"
    ~points:(fun scale -> List.init scale.Scale.flows Fun.id)
    ~point_label:(fun i -> Printf.sprintf "p%d" i)
    ~run_point:(fun scale i ->
      if boom i then failwith "kaboom";
      i * scale.Scale.seed)
    ~render:(fun _ pairs -> log := pairs)
    ~sinks:(fun _ pairs ->
      [
        Sink.table ~name:"synthetic"
          ~columns:
            [
              ("point", fun (p, _) -> Sink.int p);
              ("result", fun (_, r) -> Sink.int r);
            ]
          pairs;
      ])
    ()

let run_jobs ~jobs inst =
  ignore
    (Runner.par_map ~jobs Experiment.run_job (Experiment.instance_jobs inst)
      : unit list)

(* ------------------------------------------------------------------ *)
(* Instance machinery *)

let test_jobs_invariant () =
  let at jobs =
    let log = ref [] in
    let inst = Experiment.instantiate (synthetic ~log ()) scale in
    run_jobs ~jobs inst;
    let tables =
      List.filter_map
        (function Sink.Table t -> Some t | Sink.Raw _ -> None)
        (Experiment.finish inst)
    in
    (!log, List.map Sink.rows tables)
  in
  let log1, rows1 = at 1 in
  let log4, rows4 = at 4 in
  Alcotest.(check (list (pair int int)))
    "render pairs in declaration order"
    (List.init scale.Scale.flows (fun i -> (i, i * scale.Scale.seed)))
    log1;
  Alcotest.(check bool) "render input identical at jobs 1 vs 4" true
    (log1 = log4);
  Alcotest.(check bool) "sink rows identical at jobs 1 vs 4" true
    (rows1 = rows4)

let test_finish_requires_run () =
  let log = ref [] in
  let inst = Experiment.instantiate (synthetic ~log ()) scale in
  Alcotest.check_raises "unrun point"
    (Invalid_argument "Experiment.finish: point [p0] of synthetic has not run")
    (fun () -> ignore (Experiment.finish inst))

let test_job_labels () =
  let log = ref [] in
  let inst = Experiment.instantiate (synthetic ~log ()) scale in
  Alcotest.(check (list string))
    "labels in points order"
    (List.init scale.Scale.flows (Printf.sprintf "p%d"))
    (List.map Experiment.job_label (Experiment.instance_jobs inst))

let test_point_seconds () =
  (* A fake clock ticking once per call: every point costs exactly one
     tick, so the manifest timing plumbing is fully observable. *)
  let ticks = ref 0. in
  let clock () =
    ticks := !ticks +. 1.;
    !ticks
  in
  let log = ref [] in
  let inst = Experiment.instantiate ~clock (synthetic ~log ()) scale in
  run_jobs ~jobs:1 inst;
  let secs = Experiment.point_seconds inst in
  Alcotest.(check int) "one entry per point" scale.Scale.flows
    (List.length secs);
  List.iteri
    (fun i (label, s) ->
      Alcotest.(check string) "label" (Printf.sprintf "p%d" i) label;
      Alcotest.(check (float 1e-9)) "one tick" 1. s)
    secs

(* ------------------------------------------------------------------ *)
(* Failure attribution (every point failure must name its experiment
   and point, whichever domain it ran on) *)

let test_point_failure_attribution () =
  let log = ref [] in
  let e = synthetic ~log ~boom:(fun i -> i = 5) () in
  let inst = Experiment.instantiate e scale in
  match run_jobs ~jobs:2 inst with
  | () -> Alcotest.fail "expected Point_failed"
  | exception Runner.Point_failed { experiment; point; exn } ->
    Alcotest.(check string) "experiment" "synthetic" experiment;
    Alcotest.(check string) "point" "p5" point;
    (match exn with
    | Failure m -> Alcotest.(check string) "cause" "kaboom" m
    | e -> Alcotest.failf "unexpected cause %s" (Printexc.to_string e));
    Alcotest.(check string) "registered printer"
      "experiment synthetic, point [p5]: Failure(\"kaboom\")"
      (Printexc.to_string (Runner.Point_failed { experiment; point; exn }))

(* ------------------------------------------------------------------ *)
(* Registry *)

let canonical =
  [
    "fig1a"; "fig1b"; "fig1c"; "table1"; "ext-switching"; "ext-load";
    "ext-hotspot"; "ext-multihomed"; "ext-coexist"; "ext-dupack";
    "ext-topologies"; "ext-matrices"; "ext-sack"; "ext-fluid-xval";
    "ext-scale";
  ]

let test_registry_names () =
  Alcotest.(check (list string)) "canonical order" canonical (Registry.names ());
  Alcotest.(check int) "all distinct" (List.length canonical)
    (List.length (List.sort_uniq compare (Registry.names ())))

let test_registry_find () =
  Alcotest.(check bool) "fig1a found" true
    (match Registry.find "fig1a" with
    | Some e -> Experiment.name e = "fig1a"
    | None -> false);
  Alcotest.(check bool) "unknown absent" true
    (Option.is_none (Registry.find "fig9z"))

let test_registry_select () =
  (match Registry.select [ "ext-coexist"; "fig1b" ] with
  | Ok es ->
    Alcotest.(check (list string))
      "subset re-sorted into registry order" [ "fig1b"; "ext-coexist" ]
      (List.map Experiment.name es)
  | Error u -> Alcotest.failf "unexpected unknown %s" u);
  (match Registry.select [ "fig1b"; "fig1b" ] with
  | Ok es -> Alcotest.(check int) "duplicates collapse" 1 (List.length es)
  | Error u -> Alcotest.failf "unexpected unknown %s" u);
  match Registry.select [ "fig1b"; "nope" ] with
  | Error u -> Alcotest.(check string) "first unknown name" "nope" u
  | Ok _ -> Alcotest.fail "expected Error"

let () =
  Alcotest.run "registry"
    [
      ( "instance",
        [
          Alcotest.test_case "results invariant under jobs" `Quick
            test_jobs_invariant;
          Alcotest.test_case "finish requires run" `Quick
            test_finish_requires_run;
          Alcotest.test_case "job labels" `Quick test_job_labels;
          Alcotest.test_case "point seconds" `Quick test_point_seconds;
        ] );
      ( "failure",
        [
          Alcotest.test_case "attribution" `Quick
            test_point_failure_attribution;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "select" `Quick test_registry_select;
        ] );
    ]
