(* Unit and property tests for the discrete-event engine. *)

module Time = Sim_engine.Sim_time
module Event_heap = Sim_engine.Event_heap
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sim_time *)

let test_time_constructors () =
  check_int "1us in ns" 1000 (Time.to_ns (Time.of_us 1.));
  check_int "1ms in ns" 1_000_000 (Time.to_ns (Time.of_ms 1.));
  check_int "1s in ns" 1_000_000_000 (Time.to_ns (Time.of_sec 1.));
  Alcotest.(check (float 1e-9)) "round trip sec" 2.5 (Time.to_sec (Time.of_sec 2.5))

let test_time_arithmetic () =
  let a = Time.of_ms 5. and b = Time.of_ms 3. in
  Alcotest.(check (float 1e-9)) "add" 8. (Time.to_ms (Time.add a b));
  Alcotest.(check (float 1e-9)) "diff" 2. (Time.to_ms (Time.diff a b));
  check_bool "lt" true Time.(b < a);
  check_bool "le refl" true Time.(a <= a);
  Alcotest.check_raises "negative diff" (Invalid_argument "Sim_time.diff: negative result")
    (fun () -> ignore (Time.diff b a))

let test_time_scale () =
  Alcotest.(check (float 1e-9)) "double" 10.
    (Time.to_ms (Time.scale (Time.of_ms 5.) 2.));
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Sim_time.scale: negative factor") (fun () ->
      ignore (Time.scale (Time.of_ms 1.) (-1.)))

let test_time_negative_rejected () =
  Alcotest.check_raises "of_ns negative" (Invalid_argument "Sim_time.of_ns: negative")
    (fun () -> ignore (Time.of_ns (-1)))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.of_ns 500));
  Alcotest.(check string) "ms" "1.500ms" (Time.to_string (Time.of_ms 1.5))

(* ------------------------------------------------------------------ *)
(* Event_heap *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:30 ~seq:0 "c";
  Event_heap.push h ~time:10 ~seq:1 "a";
  Event_heap.push h ~time:20 ~seq:2 "b";
  let pop () =
    match Event_heap.pop h with Some (_, _, v) -> v | None -> "?"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  for i = 0 to 9 do
    Event_heap.push h ~time:5 ~seq:i i
  done;
  let order = List.init 10 (fun _ ->
      match Event_heap.pop h with Some (_, _, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "insertion order on tie" (List.init 10 Fun.id) order

let test_heap_empty () =
  let h = Event_heap.create () in
  check_bool "empty" true (Event_heap.is_empty h);
  check_bool "pop none" true (Event_heap.pop h = None);
  check_bool "peek none" true (Event_heap.peek_time h = None)

let test_heap_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1 ~seq:0 ();
  Event_heap.clear h;
  check_int "cleared" 0 (Event_heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t ~seq:i t) times;
      let rec drain acc =
        match Event_heap.pop h with
        | None -> List.rev acc
        | Some (t, _, _) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare popped
      && List.length popped = List.length times)

let test_heap_compact () =
  let h = Event_heap.create () in
  for i = 0 to 99 do
    Event_heap.push h ~time:((i * 7919) mod 1000) ~seq:i i
  done;
  Event_heap.compact h ~keep:(fun ~time:_ ~seq:_ v -> v mod 3 = 0);
  check_int "survivors" 34 (Event_heap.length h);
  let rec drain acc =
    match Event_heap.pop h with
    | None -> List.rev acc
    | Some (t, s, _) -> drain ((t, s) :: acc)
  in
  let keys = drain [] in
  check_bool "still sorted after compact" true (keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Timer_wheel: equivalence with a plain sorted structure *)

module Timer_wheel = Sim_engine.Timer_wheel

(* Drive a wheel (with the scheduler's heap-handoff protocol) and a
   reference list through the same random schedule/cancel/advance
   trace; both must fire the same events in the same (time, seq)
   order. Times are spread across wheel levels by shifting, so the
   trace exercises cascades, clamping and the level-0 cutoff. *)
let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel + handoff heap matches sorted reference"
    ~count:200
    QCheck.(list (pair (int_bound 4000) bool))
    (fun trace ->
      let wheel = Timer_wheel.create () in
      let heap = Event_heap.create () in
      let fired_wheel = ref [] in
      let emit (e : Timer_wheel.entry) =
        (* Late emission would be a wheel bug: the slot containing the
           entry must not start after the entry's exact due time. *)
        assert (Timer_wheel.cursor_ns wheel <= e.time);
        e.state <- Timer_wheel.st_heap;
        Event_heap.push heap ~time:e.time ~seq:e.seq e
      in
      let reference = ref [] in
      let entries =
        List.mapi
          (fun i (t0, cancel) ->
            (* Spread times across levels: every other event is shifted
               up 8 bits so some land beyond level 0's span. *)
            let time = 2048 + (t0 lsl (8 * (i mod 2))) in
            let e = Timer_wheel.make_entry ignore () in
            e.time <- time;
            e.seq <- i;
            if not (Timer_wheel.schedule wheel e) then begin
              e.state <- Timer_wheel.st_heap;
              Event_heap.push heap ~time ~seq:i e
            end;
            (e, time, cancel))
          trace
      in
      (* Cancel the marked ones: wheel residents unlink in O(1);
         heap residents become tombstones exactly as in the
         scheduler's [detach]. *)
      List.iter
        (fun ((e : Timer_wheel.entry), time, cancel) ->
          if cancel then begin
            if e.state = Timer_wheel.st_wheel then Timer_wheel.cancel wheel e
            else if e.state = Timer_wheel.st_heap then
              e.state <- Timer_wheel.st_idle
          end
          else reference := (time, e.seq) :: !reference)
        entries;
      (* Advance in uneven steps well past the largest time. *)
      let horizon = 2048 + (4000 lsl 8) + 10_000 in
      let step = ref 0 in
      while Timer_wheel.cursor_ns wheel < horizon do
        let upto =
          min horizon (Timer_wheel.cursor_ns wheel + 700 + (!step * 1013))
        in
        incr step;
        Timer_wheel.advance wheel ~upto ~emit;
        (* Drain everything the heap holds up to the cursor, as the
           scheduler's run loop would. *)
        while
          Event_heap.top_time heap <> max_int
          && Event_heap.top_time heap <= Timer_wheel.cursor_ns wheel
        do
          let t = Event_heap.top_time heap in
          let s = Event_heap.top_seq heap in
          let (e : Timer_wheel.entry) = Event_heap.top_value heap in
          Event_heap.drop heap;
          if e.state = Timer_wheel.st_heap && e.seq = s then begin
            e.state <- Timer_wheel.st_fired;
            fired_wheel := (t, s) :: !fired_wheel
          end
        done
      done;
      (* Anything still in the heap is due after the horizon — but the
         horizon exceeds every event time, so both sides must be done. *)
      let expected = List.sort compare (List.rev !reference) in
      List.rev !fired_wheel = expected)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let test_scheduler_order_and_clock () =
  let s = Scheduler.create () in
  let log = ref [] in
  let note tag () = log := (tag, Time.to_ms (Scheduler.now s)) :: !log in
  ignore (Scheduler.schedule_after s (Time.of_ms 2.) (note "b"));
  ignore (Scheduler.schedule_after s (Time.of_ms 1.) (note "a"));
  ignore (Scheduler.schedule_after s (Time.of_ms 3.) (note "c"));
  Scheduler.run s;
  Alcotest.(check (list (pair string (float 1e-6))))
    "events fire in order at their times"
    [ ("a", 1.); ("b", 2.); ("c", 3.) ]
    (List.rev !log)

let test_scheduler_same_time_fifo () =
  let s = Scheduler.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Scheduler.schedule_after s (Time.of_ms 1.) (fun () -> log := i :: !log))
  done;
  Scheduler.run s;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_scheduler_cancel () =
  let s = Scheduler.create () in
  let fired = ref false in
  let h = Scheduler.schedule_after s (Time.of_ms 1.) (fun () -> fired := true) in
  Scheduler.cancel s h;
  Scheduler.run s;
  check_bool "cancelled did not fire" false !fired;
  check_bool "not pending" false (Scheduler.is_pending h)

let test_scheduler_until () =
  let s = Scheduler.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Scheduler.schedule_after s (Time.of_ms (float_of_int i)) (fun () -> incr count))
  done;
  Scheduler.run ~until:(Time.of_ms 5.) s;
  check_int "only events <= 5ms" 5 !count;
  Alcotest.(check (float 1e-6)) "clock at horizon" 5. (Time.to_ms (Scheduler.now s));
  Scheduler.run s;
  check_int "rest fire on resume" 10 !count

let test_scheduler_nested_scheduling () =
  let s = Scheduler.create () in
  let log = ref [] in
  ignore
    (Scheduler.schedule_after s (Time.of_ms 1.) (fun () ->
         log := "outer" :: !log;
         ignore
           (Scheduler.schedule_after s (Time.of_ms 1.) (fun () ->
                log := "inner" :: !log))));
  Scheduler.run s;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-6)) "final clock" 2. (Time.to_ms (Scheduler.now s))

let test_scheduler_past_rejected () =
  let s = Scheduler.create () in
  ignore
    (Scheduler.schedule_after s (Time.of_ms 5.) (fun () ->
         Alcotest.check_raises "past"
           (Invalid_argument "Scheduler.schedule_at: time is in the past")
           (fun () -> ignore (Scheduler.schedule_at s (Time.of_ms 1.) ignore))));
  Scheduler.run s

let test_scheduler_max_events () =
  let s = Scheduler.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Scheduler.schedule_after s (Time.of_ms (float_of_int i)) (fun () -> incr count))
  done;
  Scheduler.run ~max_events:3 s;
  check_int "bounded" 3 !count

let test_scheduler_counts () =
  let s = Scheduler.create () in
  ignore (Scheduler.schedule_after s Time.zero ignore);
  ignore (Scheduler.schedule_after s Time.zero ignore);
  check_int "pending" 2 (Scheduler.pending_events s);
  Scheduler.run s;
  check_int "processed" 2 (Scheduler.events_processed s)

(* Random schedule/cancel trace against a sorted-list model: the
   scheduler (wheel + heap + tombstones underneath) must fire exactly
   the non-cancelled events in (time, insertion) order. Cancels happen
   during the run, from an event scheduled earlier than the victim. *)
let prop_scheduler_matches_model =
  QCheck.Test.make ~name:"scheduler matches sorted-list model" ~count:200
    QCheck.(list (pair (int_bound 5_000_000) (option (int_bound 4_999_999))))
    (fun trace ->
      let s = Scheduler.create () in
      let fired = ref [] in
      let handles =
        List.mapi
          (fun i (t_ns, cancel_at) ->
          let h =
            Scheduler.schedule_at s (Time.of_ns t_ns) (fun () ->
                fired := (t_ns, i) :: !fired)
          in
          (h, t_ns, cancel_at, i))
          trace
      in
      (* A cancel only counts when it strictly precedes the victim's
         due time; otherwise the victim fires first and the cancel is
         a no-op on an already-fired event. *)
      let expected = ref [] in
      List.iter
        (fun (h, t_ns, cancel_at, i) ->
          match cancel_at with
          | Some c_ns when c_ns < t_ns ->
            ignore
              (Scheduler.schedule_at s (Time.of_ns c_ns) (fun () ->
                   Scheduler.cancel s h))
          | Some _ | None -> expected := (t_ns, i) :: !expected)
        handles;
      Scheduler.run s;
      List.rev !fired = List.sort compare (List.rev !expected))

(* ------------------------------------------------------------------ *)
(* Scheduler.Timer *)

let test_timer_cancel_rearm () =
  let s = Scheduler.create () in
  let count = ref 0 in
  let tm = Scheduler.Timer.create s (fun () -> incr count) () in
  (* Cancel before first arm is a no-op; a cancelled arm never fires. *)
  Scheduler.Timer.cancel tm;
  Scheduler.Timer.schedule_after tm (Time.of_ms 1.);
  check_bool "pending after arm" true (Scheduler.Timer.is_pending tm);
  Scheduler.Timer.cancel tm;
  check_bool "idle after cancel" false (Scheduler.Timer.is_pending tm);
  Scheduler.run s;
  check_int "cancelled arm never fired" 0 !count;
  (* The closure survives cancel: re-arm still works. *)
  Scheduler.Timer.schedule_after tm (Time.of_ms 1.);
  Scheduler.run s;
  check_int "re-arm after cancel fires" 1 !count;
  (* Re-arm supersedes: only the latest deadline fires. *)
  Scheduler.Timer.schedule_after tm (Time.of_ms 5.);
  Scheduler.Timer.schedule_after tm (Time.of_ms 1.);
  Scheduler.run s;
  check_int "superseded arm fires once" 2 !count

let test_timer_seq_interleaving () =
  (* A Timer consumes one seq per arm, exactly like schedule_at: armed
     before a same-time one-shot, it fires first; re-armed after, it
     fires second. *)
  let s = Scheduler.create () in
  let log = ref [] in
  let tm = Scheduler.Timer.create s (fun () -> log := "timer" :: !log) () in
  Scheduler.Timer.schedule_at tm (Time.of_ms 1.);
  ignore
    (Scheduler.schedule_at s (Time.of_ms 1.) (fun () ->
         log := "oneshot" :: !log));
  Scheduler.run s;
  Scheduler.Timer.schedule_at tm (Time.of_ms 2.);
  ignore
    (Scheduler.schedule_at s (Time.of_ms 2.) (fun () ->
         log := "oneshot2" :: !log));
  (* Re-arm after the one-shot: the timer moves behind it. *)
  Scheduler.Timer.schedule_at tm (Time.of_ms 2.);
  Scheduler.run s;
  Alcotest.(check (list string))
    "seq order across arms"
    [ "timer"; "oneshot"; "oneshot2"; "timer" ]
    (List.rev !log)

let test_scheduler_tombstones_and_compaction () =
  let s = Scheduler.create () in
  (* 200 events within the level-0 cutoff (< 1024 ns), so they all land
     in the heap; cancelling all but every 10th leaves 180 tombstones,
     which must trip compaction (threshold: > 64 and > half the heap). *)
  let handles =
    List.init 200 (fun i ->
        Scheduler.schedule_at s (Time.of_ns (i mod 1000)) ignore)
  in
  List.iteri
    (fun i h -> if i mod 10 <> 0 then Scheduler.cancel s h)
    handles;
  check_int "pending counts live only" 20 (Scheduler.pending_events s);
  check_bool "compaction kept tombstones low" true
    (Scheduler.cancelled_pending s <= 100);
  Scheduler.run s;
  check_int "survivors fired" 20 (Scheduler.events_processed s);
  check_int "no pending after run" 0 (Scheduler.pending_events s);
  check_int "no tombstones after run" 0 (Scheduler.cancelled_pending s)

let test_scheduler_far_future () =
  (* An event beyond the wheel's ~9.8 h span takes the clamp path and
     re-dispatches as the cursor reaches it; order is preserved. *)
  let s = Scheduler.create () in
  let log = ref [] in
  ignore
    (Scheduler.schedule_at s (Time.of_sec 50_000.) (fun () ->
         log := "far" :: !log));
  ignore
    (Scheduler.schedule_at s (Time.of_ms 1.) (fun () -> log := "near" :: !log));
  Scheduler.run s;
  Alcotest.(check (list string)) "near before far" [ "near"; "far" ]
    (List.rev !log);
  Alcotest.(check (float 1e-6))
    "clock at far event" 50_000. (Time.to_sec (Scheduler.now s))

(* ------------------------------------------------------------------ *)
(* Scheduler.Event: pooled typed cells *)

(* The typed event path must be observationally identical to the
   closure path: same trace of arms and mid-run cancels, same log of
   (payload, fire-time) — which pins time, (time, seq) tie order and
   side-effect order all at once. The reference run schedules every
   event as a closure; the pool run routes the flagged subset through
   an Event pool. Both runs arm in the same order, and one seq is
   consumed per arm on either path, so any divergence in the interleaving
   of typed and closure events shows up as a reordered log. *)
let prop_event_pool_matches_closures =
  QCheck.Test.make ~name:"typed event pool matches closure reference"
    ~count:200
    QCheck.(
      list (pair (int_bound 5_000_000) (pair bool (option (int_bound 4_999_999)))))
    (fun trace ->
      let run use_pool =
        let s = Scheduler.create () in
        let log = ref [] in
        let record i = log := (i, Time.to_ns (Scheduler.now s)) :: !log in
        let pool = Scheduler.Event.pool s ~fire:record in
        let arms =
          List.mapi
            (fun i (t_ns, (typed, cancel_at)) ->
              let cancel =
                if use_pool && typed then begin
                  let c = Scheduler.Event.schedule_at pool (Time.of_ns t_ns) i in
                  fun () -> ignore (Scheduler.Event.cancel pool c)
                end
                else begin
                  let h =
                    Scheduler.schedule_at s (Time.of_ns t_ns) (fun () ->
                        record i)
                  in
                  fun () -> Scheduler.cancel s h
                end
              in
              (i, t_ns, cancel_at, cancel))
            trace
        in
        (* Cancels that strictly precede the victim's due time count;
           later ones would race an already-fired event (and, for
           cells, trip the stale-handle sanitizer by contract). *)
        let expected = ref [] in
        List.iter
          (fun (i, t_ns, cancel_at, cancel) ->
            match cancel_at with
            | Some c_ns when c_ns < t_ns ->
              ignore (Scheduler.schedule_at s (Time.of_ns c_ns) cancel)
            | Some _ | None -> expected := (t_ns, i) :: !expected)
          arms;
        Scheduler.run s;
        (List.rev !log, List.sort compare (List.rev !expected))
      in
      let log_ref, _ = run false in
      let log_pool, expected = run true in
      log_ref = log_pool
      && log_pool = List.map (fun (t, i) -> (i, t)) expected)

let test_event_cell_reuse () =
  (* A fire handler that re-arms into its own pool must reuse the very
     cell that just fired (release happens before the handler runs):
     a whole chain of sequential events costs one cell. *)
  let s = Scheduler.create () in
  let count = ref 0 in
  let pool_ref = ref None in
  let fire n =
    incr count;
    if n > 0 then
      match !pool_ref with
      | Some p -> ignore (Scheduler.Event.schedule_after p (Time.of_ms 1.) (n - 1))
      | None -> assert false
  in
  let p = Scheduler.Event.pool s ~fire in
  pool_ref := Some p;
  ignore (Scheduler.Event.schedule_after p (Time.of_ms 1.) 5);
  Scheduler.run s;
  check_int "whole chain fired" 6 !count;
  check_int "one cell ever allocated" 1 (Scheduler.event_cells_allocated s);
  check_int "cell back in the pool" 1 (Scheduler.event_cells_free s)

let test_event_cancel_then_rearm () =
  let s = Scheduler.create () in
  let got = ref [] in
  let p = Scheduler.Event.pool s ~fire:(fun v -> got := v :: !got) in
  let c = Scheduler.Event.schedule_after p (Time.of_ms 1.) 42 in
  check_bool "pending after arm" true (Scheduler.Event.is_pending c);
  (match Scheduler.Event.cancel p c with
  | Some v -> check_int "cancel hands the payload back" 42 v
  | None -> Alcotest.fail "cancel of an armed cell must return its payload");
  check_bool "idle after cancel" false (Scheduler.Event.is_pending c);
  Scheduler.run s;
  check_bool "cancelled event never fired" true (!got = []);
  (* The cancelled cell is pool property again: the next arm reuses it. *)
  ignore (Scheduler.Event.schedule_after p (Time.of_ms 1.) 7);
  check_int "cancelled cell reused" 1 (Scheduler.event_cells_allocated s);
  Scheduler.run s;
  Alcotest.(check (list int)) "re-arm fires with the new payload" [ 7 ] !got

let test_event_stale_cancel () =
  (* Cancelling a cell whose event already fired is a use-after-free
     on the cell: the pool may have reissued it. Generation parity
     catches it in the sanitizer profile; compiled out, the cancel is
     a silent no-op (the entry is idle). *)
  let s = Scheduler.create () in
  let p = Scheduler.Event.pool s ~fire:(fun (_ : int) -> ()) in
  let c = Scheduler.Event.schedule_after p (Time.of_ms 1.) 0 in
  Scheduler.run s;
  if Sim_engine.Sanitizer_mode.on then
    Alcotest.check_raises "stale handle trips the sanitizer"
      (Invalid_argument
         "Scheduler.Event.cancel: cell is not armed (already fired or \
          cancelled — stale cell handle)")
      (fun () -> ignore (Scheduler.Event.cancel p c))
  else
    check_bool "stale cancel is a no-op without the sanitizer" true
      (Scheduler.Event.cancel p c = None)

let test_event_pool_accounting () =
  (* Cells allocate at the high-water mark of in-flight events and
     never beyond it. *)
  let s = Scheduler.create () in
  let fired = ref 0 in
  let p = Scheduler.Event.pool s ~fire:(fun (_ : int) -> incr fired) in
  for i = 1 to 8 do
    ignore (Scheduler.Event.schedule_after p (Time.of_ms (float_of_int i)) i)
  done;
  check_int "eight cells at the high-water mark" 8
    (Scheduler.event_cells_allocated s);
  check_int "none free while armed" 0 (Scheduler.event_cells_free s);
  Scheduler.run s;
  check_int "all fired" 8 !fired;
  check_int "all back in the pool" 8 (Scheduler.event_cells_free s);
  (* A second wave of the same width allocates nothing new. *)
  for i = 1 to 8 do
    ignore (Scheduler.Event.schedule_after p (Time.of_ms (float_of_int i)) i)
  done;
  Scheduler.run s;
  check_int "steady state allocates no cells" 8
    (Scheduler.event_cells_allocated s)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let da = List.init 100 (fun _ -> Rng.int a 1000) in
  let db = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" da db

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let da = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let db = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "different seeds diverge" true (da <> db)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let c1 = List.init 10 (fun _ -> Rng.int child 1000) in
  (* Draining the parent must not change what an identically created
     child would have produced. *)
  let parent2 = Rng.create ~seed:7 in
  let child2 = Rng.split parent2 in
  ignore (List.init 50 (fun _ -> Rng.int parent2 10));
  let c2 = List.init 10 (fun _ -> Rng.int child2 1000) in
  Alcotest.(check (list int)) "split streams reproducible" c1 c2

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float within bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let v = Rng.float r 3.5 in
      v >= 0. && v < 3.5)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "empirical mean within 5%" true (Float.abs (mean -. 4.0) < 0.2)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let r = Rng.create ~seed in
      let a = Array.of_list l in
      Rng.shuffle r a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_rng_derangement =
  QCheck.Test.make ~name:"derangement has no fixed point" ~count:200
    QCheck.(pair small_int (int_range 2 200))
    (fun (seed, n) ->
      let r = Rng.create ~seed in
      let d = Rng.derangement r n in
      let no_fixed = Array.for_all Fun.id (Array.mapi (fun i v -> i <> v) d) in
      let is_perm = List.sort compare (Array.to_list d) = List.init n Fun.id in
      no_fixed && is_perm)

let test_rng_int_in () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 100 do
    let v = Rng.int_in r 5 9 in
    check_bool "in range" true (v >= 5 && v <= 9)
  done

let test_rng_bad_args () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "exp mean" (Invalid_argument "Rng.exponential: mean must be positive")
    (fun () -> ignore (Rng.exponential r ~mean:0.))

(* ------------------------------------------------------------------ *)
(* Trace *)

module Trace = Sim_engine.Trace

let test_trace_levels () =
  let t = Trace.create () in
  check_bool "disabled by default" false (Trace.enabled t Trace.Error);
  Trace.set_level t (Some Trace.Warn);
  check_bool "error visible at warn" true (Trace.enabled t Trace.Error);
  check_bool "warn visible at warn" true (Trace.enabled t Trace.Warn);
  check_bool "info hidden at warn" false (Trace.enabled t Trace.Info);
  check_bool "debug hidden at warn" false (Trace.enabled t Trace.Debug);
  Trace.set_level t (Some Trace.Debug);
  check_bool "debug visible at debug" true (Trace.enabled t Trace.Debug);
  Trace.set_level t None;
  check_bool "level read back" true (Trace.level t = None)

let test_trace_disabled_is_silent () =
  let t = Trace.create () in
  (* Must not raise and must not print (we cannot capture stderr here,
     but the ifprintf path is exercised). *)
  Trace.debugf t ~component:"test" "invisible %d" 42;
  Trace.errorf t ~component:"test" "also invisible %s" "x";
  check_bool "survived" true true

let test_trace_per_sim_isolation () =
  (* Two simulations: configuring tracing on one must not affect the
     other — the exact leak simlint rule D001 guards against. *)
  let s1 = Scheduler.create () and s2 = Scheduler.create () in
  let t1 = Sim_engine.Sim_ctx.trace (Scheduler.ctx s1) in
  let t2 = Sim_engine.Sim_ctx.trace (Scheduler.ctx s2) in
  Trace.set_level t1 (Some Trace.Debug);
  check_bool "sim 1 sees its level" true (Trace.enabled t1 Trace.Debug);
  check_bool "sim 2 unaffected" false (Trace.enabled t2 Trace.Error);
  Trace.set_level t2 (Some Trace.Warn);
  Trace.set_level t1 None;
  check_bool "sim 2 keeps its level" true (Trace.enabled t2 Trace.Warn);
  check_bool "sim 1 disabled" false (Trace.enabled t1 Trace.Error)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_engine"
    [
      ( "sim_time",
        [
          Alcotest.test_case "constructors" `Quick test_time_constructors;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "scale" `Quick test_time_scale;
          Alcotest.test_case "negative rejected" `Quick test_time_negative_rejected;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "compact" `Quick test_heap_compact;
          qt prop_heap_sorts;
        ] );
      ("timer_wheel", [ qt prop_wheel_matches_heap ]);
      ( "scheduler",
        [
          Alcotest.test_case "order and clock" `Quick test_scheduler_order_and_clock;
          Alcotest.test_case "same-time fifo" `Quick test_scheduler_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_scheduler_cancel;
          Alcotest.test_case "run until" `Quick test_scheduler_until;
          Alcotest.test_case "nested scheduling" `Quick test_scheduler_nested_scheduling;
          Alcotest.test_case "past rejected" `Quick test_scheduler_past_rejected;
          Alcotest.test_case "max events" `Quick test_scheduler_max_events;
          Alcotest.test_case "counters" `Quick test_scheduler_counts;
          Alcotest.test_case "tombstones and compaction" `Quick
            test_scheduler_tombstones_and_compaction;
          Alcotest.test_case "far-future clamp" `Quick test_scheduler_far_future;
          qt prop_scheduler_matches_model;
        ] );
      ( "timer",
        [
          Alcotest.test_case "cancel and re-arm" `Quick test_timer_cancel_rearm;
          Alcotest.test_case "seq interleaving" `Quick test_timer_seq_interleaving;
        ] );
      ( "event_pool",
        [
          Alcotest.test_case "fire releases before handler (reuse)" `Quick
            test_event_cell_reuse;
          Alcotest.test_case "cancel then re-arm" `Quick
            test_event_cancel_then_rearm;
          Alcotest.test_case "stale handle cancel" `Quick test_event_stale_cancel;
          Alcotest.test_case "pool accounting" `Quick test_event_pool_accounting;
          qt prop_event_pool_matches_closures;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "bad arguments" `Quick test_rng_bad_args;
          qt prop_rng_int_bounds;
          qt prop_rng_float_bounds;
          qt prop_rng_shuffle_permutes;
          qt prop_rng_derangement;
        ] );
      ( "trace",
        [
          Alcotest.test_case "levels" `Quick test_trace_levels;
          Alcotest.test_case "disabled silent" `Quick test_trace_disabled_is_silent;
          Alcotest.test_case "per-sim isolation" `Quick test_trace_per_sim_isolation;
        ] );
    ]
