(* MMPTCP tests: strategies, phase switching, scatter behaviour and
   end-to-end delivery. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Packet = Sim_net.Packet
module Host = Sim_net.Host
module Link = Sim_net.Link
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Fattree = Sim_net.Fattree
module Strategy = Mmptcp.Strategy
module Conn = Mmptcp.Mmptcp_conn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let default_strategy = Strategy.default

let direct_rig ?data_filter () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  (match data_filter with
   | Some keep ->
     Link.attach net.Topology.links.(0) (fun pkt ->
         if keep pkt then Host.receive dst pkt)
   | None -> ());
  (sched, net, src, dst)

(* ------------------------------------------------------------------ *)
(* Strategy *)

let test_strategy_default () =
  check_int "8 subflows" 8 default_strategy.Strategy.subflows;
  (match default_strategy.Strategy.switch with
   | Strategy.Data_volume v -> check_bool "above 70KB shorts" true (v > 70_000)
   | _ -> Alcotest.fail "default switch should be data volume");
  check_bool "topology aware" true
    (default_strategy.Strategy.dupack = Strategy.Topology_aware)

let test_strategy_printing () =
  Alcotest.(check string) "switch" "data-volume(100000B)"
    (Strategy.switch_to_string (Strategy.Data_volume 100_000));
  Alcotest.(check string) "congestion" "congestion-event"
    (Strategy.switch_to_string Strategy.Congestion_event);
  Alcotest.(check string) "dupack" "adaptive(3..64)"
    (Strategy.dupack_to_string (Strategy.Adaptive { initial = 3; cap = 64 }))

(* ------------------------------------------------------------------ *)
(* Phase behaviour *)

let test_short_flow_stays_in_ps () =
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:70_000 ~rng:(Rng.create ~seed:1)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "never switched" true (Conn.switched_at c = None);
  check_bool "still scatter phase" true (Conn.phase c = Conn.Packet_scatter);
  check_int "no multipath subflows" 0 (Array.length (Conn.multipath_txs c))

let test_long_flow_switches_at_volume () =
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:500_000 ~rng:(Rng.create ~seed:2)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "switched" true (Conn.switched_at c <> None);
  check_bool "multipath phase" true (Conn.phase c = Conn.Multipath);
  check_int "opened 8 subflows" 8 (Array.length (Conn.multipath_txs c));
  check_int "all bytes" 500_000 (Conn.bytes_received c)

let test_switch_callback_and_volume_bound () =
  let sched, _net, src, dst = direct_rig () in
  let assigned_at_switch = ref (-1) in
  let c =
    Conn.start ~src ~dst ~size:500_000 ~rng:(Rng.create ~seed:3)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
      ~on_switch:(fun c ->
        assigned_at_switch := Conn.bytes_received c)
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "switch observed" true (!assigned_at_switch >= 0);
  (* At the moment of switching at most ~threshold (+ one window) bytes
     can have been received. *)
  check_bool "switched near threshold" true (!assigned_at_switch <= 160_000)

let test_after_time_switches_at_deadline () =
  (* Deadline-based switching rides the scheduler's re-armable Timer:
     the switch must happen at the configured time even with no
     congestion and no volume threshold crossed. *)
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:500_000 ~rng:(Rng.create ~seed:9)
      ~strategy:
        { default_strategy with Strategy.switch = Strategy.After_time (Time.of_ms 5.) }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  (match Conn.switched_at c with
   | None -> Alcotest.fail "deadline switch did not happen"
   | Some t ->
     Alcotest.(check (float 0.2)) "switched at ~5ms" 5. (Time.to_ms t));
  check_bool "multipath phase" true (Conn.phase c = Conn.Multipath)

let test_after_time_short_flow_completes_first () =
  (* A flow that finishes before the deadline must never switch; the
     timer is cancelled when the connection completes. *)
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:70_000 ~rng:(Rng.create ~seed:10)
      ~strategy:
        { default_strategy with Strategy.switch = Strategy.After_time (Time.of_sec 5.) }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "no switch before deadline" true (Conn.switched_at c = None)

let test_never_strategy_stays_ps () =
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:500_000 ~rng:(Rng.create ~seed:4)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Never }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "no switch" true (Conn.switched_at c = None);
  check_int "no subflows" 0 (Array.length (Conn.multipath_txs c))

let test_congestion_event_switches () =
  (* Drop one early data packet: the resulting fast retransmit (or
     RTO) is the first congestion event and must flip the phase. *)
  let dropped = ref false in
  let keep pkt =
    if (not !dropped) && Packet.is_data pkt && pkt.Packet.seq = 14_000
    then begin
      dropped := true;
      false
    end
    else true
  in
  let sched, _net, src, dst = direct_rig ~data_filter:keep () in
  let c =
    Conn.start ~src ~dst ~size:500_000 ~rng:(Rng.create ~seed:5)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Congestion_event }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "dropped" true !dropped;
  check_bool "switched on congestion" true (Conn.switched_at c <> None);
  check_int "all bytes" 500_000 (Conn.bytes_received c)

let test_congestion_event_no_loss_no_switch () =
  (* Small enough (50 segments) that slow start cannot overflow the
     100-packet queue: a genuinely clean run. *)
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:70_000 ~rng:(Rng.create ~seed:6)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Congestion_event }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "clean run stays in PS" true (Conn.switched_at c = None)

(* ------------------------------------------------------------------ *)
(* Dup-ACK threshold strategies *)

let test_topology_aware_threshold () =
  let sched, _net, src, dst = direct_rig () in
  ignore sched;
  let c16 =
    Conn.start ~src ~dst ~size:1 ~rng:(Rng.create ~seed:7)
      ~strategy:{ default_strategy with Strategy.dupack = Strategy.Topology_aware }
      ~paths:16 ()
  in
  check_int "threshold = paths" 16 (Conn.current_dupack_threshold c16)

let test_topology_aware_floor () =
  let sched, _net, src, dst = direct_rig () in
  ignore sched;
  let c =
    Conn.start ~src ~dst ~size:1 ~rng:(Rng.create ~seed:8)
      ~strategy:{ default_strategy with Strategy.dupack = Strategy.Topology_aware }
      ~paths:1 ()
  in
  check_int "floor of 3" 3 (Conn.current_dupack_threshold c)

let test_static_threshold () =
  let sched, _net, src, dst = direct_rig () in
  ignore sched;
  let c =
    Conn.start ~src ~dst ~size:1 ~rng:(Rng.create ~seed:9)
      ~strategy:{ default_strategy with Strategy.dupack = Strategy.Static 7 }
      ~paths:16 ()
  in
  check_int "static ignores paths" 7 (Conn.current_dupack_threshold c)

let test_adaptive_threshold_grows_on_dsack () =
  (* Duplicate one data packet in flight: the receiver flags the second
     copy, and the adaptive strategy must raise the threshold. *)
  let duplicated = ref false in
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  (* Copy before delivering: [Host.receive] returns the packet to the
     pool, so the duplicate must be its own physical packet. *)
  Link.attach net.Topology.links.(0) (fun pkt ->
      let dup =
        if (not !duplicated) && Packet.is_data pkt && pkt.Packet.seq = 14_000
        then begin
          duplicated := true;
          Some (Packet.copy ~ctx:(Scheduler.ctx sched) pkt)
        end
        else None
      in
      Host.receive dst pkt;
      Option.iter (Host.receive dst) dup);
  let c =
    Conn.start ~src ~dst ~size:70_000 ~rng:(Rng.create ~seed:10)
      ~strategy:
        { default_strategy with Strategy.dupack = Strategy.Adaptive { initial = 3; cap = 16 } }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "duplicate injected" true !duplicated;
  check_bool "dsack observed" true (Conn.spurious_rtx_signals c >= 1);
  check_int "threshold grew" 4 (Conn.current_dupack_threshold c)

let test_adaptive_threshold_capped () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  (* Duplicate every data packet: threshold must stop at the cap. *)
  Link.attach net.Topology.links.(0) (fun pkt ->
      let dup =
        if Packet.is_data pkt then
          Some (Packet.copy ~ctx:(Scheduler.ctx sched) pkt)
        else None
      in
      Host.receive dst pkt;
      Option.iter (Host.receive dst) dup);
  let c =
    Conn.start ~src ~dst ~size:140_000 ~rng:(Rng.create ~seed:11)
      ~strategy:
        {
          default_strategy with
          Strategy.dupack = Strategy.Adaptive { initial = 3; cap = 6 };
          switch = Strategy.Never;
        }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_int "capped" 6 (Conn.current_dupack_threshold c)

(* ------------------------------------------------------------------ *)
(* Scatter behaviour *)

let test_ps_randomises_source_ports () =
  let ports = Hashtbl.create 64 in
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  Link.attach net.Topology.links.(0) (fun pkt ->
      if Packet.is_data pkt then
        Hashtbl.replace ports pkt.Packet.src_port ();
      Host.receive dst pkt);
  let c =
    Conn.start ~src ~dst ~size:70_000 ~rng:(Rng.create ~seed:12) ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Conn.is_complete c);
  (* 50 segments: virtually all should carry distinct random ports. *)
  check_bool "many distinct ports" true (Hashtbl.length ports > 30)

let test_mp_phase_uses_fixed_ports () =
  let ps_ports = Hashtbl.create 64 and mp_ports = Hashtbl.create 64 in
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  Link.attach net.Topology.links.(0) (fun pkt ->
      if Packet.is_data pkt then begin
        let tbl = if pkt.Packet.subflow = 0 then ps_ports else mp_ports in
        Hashtbl.replace tbl pkt.Packet.src_port ()
      end;
      Host.receive dst pkt);
  let c =
    Conn.start ~src ~dst ~size:1_000_000 ~rng:(Rng.create ~seed:13)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 20.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_bool "scatter randomised" true (Hashtbl.length ps_ports > 20);
  (* 8 subflows, one fixed port each. *)
  check_int "multipath ports fixed" 8 (Hashtbl.length mp_ports)

let test_ps_deactivates_after_switch () =
  let sched, _net, src, dst = direct_rig () in
  let c =
    Conn.start ~src ~dst ~size:1_000_000 ~rng:(Rng.create ~seed:14)
      ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
      ()
  in
  Scheduler.run ~until:(Time.of_sec 20.) sched;
  check_bool "complete" true (Conn.is_complete c);
  let ps = Conn.scatter_tx c in
  (* The scatter flow must have carried roughly the volume threshold,
     not the whole transfer. *)
  let sent = (Sim_tcp.Tcp_tx.stats ps).Sim_tcp.Tcp_tx.bytes_sent in
  check_bool "ps stopped near threshold" true (sent <= 200_000);
  check_bool "ps drained" true
    (Sim_tcp.Tcp_tx.flight ps = 0)

(* ------------------------------------------------------------------ *)
(* Robustness *)

let test_mmptcp_random_loss_property =
  QCheck.Test.make ~name:"mmptcp completes under random loss" ~count:15
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, percent) ->
      let rng = Sim_engine.Rng.create ~seed in
      let sched = Scheduler.create () in
      let net = Dumbbell.direct ~sched () in
      let src = Topology.host net 0 and dst = Topology.host net 1 in
      Link.attach net.Topology.links.(0) (fun pkt ->
          if (not (Packet.is_data pkt)) || Sim_engine.Rng.int rng 100 >= percent
          then Host.receive dst pkt);
      let c =
        Conn.start ~src ~dst ~size:300_000 ~rng:(Sim_engine.Rng.create ~seed:(seed + 1))
          ~strategy:{ default_strategy with Strategy.switch = Strategy.Data_volume 100_000 }
          ()
      in
      Scheduler.run ~until:(Time.of_sec 300.) sched;
      Conn.is_complete c && Conn.bytes_received c = 300_000)

let test_mmptcp_on_fattree_with_paths () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  let src = Topology.host net 0 and dst = Topology.host net 20 in
  let paths = net.Topology.path_count (Host.addr src) (Host.addr dst) in
  let c =
    Conn.start ~src ~dst ~size:300_000 ~rng:(Rng.create ~seed:15) ~paths ()
  in
  Scheduler.run ~until:(Time.of_sec 20.) sched;
  check_bool "complete" true (Conn.is_complete c);
  check_int "threshold from fattree paths" (max 3 paths)
    (Conn.current_dupack_threshold c)

let test_zero_size () =
  let sched, _net, src, dst = direct_rig () in
  let c = Conn.start ~src ~dst ~size:0 ~rng:(Rng.create ~seed:16) () in
  Scheduler.run ~until:(Time.of_sec 1.) sched;
  check_bool "complete" true (Conn.is_complete c)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mmptcp"
    [
      ( "strategy",
        [
          Alcotest.test_case "defaults" `Quick test_strategy_default;
          Alcotest.test_case "printing" `Quick test_strategy_printing;
        ] );
      ( "phase-switching",
        [
          Alcotest.test_case "short stays PS" `Quick test_short_flow_stays_in_ps;
          Alcotest.test_case "long switches at volume" `Quick test_long_flow_switches_at_volume;
          Alcotest.test_case "switch callback" `Quick test_switch_callback_and_volume_bound;
          Alcotest.test_case "after-time switches at deadline" `Quick
            test_after_time_switches_at_deadline;
          Alcotest.test_case "after-time, flow done first" `Quick
            test_after_time_short_flow_completes_first;
          Alcotest.test_case "never strategy" `Quick test_never_strategy_stays_ps;
          Alcotest.test_case "congestion event switches" `Quick test_congestion_event_switches;
          Alcotest.test_case "no loss, no switch" `Quick test_congestion_event_no_loss_no_switch;
        ] );
      ( "dupack-threshold",
        [
          Alcotest.test_case "topology aware" `Quick test_topology_aware_threshold;
          Alcotest.test_case "topology floor" `Quick test_topology_aware_floor;
          Alcotest.test_case "static" `Quick test_static_threshold;
          Alcotest.test_case "adaptive grows" `Quick test_adaptive_threshold_grows_on_dsack;
          Alcotest.test_case "adaptive capped" `Quick test_adaptive_threshold_capped;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "randomised ports" `Quick test_ps_randomises_source_ports;
          Alcotest.test_case "mp fixed ports" `Quick test_mp_phase_uses_fixed_ports;
          Alcotest.test_case "ps deactivates" `Quick test_ps_deactivates_after_switch;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "fattree paths" `Quick test_mmptcp_on_fattree_with_paths;
          Alcotest.test_case "zero size" `Quick test_zero_size;
          qt test_mmptcp_random_loss_property;
        ] );
    ]
