(* TCP stack tests: interval sets, RTT estimation, sources, and full
   sender/receiver behaviour over an instrumented two-host link with
   deterministic loss injection. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Packet = Sim_net.Packet
module Host = Sim_net.Host
module Link = Sim_net.Link
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Intervals = Sim_tcp.Intervals
module Rtt_estimator = Sim_tcp.Rtt_estimator
module Tcp_params = Sim_tcp.Tcp_params
module Tcp_tx = Sim_tcp.Tcp_tx
module Tcp_rx = Sim_tcp.Tcp_rx
module Flow = Sim_tcp.Flow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Hand-built packets/queues in these tests sit outside any one
   simulation; a file-level context supplies their ids. *)
let ctx = Sim_engine.Sim_ctx.create ()

(* Raw data segment through the labelled constructor; defaults match
   what the old record literals spelled out at every site. *)
let mk_seg ?(conn = 0) ?(subflow = 0) ?(src_port = 1) ?(dst_port = 2)
    ?(seq = 0) ?(ack_seq = 0) ?(len = 100) ?(bits = Packet.data_bits)
    ?(dsn = -1) ~src ~dst () =
  Packet.make ~ctx ~src ~dst ~conn ~subflow ~src_port ~dst_port ~seq ~ack_seq
    ~len ~bits ~dsn

(* ------------------------------------------------------------------ *)
(* Intervals *)

let test_intervals_basic () =
  let t = Intervals.create () in
  check_int "add fresh" 10 (Intervals.add t ~start:0 ~stop:10);
  check_int "duplicate" 0 (Intervals.add t ~start:0 ~stop:10);
  check_int "extend" 5 (Intervals.add t ~start:10 ~stop:15);
  check_int "total" 15 (Intervals.total t);
  check_int "contiguous" 15 (Intervals.contiguous_from t 0)

let test_intervals_gap_and_fill () =
  let t = Intervals.create () in
  ignore (Intervals.add t ~start:0 ~stop:10);
  ignore (Intervals.add t ~start:20 ~stop:30);
  check_int "two spans" 2 (Intervals.span_count t);
  check_int "stops at gap" 10 (Intervals.contiguous_from t 0);
  check_int "fill merges" 10 (Intervals.add t ~start:10 ~stop:20);
  check_int "one span" 1 (Intervals.span_count t);
  check_int "contiguous to end" 30 (Intervals.contiguous_from t 0)

let test_intervals_partial_overlap () =
  let t = Intervals.create () in
  ignore (Intervals.add t ~start:5 ~stop:15);
  check_int "left overlap adds left part" 5 (Intervals.add t ~start:0 ~stop:10);
  check_int "right overlap adds right part" 5 (Intervals.add t ~start:10 ~stop:20);
  check_int "total" 20 (Intervals.total t)

let test_intervals_covering_add () =
  let t = Intervals.create () in
  ignore (Intervals.add t ~start:10 ~stop:20);
  ignore (Intervals.add t ~start:30 ~stop:40);
  check_int "covers both plus gaps" 30 (Intervals.add t ~start:0 ~stop:50);
  check_int "single span" 1 (Intervals.span_count t)

let test_intervals_is_covered () =
  let t = Intervals.create () in
  ignore (Intervals.add t ~start:10 ~stop:20);
  check_bool "inside" true (Intervals.is_covered t ~start:12 ~stop:18);
  check_bool "exact" true (Intervals.is_covered t ~start:10 ~stop:20);
  check_bool "outside" false (Intervals.is_covered t ~start:5 ~stop:12);
  check_bool "empty range" true (Intervals.is_covered t ~start:3 ~stop:3)

let test_intervals_bad_range () =
  let t = Intervals.create () in
  Alcotest.check_raises "stop < start" (Invalid_argument "Intervals.add: stop < start")
    (fun () -> ignore (Intervals.add t ~start:5 ~stop:4))

(* Reference model: a bool array. *)
let prop_intervals_match_reference =
  QCheck.Test.make ~name:"intervals match boolean-array reference" ~count:300
    QCheck.(list (pair (int_bound 80) (int_bound 20)))
    (fun ranges ->
      let t = Intervals.create () in
      let reference = Array.make 101 false in
      List.for_all
        (fun (start, width) ->
          let stop = start + width in
          let expected = ref 0 in
          for i = start to stop - 1 do
            if not reference.(i) then begin
              incr expected;
              reference.(i) <- true
            end
          done;
          let added = Intervals.add t ~start ~stop in
          let total_ref =
            Array.fold_left (fun a b -> if b then a + 1 else a) 0 reference
          in
          added = !expected && Intervals.total t = total_ref)
        ranges)

let prop_intervals_contiguous_matches_reference =
  QCheck.Test.make ~name:"contiguous_from matches reference" ~count:300
    QCheck.(pair (list (pair (int_bound 50) (int_bound 10))) (int_bound 60))
    (fun (ranges, x) ->
      let t = Intervals.create () in
      let reference = Array.make 72 false in
      List.iter
        (fun (start, width) ->
          ignore (Intervals.add t ~start ~stop:(start + width));
          for i = start to start + width - 1 do
            reference.(i) <- true
          done)
        ranges;
      let y = ref x in
      while !y < 71 && reference.(!y) do
        incr y
      done;
      Intervals.contiguous_from t x = !y)

(* ------------------------------------------------------------------ *)
(* RTT estimator *)

let test_rtt_first_sample () =
  let e = Rtt_estimator.create ~params:Tcp_params.default in
  check_bool "no estimate" true (Rtt_estimator.srtt e = None);
  Alcotest.(check (float 1e-6)) "initial rto is param" 200.
    (Time.to_ms (Rtt_estimator.rto e));
  Rtt_estimator.observe e (Time.of_ms 10.);
  (match Rtt_estimator.srtt e with
   | Some s -> Alcotest.(check (float 1e-6)) "srtt = first sample" 10. (Time.to_ms s)
   | None -> Alcotest.fail "expected estimate");
  (* rto = srtt + 4*rttvar = 10 + 4*5 = 30ms, floored at 200ms. *)
  Alcotest.(check (float 1e-6)) "rto floored" 200. (Time.to_ms (Rtt_estimator.rto e))

let test_rtt_smoothing_converges () =
  let e = Rtt_estimator.create ~params:Tcp_params.default in
  for _ = 1 to 100 do
    Rtt_estimator.observe e (Time.of_ms 50.)
  done;
  (match Rtt_estimator.srtt e with
   | Some s -> Alcotest.(check (float 0.5)) "converged" 50. (Time.to_ms s)
   | None -> Alcotest.fail "expected estimate");
  check_int "samples" 100 (Rtt_estimator.samples e)

let test_rtt_floor_and_cap () =
  let params =
    { Tcp_params.default with min_rto = Time.of_ms 1.; max_rto = Time.of_ms 5. }
  in
  let e = Rtt_estimator.create ~params in
  Rtt_estimator.observe e (Time.of_ms 100.);
  Alcotest.(check (float 1e-6)) "capped" 5. (Time.to_ms (Rtt_estimator.rto e))

let test_rtt_var_tracks_jitter () =
  let e =
    Rtt_estimator.create
      ~params:{ Tcp_params.default with min_rto = Time.of_ns 1 }
  in
  List.iter
    (fun ms -> Rtt_estimator.observe e (Time.of_ms ms))
    [ 10.; 30.; 10.; 30.; 10.; 30. ];
  match Rtt_estimator.rttvar e with
  | Some v -> check_bool "positive variance" true (Time.to_ms v > 1.)
  | None -> Alcotest.fail "expected variance"

(* ------------------------------------------------------------------ *)
(* Sources *)

let test_fixed_source_sequential () =
  let s = Tcp_tx.fixed_size_source 3000 in
  Alcotest.(check (option (pair int int))) "first" (Some (0, 1400)) (s.Tcp_tx.pull ~max:1400);
  Alcotest.(check (option (pair int int))) "second" (Some (1400, 1400)) (s.Tcp_tx.pull ~max:1400);
  Alcotest.(check (option (pair int int))) "tail" (Some (2800, 200)) (s.Tcp_tx.pull ~max:1400);
  Alcotest.(check (option (pair int int))) "exhausted" None (s.Tcp_tx.pull ~max:1400);
  check_bool "has_more false" false (s.Tcp_tx.has_more ())

let test_fixed_source_respects_max () =
  let s = Tcp_tx.fixed_size_source 1000 in
  Alcotest.(check (option (pair int int))) "clipped" (Some (0, 100)) (s.Tcp_tx.pull ~max:100)

(* ------------------------------------------------------------------ *)
(* End-to-end over an instrumented direct link *)

(* The direct topology's links: index 0 delivers to host 1 (data
   direction), index 1 delivers to host 0 (ACK direction). A filter
   re-attaches the data link through a predicate for loss injection. *)
type rig = {
  sched : Scheduler.t;
  src : Host.t;
  dst : Host.t;
}

let make_rig ?spec ?data_filter () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched ?spec () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  (match data_filter with
   | Some keep ->
     Link.attach net.Topology.links.(0) (fun pkt ->
         if keep pkt then Host.receive dst pkt)
   | None -> ());
  { sched; src; dst }

let run_flow ?(size = 70_000) ?params ?dupack_threshold ?until rig =
  let f =
    Flow.start ~src:rig.src ~dst:rig.dst ~size ?params ?dupack_threshold ()
  in
  let horizon = match until with Some u -> u | None -> Time.of_sec 30. in
  Scheduler.run ~until:horizon rig.sched;
  f

let test_flow_completes () =
  let rig = make_rig () in
  let f = run_flow rig in
  check_bool "complete" true (Flow.is_complete f);
  check_int "all bytes" 70_000 (Flow.bytes_received f);
  check_int "no rto" 0 (Flow.rto_events f)

let test_flow_fct_reasonable () =
  (* 70 KB over 100 Mb/s with 20us one-way delay: serialisation alone
     is 5.7ms; handshake + slow start add a few RTTs. *)
  let rig = make_rig () in
  let f = run_flow rig in
  match Flow.fct f with
  | Some t ->
    check_bool "above line-rate bound" true (Time.to_ms t > 5.6);
    check_bool "below 15ms" true (Time.to_ms t < 15.)
  | None -> Alcotest.fail "flow did not complete"

let test_large_flow_near_line_rate () =
  let rig = make_rig () in
  let f = run_flow ~size:1_000_000 rig in
  match Flow.fct f with
  | Some t ->
    (* 1 MB -> 8 Mb / 100 Mb/s = 80 ms minimum on payload alone. *)
    check_bool "not faster than link" true (Time.to_ms t > 80.);
    check_bool "at least 70% efficient" true (Time.to_ms t < 120.)
  | None -> Alcotest.fail "flow did not complete"

let test_flow_zero_bytes () =
  let rig = make_rig () in
  let f = run_flow ~size:0 rig in
  check_bool "complete" true (Flow.is_complete f)

let test_flow_one_byte () =
  let rig = make_rig () in
  let f = run_flow ~size:1 rig in
  check_bool "complete" true (Flow.is_complete f);
  check_int "one byte" 1 (Flow.bytes_received f)

let test_slow_start_growth () =
  let rig = make_rig () in
  let f = Flow.start ~src:rig.src ~dst:rig.dst ~size:1_000_000 () in
  Scheduler.run ~until:(Time.of_ms 3.) rig.sched;
  let tx = Flow.tx f in
  let mss = Tcp_params.default.Tcp_params.mss in
  check_bool "cwnd grew beyond IW" true
    (Tcp_tx.cwnd tx
     > float_of_int (Tcp_params.default.Tcp_params.initial_window * mss))

let test_fast_retransmit_on_single_loss () =
  (* Drop exactly one mid-stream data segment once; the window around
     it is large enough to generate 3 dup ACKs, so recovery must use
     fast retransmit, not an RTO. *)
  let dropped = ref false in
  let keep pkt =
    if (not !dropped) && Packet.is_data pkt && pkt.Packet.seq = 14_000
    then begin
      dropped := true;
      false
    end
    else true
  in
  let rig = make_rig ~data_filter:keep () in
  let f = run_flow ~size:70_000 rig in
  check_bool "complete" true (Flow.is_complete f);
  check_bool "dropped once" true !dropped;
  let st = Tcp_tx.stats (Flow.tx f) in
  check_int "fast rtx" 1 st.Tcp_tx.fast_rtx_events;
  check_int "no rto" 0 st.Tcp_tx.rto_events

let test_rto_on_tail_loss () =
  (* Drop the very last segment: no later data means no dup ACKs, so
     only the retransmission timer can recover - the pathology behind
     the paper's Figure 1(b). *)
  let mss = Tcp_params.default.Tcp_params.mss in
  let size = 4 * mss in
  let last_seq = 3 * mss in
  let dropped = ref false in
  let keep pkt =
    if (not !dropped) && Packet.is_data pkt && pkt.Packet.seq = last_seq
    then begin
      dropped := true;
      false
    end
    else true
  in
  let rig = make_rig ~data_filter:keep () in
  let f = run_flow ~size rig in
  check_bool "complete" true (Flow.is_complete f);
  let st = Tcp_tx.stats (Flow.tx f) in
  check_int "recovered by rto" 1 st.Tcp_tx.rto_events;
  match Flow.fct f with
  | Some t -> check_bool "fct includes min_rto stall" true (Time.to_ms t >= 200.)
  | None -> Alcotest.fail "no fct"

let test_high_dupack_threshold_forces_rto () =
  (* Same mid-stream loss as the fast-retransmit test, but with a
     threshold too high to ever fire: the sender must fall back to an
     RTO. This is exactly the failure mode that hurts subflows with
     tiny windows in Figure 1(b). *)
  let dropped = ref false in
  let keep pkt =
    if (not !dropped) && Packet.is_data pkt && pkt.Packet.seq = 14_000
    then begin
      dropped := true;
      false
    end
    else true
  in
  let rig = make_rig ~data_filter:keep () in
  let f =
    Flow.start ~src:rig.src ~dst:rig.dst ~size:70_000
      ~dupack_threshold:(fun () -> 1_000) ()
  in
  Scheduler.run ~until:(Time.of_sec 30.) rig.sched;
  check_bool "complete" true (Flow.is_complete f);
  let st = Tcp_tx.stats (Flow.tx f) in
  check_int "no fast rtx" 0 st.Tcp_tx.fast_rtx_events;
  check_int "rto instead" 1 st.Tcp_tx.rto_events

let test_syn_loss_recovered () =
  let dropped = ref false in
  let keep pkt =
    if (not !dropped) && Packet.syn pkt then begin
      dropped := true;
      false
    end
    else true
  in
  let rig = make_rig ~data_filter:keep () in
  let f = run_flow ~size:7_000 rig in
  check_bool "complete" true (Flow.is_complete f);
  let st = Tcp_tx.stats (Flow.tx f) in
  check_bool "syn retried" true (st.Tcp_tx.syn_sent >= 2);
  match Flow.fct f with
  | Some t -> check_bool "paid initial rto" true (Time.to_ms t >= 200.)
  | None -> Alcotest.fail "no fct"

let test_burst_loss_recovered () =
  (* Drop a contiguous burst of 5 segments once: NewReno partial ACKs
     must retransmit them one per RTT and finish without deadlock. *)
  let mss = Tcp_params.default.Tcp_params.mss in
  let to_drop = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace to_drop (i * mss) true) [ 10; 11; 12; 13; 14 ];
  let keep pkt =
    if Packet.is_data pkt && Hashtbl.mem to_drop pkt.Packet.seq then begin
      Hashtbl.remove to_drop pkt.Packet.seq;
      false
    end
    else true
  in
  let rig = make_rig ~data_filter:keep () in
  let f = run_flow ~size:70_000 rig in
  check_bool "complete despite burst loss" true (Flow.is_complete f);
  check_int "all bytes delivered" 70_000 (Flow.bytes_received f)

let test_random_loss_delivery =
  QCheck.Test.make ~name:"flow completes under random loss" ~count:25
    QCheck.(pair small_int (int_range 1 15))
    (fun (seed, percent) ->
      let rng = Sim_engine.Rng.create ~seed in
      let keep pkt =
        (* Handshake losses are covered separately; dropping only data
           keeps the property fast. *)
        if Packet.is_data pkt then Sim_engine.Rng.int rng 100 >= percent
        else true
      in
      let rig = make_rig ~data_filter:keep () in
      let f = run_flow ~size:30_000 ~until:(Time.of_sec 120.) rig in
      Flow.is_complete f && Flow.bytes_received f = 30_000)

let test_receiver_dup_seen_flag () =
  (* Deliver the same segment twice through a raw receiver and check
     the DSACK-style signal on the second ACK. *)
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  (* Record the flag at delivery time: the packet itself returns to the
     pool once the host handler finishes, so it must not be retained. *)
  let acks = ref [] in
  Host.bind src ~conn:42 (fun pkt -> acks := Packet.dup_seen pkt :: !acks);
  let rx =
    Tcp_rx.create ~host:dst ~peer:(Host.addr src) ~conn:42 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:42 (Tcp_rx.handle rx);
  let make_seg () =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:42 ~len:1000 ~dsn:0
      ()
  in
  Host.send src (make_seg ());
  Scheduler.run sched;
  Host.send src (make_seg ());
  Scheduler.run sched;
  match List.rev !acks with
  | [ first; second ] ->
    check_bool "first ack clean" false first;
    check_bool "second ack flags duplicate" true second;
    check_int "rx dup count" 1 (Tcp_rx.dup_segments rx)
  | _ -> Alcotest.fail "expected exactly two ACKs"

let test_receiver_reordering () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  let acks = ref [] in
  Host.bind src ~conn:43 (fun pkt -> acks := pkt.Packet.ack_seq :: !acks);
  let rx =
    Tcp_rx.create ~host:dst ~peer:(Host.addr src) ~conn:43 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:43 (Tcp_rx.handle rx);
  let seg seq =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:43 ~seq ~dsn:seq ()
  in
  (* Arrivals: 0, 200 (hole at 100), 100 (fills). Cumulative ACKs must
     be 100, 100 (dup), 300. *)
  Host.send src (seg 0);
  Scheduler.run sched;
  Host.send src (seg 200);
  Scheduler.run sched;
  check_int "held back by hole" 2 (Tcp_rx.reorder_spans rx);
  Host.send src (seg 100);
  Scheduler.run sched;
  Alcotest.(check (list int)) "cumulative acks" [ 100; 100; 300 ] (List.rev !acks);
  check_int "rcv_nxt" 300 (Tcp_rx.rcv_nxt rx)

let test_receiver_echoes_ecn () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  let ece = ref None in
  Host.bind src ~conn:44 (fun pkt -> ece := Some (Packet.ece pkt));
  let rx =
    Tcp_rx.create ~host:dst ~peer:(Host.addr src) ~conn:44 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:44 (Tcp_rx.handle rx);
  let seg =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:44 ~dsn:0 ()
  in
  seg.Packet.ce <- true;
  Host.send src seg;
  Scheduler.run sched;
  Alcotest.(check (option bool)) "ECE echoed" (Some true) !ece


(* ------------------------------------------------------------------ *)
(* SACK *)

let sack_params = { Tcp_params.default with Tcp_params.sack = true }

let drop_burst_filter segs =
  let to_drop = Hashtbl.create 8 in
  let mss = Tcp_params.default.Tcp_params.mss in
  List.iter (fun i -> Hashtbl.replace to_drop (i * mss) true) segs;
  fun pkt ->
    if Packet.is_data pkt && Hashtbl.mem to_drop pkt.Packet.seq then begin
      Hashtbl.remove to_drop pkt.Packet.seq;
      false
    end
    else true

let test_sack_flow_completes_clean () =
  let rig = make_rig () in
  let f =
    Flow.start ~src:rig.src ~dst:rig.dst ~size:70_000 ~params:sack_params ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) rig.sched;
  check_bool "complete" true (Flow.is_complete f);
  check_int "no rtx at all" 0 (Tcp_tx.stats (Flow.tx f)).Tcp_tx.segments_rtx

let test_sack_recovers_burst_in_one_recovery () =
  (* A 5-segment burst loss: NewReno needs one RTT per hole; SACK
     repairs all holes within a single fast-recovery episode and
     without any RTO. A 2 ms propagation delay makes the per-hole RTT
     cost visible. *)
  let spec = { Topology.default_link_spec with Topology.delay = Time.of_ms 2. } in
  let run params =
    let rig =
      make_rig ~spec ~data_filter:(drop_burst_filter [ 10; 11; 12; 13; 14 ]) ()
    in
    let f = Flow.start ~src:rig.src ~dst:rig.dst ~size:140_000 ~params () in
    Scheduler.run ~until:(Time.of_sec 30.) rig.sched;
    check_bool "complete" true (Flow.is_complete f);
    let st = Tcp_tx.stats (Flow.tx f) in
    (Option.get (Flow.fct f), st.Tcp_tx.rto_events, st.Tcp_tx.fast_rtx_events)
  in
  let fct_sack, rto_sack, fr_sack = run sack_params in
  let fct_newreno, _, _ = run Tcp_params.default in
  check_int "no rto with sack" 0 rto_sack;
  check_int "single recovery episode" 1 fr_sack;
  check_bool
    (Printf.sprintf "sack faster than newreno (%.1f vs %.1f ms)"
       (Time.to_ms fct_sack) (Time.to_ms fct_newreno))
    true
    (Time.to_ms fct_sack < Time.to_ms fct_newreno)

let test_sack_random_loss_property =
  QCheck.Test.make ~name:"sack flow completes under random loss" ~count:20
    QCheck.(pair small_int (int_range 1 15))
    (fun (seed, percent) ->
      let rng = Sim_engine.Rng.create ~seed in
      let keep pkt =
        if Packet.is_data pkt then Sim_engine.Rng.int rng 100 >= percent
        else true
      in
      let rig = make_rig ~data_filter:keep () in
      let f =
        Flow.start ~src:rig.src ~dst:rig.dst ~size:50_000 ~params:sack_params ()
      in
      Scheduler.run ~until:(Time.of_sec 120.) rig.sched;
      Flow.is_complete f && Flow.bytes_received f = 50_000)

let test_receiver_advertises_sack_blocks () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  let sacks = ref [] in
  (* [sack_blocks] copies out of the packet's scratch array, so the
     list stays valid after the packet returns to the pool. *)
  Host.bind src ~conn:45 (fun pkt -> sacks := Packet.sack_blocks pkt :: !sacks);
  let rx =
    Tcp_rx.create ~host:dst ~peer:(Host.addr src) ~conn:45 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:45 (Tcp_rx.handle rx);
  let seg seq =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:45 ~seq ~dsn:seq ()
  in
  Host.send src (seg 0);
  Scheduler.run sched;
  Host.send src (seg 200);
  Scheduler.run sched;
  Host.send src (seg 400);
  Scheduler.run sched;
  (match !sacks with
   | last :: _ ->
     Alcotest.(check (list (pair int int))) "two blocks" [ (200, 300); (400, 500) ] last
   | [] -> Alcotest.fail "no acks");
  match List.rev !sacks with
  | first :: _ ->
    Alcotest.(check (list (pair int int))) "in-order ack has no blocks" [] first
  | [] -> Alcotest.fail "no acks"

(* ------------------------------------------------------------------ *)
(* Delayed ACKs *)

let delack_params = { Tcp_params.default with Tcp_params.delayed_ack = 2 }

let test_delack_halves_acks () =
  let run params =
    let rig = make_rig () in
    let f = Flow.start ~src:rig.src ~dst:rig.dst ~size:70_000 ~params () in
    Scheduler.run ~until:(Time.of_sec 10.) rig.sched;
    check_bool "complete" true (Flow.is_complete f);
    Tcp_rx.acks_sent (Flow.rx f)
  in
  let immediate = run Tcp_params.default in
  let delayed = run delack_params in
  check_bool
    (Printf.sprintf "fewer acks when delayed (%d vs %d)" delayed immediate)
    true
    (delayed * 3 < immediate * 2)

let test_delack_timer_flushes_single_segment () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  let ack_times = ref [] in
  Host.bind src ~conn:46 (fun _ -> ack_times := Scheduler.now sched :: !ack_times);
  let rx =
    Tcp_rx.create ~params:delack_params ~host:dst ~peer:(Host.addr src)
      ~conn:46 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:46 (Tcp_rx.handle rx);
  let seg =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:46 ~dsn:0 ()
  in
  Host.send src seg;
  Scheduler.run sched;
  match !ack_times with
  | [ t ] ->
    (* Withheld until the ~40ms delack timer. *)
    check_bool "flushed by timer" true (Time.to_ms t >= 40.)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 ack, got %d" (List.length l))

let test_delack_out_of_order_still_immediate () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  let src = Topology.host net 0 and dst = Topology.host net 1 in
  let acks = ref 0 in
  Host.bind src ~conn:47 (fun _ -> incr acks);
  let rx =
    Tcp_rx.create ~params:delack_params ~host:dst ~peer:(Host.addr src)
      ~conn:47 ~subflow:0
      ~on_data:(fun ~dsn:_ ~len:_ -> ())
      ()
  in
  Host.bind dst ~conn:47 (Tcp_rx.handle rx);
  let seg seq =
    mk_seg ~src:(Host.addr src) ~dst:(Host.addr dst) ~conn:47 ~seq ~dsn:seq ()
  in
  (* A gap: the out-of-order segment must be ACKed instantly, well
     before any delack timer. *)
  Host.send src (seg 200);
  Scheduler.run ~until:(Time.of_ms 10.) sched;
  Alcotest.(check int) "immediate dup-ack path" 1 !acks

let test_delack_flow_still_completes () =
  let rig = make_rig () in
  let f =
    Flow.start ~src:rig.src ~dst:rig.dst ~size:200_000 ~params:delack_params ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) rig.sched;
  check_bool "complete" true (Flow.is_complete f);
  check_int "all bytes" 200_000 (Flow.bytes_received f)

let test_two_flows_share_link_fairly () =
  let sched = Scheduler.create () in
  let net = Dumbbell.create ~sched ~pairs:2 () in
  let f1 =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 2)
      ~size:1_000_000 ()
  in
  let f2 =
    Flow.start ~src:(Topology.host net 1) ~dst:(Topology.host net 3)
      ~size:1_000_000 ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "both complete" true (Flow.is_complete f1 && Flow.is_complete f2);
  let t1 = Time.to_ms (Option.get (Flow.fct f1)) in
  let t2 = Time.to_ms (Option.get (Flow.fct f2)) in
  (* 2 MB total through a 100 Mb/s bottleneck: the later finisher
     cannot beat ~160 ms, and neither flow can beat its own 1 MB
     serialisation time. *)
  check_bool "capacity bound" true (Float.max t1 t2 > 155.);
  check_bool "f1 above serialisation bound" true (t1 > 80.);
  check_bool "f2 above serialisation bound" true (t2 > 80.)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_tcp"
    [
      ( "intervals",
        [
          Alcotest.test_case "basic" `Quick test_intervals_basic;
          Alcotest.test_case "gap and fill" `Quick test_intervals_gap_and_fill;
          Alcotest.test_case "partial overlap" `Quick test_intervals_partial_overlap;
          Alcotest.test_case "covering add" `Quick test_intervals_covering_add;
          Alcotest.test_case "is_covered" `Quick test_intervals_is_covered;
          Alcotest.test_case "bad range" `Quick test_intervals_bad_range;
          qt prop_intervals_match_reference;
          qt prop_intervals_contiguous_matches_reference;
        ] );
      ( "rtt",
        [
          Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
          Alcotest.test_case "smoothing converges" `Quick test_rtt_smoothing_converges;
          Alcotest.test_case "floor and cap" `Quick test_rtt_floor_and_cap;
          Alcotest.test_case "variance tracks jitter" `Quick test_rtt_var_tracks_jitter;
        ] );
      ( "source",
        [
          Alcotest.test_case "sequential" `Quick test_fixed_source_sequential;
          Alcotest.test_case "respects max" `Quick test_fixed_source_respects_max;
        ] );
      ( "flow",
        [
          Alcotest.test_case "completes" `Quick test_flow_completes;
          Alcotest.test_case "fct reasonable" `Quick test_flow_fct_reasonable;
          Alcotest.test_case "near line rate" `Quick test_large_flow_near_line_rate;
          Alcotest.test_case "zero bytes" `Quick test_flow_zero_bytes;
          Alcotest.test_case "one byte" `Quick test_flow_one_byte;
          Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
        ] );
      ( "loss-recovery",
        [
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_on_single_loss;
          Alcotest.test_case "rto on tail loss" `Quick test_rto_on_tail_loss;
          Alcotest.test_case "high threshold forces rto" `Quick
            test_high_dupack_threshold_forces_rto;
          Alcotest.test_case "syn loss" `Quick test_syn_loss_recovered;
          Alcotest.test_case "burst loss" `Quick test_burst_loss_recovered;
          qt test_random_loss_delivery;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "dup_seen flag" `Quick test_receiver_dup_seen_flag;
          Alcotest.test_case "reordering" `Quick test_receiver_reordering;
          Alcotest.test_case "echoes ECN" `Quick test_receiver_echoes_ecn;
        ] );
      ( "sack",
        [
          Alcotest.test_case "clean flow" `Quick test_sack_flow_completes_clean;
          Alcotest.test_case "burst in one recovery" `Quick test_sack_recovers_burst_in_one_recovery;
          Alcotest.test_case "receiver advertises blocks" `Quick test_receiver_advertises_sack_blocks;
          qt test_sack_random_loss_property;
        ] );
      ( "delayed-ack",
        [
          Alcotest.test_case "halves acks" `Quick test_delack_halves_acks;
          Alcotest.test_case "timer flushes" `Quick test_delack_timer_flushes_single_segment;
          Alcotest.test_case "out of order immediate" `Quick test_delack_out_of_order_still_immediate;
          Alcotest.test_case "flow completes" `Quick test_delack_flow_still_completes;
        ] );
      ( "fairness",
        [ Alcotest.test_case "two flows share" `Quick test_two_flows_share_link_fairly ] );
    ]
