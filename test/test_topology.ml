(* Structural and forwarding tests for the topology builders. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Addr = Sim_net.Addr
module Packet = Sim_net.Packet
module Topology = Sim_net.Topology
module Fattree = Sim_net.Fattree
module Multihomed = Sim_net.Multihomed
module Dumbbell = Sim_net.Dumbbell
module Host = Sim_net.Host
module Layer = Sim_net.Layer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Hand-built packets/queues in these tests sit outside any one
   simulation; a file-level context supplies their ids. *)
let ctx = Sim_engine.Sim_ctx.create ()

(* Raw data packet for forwarding probes. *)
let mk_pkt ?(conn = 1) ?(src_port = 1234) ?(len = 100) ~src ~dst () =
  Packet.make ~ctx ~src ~dst ~conn ~subflow:0 ~src_port ~dst_port:80 ~seq:0
    ~ack_seq:0 ~len ~bits:Packet.data_bits ~dsn:(-1)

let probe ?(conn = 999) ?(sport = 1234) net ~src ~dst =
  (* Send one raw data packet from host [src] to host [dst]; return
     whether it arrived within 10 ms of simulated time. *)
  let sched = net.Topology.sched in
  let arrived = ref false in
  let dst_host = Topology.host net dst in
  Host.bind dst_host ~conn (fun _ -> arrived := true);
  let src_host = Topology.host net src in
  Host.send src_host
    (mk_pkt ~conn ~src_port:sport ~src:(Host.addr src_host)
       ~dst:(Host.addr dst_host) ());
  Scheduler.run ~until:(Time.add (Scheduler.now sched) (Time.of_ms 10.)) sched;
  Host.unbind dst_host ~conn;
  !arrived

(* ------------------------------------------------------------------ *)
(* FatTree structure *)

let test_fattree_counts () =
  (* k=4, oversub=1: the textbook fat-tree — 16 hosts, 20 switches,
     48 fabric links + 32 host links (directed). *)
  let p = Fattree.default_params ~k:4 ~oversub:1 () in
  check_int "host count formula" 16 (Fattree.host_count p);
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched p in
  check_int "hosts" 16 (Array.length net.Topology.hosts);
  check_int "switches" 20 (Array.length net.Topology.switches);
  (* Directed links: host<->edge 2*16, edge<->agg 2*(4 pods * 2 * 2),
     agg<->core 2*(4 pods * 2 * 2). *)
  check_int "links" (32 + 32 + 32) (Array.length net.Topology.links)

let test_fattree_oversub_counts () =
  let p = Fattree.default_params ~k:4 ~oversub:4 () in
  check_int "4x hosts" 64 (Fattree.host_count p);
  let p8 = Fattree.default_params ~k:8 ~oversub:4 () in
  check_int "paper scale: 512 servers" 512 (Fattree.host_count p8)

let test_fattree_position () =
  let p = Fattree.default_params ~k:4 ~oversub:2 () in
  (* hosts_per_edge = 4, hosts_per_pod = 8. *)
  Alcotest.(check (triple int int int)) "host 0" (0, 0, 0)
    (Fattree.position p (Addr.of_int 0));
  Alcotest.(check (triple int int int)) "host 5" (0, 1, 1)
    (Fattree.position p (Addr.of_int 5));
  Alcotest.(check (triple int int int)) "host 13" (1, 1, 1)
    (Fattree.position p (Addr.of_int 13))

let test_fattree_path_count () =
  let p = Fattree.default_params ~k:4 ~oversub:2 () in
  let pc a b = Fattree.paths_between p (Addr.of_int a) (Addr.of_int b) in
  check_int "same host" 0 (pc 3 3);
  check_int "same edge" 1 (pc 0 1);
  check_int "same pod" 2 (pc 0 5);
  check_int "cross pod" 4 (pc 0 13)

let test_fattree_path_count_k8 () =
  let p = Fattree.default_params ~k:8 ~oversub:1 () in
  (* hosts_per_edge = 4, hosts_per_pod = 16. *)
  let pc a b = Fattree.paths_between p (Addr.of_int a) (Addr.of_int b) in
  check_int "same pod k8" 4 (pc 0 8);
  check_int "cross pod k8" 16 (pc 0 100)

let test_fattree_invalid () =
  Alcotest.check_raises "odd k" (Invalid_argument "Fattree: k must be even and >= 2")
    (fun () ->
      ignore
        (Fattree.create ~sched:(Scheduler.create ())
           (Fattree.default_params ~k:3 ())))

(* ------------------------------------------------------------------ *)
(* FatTree forwarding *)

let test_fattree_delivers_same_edge () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  check_bool "same edge" true (probe net ~src:0 ~dst:1)

let test_fattree_delivers_same_pod () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  check_bool "same pod" true (probe net ~src:0 ~dst:5)

let test_fattree_delivers_cross_pod () =
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  check_bool "cross pod" true (probe net ~src:0 ~dst:13)

let prop_fattree_all_pairs_deliver =
  QCheck.Test.make ~name:"fattree delivers between random pairs" ~count:60
    QCheck.(triple (int_range 0 63) (int_range 0 63) small_int)
    (fun (a, b, sport) ->
      QCheck.assume (a <> b);
      let sched = Scheduler.create () in
      let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:4 ()) in
      probe net ~src:a ~dst:b ~sport:(1000 + sport))

let test_fattree_scatter_uses_all_uplinks () =
  (* Many packets with random source ports from one host to a cross-pod
     destination must traverse every agg uplink of the source edge
     switch: the PS phase's requirement. *)
  let sched = Scheduler.create () in
  let net = Fattree.create ~sched (Fattree.default_params ~k:4 ~oversub:2 ()) in
  let dst_host = Topology.host net 13 in
  Host.bind dst_host ~conn:1 ignore;
  let src_host = Topology.host net 0 in
  for sport = 1 to 200 do
    Host.send src_host
      (mk_pkt ~src_port:(sport * 7919) ~src:(Host.addr src_host)
         ~dst:(Host.addr dst_host) ())
  done;
  Scheduler.run sched;
  (* Count how many distinct edge-layer fabric links carried traffic
     out of pod 0's edge 0 (they are the links with edge layer and
     nonzero tx, excluding host downlinks which carry none here). *)
  let used =
    Topology.layer_links net Layer.Edge_layer
    |> List.filter (fun l -> (Sim_net.Link.stats l).Sim_net.Link.tx_packets > 0)
    |> List.length
  in
  check_bool "both uplinks used" true (used >= 2)

(* ------------------------------------------------------------------ *)
(* Multihomed *)

let test_multihomed_structure () =
  let p = Multihomed.default_params ~k:4 ~oversub:2 () in
  check_int "hosts" 32 (Multihomed.host_count p);
  let sched = Scheduler.create () in
  let net = Multihomed.create ~sched p in
  Array.iter
    (fun h -> check_int "dual homed" 2 (Host.nic_count h))
    net.Topology.hosts

let prop_multihomed_delivers =
  QCheck.Test.make ~name:"multihomed delivers between random pairs" ~count:40
    QCheck.(triple (int_range 0 31) (int_range 0 31) small_int)
    (fun (a, b, sport) ->
      QCheck.assume (a <> b);
      let sched = Scheduler.create () in
      let net =
        Multihomed.create ~sched (Multihomed.default_params ~k:4 ~oversub:2 ())
      in
      probe net ~src:a ~dst:b ~sport:(1000 + sport))

let test_multihomed_more_paths () =
  let pf = Fattree.default_params ~k:4 ~oversub:2 () in
  let pm = Multihomed.default_params ~k:4 ~oversub:2 () in
  let sched = Scheduler.create () in
  let nf = Fattree.create ~sched pf in
  let sched2 = Scheduler.create () in
  let nm = Multihomed.create ~sched:sched2 pm in
  let a = Addr.of_int 0 and b = Addr.of_int 13 in
  check_bool "multi-homing multiplies path diversity" true
    (nm.Topology.path_count a b > nf.Topology.path_count a b)

(* ------------------------------------------------------------------ *)
(* VL2 *)

module Vl2 = Sim_net.Vl2

let test_vl2_structure () =
  let p = Vl2.default_params () in
  check_int "hosts" 64 (Vl2.host_count p);
  let sched = Scheduler.create () in
  let net = Vl2.create ~sched p in
  check_int "hosts built" 64 (Array.length net.Topology.hosts);
  (* 16 ToRs + 4 aggs + 4 intermediates. *)
  check_int "switches" 24 (Array.length net.Topology.switches)

let test_vl2_path_count () =
  let sched = Scheduler.create () in
  let net = Vl2.create ~sched (Vl2.default_params ()) in
  let pc a b = net.Topology.path_count (Addr.of_int a) (Addr.of_int b) in
  check_int "same host" 0 (pc 0 0);
  check_int "same tor" 1 (pc 0 1);
  (* Distinct ToRs, 4 intermediates, 2 up-aggs x 2 down-aggs: >= 16. *)
  check_bool "cross tor rich" true (pc 0 32 >= 16)

let prop_vl2_delivers =
  QCheck.Test.make ~name:"vl2 delivers between random pairs" ~count:40
    QCheck.(triple (int_range 0 63) (int_range 0 63) small_int)
    (fun (a, b, sport) ->
      QCheck.assume (a <> b);
      let sched = Scheduler.create () in
      let net = Vl2.create ~sched (Vl2.default_params ()) in
      probe net ~src:a ~dst:b ~sport:(1000 + sport))

let test_vl2_scatter_spreads_intermediates () =
  let sched = Scheduler.create () in
  let net = Vl2.create ~sched (Vl2.default_params ()) in
  let dst_host = Topology.host net 63 in
  Host.bind dst_host ~conn:1 ignore;
  let src_host = Topology.host net 0 in
  for sport = 1 to 300 do
    Host.send src_host
      (mk_pkt ~src_port:(sport * 6151) ~src:(Host.addr src_host)
         ~dst:(Host.addr dst_host) ())
  done;
  Scheduler.run sched;
  (* All intermediate downlinks towards the destination agg pair should
     see traffic: scatter exercises the whole valiant core. *)
  let used =
    Topology.layer_links net Layer.Core_layer
    |> List.filter (fun l -> (Sim_net.Link.stats l).Sim_net.Link.tx_packets > 0)
    |> List.length
  in
  check_bool "several intermediate downlinks used" true (used >= 4)

(* ------------------------------------------------------------------ *)
(* Dumbbell / direct / parking lot *)

let test_direct_delivers () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched () in
  check_bool "0 -> 1" true (probe net ~src:0 ~dst:1)

let test_dumbbell_delivers_both_ways () =
  let sched = Scheduler.create () in
  let net = Dumbbell.create ~sched ~pairs:3 () in
  check_bool "left to right" true (probe net ~src:0 ~dst:3);
  let sched2 = Scheduler.create () in
  let net2 = Dumbbell.create ~sched:sched2 ~pairs:3 () in
  check_bool "right to left" true (probe net2 ~src:4 ~dst:1)

let test_dumbbell_bottleneck_layer () =
  let sched = Scheduler.create () in
  let net = Dumbbell.create ~sched ~pairs:2 () in
  check_int "two core (bottleneck) links" 2
    (List.length (Topology.layer_links net Layer.Core_layer))

let test_parking_lot_delivers () =
  let sched = Scheduler.create () in
  let net = Dumbbell.parking_lot ~sched ~hops:3 () in
  check_bool "0 -> end" true (probe net ~src:0 ~dst:3);
  let sched2 = Scheduler.create () in
  let net2 = Dumbbell.parking_lot ~sched:sched2 ~hops:3 () in
  check_bool "middle -> end" true (probe net2 ~src:1 ~dst:3)

(* ------------------------------------------------------------------ *)
(* Layer statistics *)

let test_layer_loss_rate_counts_drops () =
  let sched = Scheduler.create () in
  let spec = { Topology.default_link_spec with queue_capacity = 1 } in
  let net = Dumbbell.create ~sched ~bottleneck_spec:spec ~pairs:2 () in
  (* Blast packets from both left hosts to the right so the 1-packet
     bottleneck queue drops. *)
  List.iter
    (fun (src, dst, conn) ->
      let dst_host = Topology.host net dst in
      Host.bind dst_host ~conn ignore;
      let src_host = Topology.host net src in
      for i = 0 to 30 do
        Host.send src_host
          (mk_pkt ~conn ~src_port:(1000 + i) ~len:1400
             ~src:(Host.addr src_host) ~dst:(Host.addr dst_host) ())
      done)
    [ (0, 2, 50); (1, 3, 51) ];
  Scheduler.run sched;
  check_bool "bottleneck dropped" true
    (Topology.layer_loss_rate net Layer.Core_layer > 0.);
  check_bool "total drops positive" true (Topology.total_drops net > 0)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim_net_topology"
    [
      ( "fattree-structure",
        [
          Alcotest.test_case "counts" `Quick test_fattree_counts;
          Alcotest.test_case "oversubscription" `Quick test_fattree_oversub_counts;
          Alcotest.test_case "position" `Quick test_fattree_position;
          Alcotest.test_case "path count" `Quick test_fattree_path_count;
          Alcotest.test_case "path count k8" `Quick test_fattree_path_count_k8;
          Alcotest.test_case "invalid params" `Quick test_fattree_invalid;
        ] );
      ( "fattree-forwarding",
        [
          Alcotest.test_case "same edge" `Quick test_fattree_delivers_same_edge;
          Alcotest.test_case "same pod" `Quick test_fattree_delivers_same_pod;
          Alcotest.test_case "cross pod" `Quick test_fattree_delivers_cross_pod;
          Alcotest.test_case "scatter uses uplinks" `Quick test_fattree_scatter_uses_all_uplinks;
          qt prop_fattree_all_pairs_deliver;
        ] );
      ( "multihomed",
        [
          Alcotest.test_case "structure" `Quick test_multihomed_structure;
          Alcotest.test_case "more paths" `Quick test_multihomed_more_paths;
          qt prop_multihomed_delivers;
        ] );
      ( "vl2",
        [
          Alcotest.test_case "structure" `Quick test_vl2_structure;
          Alcotest.test_case "path count" `Quick test_vl2_path_count;
          Alcotest.test_case "scatter spreads" `Quick test_vl2_scatter_spreads_intermediates;
          qt prop_vl2_delivers;
        ] );
      ( "reference-topologies",
        [
          Alcotest.test_case "direct" `Quick test_direct_delivers;
          Alcotest.test_case "dumbbell both ways" `Quick test_dumbbell_delivers_both_ways;
          Alcotest.test_case "bottleneck tagging" `Quick test_dumbbell_bottleneck_layer;
          Alcotest.test_case "parking lot" `Quick test_parking_lot_delivers;
        ] );
      ( "layer-stats",
        [ Alcotest.test_case "loss accounting" `Quick test_layer_loss_rate_counts_drops ] );
    ]
