(* Tests for the structured result sinks: table projection, CSV/JSON
   rendering (including non-finite floats, which JSON cannot
   represent), file artifacts, and the run manifest. *)

module Sink = Sim_experiments.Sink
module Scale = Sim_experiments.Scale

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_has name hay needle =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S not found in:\n%s" name needle hay

(* One row type exercising all three cell kinds plus CSV quoting and
   JSON null. *)
let sample_table () =
  Sink.table ~name:"sample"
    ~columns:
      [
        ("id", fun (i, _, _) -> Sink.int i);
        ("value", fun (_, v, _) -> Sink.float v);
        ("tag", fun (_, _, t) -> Sink.str t);
      ]
    [ (1, 1.5, "plain"); (2, Float.nan, "a,b") ]

let test_table_projection () =
  let t = sample_table () in
  Alcotest.(check string) "name" "sample" (Sink.name t);
  Alcotest.(check (list string)) "columns" [ "id"; "value"; "tag" ]
    (Sink.columns t);
  Alcotest.(check int) "row count" 2 (List.length (Sink.rows t))

let test_csv_rendering () =
  Alcotest.(check string) "document"
    "id,value,tag\n1,1.5,plain\n2,nan,\"a,b\"\n"
    (Sink.csv_string (sample_table ()))

let test_json_rendering () =
  let j = Sink.json_string (sample_table ()) in
  check_has "name field" j "\"name\": \"sample\"";
  check_has "columns" j "\"columns\": [\"id\", \"value\", \"tag\"]";
  check_has "finite row" j "[1, 1.5, \"plain\"]";
  (* NaN has no JSON encoding; it must become null, and the comma in
     the tag must survive inside the string literal. *)
  check_has "nan row" j "[2, null, \"a,b\"]"

let test_json_escaping () =
  let t =
    Sink.table ~name:"esc"
      ~columns:[ ("s", fun s -> Sink.str s) ]
      [ "he said \"hi\"\nbye\\" ]
  in
  check_has "escaped string" (Sink.json_string t)
    "\"he said \\\"hi\\\"\\nbye\\\\\"";
  (* Infinities are as unrepresentable as NaN. *)
  let inf =
    Sink.table ~name:"inf"
      ~columns:[ ("v", fun v -> Sink.float v) ]
      [ Float.infinity; Float.neg_infinity ]
  in
  check_has "inf rows" (Sink.json_string inf) "[null],\n    [null]"

let test_write_artifacts () =
  let dir = Filename.temp_file "sink_artifacts" "" in
  Sys.remove dir;
  (* Sink.write must create the missing directory itself. *)
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let written = Sink.write ~dir (sample_table ()) in
      Alcotest.(check (list string)) "basenames, csv first"
        [ "sample.csv"; "sample.json" ] written;
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " exists") true
            (Sys.file_exists (Filename.concat dir f)))
        written;
      (* Overwriting into an existing dir is fine (re-runs). *)
      ignore (Sink.write ~dir (sample_table ()) : string list);
      let ic = open_in (Filename.concat dir "sample.csv") in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check string) "csv content" "id,value,tag" header)

let manifest_entries =
  [
    {
      Sink.e_name = "fig1a";
      e_artifacts = [ "fig1a.csv"; "fig1a.json" ];
      e_points = [ ("subflows=1", 0.25); ("subflows=2", 0.5) ];
    };
    { Sink.e_name = "ext-coexist"; e_artifacts = []; e_points = [] };
  ]

let test_manifest () =
  let m =
    Sink.manifest_string ~scale:Scale.tiny ~jobs:4 ~git:(Some "abc123-dirty")
      ~total_seconds:1.5 manifest_entries
  in
  check_has "tool" m "\"tool\": \"mmptcp_sim\"";
  check_has "scale seed" m "\"seed\": 3";
  check_has "scale horizon" m "\"horizon_s\": 2";
  check_has "jobs" m "\"jobs\": 4";
  check_has "git" m "\"git\": \"abc123-dirty\"";
  check_has "total" m "\"total_seconds\": 1.5";
  (* Per-experiment seconds is the sum of its point durations. *)
  check_has "summed seconds" m "\"seconds\": 0.75";
  check_has "point timing" m "{\"label\": \"subflows=1\", \"seconds\": 0.25}";
  check_has "empty experiment" m "\"ext-coexist\""

let test_manifest_no_git () =
  let m =
    Sink.manifest_string ~scale:Scale.tiny ~jobs:1 ~git:None ~total_seconds:0.
      []
  in
  check_has "null git" m "\"git\": null";
  check_has "empty experiments" m "\"experiments\": [\n  ]"

let () =
  Alcotest.run "sink"
    [
      ( "table",
        [
          Alcotest.test_case "projection" `Quick test_table_projection;
          Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
      ( "files",
        [ Alcotest.test_case "write artifacts" `Quick test_write_artifacts ] );
      ( "manifest",
        [
          Alcotest.test_case "contents" `Quick test_manifest;
          Alcotest.test_case "no git" `Quick test_manifest_no_git;
        ] );
    ]
