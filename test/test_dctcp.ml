(* DCTCP controller tests: alpha dynamics on a synthetic window, and
   end-to-end behaviour over an ECN-marking bottleneck. *)

module Time = Sim_engine.Sim_time
module Scheduler = Sim_engine.Scheduler
module Topology = Sim_net.Topology
module Dumbbell = Sim_net.Dumbbell
module Pktqueue = Sim_net.Pktqueue
module Link = Sim_net.Link
module Cong = Sim_tcp.Cong
module Dctcp = Sim_dctcp.Dctcp
module Flow = Sim_tcp.Flow

let check_bool = Alcotest.(check bool)

let fake_window ?(mss = 1400) ?(cwnd = 14_000.) ?(ssthresh = 1.) () =
  let c = ref cwnd and s = ref ssthresh in
  let w =
    {
      Cong.get_cwnd = (fun () -> !c);
      set_cwnd = (fun v -> c := v);
      get_ssthresh = (fun () -> !s);
      set_ssthresh = (fun v -> s := v);
      flight = (fun () -> int_of_float !c);
      mss;
      srtt = (fun () -> Some (Time.of_ms 1.));
    }
  in
  (w, c, s)

let feed cc ~acked ~ece n =
  for _ = 1 to n do
    cc.Cong.on_ack ~acked ~ece
  done

let test_alpha_starts_zero () =
  let w, _, _ = fake_window () in
  let cc = Dctcp.make w in
  Alcotest.(check (option (float 1e-9))) "alpha 0" (Some 0.) (Dctcp.alpha_of cc)

let test_alpha_rises_under_marking () =
  let w, _, _ = fake_window () in
  let cc = Dctcp.make w in
  (* Several fully-marked windows: alpha must climb towards 1. *)
  feed cc ~acked:1400 ~ece:true 100;
  match Dctcp.alpha_of cc with
  | Some a -> check_bool "alpha grew" true (a > 0.3)
  | None -> Alcotest.fail "no alpha"

let test_alpha_decays_when_clean () =
  let w, _, _ = fake_window () in
  let cc = Dctcp.make w in
  feed cc ~acked:1400 ~ece:true 50;
  let a1 = Option.get (Dctcp.alpha_of cc) in
  (* Clean traffic: alpha must decay geometrically. The window grows
     while clean, so updates get sparser - allow plenty of acks. *)
  feed cc ~acked:1400 ~ece:false 2_000;
  let a2 = Option.get (Dctcp.alpha_of cc) in
  check_bool
    (Printf.sprintf "alpha decayed (%.3f -> %.3f)" a1 a2)
    true
    (a2 < a1 /. 2.)

let test_marked_window_cuts_cwnd () =
  let w, c, _ = fake_window ~cwnd:28_000. () in
  let cc = Dctcp.make w in
  let before = !c in
  feed cc ~acked:1400 ~ece:true 40;
  check_bool "cwnd reduced below growth path" true (!c < before +. 40. *. 140.)

let test_clean_window_grows () =
  let w, c, _ = fake_window ~cwnd:14_000. ~ssthresh:1. () in
  let cc = Dctcp.make w in
  let before = !c in
  feed cc ~acked:1400 ~ece:false 20;
  check_bool "grows like reno" true (!c > before)

let test_loss_still_halves () =
  let w, c, s = fake_window ~cwnd:20_000. () in
  let cc = Dctcp.make w in
  cc.Cong.on_loss Cong.Fast_retransmit;
  Alcotest.(check (float 1e-9)) "ssthresh" 10_000. !s;
  Alcotest.(check (float 1e-9)) "cwnd" 10_000. !c

let ecn_spec threshold =
  { Topology.default_link_spec with ecn_threshold = Some threshold }

let test_dctcp_flow_completes_with_marking () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched ~spec:(ecn_spec Dctcp.recommended_marking_threshold) () in
  let f =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:2_000_000
      ~cc:(fun w -> Dctcp.make w)
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Flow.is_complete f);
  let marked =
    (Pktqueue.stats (Link.queue net.Topology.links.(0))).Pktqueue.marked
  in
  check_bool "queue marked packets" true (marked > 0)

let test_dctcp_keeps_queue_short () =
  (* The signature DCTCP property: backlog hovers near the marking
     threshold instead of filling the buffer like Reno does. *)
  let run cc =
    let sched = Scheduler.create () in
    let net = Dumbbell.direct ~sched ~spec:(ecn_spec 17) () in
    let f =
      Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
        ~size:3_000_000 ~cc ()
    in
    Scheduler.run ~until:(Time.of_sec 10.) sched;
    check_bool "complete" true (Flow.is_complete f);
    (Pktqueue.stats (Link.queue net.Topology.links.(0))).Pktqueue.max_backlog
  in
  let dctcp_backlog = run (fun w -> Dctcp.make w) in
  let reno_backlog = run Sim_tcp.Reno.make in
  check_bool
    (Printf.sprintf "dctcp backlog (%d) shorter than reno (%d)" dctcp_backlog
       reno_backlog)
    true
    (dctcp_backlog < reno_backlog)

let test_dctcp_avoids_loss_at_bottleneck () =
  let sched = Scheduler.create () in
  let net = Dumbbell.direct ~sched ~spec:(ecn_spec 17) () in
  let f =
    Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
      ~size:2_000_000
      ~cc:(fun w -> Dctcp.make w)
      ()
  in
  Scheduler.run ~until:(Time.of_sec 10.) sched;
  check_bool "complete" true (Flow.is_complete f);
  Alcotest.(check int) "no drops"
    0
    (Pktqueue.stats (Link.queue net.Topology.links.(0))).Pktqueue.dropped

let test_back_to_back_runs_identical () =
  (* Regression for the old global alpha registry: a second identical
     run must see exactly the first one's dynamics, with no state
     carried over from the previous simulation. *)
  let run_once () =
    let sched = Scheduler.create () in
    let net = Dumbbell.direct ~sched ~spec:(ecn_spec 17) () in
    let f =
      Flow.start ~src:(Topology.host net 0) ~dst:(Topology.host net 1)
        ~size:1_000_000
        ~cc:(fun w -> Dctcp.make w)
        ()
    in
    Scheduler.run ~until:(Time.of_sec 10.) sched;
    let st = Pktqueue.stats (Link.queue net.Topology.links.(0)) in
    ( Flow.is_complete f,
      st.Pktqueue.marked,
      st.Pktqueue.dropped,
      st.Pktqueue.max_backlog )
  in
  let r1 = run_once () in
  let r2 = run_once () in
  check_bool "identical marking/backlog trajectory" true (r1 = r2)

let () =
  Alcotest.run "sim_dctcp"
    [
      ( "alpha",
        [
          Alcotest.test_case "starts at zero" `Quick test_alpha_starts_zero;
          Alcotest.test_case "rises under marking" `Quick test_alpha_rises_under_marking;
          Alcotest.test_case "decays when clean" `Quick test_alpha_decays_when_clean;
        ] );
      ( "window",
        [
          Alcotest.test_case "marked window cuts" `Quick test_marked_window_cuts_cwnd;
          Alcotest.test_case "clean window grows" `Quick test_clean_window_grows;
          Alcotest.test_case "loss halves" `Quick test_loss_still_halves;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "completes with marking" `Quick test_dctcp_flow_completes_with_marking;
          Alcotest.test_case "keeps queue short" `Quick test_dctcp_keeps_queue_short;
          Alcotest.test_case "avoids loss" `Quick test_dctcp_avoids_loss_at_bottleneck;
          Alcotest.test_case "back-to-back runs identical" `Quick
            test_back_to_back_runs_identical;
        ] );
    ]
